//! # flexos-repro — workspace umbrella
//!
//! This package hosts the integration tests (`tests/`) and runnable
//! examples (`examples/`) that span all FlexOS-rs crates. The library
//! itself only re-exports the member crates for convenience.

pub use flexos;
pub use flexos_apps;
pub use flexos_backends;
pub use flexos_kernel;
pub use flexos_machine;
pub use flexos_net;
pub use flexos_sh;
