//! TLB-on vs TLB-off equivalence.
//!
//! The software TLB (see `flexos_machine::tlb`) must be invisible to
//! everything except host wall-clock time: same results, same faults,
//! same simulated cycle counts, no matter how map/unmap/retag/PKRU
//! operations interleave with accesses. These tests drive a TLB-enabled
//! machine and a TLB-disabled reference machine through identical
//! operation sequences and require them to agree step by step.

use flexos_machine::{
    Addr, Fault, Machine, MachineConfig, PageFlags, Pkru, ProtKey, VcpuId, VmId, PAGE_SIZE,
};
use proptest::prelude::*;

/// Arena: one region of this many pages allocated up front in both
/// machines; all random accesses land inside (or just past) it.
const ARENA_PAGES: u64 = 8;

fn boot(tlb_enabled: bool) -> (Machine, Addr) {
    let mut m = Machine::new(MachineConfig {
        tlb_enabled,
        ..Default::default()
    });
    let base = m
        .alloc_region(VmId(0), ARENA_PAGES * PAGE_SIZE, ProtKey(1), PageFlags::RW)
        .unwrap();
    (m, base)
}

/// One step of the random program. Offsets are wrapped into (a bit past)
/// the arena so some accesses fault on unmapped pages.
#[derive(Debug, Clone)]
enum Op {
    Read {
        off: u64,
        len: u64,
    },
    Write {
        off: u64,
        len: u64,
        byte: u8,
    },
    Fill {
        off: u64,
        len: u64,
        byte: u8,
    },
    Copy {
        dst: u64,
        src: u64,
        len: u64,
    },
    Unmap {
        page: u64,
        pages: u64,
    },
    Retag {
        page: u64,
        pages: u64,
        key: u8,
    },
    Wrpkru {
        allowed: Vec<u8>,
        read_only: Vec<u8>,
    },
    Seal,
}

fn arb_op() -> impl Strategy<Value = Op> {
    let span = (ARENA_PAGES + 2) * PAGE_SIZE;
    prop_oneof![
        4 => (0..span, 0u64..300).prop_map(|(off, len)| Op::Read { off, len }),
        4 => (0..span, 0u64..300, any::<u8>())
            .prop_map(|(off, len, byte)| Op::Write { off, len, byte }),
        2 => (0..span, 0u64..300, any::<u8>())
            .prop_map(|(off, len, byte)| Op::Fill { off, len, byte }),
        2 => (0..span, 0..span, 0u64..300)
            .prop_map(|(dst, src, len)| Op::Copy { dst, src, len }),
        2 => (0..ARENA_PAGES + 2, 1u64..3).prop_map(|(page, pages)| Op::Unmap { page, pages }),
        2 => (0..ARENA_PAGES + 2, 1u64..3, 0u8..16)
            .prop_map(|(page, pages, key)| Op::Retag { page, pages, key }),
        2 => (
            prop::collection::vec(0u8..16, 1..4),
            prop::collection::vec(0u8..16, 0..3)
        )
            .prop_map(|(allowed, read_only)| Op::Wrpkru { allowed, read_only }),
        1 => Just(Op::Seal),
    ]
}

/// Applies `op` to `m` and returns a comparable outcome (the data read
/// plus the `Result`).
fn apply(m: &mut Machine, base: Addr, op: &Op) -> (Vec<u8>, Result<(), Fault>) {
    let v = VcpuId(0);
    match op {
        Op::Read { off, len } => {
            let mut buf = vec![0u8; *len as usize];
            let r = m.read(v, Addr(base.0 + off), &mut buf);
            (buf, r)
        }
        Op::Write { off, len, byte } => {
            let buf = vec![*byte; *len as usize];
            (Vec::new(), m.write(v, Addr(base.0 + off), &buf))
        }
        Op::Fill { off, len, byte } => (Vec::new(), m.fill(v, Addr(base.0 + off), *len, *byte)),
        Op::Copy { dst, src, len } => (
            Vec::new(),
            m.copy(v, Addr(base.0 + dst), Addr(base.0 + src), *len),
        ),
        Op::Unmap { page, pages } => (
            Vec::new(),
            m.unmap_region(VmId(0), Addr(base.0 + page * PAGE_SIZE), pages * PAGE_SIZE),
        ),
        Op::Retag { page, pages, key } => (
            Vec::new(),
            m.set_region_key(
                VmId(0),
                Addr(base.0 + page * PAGE_SIZE),
                pages * PAGE_SIZE,
                ProtKey(*key),
            ),
        ),
        Op::Wrpkru { allowed, read_only } => {
            // Key 0 stays allowed so the test itself is never locked out.
            let mut a: Vec<ProtKey> = allowed.iter().map(|&k| ProtKey(k)).collect();
            a.push(ProtKey(0));
            let ro: Vec<ProtKey> = read_only.iter().map(|&k| ProtKey(k)).collect();
            let tok = m.gate_token();
            (
                Vec::new(),
                m.wrpkru(v, Pkru::deny_all_except(&a, &ro), Some(tok)),
            )
        }
        Op::Seal => {
            m.seal_page_tables();
            (Vec::new(), Ok(()))
        }
    }
}

proptest! {
    /// Random interleavings of reads/writes/fills/copies with
    /// unmap/retag/PKRU-write/seal produce identical outcomes, identical
    /// fault traces and identical cycle counts with the TLB on and off.
    #[test]
    fn tlb_is_semantically_invisible(ops in prop::collection::vec(arb_op(), 1..60)) {
        let (mut on, base_on) = boot(true);
        let (mut off, base_off) = boot(false);
        prop_assert_eq!(base_on, base_off);
        for op in &ops {
            let a = apply(&mut on, base_on, op);
            let b = apply(&mut off, base_off, op);
            prop_assert_eq!(&a, &b, "divergent outcome on {:?}", op);
            prop_assert_eq!(on.clock().cycles(), off.clock().cycles(),
                            "cycle divergence after {:?}", op);
        }
        prop_assert_eq!(on.fault_trace().total(), off.fault_trace().total());
        // The TLB-off machine never consults the cache.
        prop_assert_eq!(off.tlb_trace().hits() + off.tlb_trace().misses(), 0);
    }
}

// ---- directed invalidation tests ---------------------------------------

#[test]
fn unmap_invalidates_stale_tlb_entries() {
    let (mut m, base) = boot(true);
    m.write(VcpuId(0), base, b"warm").unwrap(); // fills the TLB
    let mut buf = [0u8; 4];
    m.read(VcpuId(0), base, &mut buf).unwrap();
    assert!(m.tlb_trace().hits() > 0, "second access should hit");
    m.unmap_region(VmId(0), base, PAGE_SIZE).unwrap();
    // A cached translation must not let us read through the dead mapping.
    assert!(matches!(
        m.read(VcpuId(0), base, &mut buf),
        Err(Fault::PageNotPresent { .. })
    ));
}

#[test]
fn retag_invalidates_stale_tlb_entries() {
    let (mut m, base) = boot(true);
    m.write(VcpuId(0), base, b"warm").unwrap();
    // Re-tag the page with a key the PKRU will deny, then lock that key.
    m.set_region_key(VmId(0), base, PAGE_SIZE, ProtKey(4))
        .unwrap();
    let tok = m.gate_token();
    m.wrpkru(
        VcpuId(0),
        Pkru::deny_all_except(&[ProtKey(0), ProtKey(1)], &[]),
        Some(tok),
    )
    .unwrap();
    // A stale cached entry would still carry ProtKey(1) and allow this.
    assert!(matches!(
        m.write(VcpuId(0), base, b"x"),
        Err(Fault::PkeyViolation {
            key: ProtKey(4),
            ..
        })
    ));
}

#[test]
fn seal_invalidates_cached_translations() {
    let (mut m, base) = boot(true);
    let mut buf = [0u8; 4];
    m.read(VcpuId(0), base, &mut buf).unwrap();
    let misses_before = m.tlb_trace().misses();
    m.seal_page_tables();
    // Sealing bumps the generation: the next access must re-walk (miss),
    // not reuse the pre-seal entry.
    m.read(VcpuId(0), base, &mut buf).unwrap();
    assert!(m.tlb_trace().misses() > misses_before);
    assert!(m.tlb_trace().flushes() > 0);
}

#[test]
fn pkru_change_applies_on_next_access_without_flush() {
    let (mut m, base) = boot(true);
    let mut buf = [0u8; 4];
    m.read(VcpuId(0), base, &mut buf).unwrap(); // cache the translation
    let tok = m.gate_token();
    m.wrpkru(
        VcpuId(0),
        Pkru::deny_all_except(&[ProtKey(0)], &[]),
        Some(tok),
    )
    .unwrap();
    let hits_before = m.tlb_trace().hits();
    // The very next access faults even though the translation is a TLB
    // hit: permissions are checked per access, never cached.
    assert!(matches!(
        m.read(VcpuId(0), base, &mut buf),
        Err(Fault::PkeyViolation {
            key: ProtKey(1),
            ..
        })
    ));
    assert_eq!(m.tlb_trace().hits(), hits_before + 1);
}
