//! Property tests for the simulated machine's protection semantics.

use flexos_machine::{Access, Addr, Machine, PageFlags, Pkru, ProtKey, VcpuId, VmId, PAGE_SIZE};
use proptest::prelude::*;

fn arb_pkru() -> impl Strategy<Value = Pkru> {
    any::<u32>().prop_map(Pkru)
}

fn arb_key() -> impl Strategy<Value = ProtKey> {
    (0u8..16).prop_map(ProtKey)
}

fn arb_access() -> impl Strategy<Value = Access> {
    prop_oneof![Just(Access::Read), Just(Access::Write)]
}

proptest! {
    /// If `a` permits everything `b` permits (per the lattice helper),
    /// then for every key/access, `b` permitting implies `a` permitting.
    #[test]
    fn pkru_permissiveness_is_sound(a in arb_pkru(), b in arb_pkru(),
                                    key in arb_key(), access in arb_access()) {
        if a.at_least_as_permissive_as(b) && b.permits(key, access) {
            prop_assert!(a.permits(key, access));
        }
    }

    /// Write permission never exceeds read permission (AD dominates WD).
    #[test]
    fn pkru_write_implies_read(p in arb_pkru(), key in arb_key()) {
        if p.permits(key, Access::Write) {
            prop_assert!(p.permits(key, Access::Read));
        }
    }

    /// `deny_all_except` grants exactly what it is told to.
    #[test]
    fn deny_all_except_is_exact(allowed in prop::collection::btree_set(0u8..16, 0..4),
                                read_only in prop::collection::btree_set(0u8..16, 0..4)) {
        let allowed: Vec<ProtKey> = allowed.iter().map(|&k| ProtKey(k)).collect();
        let ro: Vec<ProtKey> = read_only.iter()
            .filter(|k| !allowed.iter().any(|a| a.0 == **k))
            .map(|&k| ProtKey(k))
            .collect();
        let p = Pkru::deny_all_except(&allowed, &ro);
        for k in 0..16u8 {
            let key = ProtKey(k);
            let in_allowed = allowed.contains(&key);
            let in_ro = ro.contains(&key);
            prop_assert_eq!(p.permits(key, Access::Write), in_allowed);
            prop_assert_eq!(p.permits(key, Access::Read), in_allowed || in_ro);
        }
    }

    /// Data written through the machine is read back identically across
    /// arbitrary offsets and lengths (incl. page straddles), and a write
    /// denied by PKRU leaves memory untouched.
    #[test]
    fn machine_write_read_round_trip(off in 0u64..(3 * PAGE_SIZE), data in prop::collection::vec(any::<u8>(), 1..256)) {
        let mut m = Machine::with_defaults();
        let base = m.alloc_region(VmId(0), 4 * PAGE_SIZE, ProtKey(1), PageFlags::RW).unwrap();
        let at = Addr(base.0 + off);
        m.write(VcpuId(0), at, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        m.read(VcpuId(0), at, &mut back).unwrap();
        prop_assert_eq!(&back, &data);

        // Lock the region out and verify the write is rejected and
        // nothing changed.
        let tok = m.gate_token();
        m.wrpkru(VcpuId(0), Pkru::deny_all_except(&[ProtKey(0)], &[ProtKey(1)]), Some(tok)).unwrap();
        let attack = vec![0xFFu8; data.len()];
        prop_assert!(m.write(VcpuId(0), at, &attack).is_err());
        let mut after = vec![0u8; data.len()];
        m.read(VcpuId(0), at, &mut after).unwrap();
        prop_assert_eq!(&after, &data);
    }

    /// Cycle accounting is monotone and exact for memory traffic.
    #[test]
    fn clock_charges_are_monotone(lens in prop::collection::vec(1u64..2048, 1..20)) {
        let mut m = Machine::with_defaults();
        let base = m.alloc_region(VmId(0), 1 << 20, ProtKey(0), PageFlags::RW).unwrap();
        let mut last = m.clock().cycles();
        for (i, &len) in lens.iter().enumerate() {
            let buf = vec![0u8; len as usize];
            m.write(VcpuId(0), Addr(base.0 + (i as u64 * 4096) % (1 << 19)), &buf).unwrap();
            let now = m.clock().cycles();
            let expected = m.costs().mem_access + m.costs().copy_cost(len);
            prop_assert_eq!(now - last, expected);
            last = now;
        }
    }
}
