//! Cycle-accurate simulated clock and the calibrated cost table.
//!
//! All FlexOS-rs performance numbers are derived from a deterministic cycle
//! counter rather than wall-clock time: every modelled operation (memory
//! access, gate crossing, context switch, `wrpkru`, inter-VM notification,
//! hardening check, …) charges a cost from a [`CostTable`]. Throughput is
//! then `bits / (cycles / f)` with `f` the simulated core frequency.
//!
//! The default table is calibrated against the paper's testbed (Intel Xeon
//! Silver 4110 @ 2.1 GHz) and the published micro-costs: the C scheduler's
//! 76.6 ns context switch, the verified scheduler's 218.6 ns, `wrpkru`
//! latencies reported by ERIM/Hodor, and inter-VM notification costs in the
//! thousands of cycles. Benchmarks in `flexos-bench` sweep these constants
//! (ablation) to show the paper's conclusions are robust to calibration.

/// Simulated core frequency in Hz (Xeon Silver 4110: 2.1 GHz).
pub const CPU_FREQ_HZ: u64 = 2_100_000_000;

/// A monotonically increasing cycle counter.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    cycles: u64,
}

impl Clock {
    /// Creates a clock at cycle zero.
    pub fn new() -> Self {
        Self { cycles: 0 }
    }

    /// Advances the clock by `cycles`.
    #[inline]
    pub fn advance(&mut self, cycles: u64) {
        self.cycles = self.cycles.saturating_add(cycles);
    }

    /// Current cycle count.
    #[inline]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Current simulated time in nanoseconds.
    #[inline]
    pub fn nanos(&self) -> f64 {
        cycles_to_nanos(self.cycles)
    }

    /// Current simulated time in seconds.
    #[inline]
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / CPU_FREQ_HZ as f64
    }
}

/// Converts a cycle count to nanoseconds at [`CPU_FREQ_HZ`].
#[inline]
pub fn cycles_to_nanos(cycles: u64) -> f64 {
    cycles as f64 * 1e9 / CPU_FREQ_HZ as f64
}

/// Converts nanoseconds to cycles at [`CPU_FREQ_HZ`] (rounded).
#[inline]
pub fn nanos_to_cycles(nanos: f64) -> u64 {
    (nanos * CPU_FREQ_HZ as f64 / 1e9).round() as u64
}

/// Computes throughput in megabits per second for `bytes` moved in `cycles`.
///
/// Returns 0.0 when no cycles have elapsed.
pub fn throughput_mbps(bytes: u64, cycles: u64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    let seconds = cycles as f64 / CPU_FREQ_HZ as f64;
    (bytes as f64 * 8.0) / seconds / 1e6
}

/// Calibrated per-operation cycle costs for the simulated machine.
///
/// Every field is a plain `u64` so benchmark ablations can sweep them.
/// The `Default` impl is the calibration used to regenerate the paper's
/// tables and figures; the per-field docs state the calibration source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostTable {
    /// Cost of a plain (same-compartment) function call, incl. spill/reload.
    /// ~2–3 ns on modern x86.
    pub func_call: u64,
    /// Fixed cost of one modelled memory access (load or store header cost,
    /// amortized L1/L2 mix). Charged once per `read`/`write` call.
    pub mem_access: u64,
    /// Per-byte cost of bulk copies (memcpy-style streaming). 0.25 cy/B
    /// ≈ 8.4 GB/s single-threaded copy bandwidth at 2.1 GHz — matches a
    /// Xeon Silver class core touching both source and destination.
    /// Stored as *cycles per 4 bytes* to stay integral: 1 cy / 4 B.
    pub copy_per_4bytes: u64,
    /// Cost of the `wrpkru` instruction (ERIM measures 11–26 ns end-to-end
    /// for a domain switch of two `wrpkru`s; we charge 30 cy ≈ 14 ns each).
    pub wrpkru: u64,
    /// Extra cost of the runtime PKRU-write authorization check (Hodor-style
    /// runtime checking of `wrpkru` call sites).
    pub pkru_guard_check: u64,
    /// Register clearing + transfer bookkeeping in an MPK gate crossing
    /// (beyond the two `wrpkru`s).
    pub mpk_gate_overhead: u64,
    /// Stack-switch cost in the MPK switched-stack gate (Hodor-style):
    /// switching RSP, copying the spilled frame header.
    pub stack_switch: u64,
    /// One-way inter-VM notification (hypercall + event-channel + vmexit +
    /// schedule-in on the peer vCPU). Order of microseconds per round trip:
    /// 4 500 cy ≈ 2.1 µs one-way.
    pub vm_notify: u64,
    /// Fixed cost of marshalling one RPC argument frame into the shared
    /// heap (descriptor writes, fences).
    pub vm_rpc_marshal: u64,
    /// Baseline cooperative context switch (save/restore callee-saved regs,
    /// switch stacks): 76.6 ns ⇒ 161 cy (paper §4, C scheduler).
    pub ctx_switch: u64,
    /// Additional cost of the verified scheduler's contract checks per
    /// switch: 218.6 ns − 76.6 ns ⇒ 298 cy (paper §4).
    pub verified_contract_check: u64,
    /// Per-access ASAN shadow-memory check (load shadow byte, compare).
    pub asan_check: u64,
    /// Per-malloc/free ASAN bookkeeping (poison redzones, quarantine).
    pub asan_alloc: u64,
    /// Per-indirect-call CFI target validation.
    pub cfi_check: u64,
    /// Per-write DFI check (reaching-definition id compare).
    pub dfi_check: u64,
    /// Stack canary write+check per protected frame.
    pub canary: u64,
    /// Per-arithmetic-op UBSAN check (overflow/shift/bounds).
    pub ubsan_check: u64,
    /// SafeStack: extra unsafe-stack pointer maintenance per frame.
    pub safestack: u64,
    /// Per-packet processing in the NIC driver (descriptor, doorbell).
    pub nic_per_packet: u64,
    /// Per-packet protocol processing in the network stack (header parse,
    /// checksum over header, demux, queue).
    pub stack_per_packet: u64,
    /// Per-socket-call fixed cost in the socket layer (locking, bookkeeping).
    pub socket_call: u64,
    /// Per-request application-level parse cost (e.g. RESP command parse).
    pub app_request: u64,
    /// Hypervisor tax per packet on the slower hypervisor configuration
    /// (the paper's Xen numbers are lower than KVM because Unikraft was not
    /// optimized for Xen; modelled as extra per-packet cycles).
    pub xen_packet_tax: u64,
    /// Per-allocation cost of the baseline (uninstrumented) allocator.
    pub alloc_op: u64,
    /// libc's user-space copy cost, in cycles per 4 bytes: the
    /// `memcpy` newlib performs between socket buffers and application
    /// memory. Separate from `copy_per_4bytes` because Table 1's SH
    /// experiment taxes *libc's* copies specifically.
    pub libc_copy_per_4bytes: u64,
    /// Percent overhead the GCC hardening set adds to libc's copy/alloc
    /// work (ASAN's interceptors on memcpy/malloc-heavy code run 3-4x).
    /// Calibrated against Table 1's LibC row (2.35x whole-system
    /// slowdown with libc's share of the iperf data path).
    pub sh_asan_memcpy_pct: u64,
    /// Percent overhead the GCC hardening set adds to the network
    /// stack's *per-recv socket-layer* work (lock+pbuf-chain handling is
    /// allocation-heavy: KASAN ≈ 3.4x there). Drives Figure 3's SH curve
    /// at small buffers.
    pub sh_net_socket_pct: u64,
    /// Flat per-packet cycles KASAN adds to the stack's protocol
    /// processing (pbuf alloc instrumentation, header redzone checks).
    /// Small — lwIP never touches payload bytes — which is why Table 1's
    /// NW-stack row is only ~6%.
    pub sh_net_per_packet: u64,
    /// Per-access CHERI capability check (tag + bounds + perms — done by
    /// dedicated hardware in parallel with the access; nearly free).
    pub cap_check: u64,
    /// One-way CHERI domain transition (sealed-capability invoke): no
    /// PKRU serialization, no TLB work — cheaper than an MPK crossing
    /// (CompartOS/CheriOS report tens of cycles).
    pub cheri_gate: u64,
    /// Super-linear SH composition: each *additional* hardened component
    /// inflates every component's SH overhead by this percentage,
    /// modelling the shadow-memory/redzone cache-footprint pressure that
    /// makes the paper's whole-system SH (6x) far exceed the sum of its
    /// per-component overheads (~1%+6%+2.3x+18%).
    pub sh_synergy_pct: u64,
}

impl Default for CostTable {
    fn default() -> Self {
        Self {
            func_call: 5,
            mem_access: 4,
            copy_per_4bytes: 1,
            wrpkru: 30,
            pkru_guard_check: 15,
            mpk_gate_overhead: 90,
            stack_switch: 180,
            vm_notify: 3_500,
            vm_rpc_marshal: 120,
            ctx_switch: 161,
            verified_contract_check: 298,
            asan_check: 2,
            asan_alloc: 90,
            cfi_check: 4,
            dfi_check: 3,
            canary: 6,
            ubsan_check: 2,
            safestack: 8,
            nic_per_packet: 350,
            stack_per_packet: 600,
            socket_call: 250,
            app_request: 200,
            xen_packet_tax: 900,
            alloc_op: 60,
            libc_copy_per_4bytes: 4,
            sh_asan_memcpy_pct: 450,
            sh_net_socket_pct: 240,
            sh_net_per_packet: 80,
            cap_check: 1,
            cheri_gate: 60,
            sh_synergy_pct: 50,
        }
    }
}

impl CostTable {
    /// Cost in cycles of copying `bytes` bytes (bulk streaming copy).
    #[inline]
    pub fn copy_cost(&self, bytes: u64) -> u64 {
        // One `copy_per_4bytes` charge per started 4-byte word.
        bytes.div_ceil(4) * self.copy_per_4bytes
    }

    /// One-way cost of an MPK gate crossing with a shared stack
    /// (ERIM-style): one `wrpkru` plus call-site validation and register
    /// clearing. A round trip costs twice this (enter + exit).
    #[inline]
    pub fn mpk_shared_gate(&self) -> u64 {
        self.wrpkru + self.pkru_guard_check + self.mpk_gate_overhead
    }

    /// One-way cost of an MPK gate crossing with switched stacks
    /// (Hodor-style): shared-gate cost + stack switch + argument copy
    /// header. Argument bytes are charged separately via [`copy_cost`].
    ///
    /// [`copy_cost`]: CostTable::copy_cost
    #[inline]
    pub fn mpk_switched_gate(&self) -> u64 {
        self.mpk_shared_gate() + self.stack_switch
    }

    /// One-way cost of a VM RPC crossing: notification + marshalling.
    #[inline]
    pub fn vm_rpc_gate(&self) -> u64 {
        self.vm_notify + self.vm_rpc_marshal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_and_converts() {
        let mut c = Clock::new();
        assert_eq!(c.cycles(), 0);
        c.advance(2_100_000_000);
        assert_eq!(c.cycles(), CPU_FREQ_HZ);
        assert!((c.seconds() - 1.0).abs() < 1e-12);
        assert!((c.nanos() - 1e9).abs() < 1e-3);
    }

    #[test]
    fn clock_saturates_instead_of_overflowing() {
        let mut c = Clock::new();
        c.advance(u64::MAX);
        c.advance(10);
        assert_eq!(c.cycles(), u64::MAX);
    }

    #[test]
    fn nanos_cycles_round_trip() {
        let cy = nanos_to_cycles(76.6);
        assert_eq!(cy, 161); // The paper's C scheduler context switch.
        let cy = nanos_to_cycles(218.6);
        assert_eq!(cy, 459); // The verified scheduler.
        assert!((cycles_to_nanos(161) - 76.6).abs() < 0.3);
    }

    #[test]
    fn throughput_is_bits_over_time() {
        // 1 GiB in one simulated second.
        let mbps = throughput_mbps(1 << 30, CPU_FREQ_HZ);
        assert!((mbps - (1u64 << 30) as f64 * 8.0 / 1e6).abs() < 1e-6);
        assert_eq!(throughput_mbps(100, 0), 0.0);
    }

    #[test]
    fn default_costs_reproduce_paper_micro_numbers() {
        let t = CostTable::default();
        // Context switch: 161 cy = 76.6 ns; verified adds 298 cy => 218.6 ns.
        assert!((cycles_to_nanos(t.ctx_switch) - 76.6).abs() < 0.5);
        assert!((cycles_to_nanos(t.ctx_switch + t.verified_contract_check) - 218.6).abs() < 0.5);
        // Gate ordering: direct < MPK shared < MPK switched << VM RPC.
        assert!(t.func_call < t.mpk_shared_gate());
        assert!(t.mpk_shared_gate() < t.mpk_switched_gate());
        assert!(t.mpk_switched_gate() * 10 < t.vm_rpc_gate());
        // MPK round trip lands in the ERIM-reported range (11–260 ns).
        let rt_ns = cycles_to_nanos(2 * t.mpk_shared_gate());
        assert!(rt_ns > 11.0 && rt_ns < 260.0);
    }

    #[test]
    fn copy_cost_rounds_to_words() {
        let t = CostTable::default();
        assert_eq!(t.copy_cost(0), 0);
        assert_eq!(t.copy_cost(1), 1);
        assert_eq!(t.copy_cost(4), 1);
        assert_eq!(t.copy_cost(5), 2);
        assert_eq!(t.copy_cost(4096), 1024);
    }
}
