//! CHERI-style capabilities.
//!
//! The paper motivates FlexOS with heterogeneous protection hardware —
//! "certain primitives are hardware-dependent (e.g. Intel Memory
//! Protection Keys – MPK)" with CHERI cited as the other emerging
//! example (§1, \[55\]). This module models the CHERI primitives a
//! capability backend needs:
//!
//! * a **capability** is an unforgeable, bounds- and permission-carrying
//!   pointer ([`Capability`]);
//! * capabilities can only be **derived downward** (narrower bounds,
//!   fewer permissions — provenance is preserved, privilege only
//!   shrinks);
//! * capabilities can be **sealed** with an object type, making them
//!   immutable and non-dereferenceable until the matching unseal — the
//!   CHERI `CSeal`/`CInvoke` domain-transition idiom FlexOS-style gates
//!   build on.
//!
//! Dereferences go through [`Machine::read_via_cap`] /
//! [`Machine::write_via_cap`](crate::machine::Machine), which enforce
//! tag, seal, bounds and permissions before touching memory.

use crate::addr::Addr;
use crate::fault::Fault;

/// Capability permissions (the subset FlexOS gates need).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapPerms {
    /// May load through this capability.
    pub read: bool,
    /// May store through this capability.
    pub write: bool,
}

impl CapPerms {
    /// Read & write.
    pub const RW: CapPerms = CapPerms {
        read: true,
        write: true,
    };
    /// Read-only.
    pub const RO: CapPerms = CapPerms {
        read: true,
        write: false,
    };

    /// Whether `self` grants no more than `other`.
    pub fn subset_of(self, other: CapPerms) -> bool {
        (!self.read || other.read) && (!self.write || other.write)
    }
}

/// An object type for sealing (the compartment identity in gate usage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OType(pub u32);

/// A CHERI-style capability over `[base, base+len)`.
///
/// Constructed only via [`Capability::root`] (the boot-time authority a
/// backend holds) and narrowed via [`Capability::derive`]; there is no
/// way to widen one — modelling hardware tag-protected unforgeability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capability {
    base: Addr,
    len: u64,
    perms: CapPerms,
    sealed: Option<OType>,
}

impl Capability {
    /// Mints a root capability. This is the privileged boot-time
    /// operation (the almighty initial capability register state);
    /// everything else derives from it.
    pub fn root(base: Addr, len: u64) -> Self {
        Self {
            base,
            len,
            perms: CapPerms::RW,
            sealed: None,
        }
    }

    /// Base address.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Permissions.
    pub fn perms(&self) -> CapPerms {
        self.perms
    }

    /// Whether the capability is sealed.
    pub fn is_sealed(&self) -> bool {
        self.sealed.is_some()
    }

    /// Derives a narrower capability: bounds within ours, permissions no
    /// greater, unsealed input only. Monotone privilege reduction.
    pub fn derive(&self, offset: u64, len: u64, perms: CapPerms) -> Result<Capability, Fault> {
        if self.is_sealed() {
            return Err(Fault::HardeningAbort {
                mechanism: "cheri",
                reason: "derive from sealed capability".into(),
            });
        }
        let end = offset.checked_add(len);
        if end.is_none() || end.expect("checked") > self.len || !perms.subset_of(self.perms) {
            return Err(Fault::HardeningAbort {
                mechanism: "cheri",
                reason: format!(
                    "monotonicity violation: derive [{offset}+{len}) perms {perms:?} from \
                     [0+{}) perms {:?}",
                    self.len, self.perms
                ),
            });
        }
        Ok(Capability {
            base: Addr(self.base.0 + offset),
            len,
            perms,
            sealed: None,
        })
    }

    /// Seals with `otype` (gate construction). Sealed capabilities are
    /// opaque: no deref, no derive, until unsealed with the same type.
    pub fn seal(&self, otype: OType) -> Result<Capability, Fault> {
        if self.is_sealed() {
            return Err(Fault::HardeningAbort {
                mechanism: "cheri",
                reason: "double seal".into(),
            });
        }
        Ok(Capability {
            sealed: Some(otype),
            ..*self
        })
    }

    /// Unseals with the matching object type (the `CInvoke` half).
    pub fn unseal(&self, otype: OType) -> Result<Capability, Fault> {
        match self.sealed {
            Some(t) if t == otype => Ok(Capability {
                sealed: None,
                ..*self
            }),
            Some(_) => Err(Fault::HardeningAbort {
                mechanism: "cheri",
                reason: "unseal with wrong object type".into(),
            }),
            None => Err(Fault::HardeningAbort {
                mechanism: "cheri",
                reason: "unseal of unsealed capability".into(),
            }),
        }
    }

    /// Validates an access of `len` bytes at `offset`; returns the
    /// concrete address on success.
    pub fn check_access(&self, offset: u64, len: u64, write: bool) -> Result<Addr, Fault> {
        if self.is_sealed() {
            return Err(Fault::HardeningAbort {
                mechanism: "cheri",
                reason: "dereference of sealed capability".into(),
            });
        }
        if (write && !self.perms.write) || (!write && !self.perms.read) {
            return Err(Fault::HardeningAbort {
                mechanism: "cheri",
                reason: format!("permission violation ({:?})", self.perms),
            });
        }
        let end = offset.checked_add(len.max(1));
        if end.is_none() || end.expect("checked") > self.len {
            return Err(Fault::HardeningAbort {
                mechanism: "cheri",
                reason: format!("bounds violation: [{offset}+{len}) of {}", self.len),
            });
        }
        Ok(Addr(self.base.0 + offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> Capability {
        Capability::root(Addr(0x1000), 0x1000)
    }

    #[test]
    fn derive_narrows_bounds_and_perms() {
        let c = root().derive(0x100, 0x200, CapPerms::RO).unwrap();
        assert_eq!(c.base(), Addr(0x1100));
        assert_eq!(c.len(), 0x200);
        assert!(!c.perms().write);
    }

    #[test]
    fn derive_cannot_widen() {
        let narrow = root().derive(0, 0x100, CapPerms::RO).unwrap();
        // Longer than parent: refused.
        assert!(narrow.derive(0, 0x200, CapPerms::RO).is_err());
        // More permissions than parent: refused.
        assert!(narrow.derive(0, 0x50, CapPerms::RW).is_err());
        // Out-of-bounds offset: refused (including overflow).
        assert!(root().derive(0xF00, 0x200, CapPerms::RO).is_err());
        assert!(root().derive(u64::MAX, 2, CapPerms::RO).is_err());
    }

    #[test]
    fn access_checks_bounds_perms_and_seal() {
        let c = root().derive(0, 0x100, CapPerms::RO).unwrap();
        assert_eq!(c.check_access(0x10, 8, false).unwrap(), Addr(0x1010));
        assert!(c.check_access(0x10, 8, true).is_err()); // no write perm
        assert!(c.check_access(0xFC, 8, false).is_err()); // spills past end
        let sealed = c.seal(OType(7)).unwrap();
        assert!(sealed.check_access(0, 1, false).is_err());
    }

    #[test]
    fn seal_unseal_round_trip_requires_matching_otype() {
        let c = root();
        let sealed = c.seal(OType(3)).unwrap();
        assert!(sealed.is_sealed());
        assert!(sealed.derive(0, 1, CapPerms::RO).is_err());
        assert!(sealed.unseal(OType(4)).is_err());
        let back = sealed.unseal(OType(3)).unwrap();
        assert_eq!(back, c);
        assert!(c.unseal(OType(3)).is_err()); // unsealed input
        assert!(sealed.seal(OType(5)).is_err()); // double seal
    }
}
