//! Memory Protection Keys: `ProtKey`, the PKRU register, and access checks.
//!
//! This module models Intel MPK semantics as specified in the SDM Vol. 3A
//! §4.6.2 (the paper's reference \[1\]):
//!
//! * every user page carries a 4-bit protection key (16 keys);
//! * the per-thread `PKRU` register holds two bits per key — **AD** (access
//!   disable) and **WD** (write disable);
//! * a read is allowed iff `AD(key) == 0`; a write additionally requires
//!   `WD(key) == 0`;
//! * instruction fetches are *not* checked by MPK (which is why FlexOS pairs
//!   MPK with CFI when control-flow integrity is required).

use core::fmt;

/// Number of protection keys provided by the hardware (Intel MPK: 16).
pub const NUM_KEYS: u8 = 16;

/// The key assigned by default to pages not explicitly tagged: key 0 is
/// conventionally the "default" domain accessible to everyone.
pub const DEFAULT_KEY: ProtKey = ProtKey(0);

/// A memory protection key (0..16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProtKey(pub u8);

impl ProtKey {
    /// Creates a key, returning `None` if `k` is out of the hardware range.
    pub fn new(k: u8) -> Option<Self> {
        (k < NUM_KEYS).then_some(ProtKey(k))
    }
}

impl fmt::Display for ProtKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkey{}", self.0)
    }
}

/// The kind of memory access being checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// A data load.
    Read,
    /// A data store.
    Write,
}

/// The per-thread PKRU register: bits `2k` (AD) and `2k+1` (WD) per key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pkru(pub u32);

impl Default for Pkru {
    /// The hardware reset value denies nothing; FlexOS compartments are
    /// instead initialized via [`Pkru::deny_all_except`].
    fn default() -> Self {
        Pkru(0)
    }
}

impl Pkru {
    /// A PKRU value that permits every access to every key.
    pub const ALLOW_ALL: Pkru = Pkru(0);

    /// Returns `true` if the access-disable bit is set for `key`.
    #[inline]
    pub fn access_disabled(self, key: ProtKey) -> bool {
        self.0 & (1 << (2 * key.0)) != 0
    }

    /// Returns `true` if the write-disable bit is set for `key`.
    #[inline]
    pub fn write_disabled(self, key: ProtKey) -> bool {
        self.0 & (1 << (2 * key.0 + 1)) != 0
    }

    /// Checks whether `access` to a page tagged `key` is permitted.
    #[inline]
    pub fn permits(self, key: ProtKey, access: Access) -> bool {
        match access {
            Access::Read => !self.access_disabled(key),
            Access::Write => !self.access_disabled(key) && !self.write_disabled(key),
        }
    }

    /// Returns a PKRU with all access to `key` disabled.
    #[must_use]
    pub fn deny(self, key: ProtKey) -> Pkru {
        Pkru(self.0 | (0b11 << (2 * key.0)))
    }

    /// Returns a PKRU allowing full access to `key`.
    #[must_use]
    pub fn allow(self, key: ProtKey) -> Pkru {
        Pkru(self.0 & !(0b11 << (2 * key.0)))
    }

    /// Returns a PKRU allowing reads but denying writes to `key`.
    #[must_use]
    pub fn allow_read_only(self, key: ProtKey) -> Pkru {
        Pkru((self.0 & !(0b11 << (2 * key.0))) | (0b10 << (2 * key.0)))
    }

    /// Builds the PKRU for a compartment: full access to the keys in
    /// `allowed`, read-only access to the keys in `read_only`, everything
    /// else denied. Key 0 is included in `allowed` implicitly only if
    /// listed — FlexOS uses key 0 for the shared domain and passes it
    /// explicitly.
    pub fn deny_all_except(allowed: &[ProtKey], read_only: &[ProtKey]) -> Pkru {
        let mut pkru = Pkru(0);
        for k in 0..NUM_KEYS {
            pkru = pkru.deny(ProtKey(k));
        }
        for &k in read_only {
            pkru = pkru.allow_read_only(k);
        }
        for &k in allowed {
            pkru = pkru.allow(k);
        }
        pkru
    }

    /// Returns `true` if `self` permits every access that `other` permits
    /// (i.e. `self` is at least as permissive).
    pub fn at_least_as_permissive_as(self, other: Pkru) -> bool {
        for k in 0..NUM_KEYS {
            let key = ProtKey(k);
            for access in [Access::Read, Access::Write] {
                if other.permits(key, access) && !self.permits(key, access) {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for Pkru {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PKRU={:#010x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_constructor_validates_range() {
        assert!(ProtKey::new(0).is_some());
        assert!(ProtKey::new(15).is_some());
        assert!(ProtKey::new(16).is_none());
    }

    #[test]
    fn allow_all_permits_everything() {
        for k in 0..NUM_KEYS {
            assert!(Pkru::ALLOW_ALL.permits(ProtKey(k), Access::Read));
            assert!(Pkru::ALLOW_ALL.permits(ProtKey(k), Access::Write));
        }
    }

    #[test]
    fn deny_blocks_read_and_write() {
        let p = Pkru::ALLOW_ALL.deny(ProtKey(3));
        assert!(!p.permits(ProtKey(3), Access::Read));
        assert!(!p.permits(ProtKey(3), Access::Write));
        // Other keys untouched.
        assert!(p.permits(ProtKey(2), Access::Write));
    }

    #[test]
    fn read_only_blocks_only_writes() {
        let p = Pkru::ALLOW_ALL.allow_read_only(ProtKey(5));
        assert!(p.permits(ProtKey(5), Access::Read));
        assert!(!p.permits(ProtKey(5), Access::Write));
    }

    #[test]
    fn allow_clears_previous_denial() {
        let p = Pkru::ALLOW_ALL.deny(ProtKey(7)).allow(ProtKey(7));
        assert!(p.permits(ProtKey(7), Access::Write));
    }

    #[test]
    fn deny_all_except_builds_compartment_view() {
        let p = Pkru::deny_all_except(&[ProtKey(0), ProtKey(4)], &[ProtKey(9)]);
        assert!(p.permits(ProtKey(0), Access::Write));
        assert!(p.permits(ProtKey(4), Access::Write));
        assert!(p.permits(ProtKey(9), Access::Read));
        assert!(!p.permits(ProtKey(9), Access::Write));
        assert!(!p.permits(ProtKey(1), Access::Read));
        assert!(!p.permits(ProtKey(15), Access::Read));
    }

    #[test]
    fn permissiveness_partial_order() {
        let all = Pkru::ALLOW_ALL;
        let some = Pkru::deny_all_except(&[ProtKey(0)], &[]);
        assert!(all.at_least_as_permissive_as(some));
        assert!(!some.at_least_as_permissive_as(all));
        assert!(some.at_least_as_permissive_as(some));
    }

    #[test]
    fn pkru_bit_layout_matches_sdm() {
        // SDM: bit 2k = AD, bit 2k+1 = WD.
        let p = Pkru(0b01); // AD for key 0.
        assert!(p.access_disabled(ProtKey(0)));
        assert!(!p.write_disabled(ProtKey(0)));
        let p = Pkru(0b10); // WD for key 0.
        assert!(!p.access_disabled(ProtKey(0)));
        assert!(p.write_disabled(ProtKey(0)));
        assert!(p.permits(ProtKey(0), Access::Read));
        assert!(!p.permits(ProtKey(0), Access::Write));
    }
}
