//! Per-VM page tables: virtual page → physical frame + permissions + key.
//!
//! The table is sparse (a `BTreeMap` keyed by virtual page number). This
//! stands in for the x86-64 four-level structure: what matters for FlexOS
//! is *what the walk yields* — frame, writability, and the page's
//! protection key — not the radix layout.
//!
//! The MPK backend's trust argument (paper §3) hinges on who may edit this
//! structure: the memory manager's domain includes the page table, so the
//! MM must be trusted under MPK. The simulator enforces that by routing all
//! edits through [`PageTable`] methods that the machine only exposes to
//! holders of the MM capability (see `machine::Machine::map_page`).

use crate::addr::{Pfn, Vpn};
use crate::pkey::ProtKey;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Permissions and attributes of a mapped page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageFlags {
    /// Page may be written (hardware W bit).
    pub writable: bool,
}

impl PageFlags {
    /// Read-write mapping.
    pub const RW: PageFlags = PageFlags { writable: true };
    /// Read-only mapping.
    pub const RO: PageFlags = PageFlags { writable: false };
}

/// A page-table entry: the result of a successful walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageEntry {
    /// Backing physical frame.
    pub pfn: Pfn,
    /// Hardware permissions.
    pub flags: PageFlags,
    /// Protection key tagged on the page (MPK).
    pub key: ProtKey,
}

/// A sparse per-VM page table.
#[derive(Debug, Default)]
pub struct PageTable {
    entries: BTreeMap<u64, PageEntry>,
    /// When sealed, no further modifications are accepted (the paper's
    /// "page-table sealing" defense for PKRU integrity).
    sealed: bool,
    /// Bumped on every successful mutation (and on sealing). The
    /// machine's software TLB tags cached walk results with this
    /// counter, so any edit lazily invalidates every cached translation
    /// of the VM without an eager flush.
    ///
    /// Atomic since true SMP: the generation bump is the page table's
    /// *publication point*. Mutators bump with `Release` after the edit,
    /// TLB-tag readers load with `Acquire`, so a vCPU on another host
    /// thread that observes the new generation also observes the edit
    /// that caused it. (Mutation itself still goes through `&mut self` —
    /// the MM capability keeps edits exclusive; the atomic makes
    /// cross-thread *reads* of the counter well-defined.)
    generation: AtomicU64,
}

impl Clone for PageTable {
    fn clone(&self) -> Self {
        Self {
            entries: self.entries.clone(),
            sealed: self.sealed,
            generation: AtomicU64::new(self.generation.load(Ordering::Acquire)),
        }
    }
}

impl PageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Walks the table for `vpn`.
    #[inline]
    pub fn walk(&self, vpn: Vpn) -> Option<PageEntry> {
        self.entries.get(&vpn.0).copied()
    }

    /// Installs or replaces a mapping. Returns `false` (and does nothing)
    /// if the table is sealed.
    pub fn map(&mut self, vpn: Vpn, entry: PageEntry) -> bool {
        if self.sealed {
            return false;
        }
        self.entries.insert(vpn.0, entry);
        self.generation.fetch_add(1, Ordering::Release);
        true
    }

    /// Removes a mapping, returning it. Returns `None` if absent or sealed.
    pub fn unmap(&mut self, vpn: Vpn) -> Option<PageEntry> {
        if self.sealed {
            return None;
        }
        let e = self.entries.remove(&vpn.0);
        if e.is_some() {
            self.generation.fetch_add(1, Ordering::Release);
        }
        e
    }

    /// Re-tags an existing mapping with a new protection key.
    /// Returns `false` if the page is unmapped or the table is sealed.
    pub fn set_key(&mut self, vpn: Vpn, key: ProtKey) -> bool {
        if self.sealed {
            return false;
        }
        match self.entries.get_mut(&vpn.0) {
            Some(e) => {
                e.key = key;
                self.generation.fetch_add(1, Ordering::Release);
                true
            }
            None => false,
        }
    }

    /// Seals the table against further modification.
    pub fn seal(&mut self) {
        self.sealed = true;
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// The mutation counter TLB entries are tagged with.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Whether the table is sealed.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Number of mapped pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(vpn, entry)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, PageEntry)> + '_ {
        self.entries.iter().map(|(&v, &e)| (Vpn(v), e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pkey::DEFAULT_KEY;

    fn entry(pfn: u64) -> PageEntry {
        PageEntry {
            pfn: Pfn(pfn),
            flags: PageFlags::RW,
            key: DEFAULT_KEY,
        }
    }

    #[test]
    fn walk_finds_mapped_pages_only() {
        let mut pt = PageTable::new();
        assert!(pt.walk(Vpn(1)).is_none());
        pt.map(Vpn(1), entry(42));
        assert_eq!(pt.walk(Vpn(1)).unwrap().pfn, Pfn(42));
        assert!(pt.walk(Vpn(2)).is_none());
    }

    #[test]
    fn set_key_retags_mapped_pages() {
        let mut pt = PageTable::new();
        pt.map(Vpn(7), entry(1));
        assert!(pt.set_key(Vpn(7), ProtKey(5)));
        assert_eq!(pt.walk(Vpn(7)).unwrap().key, ProtKey(5));
        assert!(!pt.set_key(Vpn(8), ProtKey(5)));
    }

    #[test]
    fn sealing_blocks_all_mutation() {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), entry(1));
        pt.seal();
        assert!(!pt.map(Vpn(2), entry(2)));
        assert!(pt.unmap(Vpn(1)).is_none());
        assert!(!pt.set_key(Vpn(1), ProtKey(3)));
        // Existing mappings still readable.
        assert!(pt.walk(Vpn(1)).is_some());
    }

    #[test]
    fn unmap_returns_the_entry() {
        let mut pt = PageTable::new();
        pt.map(Vpn(3), entry(9));
        let e = pt.unmap(Vpn(3)).unwrap();
        assert_eq!(e.pfn, Pfn(9));
        assert!(pt.is_empty());
    }
}
