//! SMP execution modes for the simulated machine.
//!
//! True SMP splits into two regimes with very different contracts:
//!
//! * [`SmpMode::Deterministic`] — logical vCPUs time-slice **one host
//!   thread** under a canonical interleave (the SMP run queue in
//!   `flexos-kernel` pops the globally oldest ready thread, which equals
//!   single-queue round-robin order for any vCPU count). Everything
//!   derived from the simulated clock — figures, `--stats`, `--chaos` —
//!   is byte-identical across `--vcpus 1/2/4`, and the `smp-determinism`
//!   CI job `cmp`s exactly that. Crucially, this mode changes *neither*
//!   which machine vCPU an access is issued on (the TLB is per-vCPU and
//!   its hit counters are part of the compared output) *nor* the order
//!   of chaos draws.
//! * [`SmpMode::FreeRunning`] — one **real host thread per vCPU**, each
//!   driving its own machine shard, for wall-clock scaling benches
//!   (`smp-*` entries in BENCH_6.json). Simulated totals still aggregate
//!   deterministically; wall-clock numbers do not, by design, and are
//!   never reproducibility-gated.
//!
//! The [`SmpConfig::seed`] drives *free-running shard assignment only*
//! ([`SmpConfig::shard_of`]): a seed-dependent choice in deterministic
//! mode would make `--vcpus 2` diverge from `--vcpus 1`, which is exactly
//! what the determinism matrix forbids. Deterministic order is therefore
//! seed-independent by construction.

use crate::chaos::SplitMix64;

/// How parallel vCPUs execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SmpMode {
    /// Canonical interleave on one host thread; byte-identical output
    /// for any vCPU count.
    #[default]
    Deterministic,
    /// One host thread per vCPU; wall-clock scaling, aggregate-only
    /// determinism.
    FreeRunning,
}

impl SmpMode {
    /// Short name used in logs and bench labels.
    pub fn name(self) -> &'static str {
        match self {
            SmpMode::Deterministic => "deterministic",
            SmpMode::FreeRunning => "free-running",
        }
    }
}

/// SMP topology and mode for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmpConfig {
    /// Number of vCPUs (and, in free-running mode, host threads). Min 1.
    pub vcpus: usize,
    /// Execution regime.
    pub mode: SmpMode,
    /// Seed for free-running shard assignment. Ignored in deterministic
    /// mode (see module docs for why it must be).
    pub seed: u64,
}

impl Default for SmpConfig {
    fn default() -> Self {
        Self {
            vcpus: 1,
            mode: SmpMode::Deterministic,
            seed: 0,
        }
    }
}

impl SmpConfig {
    /// A deterministic-mode config with `vcpus` logical vCPUs.
    pub fn deterministic(vcpus: usize) -> Self {
        Self {
            vcpus: vcpus.max(1),
            ..Self::default()
        }
    }

    /// A free-running config with `vcpus` host threads and `seed` for
    /// shard assignment.
    pub fn free_running(vcpus: usize, seed: u64) -> Self {
        Self {
            vcpus: vcpus.max(1),
            mode: SmpMode::FreeRunning,
            seed,
        }
    }

    /// Whether this config runs multiple host threads.
    pub fn is_parallel(&self) -> bool {
        self.mode == SmpMode::FreeRunning && self.vcpus > 1
    }

    /// Deterministic (seeded) shard for work item `index` in free-running
    /// mode: a pure function of `(seed, index)`, so the *assignment* is
    /// reproducible even though host-thread timing is not. In
    /// deterministic mode everything lives on shard 0.
    pub fn shard_of(&self, index: u64) -> usize {
        match self.mode {
            SmpMode::Deterministic => 0,
            SmpMode::FreeRunning => {
                let mut rng = SplitMix64::new(self.seed ^ index.wrapping_mul(0x9e37_79b9));
                (rng.next_u64() % self.vcpus as u64) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    // Free-running mode hands each shard's `Machine` to its own host
    // thread; this fails to compile if any field regresses to a
    // non-Send type.
    fn assert_send<T: Send>() {}

    #[test]
    fn machine_is_send() {
        assert_send::<Machine>();
    }

    #[test]
    fn default_is_single_deterministic_vcpu() {
        let c = SmpConfig::default();
        assert_eq!(c.vcpus, 1);
        assert_eq!(c.mode, SmpMode::Deterministic);
        assert!(!c.is_parallel());
    }

    #[test]
    fn vcpu_count_is_clamped_to_one() {
        assert_eq!(SmpConfig::deterministic(0).vcpus, 1);
        assert_eq!(SmpConfig::free_running(0, 7).vcpus, 1);
    }

    #[test]
    fn deterministic_mode_ignores_seed_for_sharding() {
        for idx in 0..32 {
            assert_eq!(SmpConfig::deterministic(4).shard_of(idx), 0);
            let mut c = SmpConfig::deterministic(4);
            c.seed = 0xdead_beef;
            assert_eq!(c.shard_of(idx), 0);
        }
    }

    #[test]
    fn free_running_sharding_is_a_pure_function_of_seed() {
        let a = SmpConfig::free_running(4, 42);
        let b = SmpConfig::free_running(4, 42);
        let c = SmpConfig::free_running(4, 43);
        let shards_a: Vec<usize> = (0..64).map(|i| a.shard_of(i)).collect();
        let shards_b: Vec<usize> = (0..64).map(|i| b.shard_of(i)).collect();
        let shards_c: Vec<usize> = (0..64).map(|i| c.shard_of(i)).collect();
        assert_eq!(shards_a, shards_b);
        assert_ne!(shards_a, shards_c, "different seeds should reshard");
        assert!(shards_a.iter().all(|&s| s < 4));
        // All four shards actually get work at this size.
        for s in 0..4 {
            assert!(shards_a.contains(&s), "shard {s} starved");
        }
    }

    #[test]
    fn mode_names_are_stable_bench_labels() {
        assert_eq!(SmpMode::Deterministic.name(), "deterministic");
        assert_eq!(SmpMode::FreeRunning.name(), "free-running");
    }
}
