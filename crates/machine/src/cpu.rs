//! Simulated virtual CPUs.
//!
//! A vCPU carries the architectural state FlexOS cares about: which VM's
//! address space is active and the current PKRU value. In the MPK backend
//! all compartments share VM 0 and gates rewrite PKRU; in the VM backend
//! each compartment's vCPU lives in its own VM and PKRU is unused.

use crate::pkey::Pkru;
use crate::vm::VmId;
use core::fmt;

/// Identifier of a simulated vCPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VcpuId(pub u8);

impl fmt::Display for VcpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vcpu{}", self.0)
    }
}

/// Architectural state of one simulated vCPU.
#[derive(Debug, Clone)]
pub struct Vcpu {
    /// This vCPU's identity.
    pub id: VcpuId,
    /// The VM whose address space is active.
    pub vm: VmId,
    /// Current protection-key rights register.
    pub pkru: Pkru,
}

impl Vcpu {
    /// Creates a vCPU attached to `vm` with an allow-all PKRU.
    pub fn new(id: VcpuId, vm: VmId) -> Self {
        Self {
            id,
            vm,
            pkru: Pkru::ALLOW_ALL,
        }
    }
}

/// How the machine guards writes to PKRU (paper §3: the MPK backend "has
/// to prevent such unauthorized writes; it can do so via static analysis,
/// runtime checks or page-table sealing").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PkruGuard {
    /// No guard: any code may execute `wrpkru`. This reproduces the *PKU
    /// pitfalls* attack surface and exists so tests can show the attack
    /// succeeding when the guard is off.
    Off,
    /// Only call sites holding the gate capability may write PKRU
    /// (models ERIM-style binary inspection / Hodor-style runtime checks).
    #[default]
    GateCapability,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_vcpu_starts_permissive() {
        let v = Vcpu::new(VcpuId(0), VmId(0));
        assert_eq!(v.pkru, Pkru::ALLOW_ALL);
        assert_eq!(v.vm, VmId(0));
    }

    #[test]
    fn default_guard_is_capability_based() {
        assert_eq!(PkruGuard::default(), PkruGuard::GateCapability);
    }
}
