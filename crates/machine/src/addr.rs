//! Virtual and physical address types and page-granularity helpers.
//!
//! The simulated machine uses 4 KiB pages, like the x86-64 hardware the
//! FlexOS prototype ran on. Addresses are newtypes over `u64` so that
//! virtual and physical addresses cannot be confused at compile time.

use core::fmt;

/// Size of a page in bytes (4 KiB, matching x86-64 small pages).
pub const PAGE_SIZE: u64 = 4096;

/// Shift corresponding to [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// A virtual address inside a simulated VM's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

/// A physical address inside the simulated machine's physical memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

/// A virtual page number (virtual address / [`PAGE_SIZE`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vpn(pub u64);

/// A physical frame number (physical address / [`PAGE_SIZE`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pfn(pub u64);

impl Addr {
    /// Returns the virtual page this address falls in.
    #[inline]
    pub fn vpn(self) -> Vpn {
        Vpn(self.0 >> PAGE_SHIFT)
    }

    /// Returns the byte offset of this address within its page.
    #[inline]
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Returns the address advanced by `bytes`, or `None` on overflow.
    #[inline]
    pub fn checked_add(self, bytes: u64) -> Option<Addr> {
        self.0.checked_add(bytes).map(Addr)
    }

    /// Returns `true` if this address is page-aligned.
    #[inline]
    pub fn is_page_aligned(self) -> bool {
        self.page_offset() == 0
    }

    /// Rounds this address up to the next page boundary (identity if aligned).
    #[inline]
    pub fn page_align_up(self) -> Addr {
        Addr((self.0 + PAGE_SIZE - 1) & !(PAGE_SIZE - 1))
    }

    /// Rounds this address down to its page boundary.
    #[inline]
    pub fn page_align_down(self) -> Addr {
        Addr(self.0 & !(PAGE_SIZE - 1))
    }
}

impl PhysAddr {
    /// Returns the physical frame this address falls in.
    #[inline]
    pub fn pfn(self) -> Pfn {
        Pfn(self.0 >> PAGE_SHIFT)
    }

    /// Returns the byte offset of this address within its frame.
    #[inline]
    pub fn frame_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }
}

impl Vpn {
    /// Returns the base virtual address of this page.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 << PAGE_SHIFT)
    }
}

impl Pfn {
    /// Returns the base physical address of this frame.
    #[inline]
    pub fn base(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{:#x}", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{:#x}", self.0)
    }
}

/// Computes how many pages are needed to hold `bytes` bytes.
#[inline]
pub fn pages_for(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpn_and_offset_split_an_address() {
        let a = Addr(0x1234);
        assert_eq!(a.vpn(), Vpn(1));
        assert_eq!(a.page_offset(), 0x234);
    }

    #[test]
    fn alignment_helpers() {
        assert!(Addr(0x2000).is_page_aligned());
        assert!(!Addr(0x2001).is_page_aligned());
        assert_eq!(Addr(0x2001).page_align_up(), Addr(0x3000));
        assert_eq!(Addr(0x2fff).page_align_down(), Addr(0x2000));
        assert_eq!(Addr(0x2000).page_align_up(), Addr(0x2000));
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(PAGE_SIZE), 1);
        assert_eq!(pages_for(PAGE_SIZE + 1), 2);
    }

    #[test]
    fn page_base_round_trips() {
        let a = Addr(0x5678);
        assert_eq!(a.vpn().base().0 + a.page_offset(), a.0);
        let p = PhysAddr(0x9abc);
        assert_eq!(p.pfn().base().0 + p.frame_offset(), p.0);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(Addr(u64::MAX).checked_add(1), None);
        assert_eq!(Addr(10).checked_add(5), Some(Addr(15)));
    }
}
