//! Simulated physical memory.
//!
//! A flat byte array indexed by physical address. All data that flows
//! through the simulated system (packet payloads, heap objects, stacks)
//! actually lives here, so isolation is *enforced*, not just costed: a
//! compartment that computes a pointer into another compartment's pages
//! and dereferences it hits the same checks real hardware would apply.

use crate::addr::{PhysAddr, PAGE_SIZE};
use crate::fault::{Fault, Result};

/// The machine's physical memory.
#[derive(Debug, Clone)]
pub struct PhysMem {
    bytes: Vec<u8>,
}

impl PhysMem {
    /// Allocates `frames` frames of zeroed physical memory.
    pub fn new(frames: u64) -> Self {
        Self {
            bytes: vec![0; (frames * PAGE_SIZE) as usize],
        }
    }

    /// Size in bytes.
    pub fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Whether the memory is empty (only for zero-frame machines).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    fn range(&self, at: PhysAddr, len: u64) -> Result<core::ops::Range<usize>> {
        let end = at.0.checked_add(len).ok_or(Fault::AddressOverflow {
            addr: crate::addr::Addr(at.0),
            len,
        })?;
        if end > self.len() {
            return Err(Fault::AddressOverflow {
                addr: crate::addr::Addr(at.0),
                len,
            });
        }
        Ok(at.0 as usize..end as usize)
    }

    /// Reads `dst.len()` bytes starting at `at`.
    pub fn read(&self, at: PhysAddr, dst: &mut [u8]) -> Result<()> {
        let r = self.range(at, dst.len() as u64)?;
        dst.copy_from_slice(&self.bytes[r]);
        Ok(())
    }

    /// Writes `src` starting at `at`.
    pub fn write(&mut self, at: PhysAddr, src: &[u8]) -> Result<()> {
        let r = self.range(at, src.len() as u64)?;
        self.bytes[r].copy_from_slice(src);
        Ok(())
    }

    /// Fills `len` bytes starting at `at` with `value`.
    pub fn fill(&mut self, at: PhysAddr, len: u64, value: u8) -> Result<()> {
        let r = self.range(at, len)?;
        self.bytes[r].fill(value);
        Ok(())
    }

    /// Borrows `len` bytes starting at `at` (read-only view).
    pub fn slice(&self, at: PhysAddr, len: u64) -> Result<&[u8]> {
        let r = self.range(at, len)?;
        Ok(&self.bytes[r])
    }

    /// Copies `len` bytes from `src` to `dst` inside physical memory
    /// without bouncing through a host buffer. Overlapping ranges copy
    /// with memmove semantics (as if through a temporary).
    pub fn copy_within(&mut self, dst: PhysAddr, src: PhysAddr, len: u64) -> Result<()> {
        let sr = self.range(src, len)?;
        let dr = self.range(dst, len)?;
        self.bytes.copy_within(sr, dr.start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_zeroed() {
        let m = PhysMem::new(1);
        let mut buf = [1u8; 16];
        m.read(PhysAddr(0), &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = PhysMem::new(1);
        m.write(PhysAddr(100), b"flexos").unwrap();
        let mut buf = [0u8; 6];
        m.read(PhysAddr(100), &mut buf).unwrap();
        assert_eq!(&buf, b"flexos");
    }

    #[test]
    fn out_of_range_access_faults() {
        let mut m = PhysMem::new(1);
        assert!(m.write(PhysAddr(PAGE_SIZE - 2), b"xyz").is_err());
        let mut buf = [0u8; 3];
        assert!(m.read(PhysAddr(PAGE_SIZE), &mut buf).is_err());
    }

    #[test]
    fn overflowing_range_faults_not_panics() {
        let m = PhysMem::new(1);
        let mut buf = [0u8; 8];
        assert!(matches!(
            m.read(PhysAddr(u64::MAX - 2), &mut buf),
            Err(Fault::AddressOverflow { .. })
        ));
    }

    #[test]
    fn fill_sets_exact_range() {
        let mut m = PhysMem::new(1);
        m.fill(PhysAddr(10), 4, 0xAA).unwrap();
        assert_eq!(
            m.slice(PhysAddr(9), 6).unwrap(),
            &[0, 0xAA, 0xAA, 0xAA, 0xAA, 0]
        );
    }
}
