//! Fault and error types raised by the simulated machine.
//!
//! A [`Fault`] models a hardware exception (protection-key violation, page
//! fault, …) exactly where real silicon would raise one. Higher layers
//! treat faults as the simulated equivalent of a crash/trap: the FlexOS
//! integration tests assert that attacks *do* fault under the configured
//! isolation mechanism and do *not* under weaker configurations.

use crate::addr::Addr;
use crate::pkey::{Access, ProtKey};
use crate::vm::VmId;
use core::fmt;

/// A simulated hardware fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Access to a virtual page with no mapping in the current VM.
    PageNotPresent {
        /// Faulting virtual address.
        addr: Addr,
        /// VM whose address space was active.
        vm: VmId,
        /// The attempted access kind.
        access: Access,
    },
    /// Write to a page mapped read-only.
    WriteToReadOnly {
        /// Faulting virtual address.
        addr: Addr,
        /// VM whose address space was active.
        vm: VmId,
    },
    /// Protection-key check failed (the PKRU register disallowed the
    /// access for the page's key) — the MPK backend's enforcement signal.
    PkeyViolation {
        /// Faulting virtual address.
        addr: Addr,
        /// The key tagged on the faulting page.
        key: ProtKey,
        /// The attempted access kind.
        access: Access,
    },
    /// An attempt to execute `wrpkru` without holding the gate capability,
    /// caught by the configured PKRU-write guard (cf. §3: static analysis,
    /// runtime checks, or page-table sealing).
    UnauthorizedPkruWrite {
        /// The value the attacker tried to load into PKRU.
        attempted: u32,
    },
    /// A cross-VM access that the EPT-style isolation forbids (the address
    /// belongs to another VM and is not in the shared window).
    VmViolation {
        /// Faulting virtual address.
        addr: Addr,
        /// VM whose address space was active.
        vm: VmId,
    },
    /// The machine ran out of physical frames.
    OutOfMemory {
        /// Number of frames that were requested.
        requested_pages: u64,
    },
    /// An address-range computation overflowed the 64-bit address space.
    AddressOverflow {
        /// Base address of the failed computation.
        addr: Addr,
        /// Length in bytes of the failed computation.
        len: u64,
    },
    /// A software-hardening mechanism (ASAN, canary, CFI, DFI, …) aborted
    /// execution. Carries the mechanism name and a human-readable reason.
    HardeningAbort {
        /// Name of the mechanism that fired (e.g. `"asan"`, `"cfi"`).
        mechanism: &'static str,
        /// Human-readable diagnostic.
        reason: String,
    },
    /// A verified component's runtime contract (pre/post-condition) failed.
    ContractViolation {
        /// The component whose contract failed.
        component: &'static str,
        /// The violated condition, as written in the contract.
        condition: String,
    },
    /// A gate gave up waiting for the remote side after exhausting its
    /// retry budget (e.g. every doorbell notification was lost).
    GateTimeout {
        /// The gate mechanism that timed out (e.g. `"vmrpc"`).
        mechanism: &'static str,
        /// Delivery attempts made before giving up.
        attempts: u32,
    },
    /// A doorbell notification carried an unexpected payload word — a
    /// forged or misrouted RPC descriptor caught at the gate.
    DoorbellMismatch {
        /// The payload word the gate expected.
        expected: u64,
        /// The payload word actually received.
        got: u64,
    },
    /// An async-gate submission ring had no free slot (cf. io_uring's
    /// `-EBUSY` on a full SQ): the caller must flush or reap before
    /// submitting more. A resource error, not a protection fault.
    RingFull {
        /// The ring that was full (e.g. `"gate-sq"`).
        ring: &'static str,
        /// The ring's slot capacity.
        depth: usize,
    },
    /// An async-gate completion ring had nothing to reap (cf. io_uring's
    /// `-EAGAIN` on an empty CQ): the caller must flush submissions
    /// first. A resource error, not a protection fault.
    RingEmpty {
        /// The ring that was empty (e.g. `"gate-cq"`).
        ring: &'static str,
    },
    /// A gate-call submission was refused because the compartment pair's
    /// backend is mid-migration: the quiescence protocol stops admission
    /// so a continuous submitter cannot stall the drain forever. A
    /// transient resource error, not a protection fault — resubmit once
    /// the swap completes.
    GateDraining {
        /// The mechanism being drained out (the pair's outgoing backend).
        mechanism: &'static str,
    },
}

impl Fault {
    /// Short machine-readable tag identifying the fault class.
    pub fn kind(&self) -> &'static str {
        match self {
            Fault::PageNotPresent { .. } => "page-not-present",
            Fault::WriteToReadOnly { .. } => "write-to-read-only",
            Fault::PkeyViolation { .. } => "pkey-violation",
            Fault::UnauthorizedPkruWrite { .. } => "unauthorized-pkru-write",
            Fault::VmViolation { .. } => "vm-violation",
            Fault::OutOfMemory { .. } => "out-of-memory",
            Fault::AddressOverflow { .. } => "address-overflow",
            Fault::HardeningAbort { .. } => "hardening-abort",
            Fault::ContractViolation { .. } => "contract-violation",
            Fault::GateTimeout { .. } => "gate-timeout",
            Fault::DoorbellMismatch { .. } => "doorbell-mismatch",
            Fault::RingFull { .. } => "ring-full",
            Fault::RingEmpty { .. } => "ring-empty",
            Fault::GateDraining { .. } => "gate-draining",
        }
    }

    /// Returns `true` if this fault represents a *caught attack* — i.e. an
    /// isolation or hardening mechanism stopping an illegal action (rather
    /// than a resource or configuration error).
    pub fn is_protection_fault(&self) -> bool {
        matches!(
            self,
            Fault::PkeyViolation { .. }
                | Fault::WriteToReadOnly { .. }
                | Fault::UnauthorizedPkruWrite { .. }
                | Fault::VmViolation { .. }
                | Fault::HardeningAbort { .. }
                | Fault::PageNotPresent { .. }
                | Fault::DoorbellMismatch { .. }
        )
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::PageNotPresent { addr, vm, access } => {
                write!(f, "page not present: {access:?} at {addr} in vm{}", vm.0)
            }
            Fault::WriteToReadOnly { addr, vm } => {
                write!(f, "write to read-only page at {addr} in vm{}", vm.0)
            }
            Fault::PkeyViolation { addr, key, access } => {
                write!(
                    f,
                    "protection-key violation: {access:?} at {addr} (key {})",
                    key.0
                )
            }
            Fault::UnauthorizedPkruWrite { attempted } => {
                write!(f, "unauthorized wrpkru (attempted {attempted:#010x})")
            }
            Fault::VmViolation { addr, vm } => {
                write!(f, "EPT violation: access to {addr} from vm{}", vm.0)
            }
            Fault::OutOfMemory { requested_pages } => {
                write!(
                    f,
                    "out of physical memory ({requested_pages} pages requested)"
                )
            }
            Fault::AddressOverflow { addr, len } => {
                write!(f, "address overflow at {addr} + {len}")
            }
            Fault::HardeningAbort { mechanism, reason } => {
                write!(f, "{mechanism} abort: {reason}")
            }
            Fault::ContractViolation {
                component,
                condition,
            } => {
                write!(f, "contract violation in {component}: {condition}")
            }
            Fault::GateTimeout {
                mechanism,
                attempts,
            } => {
                write!(f, "{mechanism} gate timed out after {attempts} attempts")
            }
            Fault::DoorbellMismatch { expected, got } => {
                write!(
                    f,
                    "doorbell payload mismatch: expected {expected:#x}, got {got:#x}"
                )
            }
            Fault::RingFull { ring, depth } => {
                write!(f, "{ring} ring full ({depth} slots)")
            }
            Fault::RingEmpty { ring } => {
                write!(f, "{ring} ring empty")
            }
            Fault::GateDraining { mechanism } => {
                write!(
                    f,
                    "{mechanism} gate draining for migration; admission stopped"
                )
            }
        }
    }
}

impl std::error::Error for Fault {}

/// Convenience alias for machine operations.
pub type Result<T> = core::result::Result<T, Fault>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protection_faults_are_classified() {
        let f = Fault::PkeyViolation {
            addr: Addr(0x1000),
            key: ProtKey(3),
            access: Access::Write,
        };
        assert!(f.is_protection_fault());
        assert_eq!(f.kind(), "pkey-violation");

        let f = Fault::OutOfMemory { requested_pages: 4 };
        assert!(!f.is_protection_fault());
    }

    #[test]
    fn ring_faults_are_resource_errors_not_protection_faults() {
        let full = Fault::RingFull {
            ring: "gate-sq",
            depth: 64,
        };
        assert!(!full.is_protection_fault());
        assert_eq!(full.kind(), "ring-full");
        assert!(full.to_string().contains("64 slots"));

        let empty = Fault::RingEmpty { ring: "gate-cq" };
        assert!(!empty.is_protection_fault());
        assert_eq!(empty.kind(), "ring-empty");
        assert!(empty.to_string().contains("empty"));
    }

    #[test]
    fn display_is_informative() {
        let f = Fault::UnauthorizedPkruWrite { attempted: 0xdead };
        let s = f.to_string();
        assert!(s.contains("wrpkru"));
        assert!(s.contains("0x0000dead"));
    }
}
