//! Per-vCPU software TLB: a direct-mapped translation cache.
//!
//! Real MPK systems (the paper's §3 backends, ERIM, Hodor) get their
//! speed from the hardware TLB caching virtual→physical translations
//! while PKRU is checked architecturally on *every* access. This module
//! models that split for the simulator's own benefit: the cache holds
//! [`PageEntry`] results of the `BTreeMap` page-table walk — translation
//! only — while the writable-bit and PKRU checks still run per access in
//! `Machine` against current vCPU state. Faults and simulated cycle
//! charges are therefore byte-for-byte identical with the cache hot,
//! cold, or disabled; the TLB only saves *host* time.
//!
//! Coherence is generational: each [`crate::page::PageTable`] bumps a
//! counter on every mutation, entries are tagged with the counter value
//! at fill time, and a lookup whose tag does not match the table's
//! current generation misses. One page-table edit thus lazily
//! invalidates every cached translation of that VM — no eager flush, no
//! way to read through a stale mapping after unmap/retag/seal.

use crate::addr::Vpn;
use crate::page::PageEntry;
use crate::vm::VmId;

/// Number of entries in one vCPU's TLB (direct-mapped by `vpn % 64`).
pub const TLB_ENTRIES: usize = 64;

#[derive(Debug, Clone, Copy)]
struct TlbSlot {
    vm: VmId,
    vpn: u64,
    generation: u64,
    entry: PageEntry,
    valid: bool,
}

impl TlbSlot {
    const EMPTY: TlbSlot = TlbSlot {
        vm: VmId(0),
        vpn: 0,
        generation: 0,
        entry: PageEntry {
            pfn: crate::addr::Pfn(0),
            flags: crate::page::PageFlags::RO,
            key: crate::pkey::ProtKey(0),
        },
        valid: false,
    };
}

/// One vCPU's direct-mapped translation cache.
#[derive(Debug, Clone)]
pub struct Tlb {
    slots: [TlbSlot; TLB_ENTRIES],
}

impl Default for Tlb {
    fn default() -> Self {
        Self::new()
    }
}

impl Tlb {
    /// An empty TLB.
    pub fn new() -> Self {
        Self {
            slots: [TlbSlot::EMPTY; TLB_ENTRIES],
        }
    }

    #[inline]
    fn index(vpn: Vpn) -> usize {
        (vpn.0 as usize) % TLB_ENTRIES
    }

    /// Looks up a cached walk result for `(vm, vpn)`. Hits only when the
    /// slot was filled under the page table's current `generation`;
    /// entries cached before any mutation of that VM's table miss here
    /// and get refilled from the walk.
    #[inline]
    pub fn lookup(&self, vm: VmId, vpn: Vpn, generation: u64) -> Option<PageEntry> {
        let s = &self.slots[Self::index(vpn)];
        if s.valid && s.vm == vm && s.vpn == vpn.0 && s.generation == generation {
            Some(s.entry)
        } else {
            None
        }
    }

    /// Caches a successful walk result, evicting whatever shared the slot.
    #[inline]
    pub fn insert(&mut self, vm: VmId, vpn: Vpn, generation: u64, entry: PageEntry) {
        self.slots[Self::index(vpn)] = TlbSlot {
            vm,
            vpn: vpn.0,
            generation,
            entry,
            valid: true,
        };
    }

    /// Drops every entry (not needed for correctness — generations
    /// already fence stale entries — but lets tests start cold).
    pub fn clear(&mut self) {
        self.slots = [TlbSlot::EMPTY; TLB_ENTRIES];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Pfn;
    use crate::page::PageFlags;
    use crate::pkey::ProtKey;

    fn entry(pfn: u64) -> PageEntry {
        PageEntry {
            pfn: Pfn(pfn),
            flags: PageFlags::RW,
            key: ProtKey(0),
        }
    }

    #[test]
    fn lookup_misses_cold_and_hits_after_insert() {
        let mut t = Tlb::new();
        assert!(t.lookup(VmId(0), Vpn(5), 0).is_none());
        t.insert(VmId(0), Vpn(5), 0, entry(9));
        assert_eq!(t.lookup(VmId(0), Vpn(5), 0).unwrap().pfn, Pfn(9));
    }

    #[test]
    fn generation_mismatch_misses() {
        let mut t = Tlb::new();
        t.insert(VmId(0), Vpn(5), 3, entry(9));
        assert!(t.lookup(VmId(0), Vpn(5), 4).is_none());
        assert!(t.lookup(VmId(0), Vpn(5), 2).is_none());
        assert!(t.lookup(VmId(0), Vpn(5), 3).is_some());
    }

    #[test]
    fn vm_and_vpn_are_part_of_the_key() {
        let mut t = Tlb::new();
        t.insert(VmId(1), Vpn(5), 0, entry(9));
        assert!(t.lookup(VmId(0), Vpn(5), 0).is_none());
        // Same direct-mapped slot, different vpn: must not alias.
        let aliased = Vpn(5 + TLB_ENTRIES as u64);
        assert!(t.lookup(VmId(1), aliased, 0).is_none());
    }

    #[test]
    fn colliding_vpns_evict() {
        let mut t = Tlb::new();
        t.insert(VmId(0), Vpn(1), 0, entry(10));
        t.insert(VmId(0), Vpn(1 + TLB_ENTRIES as u64), 0, entry(20));
        assert!(t.lookup(VmId(0), Vpn(1), 0).is_none());
        assert_eq!(
            t.lookup(VmId(0), Vpn(1 + TLB_ENTRIES as u64), 0)
                .unwrap()
                .pfn,
            Pfn(20)
        );
    }

    #[test]
    fn clear_empties_every_slot() {
        let mut t = Tlb::new();
        t.insert(VmId(0), Vpn(7), 0, entry(1));
        t.clear();
        assert!(t.lookup(VmId(0), Vpn(7), 0).is_none());
    }
}
