//! Simulated virtual machines (EPT-style domains) and inter-VM doorbells.
//!
//! In the FlexOS VM backend, the toolchain generates **one VM image per
//! compartment**; a shared heap window is mapped *at the same virtual
//! address* in every VM so pointers into shared structures stay valid, and
//! compartments communicate by RPC over inter-VM notifications (paper §3,
//! "VM-based Backend"). This module provides exactly those pieces: a VM is
//! an address space (its own [`PageTable`]) plus a notification doorbell.

use crate::page::PageTable;
use core::fmt;
use std::collections::VecDeque;

/// Identifier of a simulated VM. VM 0 always exists ("the" machine for
/// single-address-space configurations such as the MPK backend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VmId(pub u8);

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// A pending inter-VM notification (event-channel message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notification {
    /// Sender VM.
    pub from: VmId,
    /// Opaque payload word (FlexOS RPC uses it as a descriptor index into
    /// the shared heap).
    pub word: u64,
}

/// A simulated VM: one address space and one doorbell queue.
#[derive(Debug)]
pub struct Vm {
    /// The VM's identity.
    pub id: VmId,
    /// The VM's private page table.
    pub page_table: PageTable,
    /// Whether protection keys are enforced inside this VM (true for the
    /// MPK backend's single VM, false for pure EPT isolation where each
    /// compartment already has its own address space).
    pub pkeys_enabled: bool,
    /// Pending notifications (doorbell FIFO).
    doorbell: VecDeque<Notification>,
    /// Next free virtual page number for region allocation (bump).
    next_vpn: u64,
}

/// Virtual-address stride between VMs' private regions (1 GiB of pages).
///
/// Each VM bump-allocates its private mappings from a distinct base so
/// that private addresses never alias across VMs: a pointer leaked from
/// one compartment dereferenced in another VM reliably faults as an EPT
/// violation instead of silently hitting that VM's own data.
const VM_VA_STRIDE_PAGES: u64 = 0x40000;

impl Vm {
    /// Creates an empty VM. Page 0 of every VM stays unmapped so address
    /// 0 faults like a real null page, and each VM's private mappings
    /// start at a distinct [`VM_VA_STRIDE_PAGES`] multiple.
    pub fn new(id: VmId, pkeys_enabled: bool) -> Self {
        Self {
            id,
            page_table: PageTable::new(),
            pkeys_enabled,
            doorbell: VecDeque::new(),
            next_vpn: 1 + u64::from(id.0) * VM_VA_STRIDE_PAGES,
        }
    }

    /// Reserves `pages` consecutive virtual pages and returns the first VPN.
    pub fn reserve_vpns(&mut self, pages: u64) -> u64 {
        let first = self.next_vpn;
        self.next_vpn += pages;
        first
    }

    /// Reserves virtual pages at a *fixed* VPN (used to map the shared
    /// window at identical addresses in all VMs). Advances the bump cursor
    /// past the region if it overlaps.
    pub fn reserve_vpns_at(&mut self, first_vpn: u64, pages: u64) {
        if first_vpn + pages > self.next_vpn {
            self.next_vpn = first_vpn + pages;
        }
    }

    /// Enqueues a notification on this VM's doorbell.
    pub fn post(&mut self, n: Notification) {
        self.doorbell.push_back(n);
    }

    /// Dequeues the oldest pending notification, if any.
    pub fn take_notification(&mut self) -> Option<Notification> {
        self.doorbell.pop_front()
    }

    /// The oldest pending notification without consuming it.
    pub fn peek_notification(&self) -> Option<&Notification> {
        self.doorbell.front()
    }

    /// Number of pending notifications.
    pub fn pending_notifications(&self) -> usize {
        self.doorbell.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doorbell_is_fifo() {
        let mut vm = Vm::new(VmId(1), false);
        vm.post(Notification {
            from: VmId(0),
            word: 1,
        });
        vm.post(Notification {
            from: VmId(0),
            word: 2,
        });
        assert_eq!(vm.take_notification().unwrap().word, 1);
        assert_eq!(vm.take_notification().unwrap().word, 2);
        assert!(vm.take_notification().is_none());
    }

    #[test]
    fn vpn_reservation_is_monotonic_and_disjoint() {
        let mut vm = Vm::new(VmId(0), true);
        let a = vm.reserve_vpns(4);
        let b = vm.reserve_vpns(2);
        assert!(a + 4 <= b);
    }

    #[test]
    fn fixed_reservation_advances_cursor() {
        let mut vm = Vm::new(VmId(0), true);
        vm.reserve_vpns_at(100, 10);
        let next = vm.reserve_vpns(1);
        assert!(next >= 110);
    }

    #[test]
    fn page_zero_is_never_handed_out() {
        let mut vm = Vm::new(VmId(0), true);
        assert!(vm.reserve_vpns(1) >= 1);
    }
}
