//! Physical frame allocator (bitmap-based).
//!
//! The machine owns a fixed pool of physical frames; VMs map virtual pages
//! onto frames handed out here. A simple first-fit bitmap is plenty for the
//! simulation (allocation happens at boot and on heap growth, never on the
//! data path), and makes the no-double-allocation invariant easy to audit.

use crate::addr::Pfn;
use crate::fault::{Fault, Result};

/// Bitmap allocator over the machine's physical frames.
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    /// One bit per frame; `true` = allocated.
    bits: Vec<u64>,
    total: u64,
    allocated: u64,
    /// Rotating search cursor (next-fit) to keep allocation O(1) amortized.
    cursor: u64,
}

impl FrameAllocator {
    /// Creates an allocator managing `total` frames, all free.
    pub fn new(total: u64) -> Self {
        let words = (total as usize).div_ceil(64);
        Self {
            bits: vec![0; words],
            total,
            allocated: 0,
            cursor: 0,
        }
    }

    /// Total number of frames managed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of frames currently allocated.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Number of frames currently free.
    pub fn free(&self) -> u64 {
        self.total - self.allocated
    }

    #[inline]
    fn is_set(&self, f: u64) -> bool {
        self.bits[(f / 64) as usize] & (1 << (f % 64)) != 0
    }

    #[inline]
    fn set(&mut self, f: u64) {
        self.bits[(f / 64) as usize] |= 1 << (f % 64);
    }

    #[inline]
    fn clear(&mut self, f: u64) {
        self.bits[(f / 64) as usize] &= !(1 << (f % 64));
    }

    /// Allocates one frame.
    pub fn alloc(&mut self) -> Result<Pfn> {
        if self.allocated >= self.total {
            return Err(Fault::OutOfMemory { requested_pages: 1 });
        }
        // Next-fit scan starting at the cursor.
        for i in 0..self.total {
            let f = (self.cursor + i) % self.total;
            if !self.is_set(f) {
                self.set(f);
                self.allocated += 1;
                self.cursor = (f + 1) % self.total;
                return Ok(Pfn(f));
            }
        }
        Err(Fault::OutOfMemory { requested_pages: 1 })
    }

    /// Allocates `n` frames (not necessarily contiguous).
    pub fn alloc_many(&mut self, n: u64) -> Result<Vec<Pfn>> {
        if self.free() < n {
            return Err(Fault::OutOfMemory { requested_pages: n });
        }
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            // Cannot fail: we checked `free()` and nothing frees in between.
            out.push(self.alloc()?);
        }
        Ok(out)
    }

    /// Frees a frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame is out of range or was not allocated — a
    /// double-free in the simulator is a bug in the caller, not a
    /// recoverable condition.
    pub fn dealloc(&mut self, pfn: Pfn) {
        assert!(pfn.0 < self.total, "frame {} out of range", pfn.0);
        assert!(self.is_set(pfn.0), "double free of frame {}", pfn.0);
        self.clear(pfn.0);
        self.allocated -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_distinct_frames() {
        let mut fa = FrameAllocator::new(128);
        let a = fa.alloc().unwrap();
        let b = fa.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(fa.allocated(), 2);
    }

    #[test]
    fn exhaustion_reports_out_of_memory() {
        let mut fa = FrameAllocator::new(2);
        fa.alloc().unwrap();
        fa.alloc().unwrap();
        assert!(matches!(fa.alloc(), Err(Fault::OutOfMemory { .. })));
    }

    #[test]
    fn dealloc_makes_frame_reusable() {
        let mut fa = FrameAllocator::new(1);
        let a = fa.alloc().unwrap();
        fa.dealloc(a);
        let b = fa.alloc().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut fa = FrameAllocator::new(4);
        let a = fa.alloc().unwrap();
        fa.dealloc(a);
        fa.dealloc(a);
    }

    #[test]
    fn alloc_many_is_all_or_nothing() {
        let mut fa = FrameAllocator::new(8);
        fa.alloc_many(6).unwrap();
        assert!(matches!(fa.alloc_many(3), Err(Fault::OutOfMemory { .. })));
        // The failed request must not have consumed frames.
        assert_eq!(fa.free(), 2);
    }

    #[test]
    fn bitmap_handles_word_boundaries() {
        let mut fa = FrameAllocator::new(130);
        let frames = fa.alloc_many(130).unwrap();
        assert_eq!(frames.len(), 130);
        assert_eq!(fa.free(), 0);
        for f in frames {
            fa.dealloc(f);
        }
        assert_eq!(fa.free(), 130);
    }
}
