//! The top-level simulated machine.
//!
//! [`Machine`] owns physical memory, the frame allocator, all VMs and
//! vCPUs, the cycle clock and the cost table. Every modelled memory access
//! goes through [`Machine::read`]/[`Machine::write`], which perform the
//! full enforcement pipeline a real core would:
//!
//! 1. page-table walk in the active VM (miss ⇒ page fault / EPT violation),
//! 2. hardware W-bit check,
//! 3. protection-key check against the current vCPU's PKRU (when the VM
//!    has pkeys enabled),
//! 4. cycle charging (fixed per-access cost + per-byte streaming cost).
//!
//! `wrpkru` is guarded according to [`PkruGuard`]: with the default
//! capability guard, only holders of the machine's [`GateToken`] (i.e. the
//! isolation backends' vetted gate code) may change PKRU — modelling the
//! call-site vetting that ERIM does by binary inspection and Hodor by
//! runtime checking.

use crate::addr::{pages_for, Addr, PhysAddr, Vpn, PAGE_SIZE};
use crate::chaos::{ChaosPlan, ChaosStats, NotifyFate};
use crate::clock::{Clock, CostTable};
use crate::cpu::{PkruGuard, Vcpu, VcpuId};
use crate::fault::{Fault, Result};
use crate::frame::FrameAllocator;
use crate::mem::PhysMem;
use crate::page::{PageEntry, PageFlags};
use crate::pkey::{Access, Pkru, ProtKey};
use crate::tlb::Tlb;
use crate::vm::{Notification, Vm, VmId};
use flexos_trace::{FaultTrace, SpanKind, SpanTrace, TlbTrace};

/// First virtual page number of the shared window. Shared regions are
/// mapped at identical addresses in every VM (paper §3: "mapped in all
/// compartments (VMs) at an identical address so that pointers to/in
/// shared structures remain valid"). Placing the window high keeps it
/// disjoint from every VM's private bump region.
const SHARED_WINDOW_FIRST_VPN: u64 = 0x8_0000_0000; // 512 GiB up.

/// Capability authorizing PKRU writes (held by gate implementations).
///
/// Each machine mints a distinct token at boot, so a token captured from
/// one machine does not authorize `wrpkru` on another — modelling the
/// fact that the vetted-call-site property is per-image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateToken(u64);

impl GateToken {
    fn fresh() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0x464c_4558_4f53); // "FLEXOS"
        GateToken(NEXT.fetch_add(1, Ordering::Relaxed))
    }
}

/// Construction-time configuration of a [`Machine`].
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of 4 KiB physical frames (default 32 Mi B = 8192 frames).
    pub phys_frames: u64,
    /// Per-operation cycle costs.
    pub costs: CostTable,
    /// PKRU write-guard policy.
    pub pkru_guard: PkruGuard,
    /// Whether the per-vCPU software TLB is used (default `true`). The
    /// TLB caches translations only — faults and cycle charges are
    /// identical either way — so disabling it exists purely as a
    /// reference path for equivalence tests.
    pub tlb_enabled: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            phys_frames: 8192,
            costs: CostTable::default(),
            pkru_guard: PkruGuard::default(),
            tlb_enabled: true,
        }
    }
}

/// A record of one shared region, replayed into newly added VMs.
#[derive(Debug, Clone)]
struct SharedRegion {
    first_vpn: u64,
    entries: Vec<PageEntry>,
}

/// Chunks held inline by a [`ChunkList`] before spilling to the heap.
/// Eight pages cover every access up to 28 KiB + change — in practice
/// all packet, ring and copy traffic — without allocating.
const INLINE_CHUNKS: usize = 8;

/// Inline list of `(phys_base, run_len)` chunks produced by translating
/// a virtual range. Replaces the per-access `Vec` the hot paths used to
/// allocate: short accesses (the overwhelming majority) stay entirely on
/// the stack.
#[derive(Debug)]
struct ChunkList {
    inline: [(PhysAddr, u64); INLINE_CHUNKS],
    inline_len: usize,
    spill: Vec<(PhysAddr, u64)>,
}

impl ChunkList {
    fn new() -> Self {
        Self {
            inline: [(PhysAddr(0), 0); INLINE_CHUNKS],
            inline_len: 0,
            spill: Vec::new(),
        }
    }

    #[inline]
    fn push(&mut self, pa: PhysAddr, run: u64) {
        if self.inline_len < INLINE_CHUNKS {
            self.inline[self.inline_len] = (pa, run);
            self.inline_len += 1;
        } else {
            self.spill.push((pa, run));
        }
    }

    fn len(&self) -> usize {
        self.inline_len + self.spill.len()
    }

    fn get(&self, i: usize) -> (PhysAddr, u64) {
        if i < self.inline_len {
            self.inline[i]
        } else {
            self.spill[i - self.inline_len]
        }
    }

    #[inline]
    fn iter(&self) -> impl Iterator<Item = (PhysAddr, u64)> + '_ {
        self.inline[..self.inline_len]
            .iter()
            .copied()
            .chain(self.spill.iter().copied())
    }

    /// Whether any physical byte range in `self` intersects one in
    /// `other` (used by `Machine::copy` to decide if it must bounce
    /// through scratch for memmove semantics).
    fn overlaps(&self, other: &ChunkList) -> bool {
        self.iter().any(|(sa, sl)| {
            other
                .iter()
                .any(|(da, dl)| sa.0 < da.0 + dl && da.0 < sa.0 + sl)
        })
    }
}

/// The simulated machine.
#[derive(Debug)]
pub struct Machine {
    costs: CostTable,
    pkru_guard: PkruGuard,
    phys: PhysMem,
    frames: FrameAllocator,
    vms: Vec<Vm>,
    vcpus: Vec<Vcpu>,
    clock: Clock,
    shared_regions: Vec<SharedRegion>,
    shared_next_vpn: u64,
    gate_token: GateToken,
    faults: FaultTrace,
    spans: SpanTrace,
    chaos: Option<ChaosPlan>,
    /// One software TLB per vCPU (parallel to `vcpus`).
    tlbs: Vec<Tlb>,
    tlb_enabled: bool,
    tlb_trace: TlbTrace,
    /// Two pre-validated pages for batched descriptor stores (see
    /// [`Machine::write_u64_hot`]). Two slots because a batched VM-RPC
    /// call alternates between the callee's and the caller's inbox
    /// pages (enter, then exit), which would thrash a single slot.
    hot_pages: [Option<HotPage>; 2],
    /// The `hot_pages` slot to evict next (round-robin on fill misses).
    hot_evict: usize,
    /// Reusable bounce buffer for the rare overlapping-`copy` case.
    scratch: Vec<u8>,
}

/// A validated (vcpu, page) → physical translation for repeated 8-byte
/// descriptor stores. Like the software TLB, coherence is generational:
/// the entry is dead the moment the VM's page table mutates or the
/// vCPU's PKRU no longer matches the value it was validated under, so a
/// hit can never succeed where the full enforcement walk would fault.
#[derive(Debug, Clone, Copy)]
struct HotPage {
    vcpu: VcpuId,
    vm: VmId,
    vpn: u64,
    generation: u64,
    pkru: Pkru,
    pa_base: PhysAddr,
}

impl Machine {
    /// Boots a machine with VM 0 (pkeys enabled) and vCPU 0 attached to it.
    pub fn new(cfg: MachineConfig) -> Self {
        let vms = vec![Vm::new(VmId(0), true)];
        let vcpus = vec![Vcpu::new(VcpuId(0), VmId(0))];
        Self {
            phys: PhysMem::new(cfg.phys_frames),
            frames: FrameAllocator::new(cfg.phys_frames),
            costs: cfg.costs,
            pkru_guard: cfg.pkru_guard,
            vms,
            vcpus,
            clock: Clock::new(),
            shared_regions: Vec::new(),
            shared_next_vpn: SHARED_WINDOW_FIRST_VPN,
            gate_token: GateToken::fresh(),
            faults: FaultTrace::new(),
            spans: SpanTrace::new(),
            chaos: None,
            tlbs: vec![Tlb::new()],
            tlb_enabled: cfg.tlb_enabled,
            tlb_trace: TlbTrace::new(),
            hot_pages: [None, None],
            hot_evict: 0,
            scratch: Vec::new(),
        }
    }

    /// Boots a machine with the default configuration.
    pub fn with_defaults() -> Self {
        Self::new(MachineConfig::default())
    }

    // ---- topology -------------------------------------------------------

    /// Adds a VM; existing shared regions are mapped into it at the same
    /// addresses. Returns the new VM's id.
    pub fn add_vm(&mut self, pkeys_enabled: bool) -> VmId {
        let id = VmId(self.vms.len() as u8);
        let mut vm = Vm::new(id, pkeys_enabled);
        // The shared window lives above every VM's private range by
        // construction, so mapping it does not perturb the private bump
        // cursor.
        for region in &self.shared_regions {
            for (i, entry) in region.entries.iter().enumerate() {
                vm.page_table.map(Vpn(region.first_vpn + i as u64), *entry);
            }
        }
        self.vms.push(vm);
        id
    }

    /// Adds a vCPU attached to `vm`.
    pub fn add_vcpu(&mut self, vm: VmId) -> VcpuId {
        assert!((vm.0 as usize) < self.vms.len(), "unknown {vm}");
        let id = VcpuId(self.vcpus.len() as u8);
        self.vcpus.push(Vcpu::new(id, vm));
        self.tlbs.push(Tlb::new());
        id
    }

    /// Adds `n` vCPUs attached to `vm` (SMP topologies), returning their
    /// ids in creation order. Each gets its own per-vCPU TLB.
    pub fn add_vcpus(&mut self, vm: VmId, n: usize) -> Vec<VcpuId> {
        (0..n).map(|_| self.add_vcpu(vm)).collect()
    }

    /// Number of vCPUs.
    pub fn vcpu_count(&self) -> usize {
        self.vcpus.len()
    }

    /// Number of VMs.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Immutable view of a vCPU's state.
    pub fn vcpu(&self, id: VcpuId) -> &Vcpu {
        &self.vcpus[id.0 as usize]
    }

    // ---- fault injection ------------------------------------------------

    /// Installs a fault-injection plan (see [`crate::chaos`]). With no
    /// plan installed — the default — every hook below is a no-op and
    /// the machine's behaviour and cycle accounting are bit-identical
    /// to a build without chaos support.
    pub fn set_chaos(&mut self, plan: ChaosPlan) {
        self.chaos = Some(plan);
    }

    /// Removes the fault-injection plan.
    pub fn clear_chaos(&mut self) {
        self.chaos = None;
    }

    /// Injection counters, if a plan is installed.
    pub fn chaos_stats(&self) -> Option<ChaosStats> {
        self.chaos.as_ref().map(ChaosPlan::stats)
    }

    /// Spurious-fault hook shared by `read`/`write`/`fill`: with a plan
    /// installed, a configurable fraction of accesses trap with a
    /// protection-key violation even though enforcement would have
    /// allowed them.
    fn chaos_access(&mut self, addr: Addr, access: Access) -> Result<()> {
        if let Some(plan) = self.chaos.as_mut() {
            if plan.access_should_fault() {
                self.faults
                    .record_injected("injected-pkey", self.clock.cycles());
                return Err(self.trap(Fault::PkeyViolation {
                    addr,
                    key: ProtKey(15),
                    access,
                }));
            }
        }
        Ok(())
    }

    // ---- regions --------------------------------------------------------

    /// Allocates `bytes` of fresh memory in `vm`'s private address space,
    /// tagged with `key`. Returns the base address (page-aligned).
    pub fn alloc_region(
        &mut self,
        vm: VmId,
        bytes: u64,
        key: ProtKey,
        flags: PageFlags,
    ) -> Result<Addr> {
        let pages = pages_for(bytes.max(1));
        if let Some(plan) = self.chaos.as_mut() {
            if plan.alloc_should_fail() {
                self.faults
                    .record_injected("injected-oom", self.clock.cycles());
                return Err(Fault::OutOfMemory {
                    requested_pages: pages,
                });
            }
        }
        let pfns = self
            .frames
            .alloc_many(pages)
            .inspect_err(|f| self.faults.record(f.kind(), None, self.clock.cycles()))?;
        let vmref = &mut self.vms[vm.0 as usize];
        let first = vmref.reserve_vpns(pages);
        for (i, pfn) in pfns.iter().enumerate() {
            let ok = vmref.page_table.map(
                Vpn(first + i as u64),
                PageEntry {
                    pfn: *pfn,
                    flags,
                    key,
                },
            );
            assert!(ok, "page table for {vm} is sealed");
        }
        self.tlb_trace.flush();
        Ok(Vpn(first).base())
    }

    /// Removes the mapping of `[base, base+bytes)` from `vm`'s address
    /// space. Frames stay owned by the machine (a region may alias the
    /// shared window, which other VMs still map). Fails with
    /// `PageNotPresent` if a page is already unmapped or the table is
    /// sealed; pages unmapped before the failure stay unmapped.
    pub fn unmap_region(&mut self, vm: VmId, base: Addr, bytes: u64) -> Result<()> {
        let pages = pages_for(bytes.max(1));
        let vmref = &mut self.vms[vm.0 as usize];
        for i in 0..pages {
            let vpn = Vpn(base.vpn().0 + i);
            if vmref.page_table.unmap(vpn).is_none() {
                return Err(Fault::PageNotPresent {
                    addr: vpn.base(),
                    vm,
                    access: Access::Write,
                });
            }
        }
        self.tlb_trace.flush();
        Ok(())
    }

    /// Allocates `bytes` of memory mapped at the *same* address in every
    /// VM (the shared window), tagged with `key`.
    pub fn alloc_shared_region(&mut self, bytes: u64, key: ProtKey) -> Result<Addr> {
        let pages = pages_for(bytes.max(1));
        if let Some(plan) = self.chaos.as_mut() {
            if plan.alloc_should_fail() {
                self.faults
                    .record_injected("injected-oom", self.clock.cycles());
                return Err(Fault::OutOfMemory {
                    requested_pages: pages,
                });
            }
        }
        let pfns = self.frames.alloc_many(pages)?;
        let first = self.shared_next_vpn;
        self.shared_next_vpn += pages;
        let entries: Vec<PageEntry> = pfns
            .iter()
            .map(|&pfn| PageEntry {
                pfn,
                flags: PageFlags::RW,
                key,
            })
            .collect();
        for vm in &mut self.vms {
            for (i, entry) in entries.iter().enumerate() {
                let ok = vm.page_table.map(Vpn(first + i as u64), *entry);
                assert!(ok, "page table for {} is sealed", vm.id);
            }
        }
        self.shared_regions.push(SharedRegion {
            first_vpn: first,
            entries,
        });
        self.tlb_trace.flush();
        Ok(Vpn(first).base())
    }

    /// Re-tags an existing region with a new protection key (memory-manager
    /// operation; fails if the page table is sealed or pages are unmapped).
    pub fn set_region_key(&mut self, vm: VmId, base: Addr, bytes: u64, key: ProtKey) -> Result<()> {
        let pages = pages_for(bytes.max(1));
        let vmref = &mut self.vms[vm.0 as usize];
        for i in 0..pages {
            let vpn = Vpn(base.vpn().0 + i);
            if !vmref.page_table.set_key(vpn, key) {
                return Err(Fault::PageNotPresent {
                    addr: vpn.base(),
                    vm,
                    access: Access::Write,
                });
            }
        }
        self.tlb_trace.flush();
        Ok(())
    }

    /// Seals every VM's page table (the paper's page-table-sealing defense).
    pub fn seal_page_tables(&mut self) {
        for vm in &mut self.vms {
            vm.page_table.seal();
        }
        self.tlb_trace.flush();
    }

    // ---- enforcement pipeline -------------------------------------------

    /// Walks (or TLB-hits) one page and runs the permission checks.
    ///
    /// Split-borrow associated fn so callers can keep `&self.vms`,
    /// `&mut self.tlbs[i]` and `&mut self.tlb_trace` live at once
    /// without cloning the vCPU. The TLB caches the *translation* only:
    /// the W-bit and PKRU checks below run on every access against
    /// current vCPU state, so faults are identical hot or cold, and a
    /// PKRU change takes effect on the very next access with no flush.
    ///
    /// A miss returns a plain `PageNotPresent`; the cross-VM diagnostic
    /// scan that may upgrade it to `VmViolation` lives in
    /// [`Machine::raise`], off the translation fast path.
    #[inline]
    fn check_one_page(
        vms: &[Vm],
        tlb: Option<&mut Tlb>,
        tlb_trace: &mut TlbTrace,
        vm_id: VmId,
        pkru: Pkru,
        addr: Addr,
        access: Access,
    ) -> Result<PhysAddr> {
        let vm = &vms[vm_id.0 as usize];
        let vpn = addr.vpn();
        let entry = match tlb {
            Some(tlb) => {
                let generation = vm.page_table.generation();
                match tlb.lookup(vm_id, vpn, generation) {
                    Some(e) => {
                        tlb_trace.hit();
                        e
                    }
                    None => {
                        tlb_trace.miss();
                        match vm.page_table.walk(vpn) {
                            Some(e) => {
                                tlb.insert(vm_id, vpn, generation, e);
                                e
                            }
                            None => {
                                return Err(Fault::PageNotPresent {
                                    addr,
                                    vm: vm_id,
                                    access,
                                })
                            }
                        }
                    }
                }
            }
            None => match vm.page_table.walk(vpn) {
                Some(e) => e,
                None => {
                    return Err(Fault::PageNotPresent {
                        addr,
                        vm: vm_id,
                        access,
                    })
                }
            },
        };
        if access == Access::Write && !entry.flags.writable {
            return Err(Fault::WriteToReadOnly { addr, vm: vm_id });
        }
        if vm.pkeys_enabled && !pkru.permits(entry.key, access) {
            return Err(Fault::PkeyViolation {
                addr,
                key: entry.key,
                access,
            });
        }
        Ok(PhysAddr(entry.pfn.base().0 + addr.page_offset()))
    }

    /// Translates and checks a single-page access (the fast path: no
    /// chunk list at all). Callers must have ruled out page straddle
    /// and address overflow.
    #[inline]
    fn translate_page(&mut self, vcpu_id: VcpuId, addr: Addr, access: Access) -> Result<PhysAddr> {
        let v = &self.vcpus[vcpu_id.0 as usize];
        let (vm_id, pkru) = (v.vm, v.pkru);
        let tlb = if self.tlb_enabled {
            Some(&mut self.tlbs[vcpu_id.0 as usize])
        } else {
            None
        };
        Self::check_one_page(
            &self.vms,
            tlb,
            &mut self.tlb_trace,
            vm_id,
            pkru,
            addr,
            access,
        )
    }

    /// Translates and checks a `[addr, addr+len)` access, splitting at page
    /// boundaries into `(phys_base, run_len)` chunks.
    fn translate_range(
        &mut self,
        vcpu_id: VcpuId,
        addr: Addr,
        len: u64,
        access: Access,
    ) -> Result<ChunkList> {
        let end = addr
            .checked_add(len)
            .ok_or(Fault::AddressOverflow { addr, len })?;
        let v = &self.vcpus[vcpu_id.0 as usize];
        let (vm_id, pkru) = (v.vm, v.pkru);
        let mut tlb = if self.tlb_enabled {
            Some(&mut self.tlbs[vcpu_id.0 as usize])
        } else {
            None
        };
        let mut out = ChunkList::new();
        let mut cur = addr;
        while cur.0 < end.0 {
            let page_end = cur.page_align_down().0 + PAGE_SIZE;
            let run = page_end.min(end.0) - cur.0;
            let pa = Self::check_one_page(
                &self.vms,
                tlb.as_deref_mut(),
                &mut self.tlb_trace,
                vm_id,
                pkru,
                cur,
                access,
            )?;
            out.push(pa, run);
            cur = Addr(cur.0 + run);
        }
        Ok(out)
    }

    /// Whether `[addr, addr+len)` stays within one page and does not
    /// wrap the address space — the single-translation fast path.
    #[inline]
    fn single_page(addr: Addr, len: u64) -> bool {
        addr.page_offset() + len <= PAGE_SIZE && addr.0.checked_add(len).is_some()
    }

    /// Reads `dst.len()` bytes from `addr` as `vcpu`, enforcing paging and
    /// protection keys, charging cycle costs.
    pub fn read(&mut self, vcpu: VcpuId, addr: Addr, dst: &mut [u8]) -> Result<()> {
        self.chaos_access(addr, Access::Read)?;
        let len = dst.len() as u64;
        if len == 0 {
            self.clock.advance(self.costs.mem_access);
            return Ok(());
        }
        if Self::single_page(addr, len) {
            let pa = match self.translate_page(vcpu, addr, Access::Read) {
                Ok(pa) => pa,
                Err(f) => return Err(self.raise(f)),
            };
            self.clock
                .advance(self.costs.mem_access + self.costs.copy_cost(len));
            return self.phys.read(pa, dst);
        }
        let chunks = match self.translate_range(vcpu, addr, len, Access::Read) {
            Ok(c) => c,
            Err(f) => return Err(self.raise(f)),
        };
        self.clock
            .advance(self.costs.mem_access + self.costs.copy_cost(len));
        let mut off = 0usize;
        for (pa, run) in chunks.iter() {
            self.phys.read(pa, &mut dst[off..off + run as usize])?;
            off += run as usize;
        }
        Ok(())
    }

    /// Writes `src` to `addr` as `vcpu`, enforcing paging and protection
    /// keys, charging cycle costs.
    pub fn write(&mut self, vcpu: VcpuId, addr: Addr, src: &[u8]) -> Result<()> {
        self.chaos_access(addr, Access::Write)?;
        let len = src.len() as u64;
        if len == 0 {
            self.clock.advance(self.costs.mem_access);
            return Ok(());
        }
        if Self::single_page(addr, len) {
            let pa = match self.translate_page(vcpu, addr, Access::Write) {
                Ok(pa) => pa,
                Err(f) => return Err(self.raise(f)),
            };
            self.clock
                .advance(self.costs.mem_access + self.costs.copy_cost(len));
            return self.phys.write(pa, src);
        }
        let chunks = match self.translate_range(vcpu, addr, len, Access::Write) {
            Ok(c) => c,
            Err(f) => return Err(self.raise(f)),
        };
        self.clock
            .advance(self.costs.mem_access + self.costs.copy_cost(len));
        let mut off = 0usize;
        for (pa, run) in chunks.iter() {
            self.phys.write(pa, &src[off..off + run as usize])?;
            off += run as usize;
        }
        Ok(())
    }

    /// Fills `[addr, addr+len)` with `value` as `vcpu`.
    pub fn fill(&mut self, vcpu: VcpuId, addr: Addr, len: u64, value: u8) -> Result<()> {
        self.chaos_access(addr, Access::Write)?;
        if len == 0 {
            self.clock.advance(self.costs.mem_access);
            return Ok(());
        }
        if Self::single_page(addr, len) {
            let pa = match self.translate_page(vcpu, addr, Access::Write) {
                Ok(pa) => pa,
                Err(f) => return Err(self.raise(f)),
            };
            self.clock
                .advance(self.costs.mem_access + self.costs.copy_cost(len));
            return self.phys.fill(pa, len, value);
        }
        let chunks = match self.translate_range(vcpu, addr, len, Access::Write) {
            Ok(c) => c,
            Err(f) => return Err(self.raise(f)),
        };
        self.clock
            .advance(self.costs.mem_access + self.costs.copy_cost(len));
        for (pa, run) in chunks.iter() {
            self.phys.fill(pa, run, value)?;
        }
        Ok(())
    }

    /// Reads a little-endian `u64` at `addr`. An aligned (or merely
    /// non-straddling) load takes the single-page fast path in
    /// [`Machine::read`]: one translation, no chunk list.
    pub fn read_u64(&mut self, vcpu: VcpuId, addr: Addr) -> Result<u64> {
        let mut b = [0u8; 8];
        self.read(vcpu, addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u64` at `addr` (single-page fast path,
    /// see [`Machine::read_u64`]).
    pub fn write_u64(&mut self, vcpu: VcpuId, addr: Addr, v: u64) -> Result<()> {
        self.write(vcpu, addr, &v.to_le_bytes())
    }

    /// [`Machine::write_u64`] for stores that repeatedly hit the same
    /// page — batched gates rewriting an RPC descriptor every call.
    ///
    /// A one-slot cache keeps the last validated (vcpu, page) → physical
    /// translation; while the VM's page table generation and the vCPU's
    /// PKRU are unchanged, repeat stores skip the walk and the
    /// permission re-checks, which the fill-time success already proved
    /// and the generation/PKRU match proves still hold. Cycle charges,
    /// chaos draws and fault behaviour are byte-identical to
    /// `write_u64`; only host time differs (the point of the batch fast
    /// path).
    pub fn write_u64_hot(&mut self, vcpu: VcpuId, addr: Addr, v: u64) -> Result<()> {
        if addr.page_offset() + 8 > PAGE_SIZE {
            // Straddling store: no single translation to cache.
            return self.write(vcpu, addr, &v.to_le_bytes());
        }
        self.chaos_access(addr, Access::Write)?;
        let vpn = addr.vpn().0;
        for slot in &self.hot_pages {
            let Some(c) = slot else { continue };
            let vc = &self.vcpus[vcpu.0 as usize];
            if c.vcpu == vcpu
                && c.vm == vc.vm
                && c.vpn == vpn
                && c.pkru == vc.pkru
                && c.generation == self.vms[vc.vm.0 as usize].page_table.generation()
            {
                // The entry this store would walk to is unchanged since
                // the fill-time store succeeded through it.
                if self.tlb_enabled {
                    self.tlb_trace.hit();
                }
                let pa = PhysAddr(c.pa_base.0 + addr.page_offset());
                self.clock
                    .advance(self.costs.mem_access + self.costs.copy_cost(8));
                return self.phys.write(pa, &v.to_le_bytes());
            }
        }
        // Miss: the exact single-page `write` body, then fill the slot.
        let pa = match self.translate_page(vcpu, addr, Access::Write) {
            Ok(pa) => pa,
            Err(f) => return Err(self.raise(f)),
        };
        self.clock
            .advance(self.costs.mem_access + self.costs.copy_cost(8));
        self.phys.write(pa, &v.to_le_bytes())?;
        let vc = &self.vcpus[vcpu.0 as usize];
        self.hot_pages[self.hot_evict] = Some(HotPage {
            vcpu,
            vm: vc.vm,
            vpn: addr.vpn().0,
            generation: self.vms[vc.vm.0 as usize].page_table.generation(),
            pkru: vc.pkru,
            pa_base: PhysAddr(pa.0 - addr.page_offset()),
        });
        self.hot_evict = (self.hot_evict + 1) % 2;
        Ok(())
    }

    /// Copies `len` bytes from `src` to `dst` within the simulated memory,
    /// checking read rights on the source and write rights on the
    /// destination. Charges the load half and the store half exactly as a
    /// `read` followed by a `write` would, but moves the bytes inside
    /// physical memory ([`PhysMem::copy_within`]) instead of bouncing
    /// them through a temporary host buffer. Overlapping physical ranges
    /// fall back to a reusable scratch bounce (memmove semantics).
    pub fn copy(&mut self, vcpu: VcpuId, dst: Addr, src: Addr, len: u64) -> Result<()> {
        // Checks and charges mirror `read(src)` then `write(dst)` so the
        // chaos draw order, fault identity and cycle timestamps are
        // unchanged from the bounce implementation this replaces.
        self.chaos_access(src, Access::Read)?;
        let sc = match self.translate_range(vcpu, src, len, Access::Read) {
            Ok(c) => c,
            Err(f) => return Err(self.raise(f)),
        };
        self.clock
            .advance(self.costs.mem_access + self.costs.copy_cost(len));
        self.chaos_access(dst, Access::Write)?;
        let dc = match self.translate_range(vcpu, dst, len, Access::Write) {
            Ok(c) => c,
            Err(f) => return Err(self.raise(f)),
        };
        self.clock
            .advance(self.costs.mem_access + self.costs.copy_cost(len));
        if sc.overlaps(&dc) {
            // Rare aliased case: snapshot the source through a reusable
            // scratch buffer so the destination sees the pre-copy bytes.
            self.scratch.clear();
            self.scratch.resize(len as usize, 0);
            let mut off = 0usize;
            for (pa, run) in sc.iter() {
                let run = run as usize;
                self.phys.read(pa, &mut self.scratch[off..off + run])?;
                off += run;
            }
            let mut off = 0usize;
            for (pa, run) in dc.iter() {
                let run = run as usize;
                self.phys.write(pa, &self.scratch[off..off + run])?;
                off += run;
            }
        } else {
            // Disjoint chunks: walk both chunk lists in lockstep and move
            // each common run directly inside physical memory.
            let (mut si, mut di) = (0usize, 0usize);
            let (mut s_off, mut d_off) = (0u64, 0u64);
            while si < sc.len() && di < dc.len() {
                let (spa, srun) = sc.get(si);
                let (dpa, drun) = dc.get(di);
                let n = (srun - s_off).min(drun - d_off);
                self.phys
                    .copy_within(PhysAddr(dpa.0 + d_off), PhysAddr(spa.0 + s_off), n)?;
                s_off += n;
                d_off += n;
                if s_off == srun {
                    si += 1;
                    s_off = 0;
                }
                if d_off == drun {
                    di += 1;
                    d_off = 0;
                }
            }
        }
        Ok(())
    }

    // ---- capabilities (CHERI backend) --------------------------------------

    /// Reads through a capability: tag/seal/bounds/permission checks,
    /// then the normal paging pipeline. Charges the per-access
    /// capability check on top of the memory costs.
    pub fn read_via_cap(
        &mut self,
        vcpu: VcpuId,
        cap: &crate::cap::Capability,
        offset: u64,
        dst: &mut [u8],
    ) -> Result<()> {
        let addr = cap.check_access(offset, dst.len() as u64, false)?;
        self.clock.advance(self.costs.cap_check);
        self.read(vcpu, addr, dst)
    }

    /// Writes through a capability (see [`Machine::read_via_cap`]).
    pub fn write_via_cap(
        &mut self,
        vcpu: VcpuId,
        cap: &crate::cap::Capability,
        offset: u64,
        src: &[u8],
    ) -> Result<()> {
        let addr = cap.check_access(offset, src.len() as u64, true)?;
        self.clock.advance(self.costs.cap_check);
        self.write(vcpu, addr, src)
    }

    // ---- PKRU -----------------------------------------------------------

    /// Returns the machine's gate capability. Isolation backends call this
    /// once at image-build time; application/library code must never hold
    /// it. (In real FlexOS the equivalent authority is "being one of the
    /// vetted `wrpkru` call sites".)
    pub fn gate_token(&self) -> GateToken {
        self.gate_token
    }

    /// Refines a translation miss for diagnostics, then records the
    /// fault. The cross-VM scan that upgrades `PageNotPresent` to
    /// `VmViolation` (clearer attack-test output: "that page exists, it
    /// just isn't yours") runs *only* here, on the fault-construction
    /// path — never on the per-access translation fast path, which used
    /// to walk every other VM's page table on every miss.
    fn raise(&mut self, f: Fault) -> Fault {
        let f = match f {
            Fault::PageNotPresent { addr, vm, access } if self.vms.len() > 1 => {
                let mapped_elsewhere = self
                    .vms
                    .iter()
                    .any(|other| other.id != vm && other.page_table.walk(addr.vpn()).is_some());
                if mapped_elsewhere {
                    Fault::VmViolation { addr, vm }
                } else {
                    Fault::PageNotPresent { addr, vm, access }
                }
            }
            f => f,
        };
        self.trap(f)
    }

    /// Records `f` in the fault trace (with the offending protection key
    /// for pkey violations) and hands it back — the raise-a-fault path.
    fn trap(&mut self, f: Fault) -> Fault {
        let key = match &f {
            Fault::PkeyViolation { key, .. } => Some(key.0 as u16),
            _ => None,
        };
        self.faults.record(f.kind(), key, self.clock.cycles());
        f
    }

    /// Fault telemetry: counts by class and by protection key.
    pub fn fault_trace(&self) -> &FaultTrace {
        &self.faults
    }

    /// Resets fault telemetry (benchmark warm-up support).
    pub fn reset_fault_trace(&mut self) {
        self.faults.reset();
    }

    /// Software-TLB telemetry: hits, misses and lazy whole-VM flushes.
    pub fn tlb_trace(&self) -> &TlbTrace {
        &self.tlb_trace
    }

    /// Resets TLB telemetry (benchmark warm-up support).
    pub fn reset_tlb_trace(&mut self) {
        self.tlb_trace.reset();
    }

    /// Request-span telemetry: causal per-request intervals and exact
    /// end-to-end latency samples (PR 7).
    #[inline]
    pub fn span_trace(&self) -> &SpanTrace {
        &self.spans
    }

    /// Mutable span tracer, for probes that hold `&mut Machine`.
    #[inline]
    pub fn span_trace_mut(&mut self) -> &mut SpanTrace {
        &mut self.spans
    }

    /// Resets span telemetry (benchmark warm-up support).
    pub fn reset_span_trace(&mut self) {
        self.spans = SpanTrace::new();
    }

    /// Executes `wrpkru` on `vcpu`. Under [`PkruGuard::GateCapability`],
    /// `token` must be the machine's gate token or the write faults —
    /// modelling FlexOS's defenses against unauthorized PKRU writes.
    pub fn wrpkru(&mut self, vcpu: VcpuId, pkru: Pkru, token: Option<GateToken>) -> Result<()> {
        match self.pkru_guard {
            PkruGuard::Off => {}
            PkruGuard::GateCapability => {
                if token != Some(self.gate_token) {
                    return Err(self.trap(Fault::UnauthorizedPkruWrite { attempted: pkru.0 }));
                }
            }
        }
        self.clock.advance(self.costs.wrpkru);
        self.vcpus[vcpu.0 as usize].pkru = pkru;
        Ok(())
    }

    /// `wrpkru` fused with a preceding flat charge of `overhead_cycles`.
    ///
    /// Batching gates use this to fold their guard-check/trampoline
    /// charge and the PKRU write into one machine call per crossing. The
    /// clock is additive and neither `charge` nor `wrpkru` draws chaos,
    /// so `wrpkru_with_overhead(v, p, t, c)` is cycle- and
    /// fault-identical to `charge(c)` followed by `wrpkru(v, p, t)`.
    pub fn wrpkru_with_overhead(
        &mut self,
        vcpu: VcpuId,
        pkru: Pkru,
        token: Option<GateToken>,
        overhead_cycles: u64,
    ) -> Result<()> {
        self.clock.advance(overhead_cycles);
        self.wrpkru(vcpu, pkru, token)
    }

    /// Reads `vcpu`'s PKRU (free: `rdpkru` is cheap and off the hot path).
    pub fn rdpkru(&self, vcpu: VcpuId) -> Pkru {
        self.vcpus[vcpu.0 as usize].pkru
    }

    /// Restores a saved PKRU during a context switch. This is the
    /// scheduler's privileged path (the paper: "the scheduler holds the
    /// value of the PKRU for threads that are not currently running") —
    /// it still requires the gate capability.
    pub fn restore_pkru(&mut self, vcpu: VcpuId, pkru: Pkru, token: GateToken) -> Result<()> {
        self.wrpkru(vcpu, pkru, Some(token))
    }

    // ---- inter-VM notifications ------------------------------------------

    /// Sends an inter-VM notification from `from`'s VM to `target`,
    /// charging the one-way notification cost. With a chaos plan
    /// installed the doorbell may be silently lost (the send cost is
    /// still charged — the interrupt just never arrives) or delivered
    /// twice; callers with delivery requirements must retry.
    pub fn notify(&mut self, from: VcpuId, target: VmId, word: u64) -> Result<()> {
        assert!((target.0 as usize) < self.vms.len(), "unknown {target}");
        let from_vm = self.vcpus[from.0 as usize].vm;
        self.clock.advance(self.costs.vm_notify);
        let fate = self
            .chaos
            .as_mut()
            .map_or(NotifyFate::Deliver, ChaosPlan::notify_fate);
        let n = Notification {
            from: from_vm,
            word,
        };
        match fate {
            NotifyFate::Deliver => self.vms[target.0 as usize].post(n),
            NotifyFate::Drop => {
                self.faults
                    .record_injected("injected-notify-drop", self.clock.cycles());
            }
            NotifyFate::Duplicate => {
                self.faults
                    .record_injected("injected-notify-dup", self.clock.cycles());
                self.vms[target.0 as usize].post(n.clone());
                self.vms[target.0 as usize].post(n);
            }
        }
        self.record_doorbell_span(from, from_vm, target, fate);
        Ok(())
    }

    /// Span probe shared by [`Machine::notify`] and
    /// [`Machine::notify_coalesced`]: both record the identical event
    /// for the identical fate, preserving the coalescing equivalence
    /// (PR 5) down to the span stream.
    fn record_doorbell_span(
        &mut self,
        from: VcpuId,
        from_vm: VmId,
        target: VmId,
        fate: NotifyFate,
    ) {
        let label = match fate {
            NotifyFate::Deliver => "doorbell",
            NotifyFate::Drop => "doorbell-drop",
            NotifyFate::Duplicate => "doorbell-dup",
        };
        let t1 = self.clock.cycles();
        self.spans.record(
            from.0 as u16,
            SpanKind::Doorbell,
            label,
            from_vm.0 as u16,
            target.0 as u16,
            t1 - self.costs.vm_notify,
            t1,
        );
    }

    /// Sends a notification that a batching gate has already proven
    /// redundant: the receiver is synchronously waiting on the same
    /// doorbell, so posting to the queue and immediately consuming the
    /// entry is pure host-side churn. This charges the identical
    /// notification cost, draws the identical chaos fate and records the
    /// identical injected-fault telemetry as [`Machine::notify`], but
    /// never touches the receiver's queue — callers get the fate back
    /// and must honour it (retry on [`NotifyFate::Drop`]) exactly as if
    /// they had posted and polled for real.
    ///
    /// Equivalence argument, per fate, against `notify` + an immediate
    /// `take_notification` of our own doorbell on an **empty** queue
    /// (callers must fall back to the real path when the queue is not
    /// empty): Deliver posts one entry and takes it back (queue
    /// unchanged, word always matches the sender's own); Drop posts
    /// nothing either way; Duplicate posts two identical entries of
    /// which one is taken and one absorbed by the duplicate-drain loop
    /// (queue unchanged again).
    pub fn notify_coalesced(&mut self, from: VcpuId, target: VmId) -> Result<NotifyFate> {
        assert!((target.0 as usize) < self.vms.len(), "unknown {target}");
        let from_vm = self.vcpus[from.0 as usize].vm;
        self.clock.advance(self.costs.vm_notify);
        let fate = self
            .chaos
            .as_mut()
            .map_or(NotifyFate::Deliver, ChaosPlan::notify_fate);
        match fate {
            NotifyFate::Deliver => {}
            NotifyFate::Drop => {
                self.faults
                    .record_injected("injected-notify-drop", self.clock.cycles());
            }
            NotifyFate::Duplicate => {
                self.faults
                    .record_injected("injected-notify-dup", self.clock.cycles());
            }
        }
        self.record_doorbell_span(from, from_vm, target, fate);
        Ok(fate)
    }

    /// Dequeues the oldest pending notification for `vm`.
    pub fn take_notification(&mut self, vm: VmId) -> Option<Notification> {
        self.vms[vm.0 as usize].take_notification()
    }

    /// Peeks at the oldest pending notification for `vm` without
    /// consuming it (used by gates to absorb duplicated doorbells).
    pub fn peek_notification(&self, vm: VmId) -> Option<&Notification> {
        self.vms[vm.0 as usize].peek_notification()
    }

    // ---- clock ------------------------------------------------------------

    /// The simulated clock.
    #[inline]
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Charges `cycles` to the clock (used by higher layers for modelled
    /// work that does not flow through `read`/`write`).
    pub fn charge(&mut self, cycles: u64) {
        self.clock.advance(cycles);
    }

    /// The machine's cost table.
    pub fn costs(&self) -> &CostTable {
        &self.costs
    }

    /// Remaining free physical frames.
    pub fn free_frames(&self) -> u64 {
        self.frames.free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::with_defaults()
    }

    #[test]
    fn boot_creates_vm0_and_vcpu0() {
        let m = machine();
        assert_eq!(m.vm_count(), 1);
        assert_eq!(m.vcpu(VcpuId(0)).vm, VmId(0));
    }

    #[test]
    fn alloc_write_read_round_trip() {
        let mut m = machine();
        let a = m
            .alloc_region(VmId(0), 8192, ProtKey(1), PageFlags::RW)
            .unwrap();
        m.write(VcpuId(0), a, b"hello-flexos").unwrap();
        let mut buf = [0u8; 12];
        m.read(VcpuId(0), a, &mut buf).unwrap();
        assert_eq!(&buf, b"hello-flexos");
    }

    #[test]
    fn cross_page_access_works() {
        let mut m = machine();
        let a = m
            .alloc_region(VmId(0), 2 * PAGE_SIZE, ProtKey(0), PageFlags::RW)
            .unwrap();
        let straddle = Addr(a.0 + PAGE_SIZE - 3);
        m.write(VcpuId(0), straddle, b"abcdef").unwrap();
        let mut buf = [0u8; 6];
        m.read(VcpuId(0), straddle, &mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
    }

    #[test]
    fn pkey_denial_faults_the_write() {
        let mut m = machine();
        let a = m
            .alloc_region(VmId(0), 128, ProtKey(3), PageFlags::RW)
            .unwrap();
        let tok = m.gate_token();
        let restrictive = Pkru::deny_all_except(&[ProtKey(0)], &[]);
        m.wrpkru(VcpuId(0), restrictive, Some(tok)).unwrap();
        let err = m.write(VcpuId(0), a, b"x").unwrap_err();
        assert!(matches!(
            err,
            Fault::PkeyViolation {
                key: ProtKey(3),
                ..
            }
        ));
        // Reads denied too (AD bit).
        let mut b = [0u8; 1];
        assert!(m.read(VcpuId(0), a, &mut b).is_err());
    }

    #[test]
    fn read_only_key_permits_reads_only() {
        let mut m = machine();
        let a = m
            .alloc_region(VmId(0), 128, ProtKey(2), PageFlags::RW)
            .unwrap();
        let tok = m.gate_token();
        let pkru = Pkru::deny_all_except(&[ProtKey(0)], &[ProtKey(2)]);
        m.wrpkru(VcpuId(0), pkru, Some(tok)).unwrap();
        let mut b = [0u8; 1];
        m.read(VcpuId(0), a, &mut b).unwrap();
        assert!(matches!(
            m.write(VcpuId(0), a, b"x"),
            Err(Fault::PkeyViolation { .. })
        ));
    }

    #[test]
    fn unauthorized_wrpkru_is_caught() {
        let mut m = machine();
        let err = m.wrpkru(VcpuId(0), Pkru::ALLOW_ALL, None).unwrap_err();
        assert!(matches!(err, Fault::UnauthorizedPkruWrite { .. }));
    }

    #[test]
    fn wrpkru_guard_off_reproduces_pku_pitfalls() {
        let mut m = Machine::new(MachineConfig {
            pkru_guard: PkruGuard::Off,
            ..Default::default()
        });
        // Attacker escalates without the token.
        m.wrpkru(VcpuId(0), Pkru::ALLOW_ALL, None).unwrap();
    }

    #[test]
    fn hot_write_is_cycle_identical_to_exact_write() {
        let mut m1 = machine();
        let mut m2 = machine();
        let a1 = m1
            .alloc_region(VmId(0), 4096, ProtKey(0), PageFlags::RW)
            .unwrap();
        let a2 = m2
            .alloc_region(VmId(0), 4096, ProtKey(0), PageFlags::RW)
            .unwrap();
        assert_eq!(a1, a2);
        let (t1, t2) = (m1.clock().cycles(), m2.clock().cycles());
        // Alternate between two descriptor words on the same page, like
        // a batched RPC gate does.
        for i in 0..8 {
            let off = 8 * (i % 2);
            m1.write_u64_hot(VcpuId(0), Addr(a1.0 + off), i).unwrap();
            m2.write_u64(VcpuId(0), Addr(a2.0 + off), i).unwrap();
        }
        assert_eq!(m1.clock().cycles() - t1, m2.clock().cycles() - t2);
        for off in [0, 8] {
            assert_eq!(
                m1.read_u64(VcpuId(0), Addr(a1.0 + off)).unwrap(),
                m2.read_u64(VcpuId(0), Addr(a2.0 + off)).unwrap()
            );
        }
    }

    #[test]
    fn hot_write_never_survives_table_mutation() {
        let mut m = machine();
        let a = m
            .alloc_region(VmId(0), 4096, ProtKey(0), PageFlags::RW)
            .unwrap();
        m.write_u64_hot(VcpuId(0), a, 1).unwrap(); // fills the slot
        m.unmap_region(VmId(0), a, 4096).unwrap();
        let err = m.write_u64_hot(VcpuId(0), a, 2).unwrap_err();
        assert!(matches!(err, Fault::PageNotPresent { .. }));
    }

    #[test]
    fn hot_write_never_survives_pkru_restriction() {
        let mut m = machine();
        let a = m
            .alloc_region(VmId(0), 4096, ProtKey(3), PageFlags::RW)
            .unwrap();
        m.write_u64_hot(VcpuId(0), a, 1).unwrap(); // fills the slot
        let tok = m.gate_token();
        let restrictive = Pkru::deny_all_except(&[ProtKey(0)], &[]);
        m.wrpkru(VcpuId(0), restrictive, Some(tok)).unwrap();
        let err = m.write_u64_hot(VcpuId(0), a, 2).unwrap_err();
        assert!(matches!(
            err,
            Fault::PkeyViolation {
                key: ProtKey(3),
                ..
            }
        ));
    }

    #[test]
    fn hot_write_draws_identical_chaos_fates() {
        use crate::chaos::{ChaosConfig, ChaosPlan, Schedule};
        // Spurious pkey faults fire on the same access index through
        // either path, and cycles stay identical across the mix of
        // clean and faulting stores.
        let run = |hot: bool| {
            let mut m = machine();
            let a = m
                .alloc_region(VmId(0), 4096, ProtKey(0), PageFlags::RW)
                .unwrap();
            m.set_chaos(ChaosPlan::new(ChaosConfig {
                seed: 3,
                spurious_pkey: Schedule::EveryNth(3),
                ..Default::default()
            }));
            let t0 = m.clock().cycles();
            let mut faults = Vec::new();
            for i in 0..12 {
                let r = if hot {
                    m.write_u64_hot(VcpuId(0), a, i)
                } else {
                    m.write_u64(VcpuId(0), a, i)
                };
                if let Err(e) = r {
                    faults.push((i, e.kind()));
                }
            }
            (m.clock().cycles() - t0, faults)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn private_vm_memory_is_invisible_to_other_vms() {
        let mut m = machine();
        let vm1 = m.add_vm(false);
        let vcpu1 = m.add_vcpu(vm1);
        let secret = m
            .alloc_region(VmId(0), 64, ProtKey(0), PageFlags::RW)
            .unwrap();
        m.write(VcpuId(0), secret, b"secret").unwrap();
        let mut buf = [0u8; 6];
        let err = m.read(vcpu1, secret, &mut buf).unwrap_err();
        assert!(matches!(err, Fault::VmViolation { .. }));
    }

    #[test]
    fn shared_window_is_visible_to_all_vms_at_same_address() {
        let mut m = machine();
        let shared = m.alloc_shared_region(4096, ProtKey(0)).unwrap();
        let vm1 = m.add_vm(false); // Added *after* the shared alloc.
        let vcpu1 = m.add_vcpu(vm1);
        m.write(VcpuId(0), shared, b"rpc-frame").unwrap();
        let mut buf = [0u8; 9];
        m.read(vcpu1, shared, &mut buf).unwrap();
        assert_eq!(&buf, b"rpc-frame");
    }

    #[test]
    fn notifications_cost_cycles_and_arrive_fifo() {
        let mut m = machine();
        let vm1 = m.add_vm(false);
        let before = m.clock().cycles();
        m.notify(VcpuId(0), vm1, 7).unwrap();
        assert_eq!(m.clock().cycles() - before, m.costs().vm_notify);
        let n = m.take_notification(vm1).unwrap();
        assert_eq!(n.word, 7);
        assert_eq!(n.from, VmId(0));
    }

    #[test]
    fn memory_accesses_advance_the_clock() {
        let mut m = machine();
        let a = m
            .alloc_region(VmId(0), 4096, ProtKey(0), PageFlags::RW)
            .unwrap();
        let c0 = m.clock().cycles();
        m.write(VcpuId(0), a, &[0u8; 4096]).unwrap();
        let charged = m.clock().cycles() - c0;
        assert_eq!(charged, m.costs().mem_access + m.costs().copy_cost(4096));
    }

    #[test]
    fn write_to_read_only_page_faults() {
        let mut m = machine();
        let a = m
            .alloc_region(VmId(0), 64, ProtKey(0), PageFlags::RO)
            .unwrap();
        assert!(matches!(
            m.write(VcpuId(0), a, b"x"),
            Err(Fault::WriteToReadOnly { .. })
        ));
    }

    #[test]
    fn null_page_faults() {
        let mut m = machine();
        let mut b = [0u8; 1];
        assert!(matches!(
            m.read(VcpuId(0), Addr(0), &mut b),
            Err(Fault::PageNotPresent { .. })
        ));
    }

    #[test]
    fn set_region_key_retags() {
        let mut m = machine();
        let a = m
            .alloc_region(VmId(0), 4096, ProtKey(1), PageFlags::RW)
            .unwrap();
        m.set_region_key(VmId(0), a, 4096, ProtKey(4)).unwrap();
        let tok = m.gate_token();
        let pkru = Pkru::deny_all_except(&[ProtKey(1)], &[]);
        m.wrpkru(VcpuId(0), pkru, Some(tok)).unwrap();
        // Now tagged key 4, which the PKRU denies.
        assert!(matches!(
            m.write(VcpuId(0), a, b"x"),
            Err(Fault::PkeyViolation { .. })
        ));
    }

    #[test]
    fn sealed_page_tables_reject_retag() {
        let mut m = machine();
        let a = m
            .alloc_region(VmId(0), 4096, ProtKey(1), PageFlags::RW)
            .unwrap();
        m.seal_page_tables();
        assert!(m.set_region_key(VmId(0), a, 4096, ProtKey(2)).is_err());
    }

    #[test]
    fn copy_moves_bytes_between_regions() {
        let mut m = machine();
        let src = m
            .alloc_region(VmId(0), 4096, ProtKey(0), PageFlags::RW)
            .unwrap();
        let dst = m
            .alloc_region(VmId(0), 4096, ProtKey(0), PageFlags::RW)
            .unwrap();
        m.write(VcpuId(0), src, b"payload").unwrap();
        m.copy(VcpuId(0), dst, src, 7).unwrap();
        let mut buf = [0u8; 7];
        m.read(VcpuId(0), dst, &mut buf).unwrap();
        assert_eq!(&buf, b"payload");
    }

    #[test]
    fn chaos_injects_oom_on_schedule() {
        use crate::chaos::{ChaosConfig, ChaosPlan, Schedule};
        let mut m = machine();
        m.set_chaos(ChaosPlan::new(ChaosConfig {
            seed: 1,
            alloc_fail: Schedule::EveryNth(2),
            ..Default::default()
        }));
        assert!(m
            .alloc_region(VmId(0), 64, ProtKey(0), PageFlags::RW)
            .is_ok());
        let err = m
            .alloc_region(VmId(0), 64, ProtKey(0), PageFlags::RW)
            .unwrap_err();
        assert!(matches!(err, Fault::OutOfMemory { .. }));
        assert_eq!(m.chaos_stats().unwrap().injected_oom, 1);
        assert_eq!(m.fault_trace().count("injected-oom"), 1);
    }

    #[test]
    fn chaos_drops_and_duplicates_doorbells() {
        use crate::chaos::{ChaosConfig, ChaosPlan, Schedule};
        let mut m = machine();
        let vm1 = m.add_vm(false);
        m.set_chaos(ChaosPlan::new(ChaosConfig {
            seed: 1,
            notify_drop: Schedule::EveryNth(2),
            ..Default::default()
        }));
        m.notify(VcpuId(0), vm1, 1).unwrap();
        m.notify(VcpuId(0), vm1, 2).unwrap(); // 2nd: dropped
        assert_eq!(m.take_notification(vm1).unwrap().word, 1);
        assert!(m.take_notification(vm1).is_none());
        assert_eq!(m.chaos_stats().unwrap().dropped_notifications, 1);

        m.set_chaos(ChaosPlan::new(ChaosConfig {
            seed: 1,
            notify_dup: Schedule::EveryNth(1),
            ..Default::default()
        }));
        m.notify(VcpuId(0), vm1, 9).unwrap();
        assert_eq!(m.take_notification(vm1).unwrap().word, 9);
        assert_eq!(m.peek_notification(vm1).unwrap().word, 9);
        assert_eq!(m.take_notification(vm1).unwrap().word, 9);
        assert_eq!(m.chaos_stats().unwrap().duplicated_notifications, 1);
    }

    #[test]
    fn chaos_trips_spurious_pkey_faults() {
        use crate::chaos::{ChaosConfig, ChaosPlan, Schedule};
        let mut m = machine();
        let a = m
            .alloc_region(VmId(0), 64, ProtKey(0), PageFlags::RW)
            .unwrap();
        m.set_chaos(ChaosPlan::new(ChaosConfig {
            seed: 1,
            spurious_pkey: Schedule::EveryNth(3),
            ..Default::default()
        }));
        m.write(VcpuId(0), a, b"a").unwrap();
        m.write(VcpuId(0), a, b"b").unwrap();
        let err = m.write(VcpuId(0), a, b"c").unwrap_err();
        assert!(matches!(err, Fault::PkeyViolation { .. }));
        assert_eq!(m.chaos_stats().unwrap().spurious_pkey_faults, 1);
        assert_eq!(m.fault_trace().count("injected-pkey"), 1);
    }

    #[test]
    fn idle_chaos_plan_is_cycle_neutral() {
        use crate::chaos::{ChaosConfig, ChaosPlan};
        let run = |chaos: bool| -> u64 {
            let mut m = machine();
            if chaos {
                m.set_chaos(ChaosPlan::new(ChaosConfig::with_seed(42)));
            }
            let vm1 = m.add_vm(false);
            let a = m
                .alloc_region(VmId(0), 4096, ProtKey(0), PageFlags::RW)
                .unwrap();
            m.write(VcpuId(0), a, &[7u8; 4096]).unwrap();
            let mut buf = [0u8; 256];
            m.read(VcpuId(0), a, &mut buf).unwrap();
            m.notify(VcpuId(0), vm1, 3).unwrap();
            m.take_notification(vm1).unwrap();
            m.clock().cycles()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn u64_helpers_round_trip() {
        let mut m = machine();
        let a = m
            .alloc_region(VmId(0), 64, ProtKey(0), PageFlags::RW)
            .unwrap();
        m.write_u64(VcpuId(0), a, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(m.read_u64(VcpuId(0), a).unwrap(), 0xdead_beef_cafe_f00d);
    }
}
