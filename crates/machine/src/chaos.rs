//! `flexos-inject`: seeded, deterministic fault injection.
//!
//! A [`ChaosPlan`] installs probabilistic or scheduled faults at the
//! machine's choke points: allocation failures in
//! [`Machine::alloc_region`], lost/duplicated doorbell notifications in
//! [`Machine::notify`], and spurious protection-key violations on a
//! configurable fraction of memory accesses. (The NIC link applies the
//! same machinery in `flexos-net`.)
//!
//! Determinism is the whole point: the only entropy source is a
//! [`SplitMix64`] stream seeded from [`ChaosConfig::seed`] — no
//! wall-clock, no OS randomness — and every injection site draws from
//! its *own* stream (derived from the seed and a per-site salt), so the
//! fault schedule at one site is a pure function of the seed and that
//! site's call count, independent of how sites interleave. The same
//! seed always produces the same fault schedule.
//!
//! [`Machine::alloc_region`]: crate::Machine::alloc_region
//! [`Machine::notify`]: crate::Machine::notify

/// The SplitMix64 PRNG (Steele, Lea & Flood's `splitmix64`): a tiny,
/// high-quality, fully deterministic 64-bit generator. Used for every
/// chaos decision in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A draw in `[0, bound)` (`bound` must be non-zero). The modulo
    /// bias is irrelevant at the per-mille resolutions used here.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// True with probability `per_mille / 1000`.
    pub fn hit(&mut self, per_mille: u16) -> bool {
        self.below(1000) < u64::from(per_mille)
    }
}

/// When a fault fires at an injection site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Never fires (the default).
    #[default]
    Off,
    /// Fires on each call independently with probability `n / 1000`,
    /// drawn from the site's own PRNG stream.
    PerMille(u16),
    /// Fires deterministically on every `n`-th call (1-based), for
    /// reproducing a specific failure without probability.
    EveryNth(u64),
}

/// One injection site: its schedule, its private PRNG stream and its
/// call counter.
#[derive(Debug, Clone)]
struct Site {
    schedule: Schedule,
    rng: SplitMix64,
    calls: u64,
    fired: u64,
}

impl Site {
    fn new(schedule: Schedule, seed: u64, salt: u64) -> Self {
        Self {
            schedule,
            // Seeding with `seed ^ salt` and discarding nothing is fine:
            // splitmix64 scrambles consecutive seeds into unrelated
            // streams by construction.
            rng: SplitMix64::new(seed ^ salt),
            calls: 0,
            fired: 0,
        }
    }

    fn fires(&mut self) -> bool {
        self.calls += 1;
        let hit = match self.schedule {
            Schedule::Off => false,
            Schedule::PerMille(p) => self.rng.hit(p),
            Schedule::EveryNth(n) => n > 0 && self.calls.is_multiple_of(n),
        };
        if hit {
            self.fired += 1;
        }
        hit
    }
}

/// Construction-time description of what to inject where.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosConfig {
    /// PRNG seed; the same seed always yields the same fault schedule.
    pub seed: u64,
    /// Frame-allocator failures in `alloc_region`/`alloc_shared_region`.
    pub alloc_fail: Schedule,
    /// Doorbell notifications silently lost in `notify` (cycles are
    /// still charged — the send happened, the interrupt didn't arrive).
    pub notify_drop: Schedule,
    /// Doorbell notifications delivered twice.
    pub notify_dup: Schedule,
    /// Spurious protection-key violations on `read`/`write`/`fill`.
    pub spurious_pkey: Schedule,
}

impl ChaosConfig {
    /// A config with the given seed and everything off.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }
}

/// What the chaos layer decided for one `notify` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotifyFate {
    /// Deliver normally.
    Deliver,
    /// Charge the send but lose the doorbell.
    Drop,
    /// Deliver the doorbell twice.
    Duplicate,
}

/// Counters of what was actually injected (for reports and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Allocation requests forced to fail.
    pub injected_oom: u64,
    /// Doorbell notifications dropped.
    pub dropped_notifications: u64,
    /// Doorbell notifications duplicated.
    pub duplicated_notifications: u64,
    /// Memory accesses forced to fault.
    pub spurious_pkey_faults: u64,
}

// Per-site salts: arbitrary distinct constants so each site derives an
// independent stream from the one seed.
const SALT_ALLOC: u64 = 0x616c_6c6f_632d_6f6f; // "alloc-oo"
const SALT_NOTIFY_DROP: u64 = 0x6e6f_7469_6679_2d64; // "notify-d"
const SALT_NOTIFY_DUP: u64 = 0x6e6f_7469_6679_2d75; // "notify-u"
const SALT_PKEY: u64 = 0x706b_6579_2d73_7075; // "pkey-spu"

/// The live fault-injection plan a [`Machine`](crate::Machine) carries.
///
/// Decisions are drawn per site in call order; the same seed and the
/// same per-site call sequence always produce the same schedule.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    alloc_fail: Site,
    notify_drop: Site,
    notify_dup: Site,
    spurious_pkey: Site,
    stats: ChaosStats,
}

impl ChaosPlan {
    /// Builds the plan from a config.
    pub fn new(cfg: ChaosConfig) -> Self {
        Self {
            alloc_fail: Site::new(cfg.alloc_fail, cfg.seed, SALT_ALLOC),
            notify_drop: Site::new(cfg.notify_drop, cfg.seed, SALT_NOTIFY_DROP),
            notify_dup: Site::new(cfg.notify_dup, cfg.seed, SALT_NOTIFY_DUP),
            spurious_pkey: Site::new(cfg.spurious_pkey, cfg.seed, SALT_PKEY),
            stats: ChaosStats::default(),
        }
    }

    /// Decides whether the current allocation request must fail.
    pub fn alloc_should_fail(&mut self) -> bool {
        let hit = self.alloc_fail.fires();
        if hit {
            self.stats.injected_oom += 1;
        }
        hit
    }

    /// Decides the fate of the current doorbell notification. Drop wins
    /// over duplicate when both fire (a lost doorbell cannot also arrive
    /// twice); both sites still advance so their schedules stay
    /// interleaving-independent.
    pub fn notify_fate(&mut self) -> NotifyFate {
        let drop = self.notify_drop.fires();
        let dup = self.notify_dup.fires();
        if drop {
            self.stats.dropped_notifications += 1;
            NotifyFate::Drop
        } else if dup {
            self.stats.duplicated_notifications += 1;
            NotifyFate::Duplicate
        } else {
            NotifyFate::Deliver
        }
    }

    /// Decides whether the current memory access must spuriously fault.
    pub fn access_should_fault(&mut self) -> bool {
        let hit = self.spurious_pkey.fires();
        if hit {
            self.stats.spurious_pkey_faults += 1;
        }
        hit
    }

    /// What was injected so far.
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference outputs for seed 1234567 from the canonical
        // splitmix64.c.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = ChaosConfig {
            seed: 42,
            alloc_fail: Schedule::PerMille(100),
            notify_drop: Schedule::PerMille(250),
            notify_dup: Schedule::PerMille(50),
            spurious_pkey: Schedule::PerMille(10),
        };
        let mut a = ChaosPlan::new(cfg);
        let mut b = ChaosPlan::new(cfg);
        for _ in 0..5000 {
            assert_eq!(a.alloc_should_fail(), b.alloc_should_fail());
            assert_eq!(a.notify_fate(), b.notify_fate());
            assert_eq!(a.access_should_fault(), b.access_should_fault());
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn sites_are_independent_of_interleaving() {
        let cfg = ChaosConfig {
            seed: 7,
            alloc_fail: Schedule::PerMille(500),
            spurious_pkey: Schedule::PerMille(500),
            ..Default::default()
        };
        // Plan A: all allocs first, then all accesses.
        let mut a = ChaosPlan::new(cfg);
        let allocs_a: Vec<bool> = (0..100).map(|_| a.alloc_should_fail()).collect();
        let accesses_a: Vec<bool> = (0..100).map(|_| a.access_should_fault()).collect();
        // Plan B: interleaved.
        let mut b = ChaosPlan::new(cfg);
        let mut allocs_b = Vec::new();
        let mut accesses_b = Vec::new();
        for _ in 0..100 {
            allocs_b.push(b.alloc_should_fail());
            accesses_b.push(b.access_should_fault());
        }
        assert_eq!(allocs_a, allocs_b);
        assert_eq!(accesses_a, accesses_b);
    }

    #[test]
    fn per_mille_rate_is_roughly_honoured() {
        let mut site = Site::new(Schedule::PerMille(100), 99, 0);
        let hits = (0..10_000).filter(|_| site.fires()).count();
        // 10% ± generous tolerance.
        assert!((700..1300).contains(&hits), "{hits} hits");
    }

    #[test]
    fn every_nth_is_exact() {
        let mut site = Site::new(Schedule::EveryNth(3), 0, 0);
        let pattern: Vec<bool> = (0..9).map(|_| site.fires()).collect();
        assert_eq!(
            pattern,
            vec![false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn off_never_fires_and_drop_beats_dup() {
        let mut plan = ChaosPlan::new(ChaosConfig::with_seed(3));
        for _ in 0..100 {
            assert!(!plan.alloc_should_fail());
            assert_eq!(plan.notify_fate(), NotifyFate::Deliver);
            assert!(!plan.access_should_fault());
        }
        let mut plan = ChaosPlan::new(ChaosConfig {
            seed: 3,
            notify_drop: Schedule::EveryNth(1),
            notify_dup: Schedule::EveryNth(1),
            ..Default::default()
        });
        assert_eq!(plan.notify_fate(), NotifyFate::Drop);
        assert_eq!(plan.stats().dropped_notifications, 1);
        assert_eq!(plan.stats().duplicated_notifications, 0);
    }
}
