//! # flexos-machine — deterministic simulated hardware substrate
//!
//! This crate is the hardware the FlexOS-rs reproduction runs on: a
//! deterministic, cycle-accounted model of the paper's testbed (an Intel
//! Xeon Silver 4110 @ 2.1 GHz running KVM/Xen guests with Memory
//! Protection Keys).
//!
//! It provides, faithfully to the mechanisms the paper builds on:
//!
//! * **Paged memory** ([`mem`], [`page`], [`frame`], [`addr`]) — 4 KiB
//!   pages, sparse per-VM page tables, a physical frame allocator, and a
//!   flat physical byte store that actually holds all simulated data.
//! * **Memory Protection Keys** ([`pkey`]) — 16 keys, PKRU with AD/WD bits
//!   per the Intel SDM, checked on every modelled access; `wrpkru` guarded
//!   by a gate capability (modelling ERIM call-site vetting / Hodor
//!   runtime checks / page-table sealing).
//! * **EPT-style VM isolation** ([`vm`]) — multiple address spaces, a
//!   shared window mapped at identical addresses in every VM, and
//!   inter-VM notification doorbells for RPC.
//! * **Cycle-accurate accounting** ([`clock`]) — every modelled operation
//!   charges a calibrated cost; throughput numbers in the benchmark
//!   harness are derived purely from this clock, making every experiment
//!   bit-for-bit reproducible.
//!
//! The enforcement is real within the model: data lives in simulated
//! physical memory and every access is translated and permission-checked,
//! so the integration tests can demonstrate attacks being caught (or not)
//! depending on the configured isolation — the core claim of FlexOS.
//!
//! ## Example
//!
//! ```
//! use flexos_machine::{Machine, MachineConfig};
//! use flexos_machine::addr::Addr;
//! use flexos_machine::cpu::VcpuId;
//! use flexos_machine::page::PageFlags;
//! use flexos_machine::pkey::{Pkru, ProtKey};
//! use flexos_machine::vm::VmId;
//!
//! let mut m = Machine::with_defaults();
//! // Give the "network stack" its own protection domain (key 1).
//! let buf = m.alloc_region(VmId(0), 4096, ProtKey(1), PageFlags::RW).unwrap();
//! m.write(VcpuId(0), buf, b"packet").unwrap();
//!
//! // Enter a compartment that may not touch key 1:
//! let tok = m.gate_token();
//! m.wrpkru(VcpuId(0), Pkru::deny_all_except(&[ProtKey(0)], &[]), Some(tok)).unwrap();
//! assert!(m.write(VcpuId(0), buf, b"overwrite!").is_err()); // caught!
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod cap;
pub mod chaos;
pub mod clock;
pub mod cpu;
pub mod fault;
pub mod frame;
pub mod machine;
pub mod mem;
pub mod page;
pub mod pkey;
pub mod smp;
pub mod tlb;
pub mod vm;

pub use addr::{Addr, PhysAddr, PAGE_SIZE};
pub use cap::{CapPerms, Capability, OType};
pub use chaos::{ChaosConfig, ChaosPlan, ChaosStats, NotifyFate, Schedule, SplitMix64};
pub use clock::{cycles_to_nanos, nanos_to_cycles, throughput_mbps, Clock, CostTable, CPU_FREQ_HZ};
pub use cpu::{PkruGuard, Vcpu, VcpuId};
pub use fault::{Fault, Result};
pub use machine::{GateToken, Machine, MachineConfig};
pub use page::PageFlags;
pub use pkey::{Access, Pkru, ProtKey};
pub use smp::{SmpConfig, SmpMode};
pub use tlb::{Tlb, TLB_ENTRIES};
pub use vm::VmId;
