//! Ablation: parallel, memoized design-space exploration vs the naive
//! serial, uncached walk (the engine this PR replaced).
//!
//! Three measurements on a synthetic 16-library image (5 of which carry
//! an SH suggestion, so 5 backends × 2^5 masks = 160 candidates):
//!
//! 1. **memoization** — cached vs uncached serial exploration. The
//!    cache answers the O(n²)-per-candidate pairwise checks once per
//!    distinct effective-spec pair across the whole run, so this is a
//!    ≥2× win even on a single core.
//! 2. **parallel scaling** — the cached engine at threads ∈ {1, 2, 8}.
//!    Wall-clock speedup tracks the machine's core count (this is a
//!    per-candidate-independent fan-out); on a single-core host the
//!    thread sweep only measures coordination overhead.
//! 3. **determinism** — asserted, not timed: every thread count must
//!    produce a byte-identical candidate list.
//!
//! The summary pass prints the measured speedups and the cache hit rate.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use flexos::build::{plan, BackendChoice, ImageConfig};
use flexos::explore::{
    estimate_request_cycles, explore, security_score, CallProfile, Candidate, ExploreOptions,
};
use flexos::spec::suggest_sh;
use flexos::synth::{synthetic_image, SyntheticImage};
use flexos_machine::CostTable;
use std::time::Instant;

const BACKENDS: &[BackendChoice] = &[
    BackendChoice::None,
    BackendChoice::MpkShared,
    BackendChoice::MpkSwitched,
    BackendChoice::VmRpc,
    BackendChoice::Cheri,
];

/// The pre-memoization exploration engine, reconstructed from the public
/// API: a serial nested loop where every candidate re-runs every
/// pairwise compatibility check from scratch (`plan` + `security_score`,
/// no shared cache). This is the ablation baseline.
fn uncached_serial(
    base: &ImageConfig,
    profile: &CallProfile,
    costs: &CostTable,
) -> Vec<(String, u64, u64)> {
    let suggestions: Vec<_> = base
        .libraries
        .iter()
        .map(|l| {
            let s = suggest_sh(&l.spec);
            (!s.is_empty()).then_some(s)
        })
        .collect();
    let toggleable: Vec<usize> = (0..base.libraries.len())
        .filter(|&i| suggestions[i].is_some())
        .collect();
    let mut out = Vec::new();
    for &backend in BACKENDS {
        for mask in 0..(1u32 << toggleable.len()) {
            let mut cfg = base.clone();
            cfg.backend = backend;
            let mut hardened = Vec::new();
            for (bit, &i) in toggleable.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    cfg.libraries[i].sh = suggestions[i].clone().expect("toggleable");
                    hardened.push(cfg.libraries[i].spec.name.clone());
                }
            }
            let Ok(p) = plan(cfg) else { continue };
            let cycles = estimate_request_cycles(&p, profile, costs);
            let security = security_score(&p).to_bits();
            let label = if hardened.is_empty() {
                format!("{backend}")
            } else {
                format!("{backend} + SH({})", hardened.join(","))
            };
            out.push((label, cycles, security));
        }
    }
    out
}

fn canonical(cands: &[Candidate]) -> Vec<(String, u64, u64)> {
    cands
        .iter()
        .map(|c| (c.label.clone(), c.cycles, c.security.to_bits()))
        .collect()
}

fn workload() -> (SyntheticImage, CostTable) {
    (synthetic_image(16, 5, 42), CostTable::default())
}

fn bench_memoization(c: &mut Criterion) {
    let (img, costs) = workload();
    let mut g = c.benchmark_group("explore_memoization");
    g.bench_function("uncached_serial", |b| {
        b.iter(|| black_box(uncached_serial(&img.config, &img.profile, &costs)))
    });
    g.bench_function("cached_serial", |b| {
        b.iter(|| {
            black_box(explore(
                &img.config,
                BACKENDS,
                &img.profile,
                &costs,
                &ExploreOptions::serial(),
            ))
        })
    });
    g.finish();
}

fn bench_thread_sweep(c: &mut Criterion) {
    let (img, costs) = workload();
    let mut g = c.benchmark_group("explore_threads");
    for threads in [1usize, 2, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                black_box(explore(
                    &img.config,
                    BACKENDS,
                    &img.profile,
                    &costs,
                    &ExploreOptions::default().with_threads(t),
                ))
            })
        });
    }
    g.finish();
}

fn summary(_c: &mut Criterion) {
    let (img, costs) = workload();
    let smoke = std::env::args().any(|a| a == "--test");
    let reps = if smoke { 1 } else { 5 };

    let time = |f: &dyn Fn()| {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        start.elapsed() / reps
    };

    let serial = explore(
        &img.config,
        BACKENDS,
        &img.profile,
        &costs,
        &ExploreOptions::serial(),
    );
    assert_eq!(serial.candidates.len(), BACKENDS.len() * 32);
    println!(
        "explore summary: {} candidates, cache {} entries, hit rate {:.1}%",
        serial.candidates.len(),
        serial.cache_stats.entries,
        serial.cache_stats.hit_rate() * 100.0
    );

    // Determinism: every thread count must match the serial list exactly.
    for threads in [2usize, 8, 0] {
        let par = explore(
            &img.config,
            BACKENDS,
            &img.profile,
            &costs,
            &ExploreOptions::default().with_threads(threads),
        );
        assert_eq!(
            canonical(&par.candidates),
            canonical(&serial.candidates),
            "threads={threads} diverged from serial"
        );
    }
    println!("explore summary: parallel output byte-identical to serial (threads 2, 8, auto)");

    // The uncached baseline must agree on the visible results too.
    assert_eq!(
        uncached_serial(&img.config, &img.profile, &costs),
        canonical(&serial.candidates)
    );

    let t_uncached = time(&|| {
        black_box(uncached_serial(&img.config, &img.profile, &costs));
    });
    let t_cached = time(&|| {
        black_box(explore(
            &img.config,
            BACKENDS,
            &img.profile,
            &costs,
            &ExploreOptions::serial(),
        ));
    });
    let t_par8 = time(&|| {
        black_box(explore(
            &img.config,
            BACKENDS,
            &img.profile,
            &costs,
            &ExploreOptions::default().with_threads(8),
        ));
    });
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "explore summary: uncached serial {t_uncached:?}, cached serial {t_cached:?} \
         ({:.2}x), cached threads=8 {t_par8:?} ({:.2}x vs uncached; {cores} core(s) available)",
        t_uncached.as_secs_f64() / t_cached.as_secs_f64(),
        t_uncached.as_secs_f64() / t_par8.as_secs_f64(),
    );
    if !smoke {
        assert!(
            t_uncached.as_secs_f64() / t_cached.as_secs_f64() >= 2.0
                || t_uncached.as_secs_f64() / t_par8.as_secs_f64() >= 2.0,
            "memoized exploration should be at least 2x the uncached baseline"
        );
    }
}

criterion_group!(benches, bench_memoization, bench_thread_sweep, summary);
criterion_main!(benches);
