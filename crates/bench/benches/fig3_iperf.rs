//! Figure 3 bench: iperf throughput across isolation configurations.
//!
//! Criterion tracks the wall-clock cost of simulating each configuration;
//! the simulated throughput itself (the figure's y-axis) is printed by
//! `cargo run -p flexos-bench --bin reproduce -- fig3`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexos_apps::iperf::run_iperf;
use flexos_bench::experiments::Fig3Config;

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_iperf");
    g.sample_size(10);
    for config in Fig3Config::ALL {
        for recv_buf in [64u64, 16 * 1024] {
            let params = config.params(recv_buf, 128 * 1024);
            g.bench_with_input(
                BenchmarkId::new(config.label(), recv_buf),
                &params,
                |b, params| {
                    b.iter(|| {
                        let r = run_iperf(params);
                        assert!(r.bytes >= 128 * 1024);
                        r.mbps
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
