//! Ablation: allocator designs and topologies (DESIGN.md §6.3).
//!
//! Compares the three allocator implementations under a mixed workload,
//! and the global-vs-per-compartment topology under instrumentation —
//! the mechanism behind Figure 4's allocator result.

use criterion::{criterion_group, criterion_main, Criterion};
use flexos::build::BackendChoice;
use flexos_apps::redis::{run_redis, Mix, RedisParams};
use flexos_apps::CompartmentModel;
use flexos_kernel::alloc::{Allocator, BuddyAllocator, BumpAllocator, FreeListAllocator};
use flexos_machine::{Machine, PageFlags, ProtKey, VmId};

fn mixed_workload(a: &mut dyn Allocator, m: &mut Machine) {
    let mut live = Vec::new();
    for i in 0..256u64 {
        let size = 16 + (i * 37) % 480;
        if let Ok(p) = a.alloc(m, size, 16) {
            live.push(p);
        }
        if i % 3 == 2 {
            if let Some(p) = live.pop() {
                a.free(m, p).unwrap();
            }
        }
    }
    for p in live {
        a.free(m, p).unwrap();
    }
}

fn bench_allocators(c: &mut Criterion) {
    let mut g = c.benchmark_group("allocator_designs");
    g.bench_function("freelist", |b| {
        let mut m = Machine::with_defaults();
        let base = m
            .alloc_region(VmId(0), 1 << 20, ProtKey(0), PageFlags::RW)
            .unwrap();
        b.iter(|| mixed_workload(&mut FreeListAllocator::new(base, 1 << 20), &mut m))
    });
    g.bench_function("buddy", |b| {
        let mut m = Machine::with_defaults();
        let base = m
            .alloc_region(VmId(0), 1 << 20, ProtKey(0), PageFlags::RW)
            .unwrap();
        b.iter(|| mixed_workload(&mut BuddyAllocator::new(base, 1 << 20), &mut m))
    });
    g.bench_function("bump_with_reset", |b| {
        let mut m = Machine::with_defaults();
        let base = m
            .alloc_region(VmId(0), 1 << 20, ProtKey(0), PageFlags::RW)
            .unwrap();
        b.iter(|| {
            let mut a = BumpAllocator::new(base, 1 << 20);
            for i in 0..256u64 {
                let _ = a.alloc(&mut m, 16 + (i * 37) % 480, 16);
            }
            a.reset();
        })
    });
    g.finish();
}

fn bench_topology(c: &mut Criterion) {
    let mut g = c.benchmark_group("allocator_topology_under_sh");
    g.sample_size(10);
    for (name, dedicated) in [("global", false), ("per_compartment", true)] {
        let params = RedisParams {
            model: CompartmentModel::NwOnly,
            backend: BackendChoice::None,
            sh_on: vec!["lwip".into()],
            dedicated_allocators: dedicated,
            mix: Mix::Set,
            ops: 200,
            ..RedisParams::default()
        };
        g.bench_function(name, |b| {
            b.iter(|| {
                let r = run_redis(&params).expect("redis run");
                r.mreq_per_s
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_allocators, bench_topology);
criterion_main!(benches);
