//! Figure 5 bench: Redis across MPK compartmentalization models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexos::build::BackendChoice;
use flexos_apps::redis::{run_redis, Mix, RedisParams};
use flexos_apps::CompartmentModel;

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_redis_mpk");
    g.sample_size(10);
    let mut cases: Vec<(String, RedisParams)> = vec![(
        "No-Isol".into(),
        RedisParams {
            mix: Mix::Get,
            ops: 200,
            ..RedisParams::default()
        },
    )];
    for model in [
        CompartmentModel::NwOnly,
        CompartmentModel::NwSchedRest,
        CompartmentModel::NwAndSchedRest,
    ] {
        for (stacks, backend) in [
            ("Sh", BackendChoice::MpkShared),
            ("Sw", BackendChoice::MpkSwitched),
        ] {
            cases.push((
                format!("{}-{stacks}", model.label()),
                RedisParams {
                    model,
                    backend,
                    mix: Mix::Get,
                    ops: 200,
                    ..RedisParams::default()
                },
            ));
        }
    }
    for (name, params) in cases {
        g.bench_with_input(BenchmarkId::from_parameter(&name), &params, |b, params| {
            b.iter(|| {
                let r = run_redis(params).expect("redis run");
                assert!(r.ops >= 200);
                r.mreq_per_s
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
