//! Microbenchmarks of the FlexOS framework itself: spec parsing,
//! compatibility checking, graph coloring and deployment enumeration —
//! the build-time machinery whose cost a FlexOS user pays per build.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexos::compat::enumerate_deployments;
use flexos::compat::{color, dsatur, exact, Graph, IncompatGraph};
use flexos::spec::{parse, print, Analysis, LibSpec};

fn scheduler_text() -> String {
    print(&LibSpec::verified_scheduler())
}

fn bench_spec(c: &mut Criterion) {
    let text = scheduler_text();
    let mut g = c.benchmark_group("spec");
    g.bench_function("parse_scheduler_spec", |b| b.iter(|| parse(&text).unwrap()));
    let spec = LibSpec::verified_scheduler();
    g.bench_function("print_scheduler_spec", |b| b.iter(|| print(&spec)));
    g.finish();
}

fn bench_compat(c: &mut Criterion) {
    let mut g = c.benchmark_group("compat");
    // A realistic unikernel image: a dozen libraries, some constrained.
    let mut specs = vec![LibSpec::verified_scheduler()];
    for i in 0..11 {
        let mut s = if i % 3 == 0 {
            LibSpec::unsafe_c(format!("lib{i}"))
        } else {
            let mut s = LibSpec::verified_scheduler();
            s.name = format!("safe{i}");
            s
        };
        s.name = format!("lib{i}");
        specs.push(s);
    }
    g.bench_function("incompat_graph_12_libs", |b| {
        b.iter(|| IncompatGraph::build(&specs))
    });
    g.finish();
}

fn random_graph(n: usize, density_pct: u64) -> Graph {
    let mut g = Graph::new(n);
    let mut state = 0x12345678u64;
    for i in 0..n {
        for j in 0..i {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (state >> 33) % 100 < density_pct {
                g.add_edge(i, j);
            }
        }
    }
    g
}

fn bench_coloring(c: &mut Criterion) {
    let mut g = c.benchmark_group("coloring");
    for &n in &[12usize, 20, 32] {
        let graph = random_graph(n, 30);
        g.bench_with_input(BenchmarkId::new("dsatur", n), &graph, |b, graph| {
            b.iter(|| dsatur(graph))
        });
        if n <= 20 {
            g.bench_with_input(BenchmarkId::new("exact", n), &graph, |b, graph| {
                b.iter(|| exact(graph))
            });
        }
        g.bench_with_input(BenchmarkId::new("auto", n), &graph, |b, graph| {
            b.iter(|| color(graph))
        });
    }
    g.finish();
}

fn bench_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("deployment_enumeration");
    let libs: Vec<(LibSpec, Analysis)> = (0..6)
        .map(|i| {
            let spec = if i % 2 == 0 {
                LibSpec::unsafe_c(format!("lib{i}"))
            } else {
                let mut s = LibSpec::verified_scheduler();
                s.name = format!("lib{i}");
                s
            };
            (spec, Analysis::well_behaved())
        })
        .collect();
    g.bench_function("six_libs_with_sh_variants", |b| {
        b.iter(|| enumerate_deployments(&libs))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_spec,
    bench_compat,
    bench_coloring,
    bench_enumeration
);
criterion_main!(benches);
