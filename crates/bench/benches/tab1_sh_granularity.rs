//! Table 1 bench: iperf with SH at micro-library granularity.

use criterion::{criterion_group, criterion_main, Criterion};
use flexos_apps::iperf::{run_iperf, IperfParams};
use flexos_bench::experiments::ALL_LIBS;

fn params(sh_on: Vec<String>) -> IperfParams {
    IperfParams {
        recv_buf: 8 * 1024,
        total_bytes: 128 * 1024,
        sh_on,
        ..IperfParams::default()
    }
}

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab1_sh");
    g.sample_size(10);
    let cases: Vec<(&str, Vec<String>)> = vec![
        ("baseline", Vec::new()),
        ("sh_scheduler_only", vec!["uksched".into()]),
        ("sh_netstack_only", vec!["lwip".into()]),
        ("sh_libc_only", vec!["libc".into()]),
        (
            "sh_everything",
            ALL_LIBS.iter().map(|s| s.to_string()).collect(),
        ),
    ];
    for (name, sh_on) in cases {
        let p = params(sh_on);
        g.bench_function(name, |b| {
            b.iter(|| {
                let r = run_iperf(&p);
                assert!(r.bytes >= 128 * 1024);
                r.mbps
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
