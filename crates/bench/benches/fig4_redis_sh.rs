//! Figure 4 bench: Redis under SH/allocator configurations and the
//! verified scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexos_apps::redis::{run_redis, Mix};
use flexos_bench::experiments::Fig4Config;

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_redis_sh");
    g.sample_size(10);
    for config in Fig4Config::ALL {
        for mix in [Mix::Set, Mix::Get] {
            let params = config.params(mix, 50, 200);
            g.bench_with_input(
                BenchmarkId::new(config.label(), mix.label()),
                &params,
                |b, params| {
                    b.iter(|| {
                        let r = run_redis(params).expect("redis run");
                        assert!(r.ops >= 200);
                        r.mreq_per_s
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
