//! Context-switch bench (§4 "Verified Scheduler"): the C scheduler vs
//! the verified scheduler, both as simulated latency (reported via the
//! `reproduce` binary: 76.6 ns vs 218.6 ns) and as host-side cost of the
//! run-queue operations themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use flexos_bench::experiments::ctx_switch;
use flexos_kernel::sched::{CoopScheduler, RunQueue, ThreadId, VerifiedScheduler};

fn bench_sim_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("ctx_switch_sim");
    g.sample_size(20);
    g.bench_function("ping_pong_both_schedulers", |b| {
        b.iter(|| {
            let r = ctx_switch(2_000);
            assert!(r.verified_ns > r.coop_ns);
            (r.coop_ns, r.verified_ns)
        })
    });
    g.finish();
}

fn run_ops(mut rq: impl RunQueue, rounds: u32) {
    for i in 0..8 {
        rq.thread_add(ThreadId(i)).unwrap();
    }
    for _ in 0..rounds {
        let t = rq.pick_next().unwrap();
        rq.yield_back(t).unwrap();
    }
    for i in 0..8 {
        rq.thread_rm(ThreadId(i)).unwrap();
    }
}

fn bench_runqueue_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("runqueue_ops");
    g.bench_function("coop_1000_yields", |b| {
        b.iter(|| run_ops(CoopScheduler::new(), 1000))
    });
    g.bench_function("verified_1000_yields", |b| {
        b.iter(|| run_ops(VerifiedScheduler::new(), 1000))
    });
    g.finish();
}

criterion_group!(benches, bench_sim_latency, bench_runqueue_ops);
criterion_main!(benches);
