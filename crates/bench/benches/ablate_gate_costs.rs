//! Ablation: sweep the gate-cost calibration constants and check the
//! paper's qualitative conclusions are robust to them (DESIGN.md §6.1).
//!
//! For every sweep point, the cost model must preserve the ordering
//! `direct < MPK shared < MPK switched < VM RPC` — i.e. the figures'
//! who-wins story does not depend on the exact calibration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexos::build::{plan, BackendChoice, ImageConfig, LibRole, LibraryConfig};
use flexos::explore::{estimate_request_cycles, CallProfile};
use flexos::spec::{Analysis, LibSpec};
use flexos_machine::CostTable;

fn image(backend: BackendChoice) -> flexos::build::ImagePlan {
    let cfg = ImageConfig::new("ablate", backend)
        .with_library(LibraryConfig::new(
            LibSpec::verified_scheduler(),
            LibRole::Scheduler,
        ))
        .with_library(
            LibraryConfig::new(LibSpec::unsafe_c("lwip"), LibRole::NetStack)
                .with_analysis(Analysis::well_behaved()),
        );
    plan(cfg).expect("plans")
}

fn profile() -> CallProfile {
    CallProfile::default()
        .with_calls("lwip", "uksched_verified", 6)
        .with_work("lwip", 3000)
        .with_work("uksched_verified", 500)
}

fn ordering_holds(costs: &CostTable) -> bool {
    let prof = profile();
    let cycles: Vec<u64> = [
        BackendChoice::None,
        BackendChoice::MpkShared,
        BackendChoice::MpkSwitched,
        BackendChoice::VmRpc,
    ]
    .iter()
    .map(|&b| estimate_request_cycles(&image(b), &prof, costs))
    .collect();
    cycles.windows(2).all(|w| w[0] < w[1])
}

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_gate_costs");
    // Sweep wrpkru cost 2x down/up, vm_notify 4x down/up: the ordering
    // conclusion must hold everywhere.
    for wrpkru in [15u64, 30, 60, 120] {
        for vm_notify in [875u64, 3500, 14000] {
            let costs = CostTable {
                wrpkru,
                vm_notify,
                ..CostTable::default()
            };
            assert!(
                ordering_holds(&costs),
                "gate ordering broke at wrpkru={wrpkru}, vm_notify={vm_notify}"
            );
            g.bench_with_input(
                BenchmarkId::from_parameter(format!("wrpkru{wrpkru}_notify{vm_notify}")),
                &costs,
                |b, costs| b.iter(|| ordering_holds(costs)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
