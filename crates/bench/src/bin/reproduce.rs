//! `reproduce` — regenerate the paper's tables and figures.
//!
//! ```text
//! Usage: reproduce [fig3|table1|fig4|fig5|ctxswitch|coloring|explore|stats|chaos|bench|serve|migrate|all]
//!                  [--quick] [--stats] [--chaos] [--bench] [--serve] [--migrate] [--seed=S]
//!                  [--vcpus=N] [--conns=N] [--migrate-at=BURSTS[:backend]]
//!                  [--json[=PATH]] [--trace-out=PATH]
//! ```
//!
//! `--vcpus=N` (default 1) selects the run-queue topology for the
//! scheduler-driven workloads: 1 is the legacy single queue, more is the
//! deterministic SMP queue (one deque per logical vCPU, popped in the
//! canonical global order). Outputs are byte-identical for every value —
//! the `smp-determinism` CI job diffs `--vcpus 1/2/4` runs of this very
//! binary. Wall-clock SMP scaling is the `--bench` smp-* matrix instead.
//!
//! `--stats` (or the `stats` experiment) runs the Redis/MPK profile from
//! Figure 5 and prints the per-compartment telemetry report: gate
//! crossings per (src, dst) pair, cycle-latency percentiles per gate
//! mechanism, scheduler activity, allocator pressure, faults and the
//! tail of the event rings. `--json[=PATH]` additionally writes the same
//! numbers as a JSON document (default `flexos-stats.json`).
//! `--trace-out=PATH` additionally records a causal span trace of the
//! run — one slice per gate crossing, doorbell, context switch, mq hop
//! and net poll, with flow arrows stitching each request across
//! compartments — and writes it as Chrome trace-event JSON loadable in
//! Perfetto (`ui.perfetto.dev`). Timestamps are simulated cycles, so the
//! trace is byte-identical for every `--vcpus` value.
//!
//! `--chaos` (or the `chaos` experiment) runs the `flexos-inject`
//! fault-injection sweeps — goodput vs. fault rate for TCP under frame
//! loss, VM RPC under doorbell loss, allocation under injected OOM, and
//! memory access under spurious pkey faults — seeded by `--seed`
//! (default 42). The same seed always produces the byte-identical
//! report; `--json[=PATH]` writes it as JSON (default
//! `flexos-chaos.json`). The chaos sweeps run standalone: they never
//! touch the figure experiments, whose outputs stay bit-identical.
//!
//! `--bench` (or the `bench` experiment) measures **host** wall-clock
//! throughput of the simulator itself (memcpy, iperf, Redis,
//! gate-crossing microbenches, including the batched-crossing matrix of
//! every backend at batch sizes 1/8/32, the async gate-ring matrix at
//! ring depth 128, and the free-running SMP matrix splitting
//! iperf/Redis over 1/2/4 host threads) and compares against
//! the recorded pre-optimization baseline; `--json[=PATH]` writes the
//! report (default `BENCH_10.json`). Host time is machine-dependent and
//! not part of the reproducibility contract — see EXPERIMENTS.md E13,
//! E14 and E15. The report's `serving` block is the exception: it runs
//! the serving-tier scaling matrix (same offered load at 10³/10⁴/10⁵
//! open connections through the sharded cluster proxy) in simulated
//! cycles, fully deterministic, and carries the flat-ratio figure CI
//! asserts on (per-request cost at 10⁵ idle connections must stay
//! within 1.3x of 10³ — the O(ready) contract; see EXPERIMENTS.md E18).
//!
//! `--serve` (or the `serve` experiment) runs one serving-tier workload
//! — N established connections (default 10 000, `--conns=N` overrides)
//! served by the sharded Redis cluster proxy under open-loop Poisson
//! load — and prints its throughput, burst-latency percentiles,
//! per-shard request counts and the readiness/executor counters.
//! `--json[=PATH]` writes the figures (default `flexos-serve.json`).
//! Everything is simulated cycles: the JSON is byte-identical for every
//! `--vcpus` value (the serve-smoke CI job diffs 1/2/4) and across
//! hosts. `--trace-out=PATH` records the span trace, showing each
//! request's proxy → shard → proxy hops. `--migrate-at=BURSTS[:backend]`
//! arms a live migration: after that many completed request bursts,
//! every gate pair swaps to the named backend (default `vmrpc`) through
//! the quiescence protocol while traffic keeps flowing; the report's
//! `stats.migrations` block records the swap and the JSON stays
//! byte-identical across repeats (the serve-smoke CI job diffs two
//! migrating runs).
//!
//! `--migrate` (or the `migrate` experiment) sweeps the live
//! gate-backend migration protocol over every ordered (from, to)
//! backend pair: boot on `from`, swap every compartment pair to `to`
//! at runtime through the quiescence protocol, and report steady
//! crossing cost before/after plus the async descriptors the drain
//! carried across the swap. A second table walks the kernel's
//! migration-policy ladder (escalate on hostile windows, relax after
//! a benign streak). `--json[=PATH]` writes the figures (default
//! `flexos-migrate.json`); everything is simulated cycles,
//! bit-identical across hosts.
//!
//! Every number is derived from the deterministic simulated machine, so
//! repeated runs are bit-identical. Absolute values differ from the
//! paper's hardware testbed; the *shapes* (who wins, by what factor,
//! where crossovers fall) are the reproduction target — see
//! EXPERIMENTS.md for the side-by-side.

use flexos::build::{plan, BackendChoice, ImageConfig, LibRole, LibraryConfig};
use flexos::compat::{enumerate_deployments, IncompatGraph};
use flexos::explore::{
    candidates, fastest_meeting_security, max_security_within_budget, pareto_frontier, CallProfile,
};
use flexos::spec::{print as print_spec, Analysis, FuncRef, LibSpec};
use flexos_bench::experiments::{
    ctx_switch, ext_cheri, fig3, fig3_buffer_sizes, fig4, fig5, table1, Fig3Config, Fig4Config,
};
use flexos_bench::report::{fmt_mbps, fmt_slowdown, JsonWriter, Table};
use flexos_machine::CostTable;

fn run_fig3(quick: bool) {
    println!("Running Figure 3 (iperf throughput, various configs)...");
    let points = fig3(quick);
    let sizes = fig3_buffer_sizes(quick);
    let mut headers = vec!["config".to_string()];
    headers.extend(sizes.iter().map(|s| format!("{s}B")));
    let mut t = Table::new(
        "Figure 3: iperf throughput vs recv buffer size (Mb/s)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for config in Fig3Config::ALL {
        let mut row = vec![config.label().to_string()];
        for &s in &sizes {
            let p = points
                .iter()
                .find(|p| p.config == config && p.recv_buf == s)
                .expect("point exists");
            row.push(format!("{:.0}", p.mbps));
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!(
        "Paper shape: SH/MPK 2-3x slower at small buffers, converging by ~1KiB;\n\
         VM RPC needs far larger buffers to catch up; Xen trails KVM.\n"
    );
}

fn run_table1(quick: bool) {
    println!("Running Table 1 (iperf with SH per component)...");
    let t1 = table1(quick);
    let mut t = Table::new(
        "Table 1: iperf throughput with SH on various components",
        &[
            "Component C",
            "SH: all but C",
            "SH: C only",
            "slowdown (C only)",
        ],
    );
    for row in &t1.rows {
        t.row(vec![
            row.component.clone(),
            fmt_mbps(row.all_but_c_mbps),
            fmt_mbps(row.c_only_mbps),
            fmt_slowdown(t1.baseline_mbps, row.c_only_mbps),
        ]);
    }
    t.row(vec![
        "Entire system".into(),
        format!("{} (baseline)", fmt_mbps(t1.baseline_mbps)),
        fmt_mbps(t1.all_sh_mbps),
        fmt_slowdown(t1.baseline_mbps, t1.all_sh_mbps),
    ]);
    println!("{}", t.render());
    println!(
        "Paper shape: scheduler-only SH ~1% overhead, NW stack ~6%, LibC ~2.3x,\n\
         entire system ~6x (baseline 2.94 Gb/s on their testbed).\n"
    );
}

fn run_fig4(quick: bool) {
    println!("Running Figure 4 (Redis under SH configs + verified scheduler)...");
    let points = fig4(quick);
    let payloads: Vec<usize> = {
        let mut p: Vec<usize> = points.iter().map(|p| p.payload).collect();
        p.sort_unstable();
        p.dedup();
        p
    };
    let mut headers = vec!["config".to_string()];
    for &pl in &payloads {
        headers.push(format!("SET {pl}B"));
        headers.push(format!("GET {pl}B"));
    }
    let mut t = Table::new(
        "Figure 4: Redis throughput (MTps) for SH configs and the verified scheduler",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for config in Fig4Config::ALL {
        let mut row = vec![config.label().to_string()];
        for &pl in &payloads {
            for mix in [flexos_apps::redis::Mix::Set, flexos_apps::redis::Mix::Get] {
                let p = points
                    .iter()
                    .find(|p| p.config == config && p.payload == pl && p.mix == mix)
                    .expect("point exists");
                row.push(format!("{:.3}", p.mreq_per_s));
            }
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!(
        "Paper shape: SH(NW)+global allocator ~1.45x slowdown, local allocator\n\
         ~1.24x; verified scheduler within 6% of the C scheduler.\n"
    );
}

fn run_fig5(quick: bool) {
    println!("Running Figure 5 (Redis with MPK isolation)...");
    let points = fig5(quick);
    let payloads: Vec<usize> = {
        let mut p: Vec<usize> = points.iter().map(|p| p.payload).collect();
        p.sort_unstable();
        p.dedup();
        p
    };
    let mut headers = vec!["model".to_string(), "stacks".to_string()];
    headers.extend(payloads.iter().map(|p| format!("{p}B payload")));
    let mut t = Table::new(
        "Figure 5: Redis GET throughput (MTps) with MPK isolation",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let mut emit = |model: flexos_apps::CompartmentModel, backend: BackendChoice, label: &str| {
        let mut row = vec![model.label().to_string(), label.to_string()];
        for &pl in &payloads {
            let p = points
                .iter()
                .find(|p| p.model == model && p.backend == backend && p.payload == pl)
                .expect("point exists");
            row.push(format!("{:.3}", p.mreq_per_s));
        }
        t.row(row);
    };
    emit(
        flexos_apps::CompartmentModel::Baseline,
        BackendChoice::None,
        "-",
    );
    for model in [
        flexos_apps::CompartmentModel::NwOnly,
        flexos_apps::CompartmentModel::NwSchedRest,
        flexos_apps::CompartmentModel::NwAndSchedRest,
    ] {
        emit(model, BackendChoice::MpkShared, "Sh.");
        emit(model, BackendChoice::MpkSwitched, "Sw.");
    }
    println!("{}", t.render());
    println!(
        "Paper shape: NW-only ~17% slowdown; +scheduler 1.4x (shared) / 2.25x\n\
         (switched); merging NW+sched does NOT help (semaphores live in LibC);\n\
         overhead shrinks as the payload grows.\n"
    );
}

fn run_cheri(quick: bool) {
    println!("Running the CHERI-backend extension (heterogeneous hardware)...");
    let points = ext_cheri(quick);
    let sizes = fig3_buffer_sizes(quick);
    let mut headers = vec!["backend".to_string()];
    headers.extend(sizes.iter().map(|s| format!("{s}B")));
    let mut t = Table::new(
        "Extension: iperf throughput when retargeting the gate primitive (Mb/s)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let mut labels: Vec<&str> = points.iter().map(|p| p.label).collect();
    labels.dedup();
    for label in labels {
        let mut row = vec![label.to_string()];
        for &s in &sizes {
            let p = points
                .iter()
                .find(|p| p.label == label && p.recv_buf == s)
                .expect("point exists");
            row.push(format!("{:.0}", p.mbps));
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!(
        "The same image, retargeted at build time: capability gates cost less\n\
         than MPK (no PKRU serialization), both dwarf VM RPC — the §1 pitch\n\
         (\"hardware becomes heterogeneous (MPK, CHERI)\") made concrete.\n"
    );
}

fn run_ctxswitch() {
    println!("Running the context-switch microbenchmark...");
    let r = ctx_switch(10_000);
    let mut t = Table::new(
        "Context-switch latency (paper §4: 76.6 ns C vs 218.6 ns verified)",
        &["scheduler", "latency", "ratio"],
    );
    t.row(vec![
        "C (coop)".into(),
        format!("{:.1} ns", r.coop_ns),
        "1.0x".into(),
    ]);
    t.row(vec![
        "Verified (Dafny port)".into(),
        format!("{:.1} ns", r.verified_ns),
        format!("{:.1}x", r.verified_ns / r.coop_ns),
    ]);
    println!("{}", t.render());
}

fn run_coloring() {
    println!("Running the §2 compatibility/coloring example...");
    let sched = LibSpec::verified_scheduler();
    let raw = LibSpec::unsafe_c("rawlib");
    println!("\nVerified scheduler spec:\n{}", print_spec(&sched));
    println!("Unsafe C library spec:\n{}", print_spec(&raw));

    let graph = IncompatGraph::build(&[sched.clone(), raw.clone()]);
    println!(
        "Pairwise check: incompatible edges = {}",
        graph.graph.edge_count()
    );
    if let Some(reasons) = graph.why(0, 1) {
        for r in reasons {
            println!("  - {r}");
        }
    }

    let analysis = Analysis {
        call_targets: Some([FuncRef::new("uksched_verified", "yield")].into()),
        ..Analysis::well_behaved()
    };
    let deployments = enumerate_deployments(&[(sched, Analysis::default()), (raw, analysis)]);
    let mut t = Table::new(
        "Enumerated deployments (SH variants x graph coloring)",
        &["variant choice", "compartments", "hardened libs"],
    );
    for d in &deployments {
        let choice: Vec<String> = d
            .variants
            .iter()
            .map(|v| format!("{}[{}]", v.spec.name, v.sh))
            .collect();
        t.row(vec![
            choice.join(" + "),
            d.num_compartments().to_string(),
            d.hardened_count().to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Paper shape: the SH version of the unsafe library shares a compartment\n\
         with the scheduler; the original requires a separate compartment.\n"
    );
}

fn run_explore() {
    println!("Running the §2 design-space-exploration objectives...");
    let base = ImageConfig::new("explore", BackendChoice::None)
        .with_library(LibraryConfig::new(
            LibSpec::verified_scheduler(),
            LibRole::Scheduler,
        ))
        .with_library(
            LibraryConfig::new(LibSpec::unsafe_c("lwip"), LibRole::NetStack)
                .with_analysis(Analysis::well_behaved()),
        )
        .with_library(
            LibraryConfig::new(LibSpec::unsafe_c("app"), LibRole::App)
                .with_analysis(Analysis::well_behaved()),
        );
    let profile = CallProfile::default()
        .with_calls("app", "lwip", 2)
        .with_calls("lwip", "uksched_verified", 4)
        .with_work("app", 500)
        .with_work("lwip", 2500)
        .with_work("uksched_verified", 400);
    let costs = CostTable::default();
    let cands = candidates(
        &base,
        &[
            BackendChoice::None,
            BackendChoice::MpkShared,
            BackendChoice::MpkSwitched,
            BackendChoice::VmRpc,
        ],
        &profile,
        &costs,
    );
    println!("Candidate space: {} configurations", cands.len());

    let mut t = Table::new(
        "Pareto frontier (predicted cycles/request vs security score)",
        &["configuration", "cycles/req", "security"],
    );
    for c in pareto_frontier(cands.clone()) {
        t.row(vec![
            c.label.clone(),
            c.cycles.to_string(),
            format!("{:.2}", c.security),
        ]);
    }
    println!("{}", t.render());

    let budget = 8_000;
    match max_security_within_budget(cands.clone(), budget) {
        Some(best) => println!(
            "Objective A (max security within {budget} cycles/req): {} -> security {:.2}, {} cycles",
            best.label, best.security, best.cycles
        ),
        None => println!("Objective A: nothing fits in {budget} cycles"),
    }
    match fastest_meeting_security(cands, 1.0) {
        Some(best) => println!(
            "Objective B (fastest fully-mitigated config): {} -> {} cycles/req",
            best.label, best.cycles
        ),
        None => println!("Objective B: no fully-mitigated configuration"),
    }
    // Show the audit trail for a sample plan.
    let p = plan(base).expect("plans");
    if !p.report.warnings.is_empty() {
        println!("\nBuild warnings for the unprotected baseline:");
        for w in &p.report.warnings {
            println!("  - {w}");
        }
    }
    println!();
}

fn run_stats(quick: bool, vcpus: usize, json: Option<&str>, trace_out: Option<&str>) {
    use flexos_apps::redis::{run_redis_traced, run_redis_with_stats, Mix, RedisParams};
    use flexos_machine::CPU_FREQ_HZ;

    println!("Running the telemetry report (Redis GET, MPK shared stacks, NW+sched/rest)...");
    let params = RedisParams {
        model: flexos_apps::CompartmentModel::NwSchedRest,
        backend: BackendChoice::MpkShared,
        mix: Mix::Get,
        ops: if quick { 1_000 } else { 5_000 },
        vcpus,
        ..RedisParams::default()
    };
    let (result, snap, trace) = if trace_out.is_some() {
        match run_redis_traced(&params) {
            Ok((r, s, t)) => (r, s, Some(t)),
            Err(e) => {
                eprintln!("stats run failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match run_redis_with_stats(&params) {
            Ok((r, s)) => (r, s, None),
            Err(e) => {
                eprintln!("stats run failed: {e}");
                std::process::exit(1);
            }
        }
    };

    let secs = snap.elapsed_cycles as f64 / CPU_FREQ_HZ as f64;
    println!(
        "\nWorkload: {} GET requests, {:.3} MTps, {} gate crossings, \
         {} cycles ({:.3} ms simulated)",
        result.ops,
        result.mreq_per_s,
        result.crossings,
        result.cycles,
        secs * 1e3,
    );
    println!(
        "Same-compartment calls compiled to direct calls: {}",
        snap.direct_calls
    );

    let mut pairs = Table::new(
        "Gate crossings per (src -> dst) compartment pair",
        &[
            "mechanism",
            "src -> dst",
            "crossings",
            "crossings/s",
            "bytes",
            "gate cycles",
        ],
    );
    for r in &snap.gate_pairs {
        pairs.row(vec![
            r.mechanism.to_string(),
            format!("{} -> {}", r.src_name, r.dst_name),
            r.crossings.to_string(),
            format!("{:.0}", r.crossings as f64 / secs.max(f64::MIN_POSITIVE)),
            r.bytes.to_string(),
            r.gate_cycles.to_string(),
        ]);
    }
    println!("{}", pairs.render());

    let mut mechs = Table::new(
        "Crossing latency per gate mechanism (cycles, log2-bucket bounds)",
        &["mechanism", "count", "p50", "p90", "p99", "mean", "max"],
    );
    for r in &snap.mechanisms {
        mechs.row(vec![
            r.mechanism.to_string(),
            r.count.to_string(),
            r.p50.to_string(),
            r.p90.to_string(),
            r.p99.to_string(),
            r.mean.to_string(),
            r.max.to_string(),
        ]);
    }
    println!("{}", mechs.render());

    if !snap.gate_batch.is_empty() {
        let mut gb = Table::new(
            "Batched crossings per gate mechanism (batch-size histogram)",
            &["mechanism", "batches", "calls", "p50 size", "max size"],
        );
        for r in &snap.gate_batch {
            gb.row(vec![
                r.mechanism.to_string(),
                r.batches.to_string(),
                r.calls.to_string(),
                r.p50.to_string(),
                r.max.to_string(),
            ]);
        }
        println!("{}", gb.render());
    }

    let mut sched = Table::new(
        "Scheduler",
        &["ctx switches", "steps", "avg rq depth", "max rq depth"],
    );
    sched.row(vec![
        snap.sched.switches.to_string(),
        snap.sched.steps.to_string(),
        format!("{:.3}", snap.sched.avg_depth_milli() as f64 / 1000.0),
        snap.sched.depth_max.to_string(),
    ]);
    println!("{}", sched.render());
    if !snap.sched.task_cycles.is_empty() {
        let mut tasks = Table::new("Per-task run time", &["thread", "cycles"]);
        for &(tid, cy) in &snap.sched.task_cycles {
            tasks.row(vec![format!("tid {tid}"), cy.to_string()]);
        }
        println!("{}", tasks.render());
    }

    let mut allocs = Table::new(
        "Allocator pressure per compartment",
        &[
            "compartment",
            "allocs",
            "frees",
            "bytes in use",
            "peak bytes",
            "failures",
        ],
    );
    for r in &snap.allocs {
        allocs.row(vec![
            r.name.clone(),
            r.allocs.to_string(),
            r.frees.to_string(),
            r.bytes_in_use.to_string(),
            r.peak_bytes.to_string(),
            r.failures.to_string(),
        ]);
    }
    println!("{}", allocs.render());

    if snap.fault_kinds.is_empty() {
        println!("\nFaults: none recorded.");
    } else {
        let mut faults = Table::new("Faults by class", &["kind", "count"]);
        for r in &snap.fault_kinds {
            faults.row(vec![r.kind.to_string(), r.count.to_string()]);
        }
        println!("{}", faults.render());
        if !snap.fault_compartments.is_empty() {
            let mut fc = Table::new(
                "Pkey violations by owning compartment",
                &["compartment", "count"],
            );
            for r in &snap.fault_compartments {
                fc.row(vec![r.name.clone(), r.count.to_string()]);
            }
            println!("{}", fc.render());
        }
    }

    let mut tlb = Table::new("Software TLB", &["hits", "misses", "flushes", "hit rate"]);
    tlb.row(vec![
        snap.tlb.hits.to_string(),
        snap.tlb.misses.to_string(),
        snap.tlb.flushes.to_string(),
        format!("{:.1}%", snap.tlb.hit_rate_milli() as f64 / 10.0),
    ]);
    println!("{}", tlb.render());

    let mut net = Table::new(
        "Network stack",
        &[
            "rx segments",
            "tx segments",
            "rx datagrams",
            "demux drops",
            "backlog drops",
            "retransmits",
        ],
    );
    net.row(vec![
        snap.net.rx_segments.to_string(),
        snap.net.tx_segments.to_string(),
        snap.net.rx_datagrams.to_string(),
        snap.net.drops.to_string(),
        snap.net.backlog_overflows.to_string(),
        snap.net.retransmits.to_string(),
    ]);
    println!("{}", net.render());

    print_serving_counters(&snap);

    if !snap.latency.is_empty() {
        let mut lat = Table::new(
            "Request latency percentiles (cycles, exact nearest-rank)",
            &["app", "backend", "requests", "p50", "p99", "p999"],
        );
        for r in &snap.latency {
            lat.row(vec![
                r.app.to_string(),
                r.backend.to_string(),
                r.count.to_string(),
                r.p50.to_string(),
                r.p99.to_string(),
                r.p999.to_string(),
            ]);
        }
        println!("{}", lat.render());
    }

    if !snap.ring_drops.is_empty() {
        let mut rd = Table::new(
            "Bounded-ring occupancy (events pushed vs overwritten)",
            &["subsystem", "owner", "pushed", "dropped"],
        );
        for r in &snap.ring_drops {
            rd.row(vec![
                r.subsystem.to_string(),
                r.owner.to_string(),
                r.pushed.to_string(),
                r.dropped.to_string(),
            ]);
        }
        println!("{}", rd.render());
    }

    if !snap.events.is_empty() {
        let mut ev = Table::new(
            "Event-ring tail (most recent, all compartments)",
            &["cycles", "compartment", "kind", "detail", "seq"],
        );
        for e in &snap.events {
            ev.row(vec![
                e.cycles.to_string(),
                format!("cpt {}", e.compartment),
                e.kind.to_string(),
                e.detail.to_string(),
                e.seq.to_string(),
            ]);
        }
        println!("{}", ev.render());
        println!(
            "({} older events overwritten in bounded rings)",
            snap.events_overwritten
        );
    }

    if let (Some(path), Some(trace)) = (trace_out, &trace) {
        match std::fs::write(path, trace) {
            Ok(()) => {
                println!("\nWrote Chrome trace-event JSON to {path} (open in ui.perfetto.dev)")
            }
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = json {
        let mut w = JsonWriter::new();
        w.begin_obj(None)
            .begin_obj(Some("workload"))
            .str_field("experiment", "redis-get-mpk-shared")
            .u64_field("ops", result.ops)
            .u64_field("cycles", result.cycles)
            .f64_field("mreq_per_s", result.mreq_per_s)
            .u64_field("crossings", result.crossings)
            .end_obj()
            .raw_field("stats", &snap.to_json())
            .end_obj();
        let doc = w.finish();
        match std::fs::write(path, &doc) {
            Ok(()) => println!("\nWrote JSON stats to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Prints the readiness-layer + cooperative-executor counters (the
/// `--stats` serving block), when the run exercised them.
fn print_serving_counters(snap: &flexos_trace::StatsSnapshot) {
    let sv = &snap.serving;
    if *sv == flexos_trace::ServingSnapshot::default() {
        return;
    }
    let mut t = Table::new(
        "Serving tier: readiness layer + cooperative executor",
        &[
            "events posted",
            "coalesced",
            "polls",
            "delivered",
            "tasks spawned",
            "task steps",
            "wakeups",
            "steals",
        ],
    );
    t.row(vec![
        sv.events_posted.to_string(),
        sv.events_coalesced.to_string(),
        sv.polls.to_string(),
        sv.events_delivered.to_string(),
        sv.tasks_spawned.to_string(),
        sv.tasks_run.to_string(),
        sv.wakeups.to_string(),
        sv.steals.to_string(),
    ]);
    println!("{}", t.render());
}

fn run_serve_exp(
    quick: bool,
    conns: Option<usize>,
    json: Option<&str>,
    trace_out: Option<&str>,
    migrate_at: Option<(u64, flexos::build::BackendChoice)>,
) {
    use flexos_apps::serve::{run_serve_traced, run_serve_with_stats, ServeParams};
    use flexos_machine::CPU_FREQ_HZ;

    let params = ServeParams {
        conns: conns.unwrap_or(if quick { 2_000 } else { 10_000 }),
        ops: if quick { 2_000 } else { 10_000 },
        migrate_to: migrate_at,
        ..ServeParams::default()
    };
    println!(
        "Running the serving tier ({} connections, {} requests, {} shards, \
         open-loop Poisson arrivals)...",
        params.conns, params.ops, params.shards
    );
    if let Some((after, to)) = migrate_at {
        println!(
            "Live migration armed: every gate pair swaps to {to:?} after \
             {after} completed bursts (quiescence protocol, mid-traffic)."
        );
    }
    let (result, snap, trace) = if trace_out.is_some() {
        match run_serve_traced(&params) {
            Ok((r, s, t)) => (r, s, Some(t)),
            Err(e) => {
                eprintln!("serve run failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match run_serve_with_stats(&params) {
            Ok((r, s)) => (r, s, None),
            Err(e) => {
                eprintln!("serve run failed: {e}");
                std::process::exit(1);
            }
        }
    };

    let secs = result.cycles as f64 / CPU_FREQ_HZ as f64;
    let mut t = Table::new(
        "Serving tier: sharded Redis behind the async cluster proxy",
        &[
            "conns",
            "requests",
            "MTps",
            "cycles/req",
            "crossings",
            "p50",
            "p99",
            "p999",
            "backlog drops",
        ],
    );
    t.row(vec![
        result.conns.to_string(),
        result.ops.to_string(),
        format!("{:.3}", result.mreq_per_s),
        result.cycles_per_op.to_string(),
        result.crossings.to_string(),
        result.p50_cycles.to_string(),
        result.p99_cycles.to_string(),
        result.p999_cycles.to_string(),
        result.backlog_overflows.to_string(),
    ]);
    println!("{}", t.render());
    println!(
        "({} cycles measured, {:.3} ms simulated; burst percentiles are \
         arrival-to-last-reply, open-loop)",
        result.cycles,
        secs * 1e3
    );

    let mut st = Table::new("Requests per shard compartment", &["shard", "requests"]);
    for (k, n) in result.shard_ops.iter().enumerate() {
        st.row(vec![format!("shard{k}"), n.to_string()]);
    }
    println!("{}", st.render());

    print_serving_counters(&snap);

    if let (Some(path), Some(trace)) = (trace_out, &trace) {
        match std::fs::write(path, trace) {
            Ok(()) => {
                println!("\nWrote Chrome trace-event JSON to {path} (open in ui.perfetto.dev)")
            }
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = json {
        let mut w = JsonWriter::new();
        w.begin_obj(None)
            .begin_obj(Some("workload"))
            .str_field("experiment", "serve-sharded-proxy")
            .u64_field("conns", result.conns as u64)
            .u64_field("ops", result.ops)
            .u64_field("cycles", result.cycles)
            .u64_field("cycles_per_op", result.cycles_per_op)
            .f64_field("mreq_per_s", result.mreq_per_s)
            .u64_field("crossings", result.crossings)
            .u64_field("p50_cycles", result.p50_cycles)
            .u64_field("p99_cycles", result.p99_cycles)
            .u64_field("p999_cycles", result.p999_cycles)
            .u64_field("backlog_overflows", result.backlog_overflows)
            .end_obj()
            .raw_field("stats", &snap.to_json())
            .end_obj();
        let doc = w.finish();
        match std::fs::write(path, &doc) {
            Ok(()) => println!("\nWrote JSON serve report to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn run_chaos(quick: bool, seed: u64, vcpus: usize, json: Option<&str>) {
    use flexos_bench::chaos::{
        alloc_under_injected_oom, chaos_json, tcp_goodput_vs_loss, vmrpc_under_notify_loss,
        writes_under_spurious_pkey,
    };

    println!("Running the flexos-inject chaos sweeps (seed {seed})...");
    let tcp = tcp_goodput_vs_loss(quick, seed, vcpus);
    let vmrpc = vmrpc_under_notify_loss(quick, seed);
    let alloc = alloc_under_injected_oom(quick, seed);
    let pkey = writes_under_spurious_pkey(quick, seed);

    let mut t = Table::new(
        "TCP goodput vs injected frame loss (iperf, baseline image)",
        &[
            "loss \u{2030}",
            "bytes delivered",
            "goodput Mb/s",
            "frames dropped",
        ],
    );
    for p in &tcp {
        t.row(vec![
            p.loss_per_mille.to_string(),
            p.bytes.to_string(),
            format!("{:.1}", p.mbps),
            p.frames_dropped.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Every byte stream completes; goodput degrades, never deadlocks.\n");

    let mut t = Table::new(
        "VM RPC vs injected doorbell loss (retry + exponential backoff)",
        &[
            "drop \u{2030}",
            "crossings",
            "ok",
            "timeouts",
            "doorbells lost",
            "mean cycles/ok",
        ],
    );
    for p in &vmrpc {
        t.row(vec![
            p.drop_per_mille.to_string(),
            p.attempts.to_string(),
            p.ok.to_string(),
            p.timeouts.to_string(),
            p.doorbells_dropped.to_string(),
            p.mean_cycles_ok.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Lost doorbells are re-rung with bounded backoff; only exhausted retry\n\
         budgets surface as typed GateTimeout faults.\n"
    );

    let mut t = Table::new(
        "Allocation under injected OOM",
        &[
            "fail \u{2030}",
            "attempts",
            "injected OOM",
            "success \u{2030}",
        ],
    );
    for p in &alloc {
        t.row(vec![
            p.fail_per_mille.to_string(),
            p.attempts.to_string(),
            p.injected_oom.to_string(),
            p.success_per_mille.to_string(),
        ]);
    }
    println!("{}", t.render());

    let mut t = Table::new(
        "Writes under spurious pkey faults (retried until they land)",
        &["fault \u{2030}", "writes", "spurious faults", "completed"],
    );
    for p in &pkey {
        t.row(vec![
            p.fault_per_mille.to_string(),
            p.writes.to_string(),
            p.spurious_faults.to_string(),
            p.completed.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Deterministic: the same --seed reproduces this report byte-for-byte.");

    if let Some(path) = json {
        let doc = chaos_json(seed, quick, &tcp, &vmrpc, &alloc, &pkey);
        match std::fs::write(path, &doc) {
            Ok(()) => println!("\nWrote JSON chaos report to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn run_bench(quick: bool, json: Option<&str>) {
    use flexos_bench::hostbench::{
        async_speedup, batch32_speedup, bench_json, latency_points, migration_points,
        run_bench as run_points, serving_flat_ratio, serving_free_points, serving_points,
        smp_speedup, speedup_vs_baseline, ASYNC_RING_DEPTH, BASELINE_NOTE,
    };

    println!(
        "Running the host wall-clock microbenches{}...",
        if quick { " (quick)" } else { "" }
    );
    println!(
        "(host time of the simulator itself — NOT simulated time; figures\n\
         elsewhere in this binary are unaffected and stay bit-identical)\n"
    );
    let points = run_points(quick);
    let mut t = Table::new(
        "Host wall-clock microbenches",
        &[
            "bench",
            "iters",
            "bytes",
            "host ms",
            "host Mb/s",
            "ns/iter",
            "sim cycles",
            "speedup vs pre-PR4",
        ],
    );
    for p in &points {
        let speedup = match speedup_vs_baseline(p) {
            Some(s) => format!("{s:.2}x"),
            None => "-".into(),
        };
        t.row(vec![
            p.name.to_string(),
            p.iters.to_string(),
            p.bytes.to_string(),
            format!("{:.2}", p.host_nanos as f64 / 1e6),
            if p.bytes > 0 {
                format!("{:.0}", p.host_mbps())
            } else {
                "-".into()
            },
            format!("{:.0}", p.ns_per_iter()),
            p.sim_cycles.to_string(),
            speedup,
        ]);
    }
    println!("{}", t.render());
    println!("Baseline: {BASELINE_NOTE}.");
    println!("(speedups shown for --quick runs only, where workloads match the recording)");

    let mut bt = Table::new(
        "Batched-crossing speedup (per-call host ns, batch=32 vs batch=1)",
        &["backend", "speedup"],
    );
    for backend in ["direct", "mpk-shared", "vmrpc", "cheri"] {
        if let Some(s) = batch32_speedup(&points, backend) {
            bt.row(vec![backend.to_string(), format!("{s:.2}x")]);
        }
    }
    println!("{}", bt.render());

    let mut at = Table::new(
        "Async gate-ring speedup (per-call host ns, submit+flush+reap vs sync b1)",
        &["backend", "speedup"],
    );
    for backend in ["direct", "mpk-shared", "vmrpc", "cheri"] {
        if let Some(s) = async_speedup(&points, backend) {
            at.row(vec![backend.to_string(), format!("{s:.2}x")]);
        }
    }
    println!("{}", at.render());
    println!(
        "(submission ring depth {ASYNC_RING_DEPTH}: descriptors overlap with the\n\
         crossing latency, so VM RPC pays one coalesced doorbell per flush)"
    );

    let mut st = Table::new(
        "Free-running SMP scaling (identical per-shard workload per host thread)",
        &["workload", "threads", "aggregate throughput vs 1 thread"],
    );
    for workload in ["iperf", "redis"] {
        for threads in [2usize, 4] {
            if let Some(s) = smp_speedup(&points, workload, threads) {
                st.row(vec![
                    workload.to_string(),
                    threads.to_string(),
                    format!("{s:.2}x"),
                ]);
            }
        }
    }
    println!("{}", st.render());
    println!(
        "(each thread drives its own machine shard; ratios are host-dependent\n\
         and informational — the determinism contract lives in the\n\
         deterministic interleaver, exercised by --vcpus elsewhere)"
    );

    let latency = latency_points(quick);
    let mut lt = Table::new(
        "Per-request latency across isolation backends (simulated cycles, exact)",
        &["app", "backend", "requests", "p50", "p99", "p999"],
    );
    for r in &latency {
        lt.row(vec![
            r.app.to_string(),
            r.backend.to_string(),
            r.count.to_string(),
            r.p50.to_string(),
            r.p99.to_string(),
            r.p999.to_string(),
        ]);
    }
    println!("{}", lt.render());
    println!(
        "(span-tracer percentiles are simulated time and deterministic —\n\
         the one bench section that IS byte-reproducible across hosts)"
    );

    let mut serving = serving_points(quick);
    serving.extend(serving_free_points(quick));
    let mut sv = Table::new(
        "Serving-tier scaling (same offered load, growing open-connection count)",
        &[
            "point",
            "conns",
            "requests",
            "cycles/req",
            "MTps",
            "p50",
            "p99",
            "p999",
            "steals",
        ],
    );
    for p in &serving {
        let r = &p.result;
        sv.row(vec![
            p.name.to_string(),
            r.conns.to_string(),
            r.ops.to_string(),
            r.cycles_per_op.to_string(),
            format!("{:.3}", r.mreq_per_s),
            r.p50_cycles.to_string(),
            r.p99_cycles.to_string(),
            r.p999_cycles.to_string(),
            r.steals.to_string(),
        ]);
    }
    println!("{}", sv.render());
    match serving_flat_ratio(&serving) {
        Some(r) => println!(
            "Per-request cost at 100k idle conns vs 1k: {r:.3}x (O(ready) \
             contract: CI asserts <= 1.3x; simulated cycles, deterministic)"
        ),
        None => println!("(serving flat ratio unavailable: a scaling point failed)"),
    }

    let migration = migration_points(quick);
    let mut mt = Table::new(
        "Live migration under load (swap requested mid-crossing; simulated cycles)",
        &[
            "point",
            "pairs",
            "drain max",
            "first cross",
            "steady cross",
            "SQEs requeued",
            "host ms",
        ],
    );
    for p in &migration {
        mt.row(vec![
            p.name.to_string(),
            p.pairs.to_string(),
            p.drain_cycles_max.to_string(),
            p.first_cross_cycles.to_string(),
            p.steady_cross_cycles.to_string(),
            p.requeued_sqes.to_string(),
            format!("{:.2}", p.host_nanos as f64 / 1e6),
        ]);
    }
    println!("{}", mt.render());
    println!(
        "(the swap is requested inside a crossing, so the drain waits out\n\
         the in-flight call and carries the parked ring descriptors across)"
    );

    if let Some(path) = json {
        let doc = bench_json(quick, &points, &latency, &serving, &migration);
        match std::fs::write(path, &doc) {
            Ok(()) => println!("\nWrote JSON bench report to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// `--migrate`: the live gate-backend migration sweep. Boots a
/// migratable image on every source backend, swaps every compartment
/// pair to every target backend at runtime (5×5 ordered pairs), and
/// reports the first post-swap crossing cost against the steady-state
/// cost on either side — plus what the drain carried across the swap
/// (requeued SQEs). A second table demonstrates the kernel's
/// [`MigrationPolicy`] ladder: escalate one rung per hostile window,
/// relax after sustained benign load.
fn run_migrate(quick: bool, json: Option<&str>) {
    use flexos::gate::{GateMechanism, MigrationReason, Sqe};
    use flexos::spec::LibSpec;
    use flexos_backends::{instantiate_migratable, migrate_all, BootImage};
    use flexos_kernel::{MigrationPolicy, PolicyDecision, PolicySignals};

    const ALL: [BackendChoice; 5] = [
        BackendChoice::None,
        BackendChoice::MpkShared,
        BackendChoice::MpkSwitched,
        BackendChoice::VmRpc,
        BackendChoice::Cheri,
    ];
    fn tag(b: BackendChoice) -> &'static str {
        match b {
            BackendChoice::None => "direct",
            BackendChoice::MpkShared => "mpk-shared",
            BackendChoice::MpkSwitched => "mpk-switched",
            BackendChoice::VmRpc => "vm-rpc",
            BackendChoice::Cheri => "cheri",
        }
    }
    fn backend_of(mech: GateMechanism) -> BackendChoice {
        match mech {
            GateMechanism::DirectCall => BackendChoice::None,
            GateMechanism::MpkSharedStack => BackendChoice::MpkShared,
            GateMechanism::MpkSwitchedStack => BackendChoice::MpkSwitched,
            GateMechanism::VmRpc => BackendChoice::VmRpc,
            GateMechanism::Cheri => BackendChoice::Cheri,
        }
    }
    fn migratable(from: BackendChoice) -> BootImage {
        let cfg = ImageConfig::new("migrate-sweep", BackendChoice::MpkShared)
            .with_library(LibraryConfig::new(
                LibSpec::verified_scheduler(),
                LibRole::Scheduler,
            ))
            .with_library(LibraryConfig::new(
                LibSpec::unsafe_c("netstack"),
                LibRole::NetStack,
            ))
            .with_library(LibraryConfig::new(LibSpec::unsafe_c("app"), LibRole::App));
        instantiate_migratable(plan(cfg).expect("sweep plan colors"), from)
            .expect("migratable boot succeeds")
    }
    fn steady(img: &mut BootImage, calls: u64) -> u64 {
        let t0 = img.machine.clock().cycles();
        for _ in 0..calls {
            img.call_lib("uksched_verified", 64, 16, |m, _| {
                m.charge(100);
                Ok(0)
            })
            .expect("sweep crossing succeeds");
        }
        (img.machine.clock().cycles() - t0) / calls
    }

    println!("Running the live gate-backend migration sweep (5x5 ordered pairs)...");
    let calls = if quick { 4 } else { 16 };
    let mut t = Table::new(
        "Live migration: runtime backend swap, per ordered (from, to) pair",
        &[
            "from \\ to",
            "pairs",
            "steady before",
            "first after",
            "steady after",
            "SQEs requeued",
        ],
    );
    let mut rows: Vec<(String, String, u64, u64, u64, u64, u64)> = Vec::new();
    for from in ALL {
        for to in ALL {
            let mut img = migratable(from);
            let before = steady(&mut img, calls);
            // Park async work on the ring so the swap has something to
            // carry: pending SQEs must re-issue through the new gate.
            for ud in 0..3u64 {
                img.submit_lib("uksched_verified", Sqe::new(32, 8, ud))
                    .expect("submission before the drain is admitted");
            }
            let (applied, deferred) = migrate_all(&mut img, to, MigrationReason::Manual)
                .expect("quiescent sweep image migrates");
            assert_eq!(deferred, 0, "sweep image is quiescent between calls");
            let t0 = img.machine.clock().cycles();
            img.call_lib("uksched_verified", 64, 16, |m, _| {
                m.charge(100);
                Ok(0)
            })
            .expect("first post-swap crossing succeeds");
            let first = img.machine.clock().cycles() - t0;
            let after = steady(&mut img, calls);
            // The requeued descriptors complete through the new backend.
            let flushed = img
                .call_lib_async("uksched_verified", |m, _, _| {
                    m.charge(50);
                    Ok(1)
                })
                .expect("requeued SQEs flush");
            assert_eq!(flushed, 3, "{from:?}->{to:?} lost a requeued SQE");
            let st = img.gates.migration_stats();
            t.row(vec![
                format!("{} -> {}", tag(from), tag(to)),
                applied.to_string(),
                format!("{before}"),
                format!("{first}"),
                format!("{after}"),
                st.requeued_sqes.to_string(),
            ]);
            rows.push((
                tag(from).to_string(),
                tag(to).to_string(),
                applied as u64,
                before,
                first,
                after,
                st.requeued_sqes,
            ));
        }
    }
    println!("{}", t.render());
    println!(
        "Shape: swaps toward VM RPC multiply the steady crossing cost, swaps\n\
         toward direct collapse it; the first post-swap crossing equals the\n\
         steady cost (re-establishment is charged at swap time, not lazily).\n"
    );

    // Policy ladder demo: hostile windows escalate one rung at a time,
    // sustained benign load relaxes after a streak.
    let mut pol = MigrationPolicy::new(GateMechanism::MpkSharedStack);
    let windows: &[(&str, PolicySignals)] = &[
        (
            "benign, loaded",
            PolicySignals {
                hardening_aborts: 0,
                chaos_events: 0,
                window_ops: 512,
            },
        ),
        (
            "chaos event",
            PolicySignals {
                hardening_aborts: 0,
                chaos_events: 2,
                window_ops: 512,
            },
        ),
        (
            "hardening abort",
            PolicySignals {
                hardening_aborts: 1,
                chaos_events: 0,
                window_ops: 512,
            },
        ),
        (
            "benign, loaded",
            PolicySignals {
                hardening_aborts: 0,
                chaos_events: 0,
                window_ops: 512,
            },
        ),
        (
            "benign, loaded",
            PolicySignals {
                hardening_aborts: 0,
                chaos_events: 0,
                window_ops: 512,
            },
        ),
        (
            "benign, loaded",
            PolicySignals {
                hardening_aborts: 0,
                chaos_events: 0,
                window_ops: 512,
            },
        ),
        (
            "benign, loaded",
            PolicySignals {
                hardening_aborts: 0,
                chaos_events: 0,
                window_ops: 512,
            },
        ),
        (
            "benign, loaded",
            PolicySignals {
                hardening_aborts: 0,
                chaos_events: 0,
                window_ops: 512,
            },
        ),
    ];
    let mut pt = Table::new(
        "MigrationPolicy ladder (escalate on hostile window, relax after a benign streak)",
        &["window", "signals", "decision", "mechanism after"],
    );
    let mut pol_rows: Vec<(String, String)> = Vec::new();
    for (what, s) in windows {
        let decision = pol.observe(*s);
        let d = match decision {
            PolicyDecision::Hold => "hold".to_string(),
            PolicyDecision::Escalate { to } => {
                pol.applied(to);
                format!("escalate -> {}", tag(backend_of(to)))
            }
            PolicyDecision::Relax { to } => {
                pol.applied(to);
                format!("relax -> {}", tag(backend_of(to)))
            }
        };
        pt.row(vec![
            (*what).to_string(),
            format!(
                "aborts={} chaos={} ops={}",
                s.hardening_aborts, s.chaos_events, s.window_ops
            ),
            d.clone(),
            tag(backend_of(pol.current())).to_string(),
        ]);
        pol_rows.push(((*what).to_string(), d));
    }
    println!("{}", pt.render());

    if let Some(path) = json {
        let mut w = JsonWriter::new();
        w.begin_obj(None)
            .str_field("experiment", "live-migration-sweep")
            .u64_field("steady_calls", calls)
            .begin_arr(Some("pairs"));
        for (from, to, applied, before, first, after, requeued) in &rows {
            w.begin_obj(None)
                .str_field("from", from)
                .str_field("to", to)
                .u64_field("applied", *applied)
                .u64_field("steady_before", *before)
                .u64_field("first_after", *first)
                .u64_field("steady_after", *after)
                .u64_field("requeued_sqes", *requeued)
                .end_obj();
        }
        w.end_arr().begin_arr(Some("policy"));
        for (window, decision) in &pol_rows {
            w.begin_obj(None)
                .str_field("window", window)
                .str_field("decision", decision)
                .end_obj();
        }
        w.end_arr().end_obj();
        match std::fs::write(path, w.finish()) {
            Ok(()) => println!("Wrote JSON migration report to {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let stats_flag = args.iter().any(|a| a == "--stats");
    let chaos_flag = args.iter().any(|a| a == "--chaos");
    let bench_flag = args.iter().any(|a| a == "--bench");
    let serve_flag = args.iter().any(|a| a == "--serve");
    let migrate_flag = args.iter().any(|a| a == "--migrate");
    let conns: Option<usize> = args
        .iter()
        .find_map(|a| a.strip_prefix("--conns="))
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("--conns must be a positive integer, got `{s}`");
                std::process::exit(2);
            })
        });
    let seed: u64 = args
        .iter()
        .find_map(|a| a.strip_prefix("--seed="))
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("--seed must be an unsigned integer, got `{s}`");
                std::process::exit(2);
            })
        })
        .unwrap_or(42);
    let vcpus: usize = args
        .iter()
        .find_map(|a| a.strip_prefix("--vcpus="))
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("--vcpus must be a positive integer, got `{s}`");
                std::process::exit(2);
            })
        })
        .unwrap_or(1)
        .max(1);
    let migrate_at: Option<(u64, flexos::build::BackendChoice)> = args
        .iter()
        .find_map(|a| a.strip_prefix("--migrate-at="))
        .map(|s| {
            use flexos::build::BackendChoice;
            let (n, b) = s.split_once(':').unwrap_or((s, "vmrpc"));
            let after: u64 = n.parse().unwrap_or_else(|_| {
                eprintln!("--migrate-at must be BURSTS[:backend], got `{s}`");
                std::process::exit(2);
            });
            let to = match b {
                "direct" | "none" => BackendChoice::None,
                "mpk-shared" => BackendChoice::MpkShared,
                "mpk-switched" => BackendChoice::MpkSwitched,
                "vmrpc" => BackendChoice::VmRpc,
                "cheri" => BackendChoice::Cheri,
                _ => {
                    eprintln!(
                        "--migrate-at backend must be \
                         direct|mpk-shared|mpk-switched|vmrpc|cheri, got `{b}`"
                    );
                    std::process::exit(2);
                }
            };
            (after, to)
        });
    let trace_out: Option<String> = args
        .iter()
        .find_map(|a| a.strip_prefix("--trace-out=").map(str::to_string));
    let json_explicit: Option<String> = args
        .iter()
        .find_map(|a| a.strip_prefix("--json=").map(str::to_string));
    let json_bare = args.iter().any(|a| a == "--json");
    // Bare `--json` picks a per-report default filename.
    let json: Option<String> = json_explicit
        .clone()
        .or_else(|| json_bare.then(|| "flexos-stats.json".to_string()));
    let chaos_json_path: Option<String> = json_explicit
        .clone()
        .or_else(|| json_bare.then(|| "flexos-chaos.json".to_string()));
    let bench_json_path: Option<String> = json_explicit
        .clone()
        .or_else(|| json_bare.then(|| "BENCH_10.json".to_string()));
    let migrate_json_path: Option<String> = json_explicit
        .clone()
        .or_else(|| json_bare.then(|| "flexos-migrate.json".to_string()));
    let serve_json_path: Option<String> =
        json_explicit.or_else(|| json_bare.then(|| "flexos-serve.json".to_string()));
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| {
            if stats_flag {
                "stats".into()
            } else if chaos_flag {
                "chaos".into()
            } else if bench_flag {
                "bench".into()
            } else if serve_flag {
                "serve".into()
            } else if migrate_flag {
                "migrate".into()
            } else {
                "all".into()
            }
        });
    let all = what == "all";
    println!(
        "FlexOS-rs reproduction harness (deterministic cycle simulation @2.1 GHz{})",
        if quick { ", quick mode" } else { "" }
    );
    if all || what == "coloring" {
        run_coloring();
    }
    if all || what == "explore" {
        run_explore();
    }
    if all || what == "ctxswitch" {
        run_ctxswitch();
    }
    if all || what == "fig3" {
        run_fig3(quick);
    }
    if all || what == "table1" {
        run_table1(quick);
    }
    if all || what == "fig4" {
        run_fig4(quick);
    }
    if all || what == "fig5" {
        run_fig5(quick);
    }
    if all || what == "cheri" {
        run_cheri(quick);
    }
    if all || what == "stats" || stats_flag {
        run_stats(quick, vcpus, json.as_deref(), trace_out.as_deref());
    }
    if what == "chaos" || chaos_flag {
        run_chaos(quick, seed, vcpus, chaos_json_path.as_deref());
    }
    if what == "bench" || bench_flag {
        run_bench(quick, bench_json_path.as_deref());
    }
    if what == "serve" || serve_flag {
        run_serve_exp(
            quick,
            conns,
            serve_json_path.as_deref(),
            trace_out.as_deref(),
            migrate_at,
        );
    }
    if what == "migrate" || migrate_flag {
        run_migrate(quick, migrate_json_path.as_deref());
    }
    if !all
        && ![
            "fig3",
            "table1",
            "fig4",
            "fig5",
            "cheri",
            "ctxswitch",
            "coloring",
            "explore",
            "stats",
            "chaos",
            "bench",
            "serve",
            "migrate",
        ]
        .contains(&what.as_str())
    {
        eprintln!(
            "unknown experiment `{what}`; expected \
             fig3|table1|fig4|fig5|cheri|ctxswitch|coloring|explore|stats|chaos|bench|serve|migrate|all"
        );
        std::process::exit(2);
    }
}
