//! The experiment drivers: one function per table/figure in the paper.
//!
//! Each returns structured results so both the `reproduce` binary (which
//! prints paper-style tables) and the Criterion benches (which track the
//! same workloads over time) share one implementation. `quick` variants
//! shrink transfer sizes for CI.

use flexos::build::{BackendChoice, Hypervisor};
use flexos_apps::iperf::{run_iperf, IperfParams};
use flexos_apps::redis::{run_redis, Mix, RedisParams, RedisResult};
use flexos_apps::{CompartmentModel, SchedKind};
use flexos_kernel::exec::{Executor, KernelHal, Step};
use flexos_kernel::sched::{CoopScheduler, RunQueue, ThreadId, VerifiedScheduler};
use flexos_machine::{cycles_to_nanos, Machine};

/// Bytes transferred per iperf point.
pub fn iperf_bytes(quick: bool) -> u64 {
    if quick {
        256 * 1024
    } else {
        2 * 1024 * 1024
    }
}

/// Requests per Redis point.
pub fn redis_ops(quick: bool) -> u64 {
    if quick {
        300
    } else {
        2_000
    }
}

// --- Figure 3 -----------------------------------------------------------------

/// One Figure 3 configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig3Config {
    /// No isolation, KVM.
    KvmBaseline,
    /// Single compartment, SH on the network stack only, KVM.
    ShKvm,
    /// MPK shared-stack gate between {NW} and {rest}, KVM.
    MpkSharedKvm,
    /// MPK switched-stack gate, KVM.
    MpkSwitchedKvm,
    /// No isolation, Xen.
    XenBaseline,
    /// One VM per compartment (EPT RPC), Xen.
    VmRpcXen,
}

impl Fig3Config {
    /// All configurations, legend order.
    pub const ALL: [Fig3Config; 6] = [
        Fig3Config::KvmBaseline,
        Fig3Config::ShKvm,
        Fig3Config::MpkSharedKvm,
        Fig3Config::MpkSwitchedKvm,
        Fig3Config::XenBaseline,
        Fig3Config::VmRpcXen,
    ];

    /// The figure's legend label.
    pub fn label(self) -> &'static str {
        match self {
            Fig3Config::KvmBaseline => "KVM Baseline",
            Fig3Config::ShKvm => "SH (KVM)",
            Fig3Config::MpkSharedKvm => "MPK-Sha. (KVM)",
            Fig3Config::MpkSwitchedKvm => "MPK-Sw. (KVM)",
            Fig3Config::XenBaseline => "Xen Baseline",
            Fig3Config::VmRpcXen => "VM RPC (Xen)",
        }
    }

    /// Instantiates the iperf parameters for this configuration.
    pub fn params(self, recv_buf: u64, total_bytes: u64) -> IperfParams {
        let mut p = IperfParams {
            recv_buf,
            total_bytes,
            ..IperfParams::default()
        };
        match self {
            Fig3Config::KvmBaseline => {}
            Fig3Config::ShKvm => p.sh_on = vec!["lwip".into()],
            Fig3Config::MpkSharedKvm => {
                p.model = CompartmentModel::NwOnly;
                p.backend = BackendChoice::MpkShared;
            }
            Fig3Config::MpkSwitchedKvm => {
                p.model = CompartmentModel::NwOnly;
                p.backend = BackendChoice::MpkSwitched;
            }
            Fig3Config::XenBaseline => p.hypervisor = Hypervisor::Xen,
            Fig3Config::VmRpcXen => {
                p.model = CompartmentModel::NwOnly;
                p.backend = BackendChoice::VmRpc;
                p.hypervisor = Hypervisor::Xen;
            }
        }
        p
    }
}

/// The Figure 3 x-axis (bytes passed to `recv`, 2^6 … 2^16).
pub fn fig3_buffer_sizes(quick: bool) -> Vec<u64> {
    if quick {
        vec![64, 1024, 16 * 1024]
    } else {
        vec![64, 256, 1024, 4096, 16 * 1024, 64 * 1024]
    }
}

/// One Figure 3 data point.
#[derive(Debug, Clone)]
pub struct Fig3Point {
    /// Configuration.
    pub config: Fig3Config,
    /// recv buffer size.
    pub recv_buf: u64,
    /// Measured server-side throughput.
    pub mbps: f64,
}

/// Runs Figure 3: iperf throughput vs recv-buffer size for all six
/// configurations.
pub fn fig3(quick: bool) -> Vec<Fig3Point> {
    let mut out = Vec::new();
    for config in Fig3Config::ALL {
        for &recv_buf in &fig3_buffer_sizes(quick) {
            let r = run_iperf(&config.params(recv_buf, iperf_bytes(quick)));
            out.push(Fig3Point {
                config,
                recv_buf,
                mbps: r.mbps,
            });
        }
    }
    out
}

// --- Table 1 -------------------------------------------------------------------

/// The components Table 1 toggles SH on.
pub const TABLE1_COMPONENTS: [(&str, &[&str]); 4] = [
    ("Scheduler", &["uksched"]),
    ("Network stack", &["lwip"]),
    ("LibC", &["libc"]),
    ("Rest of the system", &["iperf", "ukalloc", "uknetdev"]),
];

/// Every library in the iperf image.
pub const ALL_LIBS: [&str; 6] = ["iperf", "libc", "ukalloc", "uknetdev", "lwip", "uksched"];

/// One Table 1 row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Component name ("Scheduler", …, "Entire system").
    pub component: String,
    /// Throughput with SH on everything *but* this component.
    pub all_but_c_mbps: f64,
    /// Throughput with SH on this component *only*.
    pub c_only_mbps: f64,
}

/// Table 1 results plus the unhardened baseline.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// The baseline (no SH anywhere).
    pub baseline_mbps: f64,
    /// Throughput with SH on the entire system.
    pub all_sh_mbps: f64,
    /// Per-component rows.
    pub rows: Vec<Table1Row>,
}

/// Runs Table 1: iperf with SH at micro-library granularity.
pub fn table1(quick: bool) -> Table1 {
    let recv_buf = 8 * 1024;
    let total = iperf_bytes(quick);
    let run = |sh_on: Vec<String>| {
        run_iperf(&IperfParams {
            recv_buf,
            total_bytes: total,
            sh_on,
            ..IperfParams::default()
        })
        .mbps
    };
    let baseline = run(Vec::new());
    let all = run(ALL_LIBS.iter().map(|s| s.to_string()).collect());
    let mut rows = Vec::new();
    for (component, libs) in TABLE1_COMPONENTS {
        let only: Vec<String> = libs.iter().map(|s| s.to_string()).collect();
        let all_but: Vec<String> = ALL_LIBS
            .iter()
            .filter(|l| !libs.contains(l))
            .map(|s| s.to_string())
            .collect();
        rows.push(Table1Row {
            component: component.into(),
            all_but_c_mbps: run(all_but),
            c_only_mbps: run(only),
        });
    }
    Table1 {
        baseline_mbps: baseline,
        all_sh_mbps: all,
        rows,
    }
}

// --- Figure 4 --------------------------------------------------------------------

/// One Figure 4 configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig4Config {
    /// No hardening, plain scheduler.
    NoSh,
    /// SH on the network stack, single global allocator.
    ShGlobalAlloc,
    /// SH on the network stack, dedicated allocator for the stack.
    ShLocalAlloc,
    /// No hardening, verified scheduler.
    VerifiedSched,
}

impl Fig4Config {
    /// All configurations, legend order.
    pub const ALL: [Fig4Config; 4] = [
        Fig4Config::NoSh,
        Fig4Config::ShGlobalAlloc,
        Fig4Config::ShLocalAlloc,
        Fig4Config::VerifiedSched,
    ];

    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            Fig4Config::NoSh => "No SH",
            Fig4Config::ShGlobalAlloc => "SH global alloc",
            Fig4Config::ShLocalAlloc => "SH local alloc",
            Fig4Config::VerifiedSched => "Verified Sched",
        }
    }

    /// Redis parameters for this configuration.
    pub fn params(self, mix: Mix, payload: usize, ops: u64) -> RedisParams {
        let mut p = RedisParams {
            mix,
            payload,
            ops,
            ..RedisParams::default()
        };
        match self {
            Fig4Config::NoSh => {}
            Fig4Config::ShGlobalAlloc => {
                p.model = CompartmentModel::NwOnly;
                p.backend = BackendChoice::None;
                p.sh_on = vec!["lwip".into()];
                p.dedicated_allocators = false;
            }
            Fig4Config::ShLocalAlloc => {
                p.model = CompartmentModel::NwOnly;
                p.backend = BackendChoice::None;
                p.sh_on = vec!["lwip".into()];
                p.dedicated_allocators = true;
            }
            Fig4Config::VerifiedSched => p.sched = SchedKind::Verified,
        }
        p
    }
}

/// One Figure 4 data point.
#[derive(Debug, Clone)]
pub struct Fig4Point {
    /// Configuration.
    pub config: Fig4Config,
    /// SET or GET.
    pub mix: Mix,
    /// Payload bytes.
    pub payload: usize,
    /// Mega-requests per second.
    pub mreq_per_s: f64,
}

/// The Figure 4/5 payload sizes.
pub const REDIS_PAYLOADS: [usize; 3] = [5, 50, 500];

/// Runs Redis, degrading a failed run to a zero-throughput point (with a
/// warning on stderr) instead of aborting the whole figure.
fn run_redis_or_zero(params: &RedisParams) -> RedisResult {
    run_redis(params).unwrap_or_else(|e| {
        eprintln!("warning: redis run failed ({e}); recording zero-throughput point");
        RedisResult {
            ops: 0,
            cycles: 0,
            mreq_per_s: 0.0,
            crossings: 0,
        }
    })
}

/// Runs Figure 4: Redis throughput under SH configurations and the
/// verified scheduler.
pub fn fig4(quick: bool) -> Vec<Fig4Point> {
    let payloads: &[usize] = if quick { &[50] } else { &REDIS_PAYLOADS };
    let mut out = Vec::new();
    for config in Fig4Config::ALL {
        for &payload in payloads {
            for mix in [Mix::Set, Mix::Get] {
                let r = run_redis_or_zero(&config.params(mix, payload, redis_ops(quick)));
                out.push(Fig4Point {
                    config,
                    mix,
                    payload,
                    mreq_per_s: r.mreq_per_s,
                });
            }
        }
    }
    out
}

// --- Figure 5 ----------------------------------------------------------------------

/// One Figure 5 data point.
#[derive(Debug, Clone)]
pub struct Fig5Point {
    /// Compartment model.
    pub model: CompartmentModel,
    /// Shared or switched stacks (`None` for the no-isolation bar).
    pub backend: BackendChoice,
    /// Payload bytes.
    pub payload: usize,
    /// Mega-requests per second (GET).
    pub mreq_per_s: f64,
}

/// Runs Figure 5: Redis with MPK isolation across compartment models.
pub fn fig5(quick: bool) -> Vec<Fig5Point> {
    let payloads: &[usize] = if quick { &[50] } else { &REDIS_PAYLOADS };
    let mut out = Vec::new();
    for &payload in payloads {
        // Baseline bar.
        let r = run_redis_or_zero(&RedisParams {
            payload,
            mix: Mix::Get,
            ops: redis_ops(quick),
            ..RedisParams::default()
        });
        out.push(Fig5Point {
            model: CompartmentModel::Baseline,
            backend: BackendChoice::None,
            payload,
            mreq_per_s: r.mreq_per_s,
        });
        for model in [
            CompartmentModel::NwOnly,
            CompartmentModel::NwSchedRest,
            CompartmentModel::NwAndSchedRest,
        ] {
            for backend in [BackendChoice::MpkShared, BackendChoice::MpkSwitched] {
                let r = run_redis_or_zero(&RedisParams {
                    model,
                    backend,
                    payload,
                    mix: Mix::Get,
                    ops: redis_ops(quick),
                    ..RedisParams::default()
                });
                out.push(Fig5Point {
                    model,
                    backend,
                    payload,
                    mreq_per_s: r.mreq_per_s,
                });
            }
        }
    }
    out
}

// --- Extension: CHERI backend (heterogeneous hardware, §1) ---------------------------

/// One CHERI-extension data point: iperf throughput for a backend at a
/// given recv-buffer size.
#[derive(Debug, Clone)]
pub struct CheriPoint {
    /// Backend label.
    pub label: &'static str,
    /// recv buffer size.
    pub recv_buf: u64,
    /// Measured server-side throughput.
    pub mbps: f64,
}

/// Runs the CHERI-extension experiment: the same two-compartment iperf
/// image retargeted across direct calls, CHERI capability gates, MPK
/// and VM RPC — the "switch primitives at deployment time" pitch with a
/// future-hardware backend included.
pub fn ext_cheri(quick: bool) -> Vec<CheriPoint> {
    let mut out = Vec::new();
    let backends: [(&'static str, CompartmentModel, BackendChoice); 4] = [
        (
            "No isolation",
            CompartmentModel::Baseline,
            BackendChoice::None,
        ),
        (
            "CHERI (sealed caps)",
            CompartmentModel::NwOnly,
            BackendChoice::Cheri,
        ),
        (
            "MPK (shared stack)",
            CompartmentModel::NwOnly,
            BackendChoice::MpkShared,
        ),
        (
            "VM RPC (EPT)",
            CompartmentModel::NwOnly,
            BackendChoice::VmRpc,
        ),
    ];
    for (label, model, backend) in backends {
        for &recv_buf in &fig3_buffer_sizes(quick) {
            let r = run_iperf(&IperfParams {
                model,
                backend,
                recv_buf,
                total_bytes: iperf_bytes(quick),
                ..IperfParams::default()
            });
            out.push(CheriPoint {
                label,
                recv_buf,
                mbps: r.mbps,
            });
        }
    }
    out
}

// --- Context-switch microbenchmark (§4 "Verified Scheduler") -------------------------

/// Context-switch latencies in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct CtxSwitchResult {
    /// The plain C-style scheduler.
    pub coop_ns: f64,
    /// The verified scheduler.
    pub verified_ns: f64,
}

struct BenchCtx {
    machine: Machine,
}

impl KernelHal for BenchCtx {
    fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }
    fn resume_compartment(
        &mut self,
        _c: flexos::gate::CompartmentId,
    ) -> flexos_machine::Result<()> {
        Ok(())
    }
    fn drain_wakes(&mut self) -> Vec<ThreadId> {
        Vec::new()
    }
}

fn measure_switch(rq: Box<dyn RunQueue>, switches: u64) -> f64 {
    let mut ctx = BenchCtx {
        machine: Machine::with_defaults(),
    };
    let mut exec: Executor<BenchCtx> = Executor::new(rq);
    let mk = |quanta: u64| {
        let mut left = quanta;
        Box::new(move |_ctx: &mut BenchCtx, _tid| {
            left -= 1;
            Ok(if left == 0 { Step::Done } else { Step::Yield })
        })
    };
    // Two threads ping-pong: every quantum is a switch.
    exec.spawn(flexos::gate::CompartmentId(0), mk(switches / 2))
        .expect("spawn");
    exec.spawn(flexos::gate::CompartmentId(0), mk(switches / 2))
        .expect("spawn");
    let before = ctx.machine.clock().cycles();
    let summary = exec.run(&mut ctx, switches * 2).expect("run");
    let cycles = ctx.machine.clock().cycles() - before;
    cycles_to_nanos(cycles / summary.switches.max(1))
}

/// Measures the two schedulers' context-switch latency (the paper:
/// 76.6 ns for C, 218.6 ns for the verified scheduler — a 3x ratio).
pub fn ctx_switch(switches: u64) -> CtxSwitchResult {
    CtxSwitchResult {
        coop_ns: measure_switch(Box::new(CoopScheduler::new()), switches),
        verified_ns: measure_switch(Box::new(VerifiedScheduler::new()), switches),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_switch_reproduces_the_paper_numbers() {
        let r = ctx_switch(1000);
        assert!((r.coop_ns - 76.6).abs() < 2.0, "coop: {} ns", r.coop_ns);
        assert!(
            (r.verified_ns - 218.6).abs() < 3.0,
            "verified: {} ns",
            r.verified_ns
        );
        let ratio = r.verified_ns / r.coop_ns;
        assert!(ratio > 2.5 && ratio < 3.2, "ratio {ratio}");
    }

    #[test]
    fn fig3_quick_produces_all_series() {
        let points = fig3(true);
        assert_eq!(points.len(), 6 * 3);
        // Baseline beats VM RPC at the smallest buffer.
        let base = points
            .iter()
            .find(|p| p.config == Fig3Config::KvmBaseline && p.recv_buf == 64)
            .unwrap();
        let vm = points
            .iter()
            .find(|p| p.config == Fig3Config::VmRpcXen && p.recv_buf == 64)
            .unwrap();
        assert!(base.mbps > vm.mbps);
    }

    #[test]
    fn table1_quick_has_expected_shape() {
        let t = table1(true);
        assert_eq!(t.rows.len(), 4);
        // SH everywhere is the slowest configuration.
        assert!(t.all_sh_mbps < t.baseline_mbps);
        for row in &t.rows {
            assert!(row.c_only_mbps <= t.baseline_mbps * 1.02);
            assert!(row.all_but_c_mbps >= t.all_sh_mbps * 0.9);
        }
        // Scheduler-only SH is nearly free; LibC-only SH hurts most.
        let sched = t.rows.iter().find(|r| r.component == "Scheduler").unwrap();
        let libc = t.rows.iter().find(|r| r.component == "LibC").unwrap();
        assert!(sched.c_only_mbps > libc.c_only_mbps);
    }
}
