//! The `flexos-inject` chaos report: goodput vs. fault rate per
//! mechanism (`reproduce --chaos`).
//!
//! Each experiment drives a real workload through the simulated machine
//! with a seeded [`ChaosPlan`] (or seeded [`LinkChaos`]) installed and
//! measures how gracefully the recovery path degrades:
//!
//! * **TCP vs. frame loss** — the full iperf image, with the link
//!   dropping a per-mille fraction of frames; goodput falls, the byte
//!   stream still completes (RTO + retransmission).
//! * **VM RPC vs. doorbell loss** — gate crossings with notifications
//!   silently dropped; the gate retries with exponential backoff and
//!   surfaces a typed `GateTimeout` only when every attempt is lost.
//! * **Allocation vs. injected OOM** — region allocations forced to
//!   fail probabilistically; callers observe clean `OutOfMemory` faults
//!   and the success fraction tracks the configured rate.
//! * **Memory access vs. spurious pkey faults** — writes that fault
//!   spuriously and are retried; every write eventually lands.
//!
//! Every number is a pure function of the seed: two runs with the same
//! seed produce bit-identical reports.

use flexos::gate::{CompartmentCtx, CompartmentId, Gate};
use flexos::spec::ShSet;
use flexos_apps::iperf::{run_iperf, IperfParams};
use flexos_backends::vmrpc::VmRpcGate;
use flexos_machine::{
    ChaosConfig, ChaosPlan, Machine, PageFlags, Pkru, ProtKey, Schedule, VcpuId, VmId,
};
use flexos_net::nic::LinkChaos;

/// One point of the TCP goodput-vs-loss sweep.
#[derive(Debug, Clone, Copy)]
pub struct TcpChaosPoint {
    /// Injected frame-loss rate (‰).
    pub loss_per_mille: u16,
    /// Bytes delivered to the application (always the full transfer).
    pub bytes: u64,
    /// Goodput in Mb/s.
    pub mbps: f64,
    /// Frames the link dropped.
    pub frames_dropped: u64,
}

/// iperf goodput under injected frame loss.
///
/// `vcpus` selects the run-queue topology (1 = legacy single queue,
/// more = the deterministic SMP queue). The canonical interleave makes
/// the sweep byte-identical for every `vcpus` value — the property the
/// `smp-determinism` CI job checks on this very report. The other three
/// chaos sweeps drive the machine directly, without a scheduler, so they
/// take no `vcpus` parameter.
pub fn tcp_goodput_vs_loss(quick: bool, seed: u64, vcpus: usize) -> Vec<TcpChaosPoint> {
    let rates: &[u16] = if quick {
        &[0, 100, 200]
    } else {
        &[0, 25, 50, 100, 200]
    };
    let total_bytes: u64 = if quick { 128 * 1024 } else { 512 * 1024 };
    rates
        .iter()
        .map(|&loss| {
            let r = run_iperf(&IperfParams {
                total_bytes,
                link_chaos: (loss > 0).then_some((
                    LinkChaos {
                        loss_per_mille: loss,
                        ..Default::default()
                    },
                    seed,
                )),
                vcpus,
                ..IperfParams::default()
            });
            TcpChaosPoint {
                loss_per_mille: loss,
                bytes: r.bytes,
                mbps: r.mbps,
                frames_dropped: r.frames_dropped,
            }
        })
        .collect()
}

/// One point of the VM-RPC doorbell-loss sweep.
#[derive(Debug, Clone, Copy)]
pub struct VmRpcChaosPoint {
    /// Injected doorbell-loss rate (‰).
    pub drop_per_mille: u16,
    /// Crossings attempted.
    pub attempts: u64,
    /// Crossings that completed (possibly after retries).
    pub ok: u64,
    /// Crossings that exhausted the retry budget (`GateTimeout`).
    pub timeouts: u64,
    /// Doorbell notifications the chaos layer dropped.
    pub doorbells_dropped: u64,
    /// Mean cycles per completed crossing (retry backoff included).
    pub mean_cycles_ok: u64,
}

/// VM RPC crossings under injected doorbell loss.
pub fn vmrpc_under_notify_loss(quick: bool, seed: u64) -> Vec<VmRpcChaosPoint> {
    let rates: &[u16] = if quick {
        &[0, 250, 900]
    } else {
        &[0, 100, 250, 500, 900]
    };
    let crossings: u64 = if quick { 200 } else { 1_000 };
    rates
        .iter()
        .map(|&rate| {
            let mut m = Machine::with_defaults();
            let vm1 = m.add_vm(false);
            let vcpu1 = m.add_vcpu(vm1);
            let rpc_base = m
                .alloc_shared_region(VmRpcGate::area_bytes(2), ProtKey(0))
                .expect("rpc area");
            let gate = VmRpcGate::new(rpc_base, 2);
            let heap0 = m
                .alloc_region(VmId(0), 4096, ProtKey(0), PageFlags::RW)
                .expect("heap0");
            let heap1 = m
                .alloc_region(vm1, 4096, ProtKey(0), PageFlags::RW)
                .expect("heap1");
            let c0 = CompartmentCtx {
                id: CompartmentId(0),
                name: "rest".into(),
                vm: VmId(0),
                vcpu: VcpuId(0),
                pkru: Pkru::ALLOW_ALL,
                keys: vec![],
                sh: ShSet::none(),
                heap_base: heap0,
                heap_size: 4096,
            };
            let c1 = CompartmentCtx {
                id: CompartmentId(1),
                name: "net".into(),
                vm: vm1,
                vcpu: vcpu1,
                pkru: Pkru::ALLOW_ALL,
                keys: vec![],
                sh: ShSet::none(),
                heap_base: heap1,
                heap_size: 4096,
            };
            if rate > 0 {
                m.set_chaos(ChaosPlan::new(ChaosConfig {
                    seed,
                    notify_drop: Schedule::PerMille(rate),
                    ..Default::default()
                }));
            }
            let mut ok = 0u64;
            let mut timeouts = 0u64;
            let mut cycles_ok = 0u64;
            for _ in 0..crossings {
                let t0 = m.clock().cycles();
                match gate.enter(&mut m, &c0, &c1, 64) {
                    Ok(()) => {
                        ok += 1;
                        cycles_ok += m.clock().cycles() - t0;
                    }
                    Err(_) => timeouts += 1,
                }
            }
            VmRpcChaosPoint {
                drop_per_mille: rate,
                attempts: crossings,
                ok,
                timeouts,
                doorbells_dropped: m.chaos_stats().map_or(0, |s| s.dropped_notifications),
                mean_cycles_ok: cycles_ok.checked_div(ok).unwrap_or(0),
            }
        })
        .collect()
}

/// One point of the injected-OOM sweep.
#[derive(Debug, Clone, Copy)]
pub struct AllocChaosPoint {
    /// Injected allocation-failure rate (‰).
    pub fail_per_mille: u16,
    /// Allocation attempts.
    pub attempts: u64,
    /// Attempts the chaos layer forced to fail.
    pub injected_oom: u64,
    /// Successful allocations per thousand attempts.
    pub success_per_mille: u64,
}

/// Region allocations under injected OOM.
pub fn alloc_under_injected_oom(quick: bool, seed: u64) -> Vec<AllocChaosPoint> {
    let rates: &[u16] = if quick {
        &[0, 100, 250]
    } else {
        &[0, 50, 100, 250]
    };
    let attempts: u64 = if quick { 200 } else { 1_000 };
    rates
        .iter()
        .map(|&rate| {
            let mut m = Machine::with_defaults();
            if rate > 0 {
                m.set_chaos(ChaosPlan::new(ChaosConfig {
                    seed,
                    alloc_fail: Schedule::PerMille(rate),
                    ..Default::default()
                }));
            }
            let mut ok = 0u64;
            for _ in 0..attempts {
                // Small regions so real frame exhaustion never interferes
                // with the injected failures.
                if m.alloc_region(VmId(0), 64, ProtKey(0), PageFlags::RW)
                    .is_ok()
                {
                    ok += 1;
                }
            }
            AllocChaosPoint {
                fail_per_mille: rate,
                attempts,
                injected_oom: m.chaos_stats().map_or(0, |s| s.injected_oom),
                success_per_mille: ok * 1000 / attempts,
            }
        })
        .collect()
}

/// One point of the spurious-pkey sweep.
#[derive(Debug, Clone, Copy)]
pub struct PkeyChaosPoint {
    /// Injected spurious-fault rate (‰) per access.
    pub fault_per_mille: u16,
    /// Writes the workload wanted to complete.
    pub writes: u64,
    /// Spurious faults taken (each retried until the write landed).
    pub spurious_faults: u64,
    /// Writes that eventually completed (always all of them).
    pub completed: u64,
}

/// Memory writes under spurious protection-key faults, retried until
/// they land — the "degrade gracefully" contract for the access path.
pub fn writes_under_spurious_pkey(quick: bool, seed: u64) -> Vec<PkeyChaosPoint> {
    let rates: &[u16] = if quick {
        &[0, 50, 100]
    } else {
        &[0, 10, 50, 100]
    };
    let writes: u64 = if quick { 500 } else { 2_000 };
    rates
        .iter()
        .map(|&rate| {
            let mut m = Machine::with_defaults();
            let buf = m
                .alloc_region(VmId(0), 4096, ProtKey(0), PageFlags::RW)
                .expect("buffer");
            if rate > 0 {
                m.set_chaos(ChaosPlan::new(ChaosConfig {
                    seed,
                    spurious_pkey: Schedule::PerMille(rate),
                    ..Default::default()
                }));
            }
            let mut completed = 0u64;
            for i in 0..writes {
                let payload = [(i % 251) as u8; 64];
                // Retry the write across spurious faults; the schedule is
                // per-access, so a retry re-draws and eventually lands.
                for _attempt in 0..64 {
                    if m.write(VcpuId(0), buf, &payload).is_ok() {
                        completed += 1;
                        break;
                    }
                }
            }
            PkeyChaosPoint {
                fault_per_mille: rate,
                writes,
                spurious_faults: m.chaos_stats().map_or(0, |s| s.spurious_pkey_faults),
                completed,
            }
        })
        .collect()
}

/// Renders the whole chaos report as a deterministic JSON document.
pub fn chaos_json(
    seed: u64,
    quick: bool,
    tcp: &[TcpChaosPoint],
    vmrpc: &[VmRpcChaosPoint],
    alloc: &[AllocChaosPoint],
    pkey: &[PkeyChaosPoint],
) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{{\"chaos\":{{\"seed\":{seed},\"quick\":{quick},\"tcp\":["
    ));
    for (i, p) in tcp.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"loss_per_mille\":{},\"bytes\":{},\"mbps\":{:.3},\"frames_dropped\":{}}}",
            p.loss_per_mille, p.bytes, p.mbps, p.frames_dropped
        ));
    }
    s.push_str("],\"vmrpc\":[");
    for (i, p) in vmrpc.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"drop_per_mille\":{},\"attempts\":{},\"ok\":{},\"timeouts\":{},\
             \"doorbells_dropped\":{},\"mean_cycles_ok\":{}}}",
            p.drop_per_mille, p.attempts, p.ok, p.timeouts, p.doorbells_dropped, p.mean_cycles_ok
        ));
    }
    s.push_str("],\"alloc\":[");
    for (i, p) in alloc.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"fail_per_mille\":{},\"attempts\":{},\"injected_oom\":{},\
             \"success_per_mille\":{}}}",
            p.fail_per_mille, p.attempts, p.injected_oom, p.success_per_mille
        ));
    }
    s.push_str("],\"pkey\":[");
    for (i, p) in pkey.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"fault_per_mille\":{},\"writes\":{},\"spurious_faults\":{},\"completed\":{}}}",
            p.fault_per_mille, p.writes, p.spurious_faults, p.completed
        ));
    }
    s.push_str("]}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vmrpc_sweep_degrades_monotonically_in_spirit() {
        let points = vmrpc_under_notify_loss(true, 42);
        // Zero loss: every crossing succeeds, nothing dropped.
        assert_eq!(points[0].ok, points[0].attempts);
        assert_eq!(points[0].doorbells_dropped, 0);
        // Heavy loss: retries charge cycles, some crossings time out.
        let heavy = points.last().unwrap();
        assert!(heavy.timeouts > 0);
        assert!(heavy.mean_cycles_ok > points[0].mean_cycles_ok);
    }

    #[test]
    fn alloc_sweep_tracks_the_configured_rate() {
        let points = alloc_under_injected_oom(true, 42);
        assert_eq!(points[0].success_per_mille, 1000);
        let last = points.last().unwrap();
        // 250‰ failure: success lands near 750‰.
        assert!((650..=850).contains(&last.success_per_mille));
        assert_eq!(
            last.injected_oom,
            last.attempts - last.attempts * last.success_per_mille / 1000
        );
    }

    #[test]
    fn pkey_sweep_always_completes_every_write() {
        for p in writes_under_spurious_pkey(true, 42) {
            assert_eq!(p.completed, p.writes);
            if p.fault_per_mille > 0 {
                assert!(p.spurious_faults > 0);
            }
        }
    }

    #[test]
    fn chaos_json_is_deterministic() {
        let mk = || {
            let vmrpc = vmrpc_under_notify_loss(true, 7);
            let alloc = alloc_under_injected_oom(true, 7);
            let pkey = writes_under_spurious_pkey(true, 7);
            chaos_json(7, true, &[], &vmrpc, &alloc, &pkey)
        };
        assert_eq!(mk(), mk());
    }
}
