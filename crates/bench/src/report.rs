//! Plain-text table/series rendering for the reproduction reports.

/// A formatted table with a title, column headers and string cells.
#[derive(Debug, Clone)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (must match `headers` in length).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a throughput in Mb/s the way the paper prints it
/// (`496 Mb/s` / `2.94 Gb/s`).
pub fn fmt_mbps(mbps: f64) -> String {
    if mbps >= 1000.0 {
        format!("{:.2} Gb/s", mbps / 1000.0)
    } else {
        format!("{mbps:.0} Mb/s")
    }
}

/// Formats a slowdown factor (`1.45x`).
pub fn fmt_slowdown(baseline: f64, value: f64) -> String {
    if value <= 0.0 {
        return "n/a".into();
    }
    format!("{:.2}x", baseline / value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["config", "Mb/s"]);
        t.row(vec!["baseline".into(), "2940".into()]);
        t.row(vec!["mpk".into(), "496".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("baseline"));
        let lines: Vec<&str> = s
            .lines()
            .filter(|l| l.contains("Mb") || l.contains("config"))
            .collect();
        assert!(!lines.is_empty());
    }

    #[test]
    fn mbps_formatting_matches_paper_style() {
        assert_eq!(fmt_mbps(496.0), "496 Mb/s");
        assert_eq!(fmt_mbps(2940.0), "2.94 Gb/s");
    }

    #[test]
    fn slowdown_formatting() {
        assert_eq!(fmt_slowdown(2940.0, 489.0), "6.01x");
        assert_eq!(fmt_slowdown(1.0, 0.0), "n/a");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_is_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
