//! Plain-text table/series rendering for the reproduction reports.

/// A formatted table with a title, column headers and string cells.
#[derive(Debug, Clone)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (must match `headers` in length).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// Arity is checked with a `debug_assert!` — a mismatched row in a
    /// release-mode report run pads (or truncates at render time) instead
    /// of aborting a long benchmark session. Use [`Table::try_row`] to
    /// handle the mismatch explicitly.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Appends a row, returning an error instead of asserting when the
    /// cell count does not match the header count.
    ///
    /// # Errors
    ///
    /// Returns [`RowArityError`] (and leaves the table unchanged) when
    /// `cells.len() != self.headers.len()`.
    pub fn try_row(&mut self, cells: Vec<String>) -> Result<(), RowArityError> {
        if cells.len() != self.headers.len() {
            return Err(RowArityError {
                expected: self.headers.len(),
                got: cells.len(),
            });
        }
        self.rows.push(cells);
        Ok(())
    }

    /// Renders with aligned columns. Ragged rows (possible in release
    /// builds, where [`Table::row`] only debug-asserts arity) render with
    /// their own cells; extra cells get their own width.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(0);
                }
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as RFC-4180-style CSV: a header line then one line per
    /// row. Cells containing commas, quotes or newlines are quoted, with
    /// embedded quotes doubled.
    pub fn render_csv(&self) -> String {
        fn csv_cell(c: &str) -> String {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| csv_cell(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(
                &row.iter()
                    .map(|c| csv_cell(c))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push('\n');
        }
        out
    }
}

/// A row was appended with a cell count different from the table's
/// header count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowArityError {
    /// Number of headers (expected cells per row).
    pub expected: usize,
    /// Number of cells actually supplied.
    pub got: usize,
}

impl std::fmt::Display for RowArityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "row arity mismatch: expected {} cells, got {}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for RowArityError {}

/// Formats a throughput in Mb/s the way the paper prints it
/// (`496 Mb/s` / `2.94 Gb/s`).
pub fn fmt_mbps(mbps: f64) -> String {
    if mbps >= 1000.0 {
        format!("{:.2} Gb/s", mbps / 1000.0)
    } else {
        format!("{mbps:.0} Mb/s")
    }
}

/// Formats a slowdown factor (`1.45x`).
pub fn fmt_slowdown(baseline: f64, value: f64) -> String {
    if value <= 0.0 {
        return "n/a".into();
    }
    format!("{:.2}x", baseline / value)
}

/// A minimal streaming JSON writer (the build environment has no serde):
/// tracks nesting and comma placement so report code emits fields in
/// order without hand-managing separators. Output is deterministic —
/// byte-identical for identical call sequences — which the CI baseline
/// and SMP-determinism `cmp` jobs rely on.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// One entry per open object/array: whether a value was already
    /// written at that level (so the next one needs a comma).
    has_value: Vec<bool>,
}

impl JsonWriter {
    /// An empty writer. Open a root object or array first.
    pub fn new() -> Self {
        Self::default()
    }

    fn pad(&mut self) {
        if let Some(top) = self.has_value.last_mut() {
            if *top {
                self.buf.push(',');
            }
            *top = true;
        }
    }

    fn key_prefix(&mut self, key: &str) {
        self.pad();
        self.buf.push('"');
        Self::escape_into(key, &mut self.buf);
        self.buf.push_str("\":");
    }

    /// Opens an object — as a named field when `key` is given, as an
    /// array element / root value otherwise.
    pub fn begin_obj(&mut self, key: Option<&str>) -> &mut Self {
        match key {
            Some(k) => self.key_prefix(k),
            None => self.pad(),
        }
        self.buf.push('{');
        self.has_value.push(false);
        self
    }

    /// Closes the innermost object.
    pub fn end_obj(&mut self) -> &mut Self {
        self.has_value.pop();
        self.buf.push('}');
        self
    }

    /// Opens an array — named or positional, like [`JsonWriter::begin_obj`].
    pub fn begin_arr(&mut self, key: Option<&str>) -> &mut Self {
        match key {
            Some(k) => self.key_prefix(k),
            None => self.pad(),
        }
        self.buf.push('[');
        self.has_value.push(false);
        self
    }

    /// Closes the innermost array.
    pub fn end_arr(&mut self) -> &mut Self {
        self.has_value.pop();
        self.buf.push(']');
        self
    }

    /// Writes a string field (escaped).
    pub fn str_field(&mut self, key: &str, v: &str) -> &mut Self {
        self.key_prefix(key);
        self.buf.push('"');
        Self::escape_into(v, &mut self.buf);
        self.buf.push('"');
        self
    }

    /// Writes an unsigned integer field.
    pub fn u64_field(&mut self, key: &str, v: u64) -> &mut Self {
        self.key_prefix(key);
        let _ = std::fmt::Write::write_fmt(&mut self.buf, format_args!("{v}"));
        self
    }

    /// Writes a float field with `Display` formatting (shortest
    /// round-trippable form, matching the historical hand-rolled output).
    pub fn f64_field(&mut self, key: &str, v: f64) -> &mut Self {
        self.key_prefix(key);
        let _ = std::fmt::Write::write_fmt(&mut self.buf, format_args!("{v}"));
        self
    }

    /// Splices a pre-serialized JSON value as a field (e.g. a
    /// `StatsSnapshot::to_json` document). The caller vouches that `raw`
    /// is valid JSON.
    pub fn raw_field(&mut self, key: &str, raw: &str) -> &mut Self {
        self.key_prefix(key);
        self.buf.push_str(raw);
        self
    }

    /// Returns the accumulated document.
    ///
    /// # Panics
    ///
    /// Panics if objects/arrays are still open (a writer bug at the call
    /// site, not a data condition).
    pub fn finish(self) -> String {
        assert!(
            self.has_value.is_empty(),
            "JsonWriter finished with {} unclosed scopes",
            self.has_value.len()
        );
        self.buf
    }

    fn escape_into(s: &str, out: &mut String) {
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["config", "Mb/s"]);
        t.row(vec!["baseline".into(), "2940".into()]);
        t.row(vec!["mpk".into(), "496".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("baseline"));
        let lines: Vec<&str> = s
            .lines()
            .filter(|l| l.contains("Mb") || l.contains("config"))
            .collect();
        assert!(!lines.is_empty());
    }

    #[test]
    fn mbps_formatting_matches_paper_style() {
        assert_eq!(fmt_mbps(496.0), "496 Mb/s");
        assert_eq!(fmt_mbps(2940.0), "2.94 Gb/s");
    }

    #[test]
    fn slowdown_formatting() {
        assert_eq!(fmt_slowdown(2940.0, 489.0), "6.01x");
        assert_eq!(fmt_slowdown(1.0, 0.0), "n/a");
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_is_checked_in_debug() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn try_row_reports_arity_mismatch() {
        let mut t = Table::new("x", &["a", "b"]);
        let err = t.try_row(vec!["only-one".into()]).unwrap_err();
        assert_eq!(
            err,
            RowArityError {
                expected: 2,
                got: 1
            }
        );
        assert!(err.to_string().contains("expected 2"));
        assert!(t.rows.is_empty());
        t.try_row(vec!["1".into(), "2".into()]).unwrap();
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    fn json_writer_builds_nested_documents() {
        let mut w = JsonWriter::new();
        w.begin_obj(None);
        w.begin_obj(Some("workload"))
            .str_field("experiment", "redis")
            .u64_field("ops", 5000)
            .f64_field("mreq", 1.25)
            .end_obj();
        w.begin_arr(Some("rows"));
        for i in 0..2u64 {
            w.begin_obj(None).u64_field("i", i).end_obj();
        }
        w.end_arr();
        w.raw_field("stats", "{\"x\":1}");
        w.end_obj();
        assert_eq!(
            w.finish(),
            "{\"workload\":{\"experiment\":\"redis\",\"ops\":5000,\"mreq\":1.25},\
             \"rows\":[{\"i\":0},{\"i\":1}],\"stats\":{\"x\":1}}"
        );
    }

    #[test]
    fn json_writer_escapes_strings() {
        let mut w = JsonWriter::new();
        w.begin_obj(None)
            .str_field("k\"1", "a\\b\nc\u{1}")
            .end_obj();
        assert_eq!(w.finish(), "{\"k\\\"1\":\"a\\\\b\\nc\\u0001\"}");
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn json_writer_panics_on_unclosed_scope() {
        let mut w = JsonWriter::new();
        w.begin_obj(None);
        let _ = w.finish();
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("Demo", &["name", "note"]);
        t.row(vec!["a,b".into(), "say \"hi\"".into()]);
        t.row(vec!["plain".into(), "ok".into()]);
        let csv = t.render_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,note");
        assert_eq!(lines[1], "\"a,b\",\"say \"\"hi\"\"\"");
        assert_eq!(lines[2], "plain,ok");
    }
}
