//! Host wall-clock microbenches (`reproduce --bench`).
//!
//! Everything else `reproduce` prints is *simulated* time, derived from
//! the deterministic machine clock — bit-identical across hosts. This
//! module measures the orthogonal quantity: how much **host** time the
//! simulator itself burns pushing bytes through the enforcement
//! pipeline. The workloads are the repo's own experiment drivers
//! (`Machine::copy` loops, iperf TCP transfers, Redis GETs, MPK gate
//! crossings), timed with [`std::time::Instant`]; the simulated cycle
//! counts they produce are recorded alongside so regressions in either
//! axis are visible.
//!
//! Host numbers are machine-dependent and therefore *not* part of the
//! reproducibility contract; the recorded [`PRE_PR4_BASELINE`] exists so
//! `BENCH_4.json` can carry a before/after pair measured on the same
//! container, seeding the perf trajectory (see EXPERIMENTS.md E13).

use crate::experiments::Fig3Config;
use flexos::build::BackendChoice;
use flexos_apps::iperf::{run_iperf, IperfParams};
use flexos_apps::redis::{run_redis, run_redis_with_stats, Mix, RedisParams};
use flexos_apps::serve::{run_serve, run_serve_free, ServeParams, ServeResult};
use flexos_apps::CompartmentModel;
use flexos_kernel::smp::run_on_threads;
use flexos_machine::{Machine, PageFlags, ProtKey, VcpuId, VmId};
use flexos_trace::LatencyRow;
use std::fmt::Write as _;
use std::time::Instant;

/// One measured microbench.
#[derive(Debug, Clone)]
pub struct BenchPoint {
    /// Stable bench name (keys the baseline comparison).
    pub name: &'static str,
    /// Iterations of the inner operation.
    pub iters: u64,
    /// Payload bytes moved through the simulator (0 for call-only benches).
    pub bytes: u64,
    /// Host wall-clock nanoseconds for the whole measured loop.
    pub host_nanos: u64,
    /// Simulated cycles charged by the machine clock over the same loop.
    pub sim_cycles: u64,
}

impl BenchPoint {
    /// Host-side throughput in megabits per second (0 if byte-free).
    pub fn host_mbps(&self) -> f64 {
        if self.host_nanos == 0 {
            return 0.0;
        }
        (self.bytes as f64 * 8.0) / (self.host_nanos as f64 / 1e9) / 1e6
    }

    /// Host nanoseconds per iteration.
    pub fn ns_per_iter(&self) -> f64 {
        self.host_nanos as f64 / self.iters.max(1) as f64
    }
}

/// A pre-change reference measurement for one bench.
#[derive(Debug, Clone, Copy)]
pub struct BaselineEntry {
    /// Bench name matching a [`BenchPoint::name`].
    pub name: &'static str,
    /// Host wall-clock nanoseconds recorded before the fast path landed.
    pub host_nanos: u64,
    /// Iterations the recorded run used (same as the current harness).
    pub iters: u64,
    /// Payload bytes the recorded run moved.
    pub bytes: u64,
}

/// Where and when [`PRE_PR4_BASELINE`] was captured.
pub const BASELINE_NOTE: &str = "captured at commit 9cd4430 (pre software-TLB/zero-alloc fast \
     path) with this same harness, --quick, on the repo CI container";

/// Host wall-clock numbers of the `--quick` benches measured immediately
/// before the software TLB and zero-allocation fast path landed. The
/// workloads and iteration counts are identical to what [`run_bench`]
/// runs today in `--quick` mode, so `host_nanos` are directly comparable
/// on the same host class.
pub const PRE_PR4_BASELINE: &[BaselineEntry] = &[
    // Median of three pre-change measurement runs; see EXPERIMENTS.md
    // E13 for methodology.
    BaselineEntry {
        name: "memcpy-16k",
        host_nanos: 1_208_411,
        iters: 2_000,
        bytes: 2_000 * 16 * 1024,
    },
    BaselineEntry {
        name: "stream-rw-4k",
        host_nanos: 663_891,
        iters: 5_000,
        bytes: 5_000 * 2 * 4096,
    },
    BaselineEntry {
        name: "rw-u64",
        host_nanos: 3_228_864,
        iters: 50_000,
        bytes: 50_000 * 16,
    },
    BaselineEntry {
        name: "iperf-tcp-baseline",
        host_nanos: 1_889_517,
        iters: 1,
        bytes: 512 * 1024,
    },
    BaselineEntry {
        name: "iperf-tcp-mpk",
        host_nanos: 1_851_685,
        iters: 1,
        bytes: 512 * 1024,
    },
    BaselineEntry {
        name: "redis-get-mpk",
        host_nanos: 1_050_305,
        iters: 512,
        bytes: 0,
    },
    BaselineEntry {
        name: "gate-mpk-shared",
        host_nanos: 18_291,
        iters: 2_000,
        bytes: 0,
    },
];

/// The recorded baseline for `name`, if one exists.
pub fn baseline_for(name: &str) -> Option<&'static BaselineEntry> {
    PRE_PR4_BASELINE.iter().find(|b| b.name == name)
}

fn time<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_nanos() as u64)
}

/// Runs a bench three times and keeps the median sample (by host time).
///
/// Each sample rebuilds the workload from scratch, so the three runs are
/// independent; taking the median filters scheduler noise the same way
/// the recorded baseline did (it was the median of three harness runs).
fn median3(mut bench: impl FnMut() -> BenchPoint) -> BenchPoint {
    let mut samples = [bench(), bench(), bench()];
    samples.sort_by_key(|p| p.host_nanos);
    samples[1].clone()
}

/// Runs a bench five times and keeps the fastest sample.
///
/// The gate-batch matrix is consumed as a *ratio* (batch=32 vs batch=1
/// per-call time), so both sides must sit at their noise floor: host
/// interference only ever adds time, making the minimum the robust
/// estimator for a ratio gate where the median still drifts.
fn min5(mut bench: impl FnMut() -> BenchPoint) -> BenchPoint {
    let mut best = bench();
    for _ in 0..4 {
        let s = bench();
        if s.host_nanos < best.host_nanos {
            best = s;
        }
    }
    best
}

/// [`min5`] over a group of benches whose results are consumed as
/// ratios of each other, alternating one trial of each per round.
///
/// Taking each bench's trials back to back leaves minutes between the
/// first group member's samples and the last's, and host load here
/// swings 2x on that timescale — one bench catches a calm window its
/// ratio partner never sees, and the "speedup" mostly measures the
/// weather. Round-robin trials put every bench in every window, so each
/// minimum is drawn from the same load distribution.
fn min_grouped(rounds: usize, benches: &mut [&mut dyn FnMut() -> BenchPoint]) -> Vec<BenchPoint> {
    let mut best: Vec<Option<BenchPoint>> = benches.iter().map(|_| None).collect();
    for _ in 0..rounds {
        for (slot, bench) in best.iter_mut().zip(benches.iter_mut()) {
            let s = bench();
            if slot.as_ref().is_none_or(|b| s.host_nanos < b.host_nanos) {
                *slot = Some(s);
            }
        }
    }
    best.into_iter()
        .map(|b| b.expect("at least one round ran"))
        .collect()
}

fn bench_memcpy(quick: bool) -> BenchPoint {
    let iters: u64 = if quick { 2_000 } else { 20_000 };
    let chunk: u64 = 16 * 1024;
    let mut m = Machine::with_defaults();
    let src = m
        .alloc_region(VmId(0), chunk, ProtKey(0), PageFlags::RW)
        .expect("src region");
    let dst = m
        .alloc_region(VmId(0), chunk, ProtKey(0), PageFlags::RW)
        .expect("dst region");
    m.fill(VcpuId(0), src, chunk, 0xA5).expect("fill");
    let c0 = m.clock().cycles();
    let (_, host_nanos) = time(|| {
        for _ in 0..iters {
            m.copy(VcpuId(0), dst, src, chunk).expect("copy");
        }
    });
    BenchPoint {
        name: "memcpy-16k",
        iters,
        bytes: iters * chunk,
        host_nanos,
        sim_cycles: m.clock().cycles() - c0,
    }
}

fn bench_stream_rw(quick: bool) -> BenchPoint {
    let iters: u64 = if quick { 5_000 } else { 50_000 };
    let len: usize = 4096;
    let mut m = Machine::with_defaults();
    let a = m
        .alloc_region(VmId(0), len as u64, ProtKey(0), PageFlags::RW)
        .expect("region");
    let mut buf = vec![0x5Au8; len];
    let c0 = m.clock().cycles();
    let (_, host_nanos) = time(|| {
        for _ in 0..iters {
            m.write(VcpuId(0), a, &buf).expect("write");
            m.read(VcpuId(0), a, &mut buf).expect("read");
        }
    });
    BenchPoint {
        name: "stream-rw-4k",
        iters,
        bytes: iters * 2 * len as u64,
        host_nanos,
        sim_cycles: m.clock().cycles() - c0,
    }
}

fn bench_rw_u64(quick: bool) -> BenchPoint {
    let iters: u64 = if quick { 50_000 } else { 500_000 };
    let mut m = Machine::with_defaults();
    let a = m
        .alloc_region(VmId(0), 4096, ProtKey(0), PageFlags::RW)
        .expect("region");
    let c0 = m.clock().cycles();
    let (_, host_nanos) = time(|| {
        for i in 0..iters {
            m.write_u64(VcpuId(0), a, i).expect("write_u64");
            let got = m.read_u64(VcpuId(0), a).expect("read_u64");
            assert_eq!(got, i);
        }
    });
    BenchPoint {
        name: "rw-u64",
        iters,
        bytes: iters * 16,
        host_nanos,
        sim_cycles: m.clock().cycles() - c0,
    }
}

fn bench_iperf(name: &'static str, config: Fig3Config, quick: bool) -> BenchPoint {
    let total: u64 = if quick { 512 * 1024 } else { 8 * 1024 * 1024 };
    let params = config.params(16 * 1024, total);
    let (r, host_nanos) = time(|| run_iperf(&params));
    BenchPoint {
        name,
        iters: 1,
        bytes: r.bytes,
        host_nanos,
        sim_cycles: r.cycles,
    }
}

fn bench_redis(quick: bool) -> BenchPoint {
    let ops: u64 = if quick { 500 } else { 3_000 };
    let params = RedisParams {
        model: CompartmentModel::NwSchedRest,
        backend: flexos::build::BackendChoice::MpkShared,
        mix: Mix::Get,
        ops,
        ..RedisParams::default()
    };
    let (r, host_nanos) = time(|| run_redis(&params).expect("redis run"));
    BenchPoint {
        name: "redis-get-mpk",
        iters: r.ops,
        bytes: 0,
        host_nanos,
        sim_cycles: r.cycles,
    }
}

fn gate_image(backend: flexos::build::BackendChoice) -> flexos_backends::BootImage {
    use flexos::build::{plan, ImageConfig, LibRole, LibraryConfig};
    use flexos::spec::LibSpec;
    use flexos_backends::instantiate;

    let cfg = ImageConfig::new("hostbench-gate", backend)
        .with_library(LibraryConfig::new(
            LibSpec::verified_scheduler(),
            LibRole::Scheduler,
        ))
        .with_library(LibraryConfig::new(
            LibSpec::unsafe_c("lwip"),
            LibRole::NetStack,
        ))
        .with_library(LibraryConfig::new(LibSpec::unsafe_c("app"), LibRole::App));
    instantiate(plan(cfg).expect("plans")).expect("boots")
}

fn bench_gate(quick: bool) -> BenchPoint {
    let iters: u64 = if quick { 2_000 } else { 20_000 };
    let mut img = gate_image(flexos::build::BackendChoice::MpkShared);
    let c0 = img.machine.clock().cycles();
    let (_, host_nanos) = time(|| {
        for _ in 0..iters {
            img.call_lib("lwip", 16, 8, |_, _| Ok(()))
                .expect("gate crossing");
        }
    });
    BenchPoint {
        name: "gate-mpk-shared",
        iters,
        bytes: 0,
        host_nanos,
        sim_cycles: img.machine.clock().cycles() - c0,
    }
}

/// The gate-crossing batch matrix: every backend is measured at batch
/// sizes 1, 8 and 32 with the *same* total crossing count, so
/// `ns_per_iter` is directly comparable down a column. Entries are
/// `(bench name, backend label, backend, batch size)`.
pub const GATE_BATCH_MATRIX: &[(&str, &str, flexos::build::BackendChoice, u64)] = &[
    (
        "gate-direct-b1",
        "direct",
        flexos::build::BackendChoice::None,
        1,
    ),
    (
        "gate-direct-b8",
        "direct",
        flexos::build::BackendChoice::None,
        8,
    ),
    (
        "gate-direct-b32",
        "direct",
        flexos::build::BackendChoice::None,
        32,
    ),
    (
        "gate-mpk-shared-b1",
        "mpk-shared",
        flexos::build::BackendChoice::MpkShared,
        1,
    ),
    (
        "gate-mpk-shared-b8",
        "mpk-shared",
        flexos::build::BackendChoice::MpkShared,
        8,
    ),
    (
        "gate-mpk-shared-b32",
        "mpk-shared",
        flexos::build::BackendChoice::MpkShared,
        32,
    ),
    (
        "gate-vmrpc-b1",
        "vmrpc",
        flexos::build::BackendChoice::VmRpc,
        1,
    ),
    (
        "gate-vmrpc-b8",
        "vmrpc",
        flexos::build::BackendChoice::VmRpc,
        8,
    ),
    (
        "gate-vmrpc-b32",
        "vmrpc",
        flexos::build::BackendChoice::VmRpc,
        32,
    ),
    (
        "gate-cheri-b1",
        "cheri",
        flexos::build::BackendChoice::Cheri,
        1,
    ),
    (
        "gate-cheri-b8",
        "cheri",
        flexos::build::BackendChoice::Cheri,
        8,
    ),
    (
        "gate-cheri-b32",
        "cheri",
        flexos::build::BackendChoice::Cheri,
        32,
    ),
];

/// Submission-ring depth for the async gate benches: deep enough that
/// the VM-RPC enter/doorbell cost amortizes past the batch=32 sync
/// point (the per-call cost model is ~`base + notify/n`, so depth 128
/// sits on the flat part of the curve).
pub const ASYNC_RING_DEPTH: usize = 128;

/// The async gate-ring matrix: every backend submits
/// [`ASYNC_RING_DEPTH`] descriptors and flushes once, same total
/// crossing count as the batch matrix so `ns_per_iter` is comparable
/// against `gate-<backend>-b1`. Entries are `(bench name, backend
/// label, backend)`.
pub const GATE_ASYNC_MATRIX: &[(&str, &str, flexos::build::BackendChoice)] = &[
    (
        "gate-async-direct",
        "direct",
        flexos::build::BackendChoice::None,
    ),
    (
        "gate-async-mpk-shared",
        "mpk-shared",
        flexos::build::BackendChoice::MpkShared,
    ),
    (
        "gate-async-vmrpc",
        "vmrpc",
        flexos::build::BackendChoice::VmRpc,
    ),
    (
        "gate-async-cheri",
        "cheri",
        flexos::build::BackendChoice::Cheri,
    ),
];

fn bench_gate_async(
    name: &'static str,
    backend: flexos::build::BackendChoice,
    quick: bool,
) -> BenchPoint {
    use flexos::gate::Sqe;

    // Same totals as `bench_gate_batch` (both divide by 128), so the
    // per-call ns is directly comparable against the sync column.
    let iters: u64 = if quick { 38_400 } else { 96_000 };
    let depth = ASYNC_RING_DEPTH as u64;
    let mut img = gate_image(backend);
    let target = img
        .compartment_of_lib("uksched_verified")
        .expect("sched compartment");
    let c0 = img.machine.clock().cycles();
    let flexos_backends::BootImage { machine, gates, .. } = &mut img;
    gates.ensure_ring_depth(target, ASYNC_RING_DEPTH);
    // The descriptor burst is identical every round — build it once and
    // publish it with one `submit_many` per flush, the way a real SQ
    // producer bumps the tail once per batch.
    let sqes: Vec<Sqe> = (0..depth).map(|i| Sqe::new(16, 8, i)).collect();
    let mut cqes = Vec::with_capacity(ASYNC_RING_DEPTH);
    let (_, host_nanos) = time(|| {
        for _ in 0..iters / depth {
            let accepted = gates.submit_many(target, &sqes).expect("ring has room");
            assert_eq!(accepted as u64, depth, "burst fits the ring");
            gates
                .flush_async(machine, target, |_, _, _| Ok(0))
                .expect("async flush");
            cqes.clear();
            let reaped = gates.poll_completions(target, &mut cqes);
            assert_eq!(reaped as u64, depth, "every descriptor completes");
        }
    });
    BenchPoint {
        name,
        iters,
        bytes: 0,
        host_nanos,
        sim_cycles: img.machine.clock().cycles() - c0,
    }
}

fn bench_gate_batch(
    name: &'static str,
    backend: flexos::build::BackendChoice,
    batch: u64,
    quick: bool,
) -> BenchPoint {
    use flexos::gate::CallVec;

    // Large enough that fixed per-sample overhead (image boot, timer
    // reads) and scheduler jitter cannot swamp the per-call ratio the
    // acceptance gate checks.
    let iters: u64 = if quick { 38_400 } else { 96_000 }; // divisible by 8 and 32
    let mut img = gate_image(backend);
    let c0 = img.machine.clock().cycles();
    let (_, host_nanos) = if batch <= 1 {
        time(|| {
            for _ in 0..iters {
                img.call_lib("uksched_verified", 16, 8, |_, _| Ok(()))
                    .expect("gate crossing");
            }
        })
    } else {
        let calls = CallVec::uniform(batch as usize, 16, 8);
        time(|| {
            for _ in 0..iters / batch {
                img.call_lib_batch("uksched_verified", &calls, |_, _, _| Ok(()))
                    .expect("batched gate crossing");
            }
        })
    };
    BenchPoint {
        name,
        iters,
        bytes: 0,
        host_nanos,
        sim_cycles: img.machine.clock().cycles() - c0,
    }
}

/// The free-running SMP matrix: each of 1, 2 and 4 host threads runs the
/// **same per-shard workload** against its own machine shard (this is
/// `SmpMode::FreeRunning` — wall-clock scaling, no determinism contract;
/// the deterministic interleaver is what the figures and
/// `--stats`/`--chaos` use). Weak scaling, because boot/handshake is the
/// fixed cost that dominates these workloads: t4 moves 4x the total
/// bytes/ops, and [`smp_speedup`] reports the *aggregate throughput*
/// ratio, which reaches ~N on an N-core host and ~1 on a single core.
/// Entries are `(bench name, workload label, host threads)`.
pub const SMP_MATRIX: &[(&str, &str, usize)] = &[
    ("smp-iperf-t1", "iperf", 1),
    ("smp-iperf-t2", "iperf", 2),
    ("smp-iperf-t4", "iperf", 4),
    ("smp-redis-t1", "redis", 1),
    ("smp-redis-t2", "redis", 2),
    ("smp-redis-t4", "redis", 4),
];

fn bench_smp_iperf(name: &'static str, threads: usize, quick: bool) -> BenchPoint {
    // Per-shard bytes stay fixed across thread counts: every thread does
    // identical work, so aggregate throughput measures scaling.
    let per_shard: u64 = if quick { 512 * 1024 } else { 4 * 1024 * 1024 };
    let (shards, host_nanos) = time(|| {
        run_on_threads(threads, |_shard| {
            run_iperf(&IperfParams {
                total_bytes: per_shard,
                ..IperfParams::default()
            })
        })
    });
    BenchPoint {
        name,
        iters: threads as u64,
        bytes: shards.iter().map(|r| r.bytes).sum(),
        host_nanos,
        sim_cycles: shards.iter().map(|r| r.cycles).sum(),
    }
}

fn bench_smp_redis(name: &'static str, threads: usize, quick: bool) -> BenchPoint {
    let per_shard: u64 = if quick { 500 } else { 3_000 };
    let (shards, host_nanos) = time(|| {
        run_on_threads(threads, |_shard| {
            run_redis(&RedisParams {
                model: CompartmentModel::NwSchedRest,
                backend: flexos::build::BackendChoice::MpkShared,
                mix: Mix::Get,
                ops: per_shard,
                ..RedisParams::default()
            })
            .expect("redis shard")
        })
    });
    BenchPoint {
        name,
        iters: shards.iter().map(|r| r.ops).sum(),
        bytes: 0,
        host_nanos,
        sim_cycles: shards.iter().map(|r| r.cycles).sum(),
    }
}

fn bench_smp(name: &'static str, workload: &str, threads: usize, quick: bool) -> BenchPoint {
    match workload {
        "iperf" => bench_smp_iperf(name, threads, quick),
        "redis" => bench_smp_redis(name, threads, quick),
        other => unreachable!("unknown SMP workload {other}"),
    }
}

/// Runs every microbench (median of three samples each) and returns the
/// measured points in print order.
pub fn run_bench(quick: bool) -> Vec<BenchPoint> {
    let mut points = vec![
        median3(|| bench_memcpy(quick)),
        median3(|| bench_stream_rw(quick)),
        median3(|| bench_rw_u64(quick)),
        median3(|| bench_iperf("iperf-tcp-baseline", Fig3Config::KvmBaseline, quick)),
        median3(|| bench_iperf("iperf-tcp-mpk", Fig3Config::MpkSharedKvm, quick)),
        median3(|| bench_redis(quick)),
        median3(|| bench_gate(quick)),
    ];
    // One backend's whole gate column — b1, b8, b32 and the async ring —
    // is measured as a single round-robin group: every ratio the JSON
    // derives (b32 vs b1, async vs b1) divides minima drawn from the
    // same host-load windows.
    for &(aname, label, abackend) in GATE_ASYNC_MATRIX {
        let column: Vec<(&'static str, flexos::build::BackendChoice, u64)> = GATE_BATCH_MATRIX
            .iter()
            .filter(|e| e.1 == label)
            .map(|&(name, _, backend, batch)| (name, backend, batch))
            .collect();
        let mut benches: Vec<Box<dyn FnMut() -> BenchPoint>> = column
            .iter()
            .map(|&(name, backend, batch)| {
                Box::new(move || bench_gate_batch(name, backend, batch, quick))
                    as Box<dyn FnMut() -> BenchPoint>
            })
            .collect();
        benches.push(Box::new(move || bench_gate_async(aname, abackend, quick)));
        let mut slots: Vec<&mut dyn FnMut() -> BenchPoint> =
            benches.iter_mut().map(|b| &mut **b as _).collect();
        points.extend(min_grouped(7, &mut slots));
    }
    // The SMP column is consumed as a ratio (t4 vs t1 wall-clock), so
    // min-of-5 is the robust estimator, same argument as the gate batch.
    for &(name, workload, threads) in SMP_MATRIX {
        points.push(min5(|| bench_smp(name, workload, threads, quick)));
    }
    points
}

/// Backend matrix for the per-request latency block: the span tracer's
/// exact nearest-rank percentiles for the same Redis GET workload run
/// over three isolation dials. Simulated cycles, fully deterministic —
/// the one section of the bench report that *is* byte-reproducible.
const LATENCY_MATRIX: &[(CompartmentModel, flexos::build::BackendChoice)] = &[
    (
        CompartmentModel::Baseline,
        flexos::build::BackendChoice::None,
    ),
    (
        CompartmentModel::NwSchedRest,
        flexos::build::BackendChoice::MpkShared,
    ),
    (
        CompartmentModel::NwSchedRest,
        flexos::build::BackendChoice::VmRpc,
    ),
];

/// Runs the Redis GET workload across [`LATENCY_MATRIX`] and collects
/// the per-(app, backend) request-latency percentile rows out of each
/// run's span trace.
pub fn latency_points(quick: bool) -> Vec<LatencyRow> {
    let mut rows = Vec::new();
    for &(model, backend) in LATENCY_MATRIX {
        let params = RedisParams {
            model,
            backend,
            mix: Mix::Get,
            ops: if quick { 500 } else { 2_000 },
            ..RedisParams::default()
        };
        match run_redis_with_stats(&params) {
            Ok((_, snap)) => rows.extend(snap.latency),
            Err(e) => eprintln!("latency run ({model:?}, {backend:?}) failed: {e}"),
        }
    }
    rows.sort_by_key(|r| (r.app, r.backend));
    rows
}

/// The serving-tier scaling matrix: the same open-loop workload (same
/// arrival schedule, same request count) served while holding 10³, 10⁴
/// and 10⁵ established connections. The scaling axis is the *open*
/// connection count with the offered load fixed, so `cycles_per_op`
/// directly measures whether per-request cost depends on how many idle
/// connections exist — the O(ready) contract. Simulated cycles,
/// deterministic, byte-reproducible. Entries are `(name, connections)`.
pub const SERVING_MATRIX: &[(&str, usize)] = &[
    ("serve-c1k", 1_000),
    ("serve-c10k", 10_000),
    ("serve-c100k", 100_000),
];

/// One serving-tier scaling point.
#[derive(Debug, Clone)]
pub struct ServingPoint {
    /// Stable point name (`serve-c1k` … / `serve-free-tN`).
    pub name: &'static str,
    /// The serve run's figures (aggregated for free-running points).
    pub result: ServeResult,
}

fn serve_workload(conns: usize, quick: bool) -> ServeParams {
    ServeParams {
        conns,
        ops: if quick { 2_000 } else { 10_000 },
        ..ServeParams::default()
    }
}

/// Runs the [`SERVING_MATRIX`]: identical offered load at 10³/10⁴/10⁵
/// open connections. One sample each — the figures are simulated cycles
/// and therefore exact; there is no host noise to filter.
pub fn serving_points(quick: bool) -> Vec<ServingPoint> {
    SERVING_MATRIX
        .iter()
        .filter_map(
            |&(name, conns)| match run_serve(&serve_workload(conns, quick)) {
                Ok(result) => Some(ServingPoint { name, result }),
                Err(e) => {
                    eprintln!("serving point {name} failed: {e}");
                    None
                }
            },
        )
        .collect()
}

/// The free-running serving matrix: `(name, host threads)`. Each run
/// splits into `2 × threads` deterministic sub-instances distributed
/// over host threads by work stealing; figures are aggregated and
/// host-dependent (informational, like the smp-* points).
pub const SERVING_FREE_MATRIX: &[(&str, usize)] = &[("serve-free-t2", 2), ("serve-free-t4", 4)];

/// Runs [`SERVING_FREE_MATRIX`], aggregating each run's sub-instances:
/// ops/cycles/crossings/shard_ops sum, percentiles take the worst
/// sub-instance, and the work-steal count rides along.
pub fn serving_free_points(quick: bool) -> Vec<ServingPoint> {
    SERVING_FREE_MATRIX
        .iter()
        .filter_map(|&(name, threads)| {
            let params = serve_workload(2_000, quick);
            match run_serve_free(&params, threads) {
                Ok(rs) if !rs.is_empty() => {
                    let mut agg = rs[0].clone();
                    for r in &rs[1..] {
                        agg.conns += r.conns;
                        agg.ops += r.ops;
                        agg.cycles += r.cycles;
                        agg.crossings += r.crossings;
                        agg.p50_cycles = agg.p50_cycles.max(r.p50_cycles);
                        agg.p99_cycles = agg.p99_cycles.max(r.p99_cycles);
                        agg.p999_cycles = agg.p999_cycles.max(r.p999_cycles);
                        agg.backlog_overflows += r.backlog_overflows;
                        for (a, b) in agg.shard_ops.iter_mut().zip(&r.shard_ops) {
                            *a += b;
                        }
                    }
                    agg.cycles_per_op = agg.cycles / agg.ops.max(1);
                    agg.mreq_per_s = rs.iter().map(|r| r.mreq_per_s).sum();
                    Some(ServingPoint { name, result: agg })
                }
                Ok(_) => None,
                Err(e) => {
                    eprintln!("serving free point {name} failed: {e}");
                    None
                }
            }
        })
        .collect()
}

/// The live-migration matrix: `(name, from, to)` backend swaps timed
/// end to end. Covers a relax (VM RPC → direct), the matching escalate,
/// an intra-MPK stack-discipline change and a heterogeneous-hardware
/// hop (MPK → CHERI).
pub const MIGRATION_MATRIX: &[(&str, BackendChoice, BackendChoice)] = &[
    (
        "migrate-direct-to-vmrpc",
        BackendChoice::None,
        BackendChoice::VmRpc,
    ),
    (
        "migrate-vmrpc-to-direct",
        BackendChoice::VmRpc,
        BackendChoice::None,
    ),
    (
        "migrate-mpk-shared-to-mpk-switched",
        BackendChoice::MpkShared,
        BackendChoice::MpkSwitched,
    ),
    (
        "migrate-mpk-shared-to-cheri",
        BackendChoice::MpkShared,
        BackendChoice::Cheri,
    ),
];

/// One live-migration bench row: the quiescence drain and the crossing
/// cost around a runtime backend swap. Cycle fields are simulated
/// (deterministic, byte-reproducible); `host_nanos` is wall clock
/// (informational).
#[derive(Debug, Clone)]
pub struct MigrationPoint {
    /// Stable row name (`migrate-<from>-to-<to>`).
    pub name: &'static str,
    /// Compartment pairs the swap covered.
    pub pairs: u64,
    /// Worst request→swap drain latency in simulated cycles. The
    /// request is issued from *inside* a crossing, so the pair is busy
    /// and the swap defers to the crossing's end — a real drain.
    pub drain_cycles_max: u64,
    /// Simulated cycles of the first crossing through the new backend.
    pub first_cross_cycles: u64,
    /// Steady per-crossing simulated cycles after the swap.
    pub steady_cross_cycles: u64,
    /// Pending async descriptors the drain carried across the swap.
    pub requeued_sqes: u64,
    /// Host wall-clock nanoseconds for the whole boot+swap+measure run.
    pub host_nanos: u64,
}

fn migration_image(from: BackendChoice) -> flexos_machine::Result<flexos_backends::BootImage> {
    use flexos::build::{ImageConfig, LibRole, LibraryConfig};
    use flexos::spec::LibSpec;
    let cfg = ImageConfig::new("migrate-bench", BackendChoice::MpkShared)
        .with_library(LibraryConfig::new(
            LibSpec::verified_scheduler(),
            LibRole::Scheduler,
        ))
        .with_library(LibraryConfig::new(
            LibSpec::unsafe_c("netstack"),
            LibRole::NetStack,
        ))
        .with_library(LibraryConfig::new(LibSpec::unsafe_c("app"), LibRole::App));
    let plan = flexos::build::plan(cfg).expect("the migration bench plan colors");
    flexos_backends::instantiate_migratable(plan, from)
}

fn one_migration(
    name: &'static str,
    from: BackendChoice,
    to: BackendChoice,
    quick: bool,
) -> flexos_machine::Result<MigrationPoint> {
    use flexos::gate::{MigrationReason, Sqe};
    let t_host = Instant::now();
    let mut img = migration_image(from)?;
    let calls = if quick { 8u64 } else { 64 };
    let cross = |img: &mut flexos_backends::BootImage| {
        img.call_lib("uksched_verified", 64, 16, |m, _| {
            m.charge(100);
            Ok(0i64)
        })
    };
    for _ in 0..calls {
        cross(&mut img)?;
    }
    // Park async work on the pair so the drain has descriptors to carry.
    for ud in 0..4u64 {
        img.submit_lib("uksched_verified", Sqe::new(32, 8, ud))?;
    }
    // Prepare the swap for the crossed pair, then request it from
    // *inside* a crossing: the pair is mid-call, so the protocol must
    // actually drain instead of swapping on the spot.
    let caller = img.gates.current();
    let target = img
        .compartment_of_lib("uksched_verified")
        .expect("scheduler lib exists");
    let pair = if caller.0 <= target.0 {
        (caller, target)
    } else {
        (target, caller)
    };
    let mut planned = std::collections::BTreeMap::new();
    planned.insert(pair, to.mechanism());
    let (gate, re) =
        flexos_backends::prepare_pair_migration(&mut img, pair.0, pair.1, to, &planned)?;
    img.call_lib("uksched_verified", 64, 16, move |m, rt| {
        let applied =
            rt.request_migration(m, pair.0, pair.1, gate, MigrationReason::Manual, Some(re))?;
        assert!(!applied, "the crossed pair is busy; the swap must defer");
        m.charge(200); // in-flight work the drain waits out
        Ok(0i64)
    })?;
    let t0 = img.machine.clock().cycles();
    cross(&mut img)?;
    let first = img.machine.clock().cycles() - t0;
    let t0 = img.machine.clock().cycles();
    for _ in 0..calls {
        cross(&mut img)?;
    }
    let steady = (img.machine.clock().cycles() - t0) / calls;
    // The requeued descriptors must complete through the new backend.
    let flushed = img.call_lib_async("uksched_verified", |m, _, _| {
        m.charge(50);
        Ok(1)
    })?;
    assert_eq!(flushed, 4, "{name}: a requeued SQE was lost");
    let st = img.gates.migration_stats();
    assert_eq!(st.completed, 1, "{name}: the deferred swap never landed");
    Ok(MigrationPoint {
        name,
        pairs: st.completed,
        drain_cycles_max: st.drain_cycles_max,
        first_cross_cycles: first,
        steady_cross_cycles: steady,
        requeued_sqes: st.requeued_sqes,
        host_nanos: t_host.elapsed().as_nanos() as u64,
    })
}

/// Runs the [`MIGRATION_MATRIX`]: one live backend swap per row,
/// requested while the pair is mid-crossing. One sample each — every
/// figure except `host_nanos` is simulated cycles and therefore exact.
pub fn migration_points(quick: bool) -> Vec<MigrationPoint> {
    MIGRATION_MATRIX
        .iter()
        .filter_map(
            |&(name, from, to)| match one_migration(name, from, to, quick) {
                Ok(p) => Some(p),
                Err(e) => {
                    eprintln!("migration point {name} failed: {e}");
                    None
                }
            },
        )
        .collect()
}

/// Per-request cost ratio of the 10⁵-connection point over the
/// 10³-connection point — the number the bench-smoke CI job asserts
/// stays under 1.3 (O(ready): idle connections must be free).
pub fn serving_flat_ratio(points: &[ServingPoint]) -> Option<f64> {
    let base = points.iter().find(|p| p.name == "serve-c1k")?;
    let big = points.iter().find(|p| p.name == "serve-c100k")?;
    if base.result.cycles_per_op == 0 {
        return None;
    }
    Some(big.result.cycles_per_op as f64 / base.result.cycles_per_op as f64)
}

/// Aggregate-throughput speedup of the `threads`-way run over the
/// 1-thread run for SMP `workload` ("iperf" or "redis"), from a
/// `run_bench` result set: `(work_N / wall_N) / (work_1 / wall_1)` where
/// work is bytes moved (iperf) or ops served (redis). Host-dependent and
/// informational: CI gates on the *schema*, not the value (a single-core
/// runner legitimately scores ~1.0x; a 4-core one ~3-4x at t4).
pub fn smp_speedup(points: &[BenchPoint], workload: &str, threads: usize) -> Option<f64> {
    let find = |t: usize| {
        let (name, ..) = SMP_MATRIX
            .iter()
            .find(|(_, w, n)| *w == workload && *n == t)?;
        points.iter().find(|p| p.name == *name)
    };
    let rate = |p: &BenchPoint| {
        let work = if p.bytes > 0 { p.bytes } else { p.iters };
        work as f64 / p.host_nanos.max(1) as f64
    };
    let t1 = find(1)?;
    let tn = find(threads)?;
    if t1.host_nanos == 0 || tn.host_nanos == 0 {
        return None;
    }
    Some(rate(tn) / rate(t1))
}

/// Per-call host-time speedup of batch=32 over batch=1 for `backend`
/// (a label from [`GATE_BATCH_MATRIX`]), from a `run_bench` result set.
pub fn batch32_speedup(points: &[BenchPoint], backend: &str) -> Option<f64> {
    let find = |batch: u64| {
        let (name, ..) = GATE_BATCH_MATRIX
            .iter()
            .find(|(_, b, _, n)| *b == backend && *n == batch)?;
        points.iter().find(|p| p.name == *name)
    };
    let b1 = find(1)?;
    let b32 = find(32)?;
    if b32.ns_per_iter() <= 0.0 {
        return None;
    }
    Some(b1.ns_per_iter() / b32.ns_per_iter())
}

/// Per-call host-time speedup of the async ring (depth
/// [`ASYNC_RING_DEPTH`]) over the synchronous one-call-per-crossing
/// column for `backend`, from a `run_bench` result set.
pub fn async_speedup(points: &[BenchPoint], backend: &str) -> Option<f64> {
    let (b1_name, ..) = GATE_BATCH_MATRIX
        .iter()
        .find(|(_, b, _, n)| *b == backend && *n == 1)?;
    let (async_name, ..) = GATE_ASYNC_MATRIX.iter().find(|(_, b, _)| *b == backend)?;
    let b1 = points.iter().find(|p| p.name == *b1_name)?;
    let a = points.iter().find(|p| p.name == *async_name)?;
    if a.ns_per_iter() <= 0.0 {
        return None;
    }
    Some(b1.ns_per_iter() / a.ns_per_iter())
}

/// Speedup of `p` over its recorded baseline (host time), if comparable.
///
/// Comparable means the baseline ran the same iteration count and byte
/// volume — i.e. the current run is `--quick`, matching how the baseline
/// was captured. Full-size runs get `None` rather than a bogus ratio.
pub fn speedup_vs_baseline(p: &BenchPoint) -> Option<f64> {
    let b = baseline_for(p.name)?;
    if b.iters != p.iters || b.bytes != p.bytes || p.host_nanos == 0 {
        return None;
    }
    Some(b.host_nanos as f64 / p.host_nanos as f64)
}

/// Serializes the bench report as `BENCH_10.json` (hand-rolled; the
/// build environment has no serde).
pub fn bench_json(
    quick: bool,
    points: &[BenchPoint],
    latency: &[LatencyRow],
    serving: &[ServingPoint],
    migration: &[MigrationPoint],
) -> String {
    let mut o = String::with_capacity(4096);
    o.push('{');
    o.push_str("\"schema\":\"flexos-bench-v1\",");
    o.push_str("\"pr\":10,");
    let _ = write!(o, "\"quick\":{quick},");
    o.push_str("\"host_time\":true,");
    o.push_str("\"benches\":[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        let _ = write!(
            o,
            "{{\"name\":\"{}\",\"iters\":{},\"bytes\":{},\"host_nanos\":{},\
             \"host_mbps\":{:.3},\"ns_per_iter\":{:.1},\"sim_cycles\":{}",
            p.name,
            p.iters,
            p.bytes,
            p.host_nanos,
            p.host_mbps(),
            p.ns_per_iter(),
            p.sim_cycles
        );
        match speedup_vs_baseline(p) {
            Some(s) => {
                let _ = write!(o, ",\"speedup_vs_baseline\":{s:.3}}}");
            }
            None => o.push_str(",\"speedup_vs_baseline\":null}"),
        }
    }
    o.push_str(
        "],\"gate_batch\":{\"note\":\"per-call host ns, batch=32 vs batch=1, \
                same total crossing count\",\"ratios\":[",
    );
    let mut first = true;
    for backend in ["direct", "mpk-shared", "vmrpc", "cheri"] {
        let Some(speedup) = batch32_speedup(points, backend) else {
            continue;
        };
        if !first {
            o.push(',');
        }
        first = false;
        let _ = write!(
            o,
            "{{\"backend\":\"{backend}\",\"speedup_b32_vs_b1\":{speedup:.3}}}"
        );
    }
    let _ = write!(
        o,
        "]}},\"gate_async\":{{\"note\":\"per-call host ns, submission ring depth \
         {ASYNC_RING_DEPTH} (submit+flush+reap) vs one sync crossing per call; \
         same total crossing count\",\"ratios\":["
    );
    let mut first = true;
    for backend in ["direct", "mpk-shared", "vmrpc", "cheri"] {
        let Some(speedup) = async_speedup(points, backend) else {
            continue;
        };
        if !first {
            o.push(',');
        }
        first = false;
        let _ = write!(
            o,
            "{{\"backend\":\"{backend}\",\"speedup_async_vs_sync\":{speedup:.3}}}"
        );
    }
    o.push_str(
        "]},\"smp\":{\"note\":\"free-running mode: identical per-shard workload \
                on each of N host threads, one machine shard each; ratios are \
                aggregate throughput vs one thread, host-dependent and \
                informational\",\"ratios\":[",
    );
    let mut first = true;
    for workload in ["iperf", "redis"] {
        for threads in [2usize, 4] {
            let Some(speedup) = smp_speedup(points, workload, threads) else {
                continue;
            };
            if !first {
                o.push(',');
            }
            first = false;
            let _ = write!(
                o,
                "{{\"workload\":\"{workload}\",\"threads\":{threads},\
                 \"speedup_vs_t1\":{speedup:.3}}}"
            );
        }
    }
    o.push_str(
        "]},\"latency\":{\"note\":\"per-request simulated-cycle percentiles from \
                the span tracer (exact nearest-rank), Redis GET across isolation \
                backends; deterministic, byte-reproducible\",\"entries\":[",
    );
    for (i, r) in latency.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        let _ = write!(
            o,
            "{{\"app\":\"{}\",\"backend\":\"{}\",\"count\":{},\
             \"p50\":{},\"p99\":{},\"p999\":{}}}",
            r.app, r.backend, r.count, r.p50, r.p99, r.p999
        );
    }
    o.push_str(
        "]},\"serving\":{\"note\":\"open-loop sharded-proxy serving tier: same \
                offered load at 1k/10k/100k open connections, simulated cycles, \
                deterministic (serve-free-* points are host-parallel aggregates, \
                informational)\",",
    );
    match serving_flat_ratio(serving) {
        Some(r) => {
            let _ = write!(o, "\"flat_ratio_c100k_vs_c1k\":{r:.3},");
        }
        None => o.push_str("\"flat_ratio_c100k_vs_c1k\":null,"),
    }
    o.push_str("\"points\":[");
    for (i, p) in serving.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        let r = &p.result;
        let _ = write!(
            o,
            "{{\"name\":\"{}\",\"conns\":{},\"ops\":{},\"cycles\":{},\
             \"cycles_per_op\":{},\"mreq_per_s\":{:.3},\"crossings\":{},\
             \"p50\":{},\"p99\":{},\"p999\":{},\"shard_ops\":[",
            p.name,
            r.conns,
            r.ops,
            r.cycles,
            r.cycles_per_op,
            r.mreq_per_s,
            r.crossings,
            r.p50_cycles,
            r.p99_cycles,
            r.p999_cycles
        );
        for (j, s) in r.shard_ops.iter().enumerate() {
            if j > 0 {
                o.push(',');
            }
            let _ = write!(o, "{s}");
        }
        let _ = write!(
            o,
            "],\"backlog_overflows\":{},\"steals\":{}}}",
            r.backlog_overflows, r.steals
        );
    }
    o.push_str(
        "]},\"migration\":{\"note\":\"live gate-backend swap through the \
                quiescence protocol, requested while the pair is mid-crossing; \
                drain/first/steady are simulated cycles (deterministic), \
                host_nanos is wall clock (informational)\",\"points\":[",
    );
    for (i, p) in migration.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        let _ = write!(
            o,
            "{{\"name\":\"{}\",\"pairs\":{},\"drain_cycles_max\":{},\
             \"first_cross_cycles\":{},\"steady_cross_cycles\":{},\
             \"requeued_sqes\":{},\"host_nanos\":{}}}",
            p.name,
            p.pairs,
            p.drain_cycles_max,
            p.first_cross_cycles,
            p.steady_cross_cycles,
            p.requeued_sqes,
            p.host_nanos
        );
    }
    o.push_str("]},\"baseline\":{\"note\":\"");
    o.push_str(BASELINE_NOTE);
    o.push_str("\",\"entries\":[");
    for (i, b) in PRE_PR4_BASELINE.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        let _ = write!(
            o,
            "{{\"name\":\"{}\",\"host_nanos\":{},\"iters\":{},\"bytes\":{}}}",
            b.name, b.host_nanos, b.iters, b.bytes
        );
    }
    o.push_str("]}}");
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "interleaved A/B timing probe for local tuning, not CI"]
    fn ab_probe_async_vs_sync_batches() {
        let be = flexos::build::BackendChoice::VmRpc;
        for round in 0..4 {
            let b1 = bench_gate_batch("gate-vmrpc-b1", be, 1, true);
            let b32 = bench_gate_batch("gate-vmrpc-b32", be, 32, true);
            let b128 = bench_gate_batch("gate-vmrpc-b128", be, 128, true);
            let a = bench_gate_async("gate-async-vmrpc", be, true);
            eprintln!(
                "round {round}: b1 {:.1} ns  b32 {:.1} ns  b128 {:.1} ns  async {:.1} ns  (async/b1 {:.2}x, b32/b1 {:.2}x)",
                b1.ns_per_iter(),
                b32.ns_per_iter(),
                b128.ns_per_iter(),
                a.ns_per_iter(),
                b1.ns_per_iter() / a.ns_per_iter(),
                b1.ns_per_iter() / b32.ns_per_iter(),
            );
        }
    }

    #[test]
    fn bench_points_are_sane_and_json_is_balanced() {
        // Tiny run: just the allocation-free machine benches.
        let pts = vec![bench_rw_u64(true)];
        assert!(pts[0].sim_cycles > 0);
        assert!(pts[0].iters > 0);
        let lat = vec![LatencyRow {
            app: "redis",
            backend: "mpk-shared",
            count: 500,
            p50: 5_400,
            p99: 8_300,
            p999: 8_400,
        }];
        let mg = vec![MigrationPoint {
            name: "migrate-direct-to-vmrpc",
            pairs: 1,
            drain_cycles_max: 340,
            first_cross_cycles: 7_384,
            steady_cross_cycles: 7_384,
            requeued_sqes: 4,
            host_nanos: 120_000,
        }];
        let j = bench_json(true, &pts, &lat, &[], &mg);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"schema\":\"flexos-bench-v1\""));
        assert!(j.contains("\"pr\":10,"));
        assert!(j.contains(
            "{\"name\":\"migrate-direct-to-vmrpc\",\"pairs\":1,\
             \"drain_cycles_max\":340,\"first_cross_cycles\":7384,\
             \"steady_cross_cycles\":7384,\"requeued_sqes\":4,\
             \"host_nanos\":120000}"
        ));
        assert!(j.contains("\"rw-u64\""));
        assert!(j.contains("\"latency\":{"));
        assert!(j.contains(
            "{\"app\":\"redis\",\"backend\":\"mpk-shared\",\"count\":500,\
             \"p50\":5400,\"p99\":8300,\"p999\":8400}"
        ));
        let depth = j.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn baseline_lookup_finds_known_names() {
        assert!(baseline_for("memcpy-16k").is_some());
        assert!(baseline_for("iperf-tcp-mpk").is_some());
        assert!(baseline_for("nope").is_none());
    }

    #[test]
    fn smp_speedup_is_the_aggregate_throughput_ratio() {
        let mk = |name: &'static str, iters: u64, bytes: u64, host_nanos: u64| BenchPoint {
            name,
            iters,
            bytes,
            host_nanos,
            sim_cycles: 1,
        };
        let pts = vec![
            // 4 threads move 4x the bytes in the same wall-clock: 4.0x.
            mk("smp-iperf-t1", 1, 1_000_000, 8_000_000),
            mk("smp-iperf-t4", 4, 4_000_000, 8_000_000),
            // Byte-free workload falls back to iters (ops): 4x ops in
            // double the wall-clock is 2.0x.
            mk("smp-redis-t1", 500, 0, 3_000_000),
            mk("smp-redis-t4", 2_000, 0, 6_000_000),
        ];
        assert_eq!(smp_speedup(&pts, "iperf", 4), Some(4.0));
        assert_eq!(smp_speedup(&pts, "redis", 4), Some(2.0));
        assert!(smp_speedup(&pts, "iperf", 2).is_none()); // t2 missing
        assert!(smp_speedup(&pts, "nope", 4).is_none());
        // The serialized report carries the ratios under the smp section.
        let j = bench_json(true, &pts, &[], &[], &[]);
        assert!(j.contains("\"pr\":10"));
        assert!(j.contains("\"smp\":{"));
        assert!(j.contains("\"workload\":\"iperf\",\"threads\":4,\"speedup_vs_t1\":4.000"));
        assert!(j.contains("\"workload\":\"redis\",\"threads\":4,\"speedup_vs_t1\":2.000"));
    }

    #[test]
    fn async_speedup_compares_against_the_b1_column() {
        let mk = |name: &'static str, host_nanos: u64| BenchPoint {
            name,
            iters: 1_000,
            bytes: 0,
            host_nanos,
            sim_cycles: 1,
        };
        let pts = vec![
            mk("gate-vmrpc-b1", 240_000),   // 240 ns/call sync
            mk("gate-async-vmrpc", 60_000), // 60 ns/call through the ring
            mk("gate-direct-b1", 10_000),   // async column missing
        ];
        assert_eq!(async_speedup(&pts, "vmrpc"), Some(4.0));
        assert!(async_speedup(&pts, "direct").is_none());
        assert!(async_speedup(&pts, "nope").is_none());
        // The serialized report carries the ratios under gate_async.
        let j = bench_json(true, &pts, &[], &[], &[]);
        assert!(j.contains("\"gate_async\":{"));
        assert!(j.contains("{\"backend\":\"vmrpc\",\"speedup_async_vs_sync\":4.000}"));
    }

    #[test]
    fn gate_async_matrix_names_follow_the_backend_label() {
        // bench-smoke greps these exact names out of BENCH_10.json; keep
        // name and backend label consistent.
        for &(name, label, _) in GATE_ASYNC_MATRIX {
            assert_eq!(name, format!("gate-async-{label}"));
        }
    }

    #[test]
    fn serving_block_carries_the_flat_ratio_and_points() {
        let mk = |name: &'static str, conns: usize, cycles_per_op: u64| ServingPoint {
            name,
            result: ServeResult {
                conns,
                ops: 2_000,
                cycles: cycles_per_op * 2_000,
                cycles_per_op,
                mreq_per_s: 0.1,
                crossings: 9_000,
                p50_cycles: 40_000,
                p99_cycles: 90_000,
                p999_cycles: 120_000,
                shard_ops: vec![600, 500, 400, 500],
                backlog_overflows: 0,
                steals: 0,
            },
        };
        let serving = vec![
            mk("serve-c1k", 1_000, 10_000),
            mk("serve-c10k", 10_000, 10_400),
            mk("serve-c100k", 100_000, 11_000),
        ];
        assert_eq!(serving_flat_ratio(&serving), Some(1.1));
        let j = bench_json(true, &[], &[], &serving, &[]);
        assert!(j.contains("\"serving\":{"));
        assert!(j.contains("\"flat_ratio_c100k_vs_c1k\":1.100"));
        assert!(j.contains("\"name\":\"serve-c100k\",\"conns\":100000"));
        assert!(j.contains("\"shard_ops\":[600,500,400,500]"));
        let depth = j.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
        // Without both endpoints the ratio degrades to null, not a panic.
        let j = bench_json(true, &[], &[], &serving[..1], &[]);
        assert!(j.contains("\"flat_ratio_c100k_vs_c1k\":null"));
    }

    #[test]
    fn migration_points_defer_through_a_busy_pair_and_carry_the_ring() {
        let pts = migration_points(true);
        assert_eq!(pts.len(), MIGRATION_MATRIX.len());
        for p in &pts {
            // The request fires mid-crossing, so every row saw a real
            // drain; the four parked descriptors crossed the swap.
            assert!(p.drain_cycles_max > 0, "{} never drained", p.name);
            assert_eq!(p.requeued_sqes, 4, "{} lost ring work", p.name);
            assert_eq!(p.pairs, 1);
            assert!(p.steady_cross_cycles > 0);
        }
        let esc = pts
            .iter()
            .find(|p| p.name == "migrate-direct-to-vmrpc")
            .unwrap();
        let rel = pts
            .iter()
            .find(|p| p.name == "migrate-vmrpc-to-direct")
            .unwrap();
        // Escalating to VM RPC multiplies the steady crossing cost;
        // relaxing to direct collapses it.
        assert!(esc.steady_cross_cycles > 10 * rel.steady_cross_cycles);
    }

    #[test]
    fn smp_matrix_names_follow_the_thread_count() {
        // bench-smoke greps these exact names out of BENCH_10.json; keep
        // name, workload and thread count consistent.
        for &(name, workload, threads) in SMP_MATRIX {
            assert_eq!(name, format!("smp-{workload}-t{threads}"));
        }
    }
}
