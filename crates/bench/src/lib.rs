//! # flexos-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's §4:
//!
//! | Paper artifact | Driver | Bench target |
//! |---|---|---|
//! | Figure 3 (iperf vs buffer size, 6 configs) | [`experiments::fig3`] | `benches/fig3_iperf.rs` |
//! | Table 1 (SH at micro-library granularity) | [`experiments::table1`] | `benches/tab1_sh_granularity.rs` |
//! | Figure 4 (Redis SH / allocator / verified sched) | [`experiments::fig4`] | `benches/fig4_redis_sh.rs` |
//! | Figure 5 (Redis MPK compartment models) | [`experiments::fig5`] | `benches/fig5_redis_mpk.rs` |
//! | §4 context-switch latency (76.6 vs 218.6 ns) | [`experiments::ctx_switch`] | `benches/ctx_switch.rs` |
//!
//! `cargo run -p flexos-bench --bin reproduce -- all` prints the
//! paper-style tables; `--quick` shrinks workload sizes.
//!
//! Beyond the paper: `reproduce -- --serve` drives the sharded-proxy
//! serving tier (open-loop Poisson load, p50/p99/p999 latency), and
//! `reproduce -- --bench` records the host-time + serving scaling
//! matrices ([`hostbench`]) into `BENCH_10.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod experiments;
pub mod hostbench;
pub mod report;
