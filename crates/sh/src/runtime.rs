//! The per-compartment software-hardening runtime.
//!
//! "FlexOS's SH support is modular: we can apply hardening mechanisms per
//! compartment (not system-wide), allowing for fine-grained protection
//! and performance trade-offs." (paper §3)
//!
//! [`ShRuntime`] holds each compartment's hardening policy and the state
//! the mechanisms need (ASAN shadow, CFI target sets, stack canaries,
//! DFI write-range tables). The OS layer routes every heap operation,
//! memory access, indirect call and frame push/pop through it; hardened
//! compartments pay the calibrated per-check cycle costs and get real
//! detection, unhardened compartments pay nothing — exactly the
//! trade-off the paper's Table 1 and Figure 4 measure.

use crate::shadow::{Shadow, Verdict, REDZONE};
use flexos::gate::CompartmentId;
use flexos::spec::{ShMechanism, ShSet};
use flexos_machine::{Access, Addr, Fault, Machine, Result, VcpuId};
use std::collections::{BTreeMap, BTreeSet};

/// Cumulative hardening statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShStats {
    /// ASAN shadow checks performed.
    pub asan_checks: u64,
    /// DFI write checks performed.
    pub dfi_checks: u64,
    /// CFI indirect-call checks performed.
    pub cfi_checks: u64,
    /// Canary frames pushed.
    pub canary_pushes: u64,
    /// UBSAN arithmetic checks performed.
    pub ubsan_checks: u64,
    /// Violations caught (aborts raised).
    pub violations: u64,
}

#[derive(Debug, Default, Clone)]
struct Regions {
    heap: Vec<(u64, u64)>,
    stacks: Vec<(u64, u64)>,
}

impl Regions {
    fn contains(&self, addr: u64, len: u64) -> bool {
        self.heap
            .iter()
            .chain(self.stacks.iter())
            .any(|&(b, l)| addr >= b && addr + len <= b + l)
    }
}

/// The hardening runtime for one image.
#[derive(Debug)]
pub struct ShRuntime {
    policies: Vec<ShSet>,
    shadows: Vec<Shadow>,
    regions: Vec<Regions>,
    shared: Vec<(u64, u64)>,
    cfi_targets: Vec<Option<BTreeSet<String>>>,
    canaries: BTreeMap<u64, u64>,
    stats: ShStats,
}

fn canary_value(frame: Addr) -> u64 {
    // Deterministic per-frame value (a real kernel uses a boot-time
    // random canary; determinism keeps the simulation reproducible).
    0x0057_ac4e_5a5a_a5a5u64 ^ frame.0.rotate_left(17)
}

impl ShRuntime {
    /// Creates a runtime for `compartments` compartments, all unhardened.
    pub fn new(compartments: usize) -> Self {
        Self {
            policies: vec![ShSet::none(); compartments],
            shadows: (0..compartments).map(|_| Shadow::new()).collect(),
            regions: vec![Regions::default(); compartments],
            shared: Vec::new(),
            cfi_targets: vec![None; compartments],
            canaries: BTreeMap::new(),
            stats: ShStats::default(),
        }
    }

    /// Sets the hardening policy of compartment `c`.
    pub fn set_policy(&mut self, c: CompartmentId, sh: ShSet) {
        self.policies[c.0 as usize] = sh;
    }

    /// The policy of compartment `c`.
    pub fn policy(&self, c: CompartmentId) -> &ShSet {
        &self.policies[c.0 as usize]
    }

    /// Whether compartment `c`'s allocator is instrumented.
    pub fn instruments_malloc(&self, c: CompartmentId) -> bool {
        self.policy(c).instruments_malloc()
    }

    /// Registers a heap range owned by `c` (shadow coverage + DFI table).
    pub fn register_heap(&mut self, c: CompartmentId, base: Addr, len: u64) {
        self.shadows[c.0 as usize].cover(base, len);
        self.regions[c.0 as usize].heap.push((base.0, len));
    }

    /// Registers a stack range owned by `c` (DFI table).
    pub fn register_stack(&mut self, c: CompartmentId, base: Addr, len: u64) {
        self.regions[c.0 as usize].stacks.push((base.0, len));
    }

    /// Registers the shared window (writable by every compartment under
    /// DFI, matching the `Shared` region semantics of the spec language).
    pub fn register_shared(&mut self, base: Addr, len: u64) {
        self.shared.push((base.0, len));
    }

    /// Installs the CFI target set of compartment `c` (from the
    /// control-flow analysis that rewrites `Call(*)`).
    pub fn set_cfi_targets(&mut self, c: CompartmentId, targets: BTreeSet<String>) {
        self.cfi_targets[c.0 as usize] = Some(targets);
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> ShStats {
        self.stats
    }

    // --- allocator instrumentation ------------------------------------------

    /// Extra bytes the instrumented allocator needs around a `size`-byte
    /// payload (0 when `c` is not instrumented).
    pub fn alloc_padding(&self, c: CompartmentId) -> u64 {
        if self.instruments_malloc(c) {
            2 * REDZONE
        } else {
            0
        }
    }

    /// Records an instrumented allocation: `outer` is the raw block, the
    /// payload starts `REDZONE` inside. Charges the instrumentation cost.
    pub fn on_alloc(&mut self, m: &mut Machine, c: CompartmentId, outer: Addr, size: u64) -> Addr {
        debug_assert!(self.instruments_malloc(c));
        m.charge(m.costs().asan_alloc);
        self.shadows[c.0 as usize].on_alloc(outer, size);
        Addr(outer.0 + REDZONE)
    }

    /// Records an instrumented free. Returns the raw block to release to
    /// the allocator once it leaves the quarantine.
    pub fn on_free(
        &mut self,
        m: &mut Machine,
        c: CompartmentId,
        payload: Addr,
    ) -> Result<Option<Addr>> {
        debug_assert!(self.instruments_malloc(c));
        m.charge(m.costs().asan_alloc);
        self.shadows[c.0 as usize]
            .on_free(payload)
            .inspect_err(|_| {
                self.stats.violations += 1;
            })
    }

    // --- access checks --------------------------------------------------------

    /// Checks a memory access performed by compartment `c`. Unhardened
    /// compartments pass through for free; hardened ones pay per-check
    /// costs and get ASAN/DFI detection.
    pub fn check_access(
        &mut self,
        m: &mut Machine,
        c: CompartmentId,
        addr: Addr,
        len: u64,
        access: Access,
    ) -> Result<()> {
        let ci = c.0 as usize;
        let policy = &self.policies[ci];
        if policy.is_empty() {
            return Ok(());
        }
        if policy.has(ShMechanism::Asan) {
            // One shadow check per 16-byte granule, like compiler-emitted
            // ASAN checks on vectorized code. Large contiguous accesses
            // go through the interceptor's range check, which caps the
            // per-call cost (a memcpy is validated once, not per word).
            let granules = len.max(1).div_ceil(16).min(64);
            m.charge(m.costs().asan_check * granules);
            self.stats.asan_checks += granules;
            match self.shadows[ci].classify(addr, len) {
                Verdict::Ok | Verdict::Untracked => {}
                bad => {
                    self.stats.violations += 1;
                    return Err(Fault::HardeningAbort {
                        mechanism: "asan",
                        reason: format!("{bad:?} on {access:?} of {len} bytes at {addr}"),
                    });
                }
            }
        }
        if policy.has(ShMechanism::Dfi) && access == Access::Write {
            m.charge(m.costs().dfi_check);
            self.stats.dfi_checks += 1;
            let allowed = self.regions[ci].contains(addr.0, len.max(1))
                || self
                    .shared
                    .iter()
                    .any(|&(b, l)| addr.0 >= b && addr.0 + len.max(1) <= b + l);
            if !allowed {
                self.stats.violations += 1;
                return Err(Fault::HardeningAbort {
                    mechanism: "dfi",
                    reason: format!(
                        "write of {len} bytes at {addr} outside {c}'s legal destinations"
                    ),
                });
            }
        }
        Ok(())
    }

    /// Checks an indirect call performed by compartment `c` against its
    /// CFI target set.
    pub fn check_call(&mut self, m: &mut Machine, c: CompartmentId, target: &str) -> Result<()> {
        let ci = c.0 as usize;
        if !self.policies[ci].has(ShMechanism::Cfi) {
            return Ok(());
        }
        m.charge(m.costs().cfi_check);
        self.stats.cfi_checks += 1;
        let ok = match &self.cfi_targets[ci] {
            Some(targets) => targets.contains(target),
            None => false, // CFI on but no CFG: nothing is a legal target.
        };
        if ok {
            Ok(())
        } else {
            self.stats.violations += 1;
            Err(Fault::HardeningAbort {
                mechanism: "cfi",
                reason: format!("indirect call to `{target}` not in {c}'s call graph"),
            })
        }
    }

    // --- stack protection -------------------------------------------------------

    /// On function entry in a canary-protected compartment: writes the
    /// canary below the frame at `frame_base` (simulated memory) so stack
    /// smashing corrupts it.
    pub fn push_frame(
        &mut self,
        m: &mut Machine,
        vcpu: VcpuId,
        c: CompartmentId,
        frame_base: Addr,
    ) -> Result<()> {
        let policy = &self.policies[c.0 as usize];
        if !policy.has(ShMechanism::StackProtector) {
            if policy.has(ShMechanism::SafeStack) {
                m.charge(m.costs().safestack);
            }
            return Ok(());
        }
        m.charge(m.costs().canary);
        self.stats.canary_pushes += 1;
        let value = canary_value(frame_base);
        m.write(vcpu, frame_base, &value.to_le_bytes())?;
        self.canaries.insert(frame_base.0, value);
        Ok(())
    }

    /// On function return: verifies the canary is intact.
    pub fn pop_frame(
        &mut self,
        m: &mut Machine,
        vcpu: VcpuId,
        c: CompartmentId,
        frame_base: Addr,
    ) -> Result<()> {
        let policy = &self.policies[c.0 as usize];
        if !policy.has(ShMechanism::StackProtector) {
            return Ok(());
        }
        m.charge(m.costs().canary);
        let expected = self
            .canaries
            .remove(&frame_base.0)
            .ok_or(Fault::HardeningAbort {
                mechanism: "stack-protector",
                reason: format!("pop of unknown frame at {frame_base}"),
            })?;
        let mut buf = [0u8; 8];
        m.read(vcpu, frame_base, &mut buf)?;
        if u64::from_le_bytes(buf) != expected {
            self.stats.violations += 1;
            return Err(Fault::HardeningAbort {
                mechanism: "stack-protector",
                reason: format!("*** stack smashing detected *** at {frame_base}"),
            });
        }
        Ok(())
    }

    // --- UBSAN -----------------------------------------------------------------

    /// Checked addition under UBSAN: overflow aborts in hardened
    /// compartments and wraps (with no cost) otherwise — matching C
    /// semantics with/without `-fsanitize=undefined`.
    pub fn checked_add(
        &mut self,
        m: &mut Machine,
        c: CompartmentId,
        a: u64,
        b: u64,
    ) -> Result<u64> {
        if !self.policies[c.0 as usize].has(ShMechanism::Ubsan) {
            return Ok(a.wrapping_add(b));
        }
        m.charge(m.costs().ubsan_check);
        self.stats.ubsan_checks += 1;
        a.checked_add(b).ok_or_else(|| {
            self.stats.violations += 1;
            Fault::HardeningAbort {
                mechanism: "ubsan",
                reason: format!("unsigned overflow: {a} + {b}"),
            }
        })
    }

    /// Checked multiplication under UBSAN.
    pub fn checked_mul(
        &mut self,
        m: &mut Machine,
        c: CompartmentId,
        a: u64,
        b: u64,
    ) -> Result<u64> {
        if !self.policies[c.0 as usize].has(ShMechanism::Ubsan) {
            return Ok(a.wrapping_mul(b));
        }
        m.charge(m.costs().ubsan_check);
        self.stats.ubsan_checks += 1;
        a.checked_mul(b).ok_or_else(|| {
            self.stats.violations += 1;
            Fault::HardeningAbort {
                mechanism: "ubsan",
                reason: format!("unsigned overflow: {a} * {b}"),
            }
        })
    }

    /// Checked left shift under UBSAN (shift amount must be < 64).
    pub fn checked_shl(
        &mut self,
        m: &mut Machine,
        c: CompartmentId,
        a: u64,
        by: u32,
    ) -> Result<u64> {
        if !self.policies[c.0 as usize].has(ShMechanism::Ubsan) {
            return Ok(a.wrapping_shl(by));
        }
        m.charge(m.costs().ubsan_check);
        self.stats.ubsan_checks += 1;
        if by >= 64 {
            self.stats.violations += 1;
            return Err(Fault::HardeningAbort {
                mechanism: "ubsan",
                reason: format!("shift amount {by} out of range"),
            });
        }
        Ok(a << by)
    }

    /// Bounds-checked index under UBSAN.
    pub fn checked_index(
        &mut self,
        m: &mut Machine,
        c: CompartmentId,
        index: u64,
        len: u64,
    ) -> Result<u64> {
        if !self.policies[c.0 as usize].has(ShMechanism::Ubsan) {
            return Ok(index);
        }
        m.charge(m.costs().ubsan_check);
        self.stats.ubsan_checks += 1;
        if index >= len {
            self.stats.violations += 1;
            return Err(Fault::HardeningAbort {
                mechanism: "ubsan",
                reason: format!("index {index} out of bounds (len {len})"),
            });
        }
        Ok(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexos_machine::{PageFlags, ProtKey, VmId};

    const C0: CompartmentId = CompartmentId(0);
    const C1: CompartmentId = CompartmentId(1);

    fn setup(policy: ShSet) -> (Machine, ShRuntime, Addr) {
        let mut m = Machine::with_defaults();
        let heap = m
            .alloc_region(VmId(0), 64 * 1024, ProtKey(0), PageFlags::RW)
            .unwrap();
        let mut sh = ShRuntime::new(2);
        sh.set_policy(C0, policy);
        sh.register_heap(C0, heap, 64 * 1024);
        (m, sh, heap)
    }

    #[test]
    fn unhardened_compartments_pay_nothing() {
        let (mut m, mut sh, heap) = setup(ShSet::none());
        let c0 = m.clock().cycles();
        sh.check_access(&mut m, C0, heap, 64, Access::Write)
            .unwrap();
        sh.check_call(&mut m, C0, "anything").unwrap();
        assert_eq!(m.clock().cycles(), c0);
        assert_eq!(sh.stats(), ShStats::default());
    }

    #[test]
    fn asan_catches_heap_overflow() {
        let (mut m, mut sh, heap) = setup(ShSet::of([ShMechanism::Asan]));
        // Simulate an instrumented allocation of 100 bytes at heap+0.
        let payload = sh.on_alloc(&mut m, C0, heap, 100);
        sh.check_access(&mut m, C0, payload, 100, Access::Write)
            .unwrap();
        let err = sh
            .check_access(&mut m, C0, payload, 101, Access::Write)
            .unwrap_err();
        assert!(err.to_string().contains("asan"));
        assert_eq!(sh.stats().violations, 1);
    }

    #[test]
    fn asan_catches_use_after_free() {
        let (mut m, mut sh, heap) = setup(ShSet::of([ShMechanism::Asan]));
        let payload = sh.on_alloc(&mut m, C0, heap, 64);
        sh.on_free(&mut m, C0, payload).unwrap();
        assert!(sh
            .check_access(&mut m, C0, payload, 8, Access::Read)
            .is_err());
    }

    #[test]
    fn asan_checks_charge_per_granule_with_interceptor_cap() {
        let (mut m, mut sh, heap) = setup(ShSet::of([ShMechanism::Asan]));
        let payload = sh.on_alloc(&mut m, C0, heap, 4096);
        let c0 = m.clock().cycles();
        sh.check_access(&mut m, C0, payload, 256, Access::Read)
            .unwrap();
        assert_eq!(m.clock().cycles() - c0, m.costs().asan_check * 16);
        // Big ranges hit the interceptor cap (64 granules).
        let c1 = m.clock().cycles();
        sh.check_access(&mut m, C0, payload, 4096, Access::Read)
            .unwrap();
        assert_eq!(m.clock().cycles() - c1, m.costs().asan_check * 64);
    }

    #[test]
    fn dfi_blocks_writes_outside_legal_destinations() {
        let (mut m, mut sh, heap) = setup(ShSet::of([ShMechanism::Dfi]));
        sh.check_access(&mut m, C0, heap, 8, Access::Write).unwrap();
        // Reads are not DFI's concern.
        sh.check_access(&mut m, C0, Addr(0xdead_0000), 8, Access::Read)
            .unwrap();
        // A write to foreign memory (say, the scheduler's run queue) aborts.
        let err = sh
            .check_access(&mut m, C0, Addr(0xdead_0000), 8, Access::Write)
            .unwrap_err();
        assert!(err.to_string().contains("dfi"));
    }

    #[test]
    fn dfi_allows_shared_window_writes() {
        let (mut m, mut sh, _) = setup(ShSet::of([ShMechanism::Dfi]));
        sh.register_shared(Addr(0x5000_0000), 4096);
        sh.check_access(&mut m, C0, Addr(0x5000_0010), 64, Access::Write)
            .unwrap();
    }

    #[test]
    fn cfi_restricts_indirect_calls() {
        let (mut m, mut sh, _) = setup(ShSet::of([ShMechanism::Cfi]));
        sh.set_cfi_targets(C0, ["yield".to_string(), "malloc".to_string()].into());
        sh.check_call(&mut m, C0, "yield").unwrap();
        let err = sh.check_call(&mut m, C0, "system").unwrap_err();
        assert!(err.to_string().contains("cfi"));
        // Other compartments unaffected.
        sh.check_call(&mut m, C1, "system").unwrap();
    }

    #[test]
    fn canary_detects_stack_smash() {
        let (mut m, mut sh, heap) = setup(ShSet::of([ShMechanism::StackProtector]));
        sh.register_stack(C0, heap, 4096);
        let frame = Addr(heap.0 + 512);
        sh.push_frame(&mut m, VcpuId(0), C0, frame).unwrap();
        // Clean return: OK.
        sh.pop_frame(&mut m, VcpuId(0), C0, frame).unwrap();
        // Smash the canary via a (simulated) buffer overflow and detect it.
        sh.push_frame(&mut m, VcpuId(0), C0, frame).unwrap();
        m.write(VcpuId(0), frame, b"AAAAAAAA").unwrap();
        let err = sh.pop_frame(&mut m, VcpuId(0), C0, frame).unwrap_err();
        assert!(err.to_string().contains("stack smashing"));
    }

    #[test]
    fn ubsan_catches_overflow_and_oob_index() {
        let (mut m, mut sh, _) = setup(ShSet::of([ShMechanism::Ubsan]));
        assert_eq!(sh.checked_add(&mut m, C0, 1, 2).unwrap(), 3);
        assert!(sh.checked_add(&mut m, C0, u64::MAX, 1).is_err());
        assert!(sh.checked_mul(&mut m, C0, u64::MAX, 2).is_err());
        assert!(sh.checked_shl(&mut m, C0, 1, 64).is_err());
        assert!(sh.checked_index(&mut m, C0, 10, 10).is_err());
        assert_eq!(sh.checked_index(&mut m, C0, 9, 10).unwrap(), 9);
        // Unhardened compartment wraps silently, C-style.
        assert_eq!(sh.checked_add(&mut m, C1, u64::MAX, 1).unwrap(), 0);
    }

    #[test]
    fn safestack_charges_per_frame_without_canary_state() {
        let (mut m, mut sh, heap) = setup(ShSet::of([ShMechanism::SafeStack]));
        let c0 = m.clock().cycles();
        sh.push_frame(&mut m, VcpuId(0), C0, heap).unwrap();
        assert_eq!(m.clock().cycles() - c0, m.costs().safestack);
        sh.pop_frame(&mut m, VcpuId(0), C0, heap).unwrap();
    }
}
