//! ASAN-style shadow state: redzones, liveness, and a quarantine.
//!
//! The instrumented allocator pads every allocation with redzones and
//! tracks liveness; freed blocks sit in a quarantine so use-after-free
//! keeps faulting instead of silently hitting a reused block. This is the
//! in-kernel KASAN design the paper enables per compartment.

use flexos_machine::{Addr, Fault, Result};
use std::collections::{BTreeMap, VecDeque};

/// Redzone bytes placed before and after every instrumented allocation.
pub const REDZONE: u64 = 16;

/// Number of freed blocks kept poisoned before their slot is recycled.
pub const QUARANTINE_DEPTH: usize = 64;

/// State of one tracked block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockState {
    Live,
    Quarantined,
}

#[derive(Debug, Clone, Copy)]
struct Block {
    /// Payload base (inside the redzones).
    payload: u64,
    /// Payload size as requested.
    size: u64,
    state: BlockState,
}

/// Shadow memory for one compartment's instrumented heap.
#[derive(Debug, Default)]
pub struct Shadow {
    /// Tracked blocks keyed by *outer* base (start of leading redzone).
    blocks: BTreeMap<u64, Block>,
    /// FIFO of quarantined outer bases.
    quarantine: VecDeque<u64>,
    /// Heap ranges this shadow covers (accesses outside are not ASAN's
    /// concern).
    ranges: Vec<(u64, u64)>,
}

/// What a shadow lookup says about an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Access entirely inside a live payload.
    Ok,
    /// Access not covered by this shadow (not heap memory we track).
    Untracked,
    /// Access touches a redzone (heap overflow/underflow).
    Redzone,
    /// Access touches freed (quarantined) memory.
    UseAfterFree,
    /// Access inside the tracked heap but not in any allocation.
    WildAccess,
}

impl Shadow {
    /// Creates an empty shadow.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a heap range `[base, base+len)` as covered.
    pub fn cover(&mut self, base: Addr, len: u64) {
        self.ranges.push((base.0, len));
    }

    /// Whether `[addr, addr+len)` intersects a covered range.
    fn tracked(&self, addr: u64, len: u64) -> bool {
        self.ranges
            .iter()
            .any(|&(b, l)| addr < b + l && addr + len > b)
    }

    /// Records an allocation: the caller allocated `outer` of
    /// `size + 2*REDZONE` bytes; payload starts at `outer + REDZONE`.
    pub fn on_alloc(&mut self, outer: Addr, size: u64) {
        self.blocks.insert(
            outer.0,
            Block {
                payload: outer.0 + REDZONE,
                size,
                state: BlockState::Live,
            },
        );
    }

    /// Marks the block with payload base `payload` as freed (quarantined).
    /// Returns the outer base to *eventually* release, once it leaves the
    /// quarantine — i.e. the block that `QUARANTINE_DEPTH` frees ago was
    /// quarantined, or `None` while the quarantine still fills up.
    pub fn on_free(&mut self, payload: Addr) -> Result<Option<Addr>> {
        let outer = payload.0 - REDZONE;
        match self.blocks.get_mut(&outer) {
            Some(b) if b.state == BlockState::Live => b.state = BlockState::Quarantined,
            Some(_) => {
                return Err(Fault::HardeningAbort {
                    mechanism: "asan",
                    reason: format!("double free of {payload}"),
                })
            }
            None => {
                return Err(Fault::HardeningAbort {
                    mechanism: "asan",
                    reason: format!("free of unallocated {payload}"),
                })
            }
        }
        self.quarantine.push_back(outer);
        if self.quarantine.len() > QUARANTINE_DEPTH {
            let released = self.quarantine.pop_front().expect("nonempty");
            self.blocks.remove(&released);
            return Ok(Some(Addr(released)));
        }
        Ok(None)
    }

    /// Classifies an access of `len` bytes at `addr`.
    pub fn classify(&self, addr: Addr, len: u64) -> Verdict {
        let len = len.max(1);
        if !self.tracked(addr.0, len) {
            return Verdict::Untracked;
        }
        // Find the closest block at or below addr, and the one after, to
        // decide what the access touches.
        let candidates = self
            .blocks
            .range(..=addr.0)
            .next_back()
            .into_iter()
            .chain(self.blocks.range(addr.0 + 1..).next());
        for (&outer, b) in candidates {
            let outer_end = b.payload + b.size + REDZONE;
            let overlaps = addr.0 < outer_end && addr.0 + len > outer;
            if !overlaps {
                continue;
            }
            if b.state == BlockState::Quarantined {
                return Verdict::UseAfterFree;
            }
            let inside_payload = addr.0 >= b.payload && addr.0 + len <= b.payload + b.size;
            if inside_payload {
                return Verdict::Ok;
            }
            return Verdict::Redzone;
        }
        Verdict::WildAccess
    }

    /// Payload size of the live block at `payload`, if any.
    pub fn live_size(&self, payload: Addr) -> Option<u64> {
        let outer = payload.0.checked_sub(REDZONE)?;
        self.blocks
            .get(&outer)
            .filter(|b| b.state == BlockState::Live)
            .map(|b| b.size)
    }

    /// Number of tracked blocks (live + quarantined).
    pub fn tracked_blocks(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shadow_with_block(payload_at: u64, size: u64) -> Shadow {
        let mut s = Shadow::new();
        s.cover(Addr(0x1000), 0x10000);
        s.on_alloc(Addr(payload_at - REDZONE), size);
        s
    }

    #[test]
    fn in_bounds_access_is_ok() {
        let s = shadow_with_block(0x2000, 100);
        assert_eq!(s.classify(Addr(0x2000), 100), Verdict::Ok);
        assert_eq!(s.classify(Addr(0x2050), 8), Verdict::Ok);
    }

    #[test]
    fn overflow_into_redzone_is_caught() {
        let s = shadow_with_block(0x2000, 100);
        assert_eq!(s.classify(Addr(0x2000), 101), Verdict::Redzone);
        assert_eq!(s.classify(Addr(0x2064), 1), Verdict::Redzone); // one past end
        assert_eq!(s.classify(Addr(0x1ff8), 8), Verdict::Redzone); // underflow
    }

    #[test]
    fn use_after_free_is_caught_through_quarantine() {
        let mut s = shadow_with_block(0x2000, 100);
        assert_eq!(s.on_free(Addr(0x2000)).unwrap(), None);
        assert_eq!(s.classify(Addr(0x2000), 8), Verdict::UseAfterFree);
    }

    #[test]
    fn double_free_is_caught() {
        let mut s = shadow_with_block(0x2000, 100);
        s.on_free(Addr(0x2000)).unwrap();
        assert!(s.on_free(Addr(0x2000)).is_err());
    }

    #[test]
    fn free_of_unallocated_is_caught() {
        let mut s = shadow_with_block(0x2000, 100);
        assert!(s.on_free(Addr(0x3000)).is_err());
    }

    #[test]
    fn quarantine_eventually_releases_oldest() {
        let mut s = Shadow::new();
        s.cover(Addr(0x1000), 0x100000);
        let mut released = Vec::new();
        for i in 0..(QUARANTINE_DEPTH as u64 + 3) {
            let outer = 0x2000 + i * 0x100;
            s.on_alloc(Addr(outer), 16);
            if let Some(r) = s.on_free(Addr(outer + REDZONE)).unwrap() {
                released.push(r);
            }
        }
        assert_eq!(released.len(), 3);
        assert_eq!(released[0], Addr(0x2000)); // FIFO order
                                               // Released blocks are no longer tracked: wild, not UAF.
        assert_eq!(s.classify(Addr(0x2000 + REDZONE), 8), Verdict::WildAccess);
    }

    #[test]
    fn untracked_memory_is_ignored() {
        let s = shadow_with_block(0x2000, 100);
        assert_eq!(s.classify(Addr(0x90000), 8), Verdict::Untracked);
    }

    #[test]
    fn wild_access_inside_heap_is_flagged() {
        let s = shadow_with_block(0x2000, 100);
        assert_eq!(s.classify(Addr(0x8000), 8), Verdict::WildAccess);
    }

    #[test]
    fn live_size_reports_only_live_blocks() {
        let mut s = shadow_with_block(0x2000, 100);
        assert_eq!(s.live_size(Addr(0x2000)), Some(100));
        s.on_free(Addr(0x2000)).unwrap();
        assert_eq!(s.live_size(Addr(0x2000)), None);
    }
}
