//! Deterministic attack/fault injection scenarios.
//!
//! FlexOS's claim is that the *same* attack is caught by different
//! mechanisms depending on the build-time configuration — or not caught
//! at all in the baseline. These helpers implement the attacks the
//! integration tests and examples throw at images: each returns what the
//! configured protection said ([`AttackOutcome`]).

use crate::runtime::ShRuntime;
use flexos::gate::CompartmentId;
use flexos_machine::{Access, Addr, Fault, Machine, Result, VcpuId};

/// How an injected attack ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackOutcome {
    /// No mechanism intervened: the attack's effect landed (baseline).
    Landed,
    /// A mechanism stopped it; carries the fault describing which.
    Caught(Fault),
}

impl AttackOutcome {
    /// Whether the attack was stopped.
    pub fn was_caught(&self) -> bool {
        matches!(self, AttackOutcome::Caught(_))
    }

    /// The name of the mechanism that caught it, if any.
    pub fn caught_by(&self) -> Option<String> {
        match self {
            AttackOutcome::Caught(f) => Some(f.kind().to_string()),
            AttackOutcome::Landed => None,
        }
    }
}

fn outcome_of(res: Result<()>) -> Result<AttackOutcome> {
    match res {
        Ok(()) => Ok(AttackOutcome::Landed),
        Err(f) if f.is_protection_fault() => Ok(AttackOutcome::Caught(f)),
        Err(other) => Err(other), // setup errors are real errors, not catches
    }
}

/// A hijacked component in compartment `attacker` writes `payload` at
/// `target` (e.g. the scheduler's run queue in another compartment).
/// Hardware isolation (MPK/EPT) or DFI/ASAN may catch it.
pub fn cross_component_write(
    m: &mut Machine,
    sh: &mut ShRuntime,
    vcpu: VcpuId,
    attacker: CompartmentId,
    target: Addr,
    payload: &[u8],
) -> Result<AttackOutcome> {
    let res = sh
        .check_access(m, attacker, target, payload.len() as u64, Access::Write)
        .and_then(|()| m.write(vcpu, target, payload));
    outcome_of(res)
}

/// A heap buffer overflow: write `len` bytes starting inside the victim
/// allocation at `payload_base`, spilling past its end. ASAN redzones
/// catch it; without ASAN it lands (possibly corrupting a neighbour).
pub fn heap_overflow(
    m: &mut Machine,
    sh: &mut ShRuntime,
    vcpu: VcpuId,
    compartment: CompartmentId,
    payload_base: Addr,
    len: u64,
) -> Result<AttackOutcome> {
    let junk = vec![0x41u8; len as usize];
    let res = sh
        .check_access(m, compartment, payload_base, len, Access::Write)
        .and_then(|()| m.write(vcpu, payload_base, &junk));
    outcome_of(res)
}

/// Use-after-free: read from a freed allocation.
pub fn use_after_free(
    m: &mut Machine,
    sh: &mut ShRuntime,
    vcpu: VcpuId,
    compartment: CompartmentId,
    freed_payload: Addr,
) -> Result<AttackOutcome> {
    let mut buf = [0u8; 8];
    let res = sh
        .check_access(m, compartment, freed_payload, 8, Access::Read)
        .and_then(|()| m.read(vcpu, freed_payload, &mut buf));
    outcome_of(res)
}

/// Control-flow hijack: the attacker redirects an indirect call to
/// `gadget` (a function outside the component's call graph). CFI catches
/// it when enabled.
pub fn control_flow_hijack(
    m: &mut Machine,
    sh: &mut ShRuntime,
    attacker: CompartmentId,
    gadget: &str,
) -> Result<AttackOutcome> {
    outcome_of(sh.check_call(m, attacker, gadget))
}

/// PKRU forgery: injected code executes `wrpkru` to grant itself access
/// to every key (the PKU-pitfalls attack). The machine's PKRU-write
/// guard catches it unless the guard is configured off.
pub fn pkru_forge(m: &mut Machine, vcpu: VcpuId) -> Result<AttackOutcome> {
    outcome_of(m.wrpkru(vcpu, flexos_machine::Pkru::ALLOW_ALL, None))
}

/// Stack smash: overflow a stack buffer across the saved frame (which, in
/// a canary-protected compartment, corrupts the canary that `pop_frame`
/// then detects).
pub fn stack_smash(
    m: &mut Machine,
    sh: &mut ShRuntime,
    vcpu: VcpuId,
    compartment: CompartmentId,
    frame_base: Addr,
) -> Result<AttackOutcome> {
    sh.push_frame(m, vcpu, compartment, frame_base)?;
    // The overflow: 64 bytes of attacker data across the frame boundary.
    m.write(vcpu, frame_base, &[0x41u8; 64])?;
    outcome_of(sh.pop_frame(m, vcpu, compartment, frame_base))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexos::spec::{ShMechanism, ShSet};
    use flexos_machine::{PageFlags, Pkru, ProtKey, VmId};

    const ATTACKER: CompartmentId = CompartmentId(0);

    fn setup(policy: ShSet) -> (Machine, ShRuntime, Addr, Addr) {
        let mut m = Machine::with_defaults();
        let own = m
            .alloc_region(VmId(0), 16 * 1024, ProtKey(0), PageFlags::RW)
            .unwrap();
        let victim = m
            .alloc_region(VmId(0), 4096, ProtKey(0), PageFlags::RW)
            .unwrap();
        let mut sh = ShRuntime::new(1);
        sh.set_policy(ATTACKER, policy);
        sh.register_heap(ATTACKER, own, 16 * 1024);
        (m, sh, own, victim)
    }

    #[test]
    fn baseline_lets_cross_component_write_land() {
        let (mut m, mut sh, _own, victim) = setup(ShSet::none());
        let out =
            cross_component_write(&mut m, &mut sh, VcpuId(0), ATTACKER, victim, b"pwn").unwrap();
        assert_eq!(out, AttackOutcome::Landed);
        let mut buf = [0u8; 3];
        m.read(VcpuId(0), victim, &mut buf).unwrap();
        assert_eq!(&buf, b"pwn");
    }

    #[test]
    fn dfi_catches_cross_component_write() {
        let (mut m, mut sh, _own, victim) = setup(ShSet::of([ShMechanism::Dfi]));
        let out =
            cross_component_write(&mut m, &mut sh, VcpuId(0), ATTACKER, victim, b"pwn").unwrap();
        assert_eq!(out.caught_by().as_deref(), Some("hardening-abort"));
    }

    #[test]
    fn mpk_catches_cross_component_write_without_sh() {
        let (mut m, mut sh, _own, victim) = setup(ShSet::none());
        // Tag the victim with key 5 and drop it from the attacker's PKRU.
        m.set_region_key(VmId(0), victim, 4096, ProtKey(5)).unwrap();
        let tok = m.gate_token();
        m.wrpkru(
            VcpuId(0),
            Pkru::deny_all_except(&[ProtKey(0)], &[]),
            Some(tok),
        )
        .unwrap();
        let out =
            cross_component_write(&mut m, &mut sh, VcpuId(0), ATTACKER, victim, b"pwn").unwrap();
        assert_eq!(out.caught_by().as_deref(), Some("pkey-violation"));
    }

    #[test]
    fn asan_catches_overflow_and_uaf() {
        let (mut m, mut sh, own, _victim) = setup(ShSet::of([ShMechanism::Asan]));
        let payload = sh.on_alloc(&mut m, ATTACKER, own, 100);
        let out = heap_overflow(&mut m, &mut sh, VcpuId(0), ATTACKER, payload, 128).unwrap();
        assert!(out.was_caught());

        sh.on_free(&mut m, ATTACKER, payload).unwrap();
        let out = use_after_free(&mut m, &mut sh, VcpuId(0), ATTACKER, payload).unwrap();
        assert!(out.was_caught());
    }

    #[test]
    fn overflow_lands_without_asan() {
        let (mut m, mut sh, own, _) = setup(ShSet::none());
        let out = heap_overflow(&mut m, &mut sh, VcpuId(0), ATTACKER, own, 128).unwrap();
        assert_eq!(out, AttackOutcome::Landed);
    }

    #[test]
    fn cfi_catches_hijack() {
        let (mut m, mut sh, _, _) = setup(ShSet::of([ShMechanism::Cfi]));
        sh.set_cfi_targets(ATTACKER, ["legit".to_string()].into());
        assert!(control_flow_hijack(&mut m, &mut sh, ATTACKER, "gadget")
            .unwrap()
            .was_caught());
        assert!(!control_flow_hijack(&mut m, &mut sh, ATTACKER, "legit")
            .unwrap()
            .was_caught());
    }

    #[test]
    fn pkru_forge_is_caught_by_the_guard() {
        let (mut m, _, _, _) = setup(ShSet::none());
        let out = pkru_forge(&mut m, VcpuId(0)).unwrap();
        assert_eq!(out.caught_by().as_deref(), Some("unauthorized-pkru-write"));
    }

    #[test]
    fn stack_smash_caught_only_with_canaries() {
        let (mut m, mut sh, own, _) = setup(ShSet::of([ShMechanism::StackProtector]));
        sh.register_stack(ATTACKER, own, 4096);
        let out = stack_smash(&mut m, &mut sh, VcpuId(0), ATTACKER, own).unwrap();
        assert!(out.was_caught());

        let (mut m2, mut sh2, own2, _) = setup(ShSet::none());
        let out = stack_smash(&mut m2, &mut sh2, VcpuId(0), ATTACKER, own2).unwrap();
        assert_eq!(out, AttackOutcome::Landed);
    }
}
