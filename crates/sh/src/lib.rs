//! # flexos-sh — per-compartment software hardening
//!
//! The runtime half of FlexOS's SH story (§3): KASAN-style address
//! sanitizing with redzones and a quarantine ([`shadow`]), CFI target-set
//! enforcement, DFI write checks, stack canaries, SafeStack accounting
//! and UBSAN checked arithmetic — all applied **per compartment**
//! through [`runtime::ShRuntime`], so only hardened compartments pay.
//!
//! [`inject`] provides the deterministic attack scenarios the integration
//! tests use to demonstrate FlexOS's central claim: the same bug is
//! caught by MPK in one build, by ASAN/DFI in another, and lands in the
//! unprotected baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inject;
pub mod runtime;
pub mod shadow;

pub use inject::AttackOutcome;
pub use runtime::{ShRuntime, ShStats};
pub use shadow::{Shadow, Verdict, QUARANTINE_DEPTH, REDZONE};
