//! The assembled FlexOS instance: image + gates + hardening + kernel
//! services + network stack, with the paper's cross-compartment wiring.
//!
//! [`Os`] is what an evaluation application runs on. Every operation is
//! routed through the gate runtime exactly as the image plan dictates:
//!
//! * socket calls go application → **libc** (the `recv()` wrapper) →
//!   **network stack** (two gate round trips when those are separate
//!   compartments);
//! * blocking and wakeup go through **semaphores in libc** — even when
//!   the network stack and the scheduler share a compartment, wait-queue
//!   traffic still crosses into libc, reproducing the paper's Figure 5
//!   finding that merging NW+sched does not help;
//! * context switches restore the incoming compartment's PKRU via the
//!   scheduler (the executor's [`KernelHal`] hooks);
//! * per-*library* software hardening taxes land exactly on that
//!   library's work (libc's copies, the stack's packet processing, the
//!   app's request handling, the scheduler's switches), and instrumented
//!   allocators charge per allocation — global-allocator images charge
//!   *everyone*, dedicated-allocator images only the hardened
//!   compartment (Figure 4's experiment).

use crate::profiles::SchedKind;
use flexos::build::{ImagePlan, LibRole};
use flexos::explore::sh_overhead_percent;
use flexos::gate::{CompartmentId, GateRuntime, Sqe};
use flexos_backends::{instantiate_with, BootImage, BootOptions};
use flexos_kernel::alloc::AllocMode;
use flexos_kernel::exec::{Executor, KernelHal};
use flexos_kernel::sched::ThreadId;
use flexos_kernel::sync::{SemId, SemTable, WaitChannel};
use flexos_machine::{Access, Addr, Machine, Result, VcpuId};
use flexos_net::event::{Interest, ReadyEvent};
use flexos_net::nic::Nic;
use flexos_net::stack::{NetError, NetResult, NetStack, SocketId};
use flexos_net::wire::Mac;
use flexos_sh::runtime::ShRuntime;
use flexos_sh::shadow::REDZONE;
use flexos_trace::{
    AsyncGatesSnapshot, ExecutorTrace, MigrationsSnapshot, SpanId, StatsSnapshot, TraceRegistry,
};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

/// Compartment of each functional role (resolved from the image plan).
#[derive(Debug, Clone, Copy)]
pub struct Roles {
    /// The application's compartment ("rest of the system").
    pub app: CompartmentId,
    /// libc's compartment (semaphores live here).
    pub libc: CompartmentId,
    /// The network stack's compartment.
    pub net: CompartmentId,
    /// The scheduler's compartment.
    pub sched: CompartmentId,
    /// The driver's compartment.
    pub driver: CompartmentId,
}

/// Per-library SH overhead percentages (0 = unhardened).
#[derive(Debug, Clone, Copy, Default)]
pub struct ComponentTax {
    /// Application work multiplier.
    pub app: u64,
    /// libc (copies, semaphores) multiplier.
    pub libc: u64,
    /// Network-stack multiplier.
    pub net: u64,
    /// Scheduler multiplier.
    pub sched: u64,
    /// Driver multiplier.
    pub driver: u64,
}

/// OS-level counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OsStats {
    /// Semaphore operations routed through libc.
    pub sem_ops: u64,
    /// Threads woken by network readiness.
    pub wakeups: u64,
    /// Instrumented allocations performed.
    pub instrumented_allocs: u64,
}

/// A fully assembled FlexOS instance.
#[derive(Debug)]
pub struct Os {
    /// The booted image (machine, gates, heaps, plan).
    pub img: BootImage,
    /// The hardening runtime.
    pub sh: ShRuntime,
    /// The semaphore service (libc micro-library).
    pub sems: SemTable,
    /// The network stack (lwip micro-library).
    pub net: NetStack,
    /// Role → compartment map.
    pub roles: Roles,
    /// Per-library SH taxes.
    pub tax: ComponentTax,
    /// Which scheduler implementation this image runs.
    pub sched_kind: SchedKind,
    /// Whether the allocator serving each compartment is instrumented.
    alloc_instrumented: Vec<bool>,
    /// Where the semaphore service lives. Defaults to libc's compartment
    /// (the paper's layout); [`Os::relocate_semaphores`] moves it — the
    /// "redesign of the components" §4 calls for after observing that
    /// merging NW+sched does not help.
    sem_home: CompartmentId,
    sock_sems: BTreeMap<SocketId, SemId>,
    wakes: Vec<ThreadId>,
    stats: OsStats,
    /// Readiness events drained by the last [`Os::poll_net`] (reused
    /// scratch; serve drivers read them via [`Os::ready_events`]).
    ready_scratch: Vec<ReadyEvent>,
    /// Aggregated cooperative-executor counters from serve runs,
    /// surfaced in the `--stats` serving block.
    serve_exec: ExecutorTrace,
}

/// `sh_overhead_percent` of the GCC hardening set
/// (ASAN + stack protector + UBSAN): the reference point the cost
/// table's component-level SH percentages are calibrated against.
/// Other hardening sets scale proportionally.
const GCC_PCT: u64 = 118;

fn lib_pct(plan: &ImagePlan, role: LibRole) -> u64 {
    plan.config
        .libraries
        .iter()
        .find(|l| l.role == role)
        .map(|l| sh_overhead_percent(&l.sh))
        .unwrap_or(0)
}

impl Os {
    /// Boots `plan` into a runnable OS with server address `ip` and a NIC
    /// identity of `nic_id`.
    pub fn boot(plan: ImagePlan, ip: u32, nic_id: u8) -> Result<Os> {
        Self::boot_with(plan, ip, nic_id, BootOptions::default())
    }

    /// [`Os::boot`] with explicit sizing.
    pub fn boot_with(plan: ImagePlan, ip: u32, nic_id: u8, opts: BootOptions) -> Result<Os> {
        let sched_kind = if plan
            .config
            .libraries
            .iter()
            .any(|l| l.role == LibRole::Scheduler && l.spec.name.contains("verified"))
        {
            SchedKind::Verified
        } else {
            SchedKind::Coop
        };
        let mut tax = ComponentTax {
            app: lib_pct(&plan, LibRole::App),
            libc: lib_pct(&plan, LibRole::LibC),
            net: lib_pct(&plan, LibRole::NetStack),
            sched: lib_pct(&plan, LibRole::Scheduler),
            driver: lib_pct(&plan, LibRole::Driver),
        };
        // Super-linear SH composition (see `CostTable::sh_synergy_pct`):
        // the more components are instrumented, the more each one's
        // shadow/redzone footprint pressures the shared caches.
        {
            let costs = flexos_machine::CostTable::default();
            let hardened = [tax.app, tax.libc, tax.net, tax.sched, tax.driver]
                .iter()
                .filter(|&&p| p > 0)
                .count() as u64;
            let synergy = 100 + costs.sh_synergy_pct * hardened.saturating_sub(1);
            for p in [
                &mut tax.app,
                &mut tax.libc,
                &mut tax.net,
                &mut tax.sched,
                &mut tax.driver,
            ] {
                *p = *p * synergy / 100;
            }
        }
        let net_pool_bytes = opts.net_pool_bytes;
        let mut img = instantiate_with(plan, opts)?;
        let n = img.gates.len();
        let fallback = CompartmentId(0);
        let roles = Roles {
            app: img.compartment_of_role(LibRole::App).unwrap_or(fallback),
            libc: img.compartment_of_role(LibRole::LibC).unwrap_or(fallback),
            net: img
                .compartment_of_role(LibRole::NetStack)
                .unwrap_or(fallback),
            sched: img
                .compartment_of_role(LibRole::Scheduler)
                .unwrap_or(fallback),
            driver: img.compartment_of_role(LibRole::Driver).unwrap_or(fallback),
        };

        // Hardening runtime: per-compartment policy = union of member
        // libraries' SH; heap/shared registration for ASAN/DFI coverage.
        let mut sh = ShRuntime::new(n);
        for c in 0..n {
            let id = CompartmentId(c as u16);
            sh.set_policy(id, img.plan.compartment_sh[c].clone());
            let ctx = img.gates.ctx(id);
            sh.register_heap(id, ctx.heap_base, ctx.heap_size);
        }
        let (shared_base, shared_len) = img.shared_region();
        sh.register_shared(shared_base, shared_len);

        // Which allocators are instrumented? Global mode: one allocator,
        // instrumented if *any* library's SH instruments malloc — the
        // whole system pays (Figure 4, "global allocator"). Dedicated
        // mode: per compartment.
        let any_instrumented = img
            .plan
            .config
            .libraries
            .iter()
            .any(|l| l.sh.instruments_malloc());
        let alloc_instrumented: Vec<bool> = match img.heaps.mode() {
            AllocMode::Global => vec![any_instrumented; n],
            AllocMode::PerCompartment => (0..n)
                .map(|c| img.plan.compartment_sh[c].instruments_malloc())
                .collect(),
        };

        // The network stack: socket-ring pool from its compartment heap
        // (sized by `BootOptions::net_pool_bytes`).
        let pool = img
            .heaps
            .alloc(&mut img.machine, roles.net, net_pool_bytes, 16)?;
        let mut net = NetStack::new(ip, Nic::new(Mac::of_nic(nic_id)), pool, net_pool_bytes);
        let costs = img.machine.costs().clone();
        if img.plan.config.hypervisor == flexos::build::Hypervisor::Xen {
            net.extra_per_packet = costs.xen_packet_tax;
        }
        if tax.net > 0 {
            net.sh_per_packet = costs.sh_net_per_packet * tax.net / GCC_PCT
                + if alloc_instrumented[roles.net.0 as usize] {
                    costs.asan_alloc
                } else {
                    0
                };
        } else if alloc_instrumented[roles.net.0 as usize] {
            // Unhardened stack on an instrumented global allocator still
            // pays the instrumented pbuf allocation per packet.
            net.sh_per_packet = costs.asan_alloc;
        }
        if tax.driver > 0 {
            // A hardened driver pays KASAN on its descriptor handling
            // (~40% of its per-packet work at the GCC set).
            net.sh_per_packet += costs.nic_per_packet * 40 * tax.driver / (GCC_PCT * 100);
        }

        Ok(Os {
            img,
            sh,
            sems: SemTable::new(),
            net,
            roles,
            tax,
            sched_kind,
            alloc_instrumented,
            sem_home: roles.libc,
            sock_sems: BTreeMap::new(),
            wakes: Vec::new(),
            stats: OsStats::default(),
            ready_scratch: Vec::new(),
            serve_exec: ExecutorTrace::new(),
        })
    }

    /// Moves the semaphore service into `home` — the component redesign
    /// the paper's §4 points at: "putting the network stack and the
    /// scheduler in the same compartment does not increase performance:
    /// this is due to semaphores being implemented in another
    /// compartment (LibC). This brings the need for further
    /// compartmentalization or redesign of the components."
    ///
    /// With `home = roles.net`, the NW+Sched/Rest model's mbox traffic
    /// becomes compartment-local and the merge finally pays off (see
    /// `tests/counterfactuals.rs`).
    pub fn relocate_semaphores(&mut self, home: CompartmentId) {
        self.sem_home = home;
    }

    /// OS counters.
    pub fn stats(&self) -> OsStats {
        self.stats
    }

    /// Aggregates every subsystem's telemetry into one [`StatsSnapshot`]:
    /// gate crossings from the gate runtime, scheduler activity from
    /// `exec` (when the caller drove one), allocator pressure from the
    /// heap service, faults from the machine (pkey violations attributed
    /// to the compartment owning the key), and packet counters from the
    /// network stack.
    pub fn stats_snapshot(&self, exec: Option<&Executor<Os>>) -> StatsSnapshot {
        let n = self.img.gates.len();
        let names: Vec<String> = (0..n)
            .map(|c| self.img.gates.ctx(CompartmentId(c as u16)).name.clone())
            .collect();
        let mut owners: BTreeMap<u16, (u16, String)> = BTreeMap::new();
        for c in 0..n {
            let ctx = self.img.gates.ctx(CompartmentId(c as u16));
            for k in &ctx.keys {
                owners.insert(k.0 as u16, (c as u16, ctx.name.clone()));
            }
        }
        let mut reg = TraceRegistry::new();
        reg.set_elapsed(self.img.machine.clock().cycles());
        reg.add_gates(self.img.gates.trace(), &names);
        if let Some(ex) = exec {
            reg.add_sched(ex.trace(), self.roles.sched.0);
        }
        reg.add_allocs(self.img.heaps.trace(), &names);
        reg.add_faults(self.img.machine.fault_trace(), |k| owners.get(&k).cloned());
        reg.add_tlb(self.img.machine.tlb_trace());
        let ag = self.img.gates.async_stats();
        reg.add_async_gates(AsyncGatesSnapshot {
            submitted: ag.submitted,
            completed: ag.completed,
            flushes: ag.flushes,
            cancelled: ag.cancelled,
            sq_full: ag.sq_full,
            cq_empty: ag.cq_empty,
        });
        let mg = self.img.gates.migration_stats();
        reg.add_migrations(MigrationsSnapshot {
            requested: mg.requested,
            completed: mg.completed,
            deferred: mg.deferred,
            rejected_submits: mg.rejected_submits,
            requeued_sqes: mg.requeued_sqes,
            preserved_cqes: mg.preserved_cqes,
            drain_cycles_total: mg.drain_cycles_total,
            drain_cycles_max: mg.drain_cycles_max,
            escalations: mg.escalations,
            relaxations: mg.relaxations,
        });
        reg.add_net(self.net.trace(), self.net.retransmits(), self.roles.net.0);
        reg.add_serving(self.net.events().trace(), &self.serve_exec);
        reg.add_spans(self.img.machine.span_trace());
        reg.finish()
    }

    /// Renders the machine's span trace as Chrome trace-event JSON
    /// (Perfetto-loadable), naming each compartment track after the
    /// image's compartments. Deterministic runs produce the identical
    /// string at any `--vcpus` width.
    pub fn trace_json(&self) -> String {
        let names: Vec<(u16, String)> = (0..self.img.gates.len())
            .map(|c| {
                (
                    c as u16,
                    self.img.gates.ctx(CompartmentId(c as u16)).name.clone(),
                )
            })
            .collect();
        self.img.machine.span_trace().to_chrome_json(&names)
    }

    fn taxed(base: u64, pct: u64) -> u64 {
        base + base * pct / 100
    }

    /// Cycles of one scheduler API call seen from glue code: the base
    /// call (with the scheduler's SH tax) plus — for the verified
    /// scheduler — the precondition checks "integrated in the glue code"
    /// (paper §4).
    fn sched_call_cycles(&self) -> u64 {
        let costs = self.img.machine.costs();
        let base = Self::taxed(costs.func_call, self.tax.sched);
        let glue = match self.sched_kind {
            SchedKind::Verified => costs.verified_contract_check,
            SchedKind::Coop => 0,
        };
        base + glue
    }

    /// Like [`Os::sched_call_cycles`] but for the light wait-queue peek
    /// every semaphore op performs (a single-precondition check in the
    /// verified scheduler's glue, not the full thread-op contract).
    fn sched_peek_cycles(&self) -> u64 {
        let costs = self.img.machine.costs();
        let base = Self::taxed(costs.func_call, self.tax.sched);
        let glue = match self.sched_kind {
            SchedKind::Verified => costs.verified_contract_check / 4,
            SchedKind::Coop => 0,
        };
        base + glue
    }

    // --- memory ------------------------------------------------------------------

    /// Allocates an application I/O buffer in the shared window (ported
    /// FlexOS applications annotate socket buffers as shared data so the
    /// network stack may fill them from its compartment).
    pub fn alloc_shared_buf(&mut self, size: u64) -> Result<Addr> {
        self.img.malloc_shared(size, 16)
    }

    /// malloc as compartment `c`, paying the instrumented-allocator cost
    /// when the allocator serving `c` is instrumented, and tracking
    /// redzones when `c` itself is ASAN-hardened.
    pub fn malloc_in(&mut self, c: CompartmentId, size: u64) -> Result<Addr> {
        if !self.alloc_instrumented[c.0 as usize] {
            return self.img.heaps.alloc(&mut self.img.machine, c, size, 16);
        }
        self.stats.instrumented_allocs += 1;
        let outer = self
            .img
            .heaps
            .alloc(&mut self.img.machine, c, size + 2 * REDZONE, 16)?;
        if self.sh.policy(c).instruments_malloc() {
            Ok(self.sh.on_alloc(&mut self.img.machine, c, outer, size))
        } else {
            // Instrumented allocator, unhardened caller: pay the cost,
            // gain no checking.
            self.img.machine.charge(self.img.machine.costs().asan_alloc);
            Ok(Addr(outer.0 + REDZONE))
        }
    }

    /// free as compartment `c` (quarantined when instrumented).
    pub fn free_in(&mut self, c: CompartmentId, payload: Addr) -> Result<()> {
        if !self.alloc_instrumented[c.0 as usize] {
            return self.img.heaps.free(&mut self.img.machine, c, payload);
        }
        if self.sh.policy(c).instruments_malloc() {
            if let Some(outer) = self.sh.on_free(&mut self.img.machine, c, payload)? {
                self.img.heaps.free(&mut self.img.machine, c, outer)?;
            }
            Ok(())
        } else {
            self.img.machine.charge(self.img.machine.costs().asan_alloc);
            self.img
                .heaps
                .free(&mut self.img.machine, c, Addr(payload.0 - REDZONE))
        }
    }

    /// Charges `base` cycles of application work (with the app library's
    /// SH tax).
    pub fn app_compute(&mut self, base: u64) {
        let cycles = Self::taxed(base, self.tax.app);
        self.img.machine.charge(cycles);
    }

    // --- socket API (application-facing, fully gated) ------------------------------

    /// `listen()`: app → libc → network stack.
    pub fn listen(&mut self, port: u16) -> NetResult<SocketId> {
        let (c_libc, c_net) = (self.roles.libc, self.roles.net);
        let Os { img, net, .. } = self;
        let BootImage { machine, gates, .. } = img;
        gates
            .cross(machine, c_libc, 16, 8, |m, rt| {
                rt.cross(m, c_net, 16, 8, |_m, _rt| Ok(net.tcp_listen(port)))
            })
            .map_err(NetError::from)?
    }

    /// `accept()`: returns a connected socket once the handshake is done.
    pub fn accept(&mut self, listener: SocketId) -> NetResult<Option<SocketId>> {
        let (c_libc, c_net) = (self.roles.libc, self.roles.net);
        let accepted = {
            let Os { img, net, .. } = self;
            let BootImage { machine, gates, .. } = img;
            gates
                .cross(machine, c_libc, 16, 8, |m, rt| {
                    rt.cross(m, c_net, 16, 8, |_m, _rt| Ok(net.tcp_accept(listener)))
                })
                .map_err(NetError::from)??
        };
        if let Some(sid) = accepted {
            self.ensure_sem(sid);
        }
        Ok(accepted)
    }

    /// `connect()`: initiates an active open (poll until established).
    pub fn connect(&mut self, dst_ip: u32, dst_port: u16) -> NetResult<SocketId> {
        let (c_libc, c_net) = (self.roles.libc, self.roles.net);
        let sid = {
            let Os { img, net, .. } = self;
            let BootImage { machine, gates, .. } = img;
            gates
                .cross(machine, c_libc, 16, 8, |m, rt| {
                    rt.cross(m, c_net, 16, 8, |_m, _rt| {
                        Ok(net.tcp_connect(dst_ip, dst_port))
                    })
                })
                .map_err(NetError::from)??
        };
        self.ensure_sem(sid);
        Ok(sid)
    }

    /// One socket data operation (`recv` or `send`), with the paper's
    /// full crossing structure:
    ///
    /// 1. app → **libc** (the `recv()`/`send()` wrapper);
    /// 2. libc → **network stack** (the socket layer);
    /// 3. stack → **libc** — lwIP's `sys_mbox` semaphore lives in libc
    ///    ("semaphores being implemented in another compartment (LibC)",
    ///    §4) …
    /// 4. … whose wait queue lives in the **scheduler** ("frequent
    ///    communication between the scheduler and the network stack,
    ///    making intensive use of wait queues through semaphores").
    ///
    /// This is why Figure 5's NW+Sched merge does not help: step 3 still
    /// crosses out of the merged compartment into libc, and step 4
    /// crosses from libc into wherever the scheduler lives.
    fn sock_data_op(
        &mut self,
        sid: SocketId,
        buf: Addr,
        len: u64,
        access: Access,
    ) -> NetResult<u64> {
        let (c_libc, c_net, c_sched) = (self.roles.libc, self.roles.net, self.roles.sched);
        let c_sem = self.sem_home;
        let (net_tax, libc_tax) = (self.tax.net, self.tax.libc);
        let sched_cycles = self.sched_peek_cycles();
        let r = {
            let Os {
                img,
                net,
                sh,
                stats,
                ..
            } = self;
            let BootImage { machine, gates, .. } = img;
            gates
                .cross(machine, c_libc, 32, 8, |m, rt| {
                    rt.cross(m, c_net, 32, 8, |m, rt| {
                        let vcpu = rt.current_ctx().vcpu;
                        if net_tax > 0 {
                            // Hardened socket layer: KASAN-instrumented
                            // lock/pbuf-chain work per call + a shadow
                            // check on the user buffer it touches.
                            let extra =
                                m.costs().socket_call * m.costs().sh_net_socket_pct * net_tax
                                    / (GCC_PCT * 100);
                            m.charge(extra);
                            if let Err(f) = sh.check_access(m, c_net, buf, len, access) {
                                return Ok(Err(NetError::from(f)));
                            }
                        }
                        let res = match access {
                            Access::Write => net.tcp_recv(m, vcpu, sid, buf, len),
                            Access::Read => net.tcp_send(m, vcpu, sid, buf, len),
                        };
                        // lwIP's sys_mbox semaphore (in `sem_home`,
                        // libc by default) + its wait queue (scheduler).
                        stats.sem_ops += 1;
                        rt.cross(m, c_sem, 8, 8, |m, rt| {
                            m.charge(m.costs().func_call);
                            rt.cross(m, c_sched, 8, 8, |m, _rt| {
                                m.charge(sched_cycles);
                                Ok(())
                            })
                        })?;
                        Ok(res)
                    })
                })
                .map_err(NetError::from)?
        }?;
        // libc's user-space memcpy of the payload, with the
        // ASAN-interceptor tax when libc is hardened.
        let costs = self.img.machine.costs();
        let base = r.div_ceil(4) * costs.libc_copy_per_4bytes;
        let pct = costs.sh_asan_memcpy_pct * libc_tax / GCC_PCT;
        self.img.machine.charge(base + base * pct / 100);
        Ok(r)
    }

    /// Encodes a socket-layer result as an io_uring-style CQE `res`
    /// value: byte counts are non-negative, errors map to stable
    /// negative codes (cf. `-errno`). The exact [`NetResult`] — faults
    /// included — travels alongside the ring, so the code is a summary,
    /// not the source of truth.
    pub fn net_res_code(r: &NetResult<u64>) -> i64 {
        match r {
            Ok(n) => *n as i64,
            Err(NetError::WouldBlock) => -1,
            Err(NetError::Closed) => -2,
            Err(NetError::AddrInUse) => -3,
            Err(NetError::InvalidSocket) => -4,
            Err(NetError::NoBuffers) => -5,
            Err(NetError::MessageTooLong) => -6,
            Err(NetError::Fault(_)) => -7,
        }
    }

    /// Batched [`Os::sock_data_op`]: up to `max` data operations on `sid`
    /// submitted as descriptors onto the app → libc async gate ring and
    /// drained through one [`GateRuntime::flush_async_until`], each call
    /// performing the exact nested inner sequence (libc → stack →
    /// semaphore → scheduler) and each followed by the same libc memcpy
    /// epilogue a sequential driver charges. Descriptor `i` is tagged
    /// with `spans.get(i)` (untagged past the slice) and completes with
    /// its result encoded via [`Os::net_res_code`].
    ///
    /// `after(m, rt, &r)` runs in the caller's compartment after each
    /// operation's result `r`: it applies the work a sequential loop does
    /// between two socket calls (per-reply bookkeeping, staging the next
    /// chunk via `m`/`rt`) and returns `Ok(Some(next_len))` to issue the
    /// next operation with that length or `Ok(None)` to stop — e.g. on
    /// `WouldBlock`, EOF, or an emptied output buffer. Results of all
    /// issued operations, including the stopping one, are returned.
    ///
    /// With overlap disabled this degrades to the sequential loop it
    /// replaces; either way the simulated cycles, faults and trace are
    /// bit-identical (see `tests/backend_equiv.rs` and
    /// `tests/async_gate.rs`).
    #[allow(clippy::too_many_arguments)] // one private fn backs 3 public wrappers
    fn sock_data_op_batch(
        &mut self,
        sid: SocketId,
        buf: Addr,
        first_len: u64,
        access: Access,
        max: usize,
        spans: &[SpanId],
        mut after: impl FnMut(&mut Machine, &mut GateRuntime, &NetResult<u64>) -> Result<Option<u64>>,
    ) -> Result<Vec<NetResult<u64>>> {
        let (c_libc, c_net, c_sched) = (self.roles.libc, self.roles.net, self.roles.sched);
        let c_sem = self.sem_home;
        let (net_tax, libc_tax) = (self.tax.net, self.tax.libc);
        let sched_cycles = self.sched_peek_cycles();
        let cur_len = Cell::new(first_len);
        // The exact results ride next to the ring: a CQE's i64 `res`
        // cannot carry a full `Fault` payload, so the ring transports
        // the io_uring-style code and this vec keeps the real value.
        let out: RefCell<Vec<NetResult<u64>>> = RefCell::new(Vec::with_capacity(max));
        let Os {
            img,
            net,
            sh,
            stats,
            ..
        } = self;
        let BootImage { machine, gates, .. } = img;
        gates.ensure_ring_depth(c_libc, max);
        for i in 0..max {
            let span = spans.get(i).copied().unwrap_or(SpanId::NONE);
            gates.submit(c_libc, Sqe::new(32, 8, i as u64).with_span(span))?;
        }
        let flushed = gates.flush_async_until(
            machine,
            c_libc,
            |m, rt, _sqe| {
                let len = cur_len.get();
                let res = rt.cross(m, c_net, 32, 8, |m, rt| {
                    let vcpu = rt.current_ctx().vcpu;
                    if net_tax > 0 {
                        let extra = m.costs().socket_call * m.costs().sh_net_socket_pct * net_tax
                            / (GCC_PCT * 100);
                        m.charge(extra);
                        if let Err(f) = sh.check_access(m, c_net, buf, len, access) {
                            return Ok(Err(NetError::from(f)));
                        }
                    }
                    let res = match access {
                        Access::Write => net.tcp_recv(m, vcpu, sid, buf, len),
                        Access::Read => net.tcp_send(m, vcpu, sid, buf, len),
                    };
                    stats.sem_ops += 1;
                    rt.cross(m, c_sem, 8, 8, |m, rt| {
                        m.charge(m.costs().func_call);
                        rt.cross(m, c_sched, 8, 8, |m, _rt| {
                            m.charge(sched_cycles);
                            Ok(())
                        })
                    })?;
                    Ok(res)
                })?;
                let code = Self::net_res_code(&res);
                out.borrow_mut().push(res);
                Ok(code)
            },
            |m, rt, _sqe, _code| {
                let held = out.borrow();
                let r = held.last().expect("between hook follows its call");
                if let Ok(n) = r {
                    // libc's user-space memcpy of the payload — charged
                    // after the crossing returns, exactly where the
                    // sequential path charges it.
                    let costs = m.costs();
                    let base = n.div_ceil(4) * costs.libc_copy_per_4bytes;
                    let pct = costs.sh_asan_memcpy_pct * libc_tax / GCC_PCT;
                    m.charge(base + base * pct / 100);
                }
                let next = after(m, rt, r)?;
                drop(held);
                match next {
                    Some(next) => {
                        cur_len.set(next);
                        Ok(true)
                    }
                    None => Ok(false),
                }
            },
        );
        // A sequential driver has no notion of "still queued": whatever
        // an early stop (or an enter fault) left unissued is cancelled,
        // and the completions are drained — their payload already lives
        // in `out`, the CQEs carry the summary codes.
        gates.cancel_pending(c_libc);
        let mut cqes = Vec::new();
        gates.poll_completions(c_libc, &mut cqes);
        let out = out.into_inner();
        debug_assert!(
            cqes.iter()
                .zip(out.iter())
                .all(|(c, r)| c.res == Self::net_res_code(r)),
            "CQE codes diverged from the socket results"
        );
        flushed?;
        Ok(out)
    }

    /// Batched `recv()`: up to `max` receives of `len` bytes into `dst`
    /// through one vectored gate crossing. See [`Os::sock_data_op_batch`]
    /// for the `after` hook contract.
    pub fn recv_batch(
        &mut self,
        sid: SocketId,
        dst: Addr,
        len: u64,
        max: usize,
        after: impl FnMut(&mut Machine, &mut GateRuntime, &NetResult<u64>) -> Result<Option<u64>>,
    ) -> Result<Vec<NetResult<u64>>> {
        self.sock_data_op_batch(sid, dst, len, Access::Write, max, &[], after)
    }

    /// Batched `send()`: up to `max` sends from `src`, the first of
    /// `first_len` bytes, through one vectored gate crossing. The `after`
    /// hook stages each subsequent chunk (writing it through `m` in the
    /// caller's compartment, as a sequential send loop would) and returns
    /// its length. See [`Os::sock_data_op_batch`].
    pub fn send_batch_with(
        &mut self,
        sid: SocketId,
        src: Addr,
        first_len: u64,
        max: usize,
        after: impl FnMut(&mut Machine, &mut GateRuntime, &NetResult<u64>) -> Result<Option<u64>>,
    ) -> Result<Vec<NetResult<u64>>> {
        self.sock_data_op_batch(sid, src, first_len, Access::Read, max, &[], after)
    }

    /// [`Os::send_batch_with`] with request-span tagging: descriptor `i`
    /// of the burst carries `spans[i]` (descriptors past the slice stay
    /// untagged), so the causal trace links each ring entry to the
    /// request whose reply it ships.
    pub fn send_batch_spanned(
        &mut self,
        sid: SocketId,
        src: Addr,
        first_len: u64,
        max: usize,
        spans: &[SpanId],
        after: impl FnMut(&mut Machine, &mut GateRuntime, &NetResult<u64>) -> Result<Option<u64>>,
    ) -> Result<Vec<NetResult<u64>>> {
        self.sock_data_op_batch(sid, src, first_len, Access::Read, max, spans, after)
    }

    /// `recv()`: see [`Os::sock_data_op`] for the crossing structure.
    pub fn recv(&mut self, sid: SocketId, dst: Addr, len: u64) -> NetResult<u64> {
        self.sock_data_op(sid, dst, len, Access::Write)
    }

    /// `send()`: see [`Os::sock_data_op`] for the crossing structure.
    pub fn send(&mut self, sid: SocketId, src: Addr, len: u64) -> NetResult<u64> {
        self.sock_data_op(sid, src, len, Access::Read)
    }

    /// `close()`.
    pub fn sock_close(&mut self, sid: SocketId) -> NetResult<()> {
        let (c_libc, c_net) = (self.roles.libc, self.roles.net);
        let Os { img, net, .. } = self;
        let BootImage { machine, gates, .. } = img;
        gates
            .cross(machine, c_libc, 16, 8, |m, rt| {
                rt.cross(m, c_net, 16, 8, |_m, _rt| Ok(net.close(sid)))
            })
            .map_err(NetError::from)?
    }

    /// `bind()` for UDP: app → libc → network stack.
    pub fn udp_bind(&mut self, port: u16) -> NetResult<SocketId> {
        let (c_libc, c_net) = (self.roles.libc, self.roles.net);
        let Os { img, net, .. } = self;
        let BootImage { machine, gates, .. } = img;
        gates
            .cross(machine, c_libc, 16, 8, |m, rt| {
                rt.cross(m, c_net, 16, 8, |_m, _rt| Ok(net.udp_bind(port)))
            })
            .map_err(NetError::from)?
    }

    /// `sendto()`: datagram from a shared buffer, fully gated.
    pub fn udp_send_to(
        &mut self,
        sid: SocketId,
        src: Addr,
        len: u64,
        dst_ip: u32,
        dst_port: u16,
    ) -> NetResult<()> {
        let (c_libc, c_net) = (self.roles.libc, self.roles.net);
        let libc_tax = self.tax.libc;
        {
            let Os { img, net, .. } = self;
            let BootImage { machine, gates, .. } = img;
            gates
                .cross(machine, c_libc, 32, 8, |m, rt| {
                    rt.cross(m, c_net, 32, 8, |m, rt| {
                        let vcpu = rt.current_ctx().vcpu;
                        Ok(net.udp_send_to(m, vcpu, sid, src, len, dst_ip, dst_port))
                    })
                })
                .map_err(NetError::from)?
        }?;
        let costs = self.img.machine.costs();
        let base = len.div_ceil(4) * costs.libc_copy_per_4bytes;
        let pct = costs.sh_asan_memcpy_pct * libc_tax / GCC_PCT;
        self.img.machine.charge(base + base * pct / 100);
        Ok(())
    }

    /// `recvfrom()`: returns `(bytes, src_ip, src_port)`.
    pub fn udp_recv_from(
        &mut self,
        sid: SocketId,
        dst: Addr,
        max: u64,
    ) -> NetResult<(u64, u32, u16)> {
        let (c_libc, c_net) = (self.roles.libc, self.roles.net);
        let libc_tax = self.tax.libc;
        let r = {
            let Os { img, net, .. } = self;
            let BootImage { machine, gates, .. } = img;
            gates
                .cross(machine, c_libc, 32, 8, |m, rt| {
                    rt.cross(m, c_net, 32, 8, |m, rt| {
                        let vcpu = rt.current_ctx().vcpu;
                        Ok(net.udp_recv_from(m, vcpu, sid, dst, max))
                    })
                })
                .map_err(NetError::from)?
        }?;
        let costs = self.img.machine.costs();
        let base = r.0.div_ceil(4) * costs.libc_copy_per_4bytes;
        let pct = costs.sh_asan_memcpy_pct * libc_tax / GCC_PCT;
        self.img.machine.charge(base + base * pct / 100);
        Ok(r)
    }

    // --- blocking / wakeup (the Figure 5 path) ---------------------------------------

    fn ensure_sem(&mut self, sid: SocketId) -> SemId {
        if let Some(&s) = self.sock_sems.get(&sid) {
            return s;
        }
        let s = self.sems.create(0);
        self.sock_sems.insert(sid, s);
        s
    }

    /// Prepares to block until `sid` is readable. Crosses into libc for
    /// the semaphore down and into the scheduler compartment for the
    /// run-queue bookkeeping. Returns `None` when data raced in and the
    /// caller should retry instead of blocking.
    pub fn wait_readable(&mut self, tid: ThreadId, sid: SocketId) -> Result<Option<WaitChannel>> {
        let sem = self.ensure_sem(sid);
        let (c_libc, c_sched) = (self.sem_home, self.roles.sched);
        let sched_tax_cycles = self.sched_call_cycles();
        self.stats.sem_ops += 1;
        let Os { img, sems, .. } = self;
        let BootImage { machine, gates, .. } = img;
        let got_token = gates.cross(machine, c_libc, 16, 8, |m, rt| {
            let got = sems.try_down(sem, tid);
            if !got {
                // The blocking path continues into the scheduler's
                // compartment to park the thread.
                rt.cross(m, c_sched, 16, 8, |m, _rt| {
                    m.charge(sched_tax_cycles);
                    Ok(())
                })?;
            }
            Ok(got)
        })?;
        Ok(if got_token { None } else { Some(sem.channel()) })
    }

    /// Runs one network-stack iteration (in the stack's compartment) and
    /// wakes any threads whose sockets became readable (semaphore `up`s
    /// in libc, run-queue wakes in the scheduler compartment).
    pub fn poll_net(&mut self) -> Result<()> {
        let (c_libc, c_net, c_sched) = (self.sem_home, self.roles.net, self.roles.sched);
        {
            let Os { img, net, .. } = self;
            let BootImage { machine, gates, .. } = img;
            gates.cross(machine, c_net, 16, 8, |m, rt| {
                let vcpu = rt.current_ctx().vcpu;
                net.poll(m, vcpu).map_err(|e| match e {
                    NetError::Fault(f) => f,
                    other => flexos_machine::Fault::HardeningAbort {
                        mechanism: "net",
                        reason: other.to_string(),
                    },
                })
            })?;
        }
        // Readiness wakeups: drain the stack's event queue — O(ready),
        // never a scan of every open socket. Level-triggered READ events
        // are exactly the readable streams the old full scan found;
        // processing them in ascending socket order with the identical
        // skip conditions keeps the charge stream byte-identical.
        let sched_tax_cycles = self.sched_call_cycles();
        let mut ready = std::mem::take(&mut self.ready_scratch);
        self.net.poll_events(&mut ready);
        ready.sort_unstable_by_key(|e| e.sid.0);
        for ev in &ready {
            if !ev.ready.contains(Interest::READ) {
                continue; // ACCEPT/WRITE readiness wakes no sem waiters
            }
            let sid = ev.sid;
            let Some(&sem) = self.sock_sems.get(&sid) else {
                continue;
            };
            if self.sems.get(sem).waiter_count() == 0 {
                continue;
            }
            if !self.net.tcp_readable(sid).unwrap_or(false) {
                continue;
            }
            self.stats.sem_ops += 1;
            let Os {
                img,
                sems,
                wakes,
                stats,
                ..
            } = self;
            let BootImage { machine, gates, .. } = img;
            gates.cross(machine, c_libc, 16, 8, |m, rt| {
                if let Some(tid) = sems.up(sem) {
                    // Waking crosses into the scheduler's compartment.
                    rt.cross(m, c_sched, 16, 8, |m, _rt| {
                        m.charge(sched_tax_cycles);
                        Ok(())
                    })?;
                    wakes.push(tid);
                    stats.wakeups += 1;
                }
                Ok(())
            })?;
        }
        self.ready_scratch = ready;
        Ok(())
    }

    /// The readiness events drained by the most recent
    /// [`Os::poll_net`]. Serve drivers translate these into
    /// per-connection task wakes; level-triggered readiness that nobody
    /// consumes simply reappears on the next poll.
    pub fn ready_events(&self) -> &[ReadyEvent] {
        &self.ready_scratch
    }

    /// Folds a serve run's cooperative-executor counters into the
    /// instance totals surfaced by [`Os::stats_snapshot`].
    pub fn record_serve_exec(&mut self, t: &ExecutorTrace) {
        self.serve_exec.merge_counters(t);
    }
}

impl KernelHal for Os {
    fn machine_mut(&mut self) -> &mut Machine {
        &mut self.img.machine
    }

    fn resume_compartment(&mut self, compartment: CompartmentId) -> Result<()> {
        // A hardened scheduler pays its SH tax on every switch.
        if self.tax.sched > 0 {
            let extra = self.img.machine.costs().ctx_switch * self.tax.sched / 100;
            self.img.machine.charge(extra);
        }
        self.img.gates.resume_in(&mut self.img.machine, compartment)
    }

    fn drain_wakes(&mut self) -> Vec<ThreadId> {
        std::mem::take(&mut self.wakes)
    }
}

/// The vCPU the network compartment executes on (helper for tests).
pub fn net_vcpu(os: &Os) -> VcpuId {
    os.img.gates.ctx(os.roles.net).vcpu
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{evaluation_image, harden, CompartmentModel, SchedKind};
    use flexos::build::{plan, BackendChoice};

    fn boot(model: CompartmentModel, backend: BackendChoice) -> Os {
        let cfg = evaluation_image("iperf", model, backend, SchedKind::Coop);
        Os::boot(plan(cfg).unwrap(), 0x0a00_0001, 1).unwrap()
    }

    #[test]
    fn baseline_boot_resolves_roles_to_one_compartment() {
        let os = boot(CompartmentModel::Baseline, BackendChoice::None);
        assert_eq!(os.roles.app, os.roles.net);
        assert_eq!(os.roles.libc, os.roles.sched);
    }

    #[test]
    fn nw_only_separates_net_from_rest() {
        let os = boot(CompartmentModel::NwOnly, BackendChoice::MpkShared);
        assert_ne!(os.roles.net, os.roles.app);
        assert_eq!(os.roles.libc, os.roles.app);
    }

    #[test]
    fn listen_crosses_gates_under_isolation() {
        let mut os = boot(CompartmentModel::NwOnly, BackendChoice::MpkShared);
        os.img.gates.reset_stats();
        os.listen(5201).unwrap();
        // app→libc is same-compartment (direct), libc→net is a crossing.
        assert_eq!(os.img.gates.stats().crossings, 1);
        assert_eq!(os.img.gates.stats().direct_calls, 1);
    }

    #[test]
    fn listen_is_direct_in_the_baseline() {
        let mut os = boot(CompartmentModel::Baseline, BackendChoice::None);
        os.img.gates.reset_stats();
        os.listen(5201).unwrap();
        assert_eq!(os.img.gates.stats().crossings, 0);
        assert_eq!(os.img.gates.stats().direct_calls, 2);
    }

    #[test]
    fn shared_buffers_are_reachable_from_every_compartment() {
        let mut os = boot(CompartmentModel::NwSchedRest, BackendChoice::MpkSwitched);
        let buf = os.alloc_shared_buf(4096).unwrap();
        os.img.write(buf, b"app-data").unwrap();
        let c_net = os.roles.net;
        let Os { img, .. } = &mut os;
        let BootImage { machine, gates, .. } = img;
        gates
            .cross(machine, c_net, 0, 0, |m, rt| {
                let mut b = [0u8; 8];
                m.read(rt.current_ctx().vcpu, buf, &mut b)?;
                assert_eq!(&b, b"app-data");
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn hardened_netstack_pays_packet_taxes() {
        let cfg = harden(
            evaluation_image(
                "iperf",
                CompartmentModel::Baseline,
                BackendChoice::None,
                SchedKind::Coop,
            ),
            "lwip",
        );
        let os = Os::boot(plan(cfg).unwrap(), 0x0a00_0001, 1).unwrap();
        assert!(os.net.sh_per_packet > 0);
        assert!(os.tax.net > 0);
        assert_eq!(os.tax.libc, 0);
    }

    #[test]
    fn global_allocator_spreads_instrumentation_cost() {
        // SH on lwip, global allocator (baseline model, no isolation):
        // even the app's allocations pay.
        let cfg = harden(
            evaluation_image(
                "redis",
                CompartmentModel::Baseline,
                BackendChoice::None,
                SchedKind::Coop,
            ),
            "lwip",
        );
        let mut os = Os::boot(plan(cfg).unwrap(), 0x0a00_0001, 1).unwrap();
        let c_app = os.roles.app;
        let before = os.img.machine.clock().cycles();
        let p = os.malloc_in(c_app, 64).unwrap();
        let with_inst = os.img.machine.clock().cycles() - before;
        os.free_in(c_app, p).unwrap();
        assert_eq!(os.stats().instrumented_allocs, 1);

        // Same but with dedicated allocators: the app side is clean.
        let mut cfg2 = harden(
            evaluation_image(
                "redis",
                CompartmentModel::Baseline,
                BackendChoice::None,
                SchedKind::Coop,
            ),
            "lwip",
        );
        cfg2.dedicated_allocators = true;
        let mut os2 = Os::boot(plan(cfg2).unwrap(), 0x0a00_0001, 1).unwrap();
        let c_app2 = os2.roles.app;
        let b2 = os2.img.machine.clock().cycles();
        let p2 = os2.malloc_in(c_app2, 64).unwrap();
        let without_inst = os2.img.machine.clock().cycles() - b2;
        os2.free_in(c_app2, p2).unwrap();
        // Baseline model = one compartment, so dedicated == 1 allocator,
        // and the compartment union includes lwip's ASAN… the dedicated
        // case only helps once net is in its own compartment:
        let cfg3 = harden(
            evaluation_image(
                "redis",
                CompartmentModel::NwOnly,
                BackendChoice::MpkShared,
                SchedKind::Coop,
            ),
            "lwip",
        );
        let mut os3 = Os::boot(plan(cfg3).unwrap(), 0x0a00_0001, 1).unwrap();
        let c_app3 = os3.roles.app;
        let b3 = os3.img.machine.clock().cycles();
        let p3 = os3.malloc_in(c_app3, 64).unwrap();
        let isolated_clean = os3.img.machine.clock().cycles() - b3;
        os3.free_in(c_app3, p3).unwrap();
        assert!(with_inst > isolated_clean);
        let _ = without_inst;
        assert_eq!(os3.stats().instrumented_allocs, 0);
    }

    #[test]
    fn verified_sched_is_detected_from_the_plan() {
        let cfg = evaluation_image(
            "iperf",
            CompartmentModel::Baseline,
            BackendChoice::None,
            SchedKind::Verified,
        );
        let os = Os::boot(plan(cfg).unwrap(), 0x0a00_0001, 1).unwrap();
        assert_eq!(os.sched_kind, SchedKind::Verified);
    }

    #[test]
    fn xen_images_pay_the_hypervisor_tax() {
        let cfg = evaluation_image(
            "iperf",
            CompartmentModel::Baseline,
            BackendChoice::None,
            SchedKind::Coop,
        )
        .on(flexos::build::Hypervisor::Xen);
        let os = Os::boot(plan(cfg).unwrap(), 0x0a00_0001, 1).unwrap();
        assert_eq!(
            os.net.extra_per_packet,
            os.img.machine.costs().xen_packet_tax
        );
    }
}
