//! The million-connection serving tier: a sharded Redis cluster behind
//! an async proxy, driven by an open-loop Poisson load generator.
//!
//! This is the capstone of the O(ready) serving contract:
//!
//! * The **proxy** is a FlexOS application compartment that accepts up
//!   to 10⁵ TCP connections, parses pipelined RESP off each one, hashes
//!   every key to one of N **shard compartments** (extra `lib_app`
//!   micro-libraries placed in their own protection domains), fans the
//!   commands out over the PR-8 async gate rings, reassembles the
//!   replies *in request order* and streams them back. Each hop carries
//!   the request's span id, so `--trace-out` shows proxy → shard →
//!   proxy flows per request.
//! * Per-connection work is a [`CoTask`] on a [`CoExecutor`]: readiness
//!   events from the net stack's `EventQueue` wake exactly the tasks
//!   whose sockets changed state, and a scheduling round steps exactly
//!   the woken tasks. Nothing ever scans the open-connection set, so
//!   the per-request cost at 10⁵ mostly-idle connections stays within
//!   a small factor of the 10³ figure (asserted by the bench-smoke CI
//!   job on `BENCH_10.json`).
//! * The **load generator** is open-loop: burst arrivals are paced by a
//!   seeded Poisson process over *simulated* cycles (fixed-point
//!   exponential sampling — no libm, no wall clock), and a burst whose
//!   connection is still busy queues rather than back-pressuring the
//!   arrival process. Reported latency therefore includes client-side
//!   queueing, the honest open-loop number.
//!
//! Clients are frame-level simulations (`SimClients`), not full
//! `NetStack` instances: 10⁵ stacks would dominate host memory, and the
//! protocol side the server exercises — SYN/ACK handshake, in-order
//! data, cumulative ACKs, window respect — needs only a few machine
//! words per connection. Beyond the 64 Ki source-port limit, client `i`
//! claims IP `CLIENT_IP_BASE + i / PORTS_PER_IP`.
//!
//! Everything is deterministic: one simulated machine, a canonical FIFO
//! executor, seeded arrivals. A serve run's figures are byte-identical
//! at any `--vcpus` width (the serve-smoke CI job compares the JSON of
//! `--vcpus 1/2/4` runs); `run_serve_free` shards *sub-instances*
//! across host threads via work stealing for a host-parallel mode whose
//! per-shard figures remain deterministic.

use crate::client::SERVER_IP;
use crate::os::Os;
use crate::profiles::{backend_tag, evaluation_image, lib_app, CompartmentModel, SchedKind};
use crate::redis::Mix;
use crate::resp::{encode, encode_command, RespParser, RespValue};
use flexos::build::{plan, BackendChoice, ImageConfig};
use flexos::gate::{CompartmentId, Sqe};
use flexos_backends::BootOptions;
use flexos_kernel::smp::run_on_threads;
use flexos_kernel::{CoExecutor, CoPoll, CoTask, CoTaskId, WorkStealQueue};
use flexos_machine::{Addr, Machine, PAGE_SIZE};
use flexos_net::stack::{NetError, SocketId};
use flexos_net::wire::{
    build_tcp_frame, EthHeader, Ipv4Header, Mac, TcpFlags, TcpHeader, ETHERTYPE_IPV4, ETH_LEN,
    IPV4_LEN, MSS, PROTO_TCP, TCP_LEN,
};
use flexos_net::Interest;
use flexos_trace::{SpanId, SpanKind, StatsSnapshot};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// The proxy's listening port.
pub const SERVE_PORT: u16 = 7379;

/// First client IP (10.0.1.0); client `i` uses `BASE + i / PORTS_PER_IP`.
const CLIENT_IP_BASE: u32 = 0x0a00_0100;

/// Source ports per client IP (stays far under the u16 limit).
const PORTS_PER_IP: usize = 4096;

/// First client source port.
const CLIENT_PORT_BASE: u16 = 1024;

/// Receive-ring bytes per serve connection. Tiny on purpose: the
/// advertised window is `rcv_wnd`-based (see
/// `NetStack::set_sock_ring_bytes`), so the ring only needs to stage one
/// request burst, and 10⁵ rings must fit the stack's buffer pool.
const CONN_RING_BYTES: u64 = 256;

/// Distinct keys the load generator touches.
const KEYSPACE: usize = 1024;

/// Shard micro-library names (also the span hop labels).
const SHARD_NAMES: [&str; 8] = [
    "shard0", "shard1", "shard2", "shard3", "shard4", "shard5", "shard6", "shard7",
];

/// Maximum shard compartments (bounded by the MPK key budget).
pub const MAX_SHARDS: usize = SHARD_NAMES.len();

/// Connections established per handshake wave (stays under the
/// default accept-backlog cap so no SYN is shed during setup).
const ESTABLISH_WAVE: usize = 512;

/// Parameters of one serving-tier run.
#[derive(Debug, Clone)]
pub struct ServeParams {
    /// Compartment model for the proxy-side image.
    pub model: CompartmentModel,
    /// Isolation backend.
    pub backend: BackendChoice,
    /// Scheduler implementation.
    pub sched: SchedKind,
    /// Shard compartments (1..=[`MAX_SHARDS`]).
    pub shards: usize,
    /// Concurrent client connections.
    pub conns: usize,
    /// Requests to complete during measurement.
    pub ops: u64,
    /// Value payload bytes.
    pub payload: usize,
    /// Commands per burst (RESP pipeline depth).
    pub pipeline: usize,
    /// Request mix.
    pub mix: Mix,
    /// Mean inter-arrival gap between bursts, in simulated cycles.
    pub arrival_gap_cycles: u64,
    /// Seed for the Poisson arrival process.
    pub seed: u64,
    /// Mid-serve live migration: after this many completed bursts,
    /// swap every compartment pair's gate backend to the target
    /// (`None` = never migrate). The swap uses the quiescence
    /// protocol, so in-flight crossings finish on the old gate and
    /// the pair drains before the new mechanism takes over.
    pub migrate_to: Option<(u64, BackendChoice)>,
}

impl Default for ServeParams {
    fn default() -> Self {
        Self {
            model: CompartmentModel::NwSchedRest,
            backend: BackendChoice::MpkShared,
            sched: SchedKind::Coop,
            shards: 4,
            conns: 1_000,
            ops: 2_000,
            payload: 64,
            pipeline: 4,
            mix: Mix::Get,
            arrival_gap_cycles: 50_000,
            seed: 42,
            migrate_to: None,
        }
    }
}

/// The outcome of one serving-tier run.
#[derive(Debug, Clone)]
pub struct ServeResult {
    /// Concurrent connections held open.
    pub conns: usize,
    /// Requests completed (measured phase).
    pub ops: u64,
    /// Server cycles spent (measured phase).
    pub cycles: u64,
    /// Cycles per completed request — the scaling figure the bench
    /// asserts stays flat from 10³ to 10⁵ connections.
    pub cycles_per_op: u64,
    /// Throughput in mega-requests per second.
    pub mreq_per_s: f64,
    /// Gate crossings during measurement.
    pub crossings: u64,
    /// Burst latency percentiles in cycles (arrival → last reply byte
    /// consumed; includes open-loop client-side queueing).
    pub p50_cycles: u64,
    /// 99th percentile burst latency in cycles.
    pub p99_cycles: u64,
    /// 99.9th percentile burst latency in cycles.
    pub p999_cycles: u64,
    /// Commands executed per shard compartment.
    pub shard_ops: Vec<u64>,
    /// SYNs shed by the bounded accept backlog.
    pub backlog_overflows: u64,
    /// Work-steal count (free-running mode only; 0 in deterministic).
    pub steals: u64,
}

/// A failure during a serve run, propagated rather than panicked so a
/// bench sweep records a degraded point instead of aborting.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeRunError {
    /// A shard or the proxy answered with a RESP error.
    Reply(String),
    /// The server image failed outside a reply.
    Server(String),
}

impl ServeRunError {
    fn server(e: impl fmt::Display) -> Self {
        ServeRunError::Server(e.to_string())
    }
}

impl fmt::Display for ServeRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeRunError::Reply(e) => write!(f, "serve reply error: {e}"),
            ServeRunError::Server(e) => write!(f, "serve server failed: {e}"),
        }
    }
}

impl std::error::Error for ServeRunError {}

/// FNV-1a over a key — the proxy's shard hash.
fn fnv1a(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds the image config: the evaluation image for the proxy, plus
/// one `shardK` application micro-library per shard. Under the
/// multi-compartment models each shard gets its own protection domain
/// (compartments after the model's own); the baseline co-locates them.
pub fn serve_image(params: &ServeParams) -> ImageConfig {
    let mut cfg = evaluation_image("proxy", params.model, params.backend, params.sched);
    let base = match params.model {
        CompartmentModel::Baseline => 0,
        CompartmentModel::NwOnly => 2,
        CompartmentModel::NwSchedRest => 3,
        CompartmentModel::NwAndSchedRest => 2,
    };
    let names = SHARD_NAMES.iter().take(params.shards.min(MAX_SHARDS));
    for (k, &name) in names.enumerate() {
        let c = if params.model == CompartmentModel::Baseline {
            0
        } else {
            base + k
        };
        cfg = cfg.with_library(lib_app(name).in_compartment(c));
    }
    cfg
}

// --- the proxy world -------------------------------------------------------------

/// One routed command awaiting its shard's reply.
struct ShardOp {
    span: SpanId,
    shard: usize,
    args: Vec<Vec<u8>>,
}

/// The context every [`ConnTask`] steps with: the OS image plus the
/// shard stores and the scratch the fan-out path reuses.
struct ServeWorld {
    os: Os,
    /// Per-shard key-value stores (host-side; the simulated cost of an
    /// access is charged inside the shard's compartment).
    shards: Vec<HashMap<Vec<u8>, Vec<u8>>>,
    /// Commands executed per shard.
    shard_ops: Vec<u64>,
    shard_comps: Vec<CompartmentId>,
    shard_vcpus: Vec<u16>,
    rx_buf: Addr,
    tx_buf: Addr,
    io_buf_len: u64,
    backend: &'static str,
    app_vcpu: u16,
    /// Fan-out scratch: parsed ops of the burst being served.
    ops_scratch: Vec<ShardOp>,
    /// Fan-out scratch: replies indexed by op, reassembled in order.
    replies: Vec<Option<RespValue>>,
    /// Host copy scratch for recv.
    host_buf: Vec<u8>,
    /// Fatal task errors (drained by the driver after each round).
    errors: Vec<String>,
}

/// Executes one command inside shard compartment code: the simulated
/// cost (dispatch + value copy) is charged on `m` while the host-side
/// store does the bookkeeping.
fn exec_shard_cmd(
    m: &mut Machine,
    store: &mut HashMap<Vec<u8>, Vec<u8>>,
    args: &[Vec<u8>],
) -> RespValue {
    let dispatch = m.costs().app_request;
    m.charge(dispatch);
    let cmd = args
        .first()
        .map(|c| c.to_ascii_uppercase())
        .unwrap_or_default();
    match (cmd.as_slice(), args.len()) {
        (b"PING", 1) => RespValue::Simple("PONG".into()),
        (b"SET", 3) => {
            let cost = m.costs().copy_cost(args[2].len() as u64);
            m.charge(cost);
            store.insert(args[1].clone(), args[2].clone());
            RespValue::Simple("OK".into())
        }
        (b"GET", 2) => match store.get(&args[1]) {
            Some(v) => {
                let cost = m.costs().copy_cost(v.len() as u64);
                m.charge(cost);
                RespValue::Bulk(Some(v.clone()))
            }
            None => RespValue::Bulk(None),
        },
        (b"DEL", 2) => RespValue::Integer(i64::from(store.remove(&args[1]).is_some())),
        _ => RespValue::Error(format!(
            "ERR unknown command '{}'",
            String::from_utf8_lossy(&cmd)
        )),
    }
}

/// What a flush attempt left behind.
enum FlushState {
    /// Everything staged went out.
    Clean,
    /// The transmit buffer filled; park until WRITE readiness.
    Parked,
    /// The peer is gone.
    Closed,
}

/// The per-connection cooperative task: drain requests, fan out to
/// shards, stream replies — parking on readiness whenever the socket
/// has nothing for it.
struct ConnTask {
    sid: SocketId,
    parser: RespParser,
    out_host: Vec<u8>,
    /// Open request spans with the staged-output offset at which each
    /// reply will have fully left the server.
    pending_spans: VecDeque<(SpanId, u64)>,
    staged_total: u64,
    sent_total: u64,
    /// WRITE interest is armed (restored to READ-only once drained, so
    /// an idle writable socket does not wake the task forever).
    write_armed: bool,
}

impl ConnTask {
    fn new(sid: SocketId) -> Self {
        Self {
            sid,
            parser: RespParser::new(),
            out_host: Vec::new(),
            pending_spans: VecDeque::new(),
            staged_total: 0,
            sent_total: 0,
            write_armed: false,
        }
    }

    /// Flushes `out_host` as batched spanned sends (the redis service
    /// idiom: each request span ends when the cumulative sent count
    /// covers its staged offset).
    fn flush(&mut self, w: &mut ServeWorld) -> Result<FlushState, String> {
        while !self.out_host.is_empty() {
            let n = (self.out_host.len() as u64).min(w.io_buf_len);
            w.os.img
                .write(w.tx_buf, &self.out_host[..n as usize])
                .map_err(|f| f.to_string())?;
            let max = (self.out_host.len() as u64).div_ceil(w.io_buf_len).max(1) as usize;
            let (tx_buf, io_buf_len) = (w.tx_buf, w.io_buf_len);
            let app_vcpu = w.app_vcpu;
            let sqe_spans: Vec<SpanId> = self
                .pending_spans
                .iter()
                .take(max)
                .map(|&(span, _)| span)
                .collect();
            let out_host = &mut self.out_host;
            let pending_spans = &mut self.pending_spans;
            let sent_total = &mut self.sent_total;
            let results =
                w.os.send_batch_spanned(self.sid, tx_buf, n, max, &sqe_spans, |m, rt, r| {
                    let Ok(sent) = r else { return Ok(None) };
                    out_host.drain(..*sent as usize);
                    *sent_total += sent;
                    let now = m.clock().cycles();
                    while pending_spans
                        .front()
                        .is_some_and(|&(_, end)| end <= *sent_total)
                    {
                        let (span, _) = pending_spans.pop_front().expect("front checked");
                        m.span_trace_mut().end_request(span, app_vcpu, now);
                    }
                    if out_host.is_empty() {
                        return Ok(None);
                    }
                    let next = (out_host.len() as u64).min(io_buf_len);
                    m.write(rt.current_ctx().vcpu, tx_buf, &out_host[..next as usize])?;
                    Ok(Some(next))
                })
                .map_err(|f| f.to_string())?;
            match results.last() {
                Some(Err(NetError::WouldBlock)) => return Ok(FlushState::Parked),
                Some(Err(NetError::Closed)) => return Ok(FlushState::Closed),
                Some(Err(e)) => return Err(format!("send failed: {e}")),
                _ => {}
            }
        }
        Ok(FlushState::Clean)
    }

    /// Parses everything buffered, routes each command to its shard over
    /// the async gate rings, and reassembles replies in request order.
    fn fan_out(&mut self, w: &mut ServeWorld) -> Result<(), String> {
        let nshards = w.shards.len();
        w.ops_scratch.clear();
        while let Some(args) = self.parser.parse_command() {
            // Proxy-side routing work (dispatch + key hash).
            let work = w.os.img.machine.costs().app_request;
            let t0 = w.os.img.machine.clock().cycles();
            let span =
                w.os.img
                    .machine
                    .span_trace_mut()
                    .begin_request("serve", w.backend, w.app_vcpu, t0);
            w.os.app_compute(work);
            let shard = args
                .get(1)
                .map(|k| (fnv1a(k) % nshards as u64) as usize)
                .unwrap_or(0);
            w.ops_scratch.push(ShardOp { span, shard, args });
        }
        if w.ops_scratch.is_empty() {
            return Ok(());
        }
        let nops = w.ops_scratch.len();
        w.replies.clear();
        w.replies.resize(nops, None);
        for k in 0..nshards {
            let count = w.ops_scratch.iter().filter(|o| o.shard == k).count();
            if count == 0 {
                continue;
            }
            w.os.img.gates.ensure_ring_depth(w.shard_comps[k], count);
            for (idx, op) in w.ops_scratch.iter().enumerate() {
                if op.shard != k {
                    continue;
                }
                w.os.img
                    .submit_lib(
                        SHARD_NAMES[k],
                        Sqe::new(32, 8, idx as u64).with_span(op.span),
                    )
                    .map_err(|f| f.to_string())?;
            }
            let ServeWorld {
                os,
                shards,
                shard_ops,
                shard_vcpus,
                ops_scratch,
                replies,
                app_vcpu,
                ..
            } = w;
            let store = &mut shards[k];
            let sops = &mut shard_ops[k];
            let (shard_vcpu, proxy_vcpu) = (shard_vcpus[k], *app_vcpu);
            os.img
                .call_lib_async(SHARD_NAMES[k], |m, _rt, sqe| {
                    let idx = sqe.user_data as usize;
                    let t0 = m.clock().cycles();
                    let reply = exec_shard_cmd(m, store, &ops_scratch[idx].args);
                    *sops += 1;
                    let t1 = m.clock().cycles();
                    // The hop probe: attributed to the request span the
                    // SQE carries, labeled with the shard it crossed to.
                    m.span_trace_mut().record(
                        shard_vcpu,
                        SpanKind::MqHop,
                        SHARD_NAMES[k],
                        proxy_vcpu,
                        shard_vcpu,
                        t0,
                        t1,
                    );
                    let code = i64::from(!matches!(reply, RespValue::Error(_)));
                    replies[idx] = Some(reply);
                    Ok(code)
                })
                .map_err(|f| f.to_string())?;
            // Drain the completions; the replies already live host-side.
            while os.img.reap_lib(SHARD_NAMES[k]).is_ok() {}
        }
        // Reassemble in request order, ending each span only when its
        // reply's last byte leaves the server (in `flush`).
        for idx in 0..nops {
            let reply = w.replies[idx]
                .take()
                .unwrap_or_else(|| RespValue::Error("ERR shard reply lost".into()));
            self.out_host.extend_from_slice(&encode(&reply));
            self.staged_total = self.sent_total + self.out_host.len() as u64;
            self.pending_spans
                .push_back((w.ops_scratch[idx].span, self.staged_total));
        }
        Ok(())
    }

    fn drive(&mut self, w: &mut ServeWorld) -> Result<CoPoll, String> {
        loop {
            match self.flush(w)? {
                FlushState::Parked => {
                    w.os.net
                        .events_mut()
                        .set_interest(self.sid, Interest::READ | Interest::WRITE);
                    self.write_armed = true;
                    return Ok(CoPoll::Pending);
                }
                FlushState::Closed => {
                    let _ = w.os.sock_close(self.sid);
                    return Ok(CoPoll::Ready);
                }
                FlushState::Clean => {}
            }
            if self.write_armed {
                w.os.net.events_mut().set_interest(self.sid, Interest::READ);
                self.write_armed = false;
            }
            match w.os.recv(self.sid, w.rx_buf, w.io_buf_len) {
                Ok(0) => {
                    let _ = w.os.sock_close(self.sid);
                    return Ok(CoPoll::Ready);
                }
                Ok(n) => {
                    let rx_buf = w.rx_buf;
                    w.host_buf.resize(n as usize, 0);
                    let ServeWorld { os, host_buf, .. } = w;
                    os.img.read(rx_buf, host_buf).map_err(|f| f.to_string())?;
                    self.parser.feed(host_buf);
                }
                Err(NetError::WouldBlock) => {
                    if self.parser.pending() == 0 {
                        return Ok(CoPoll::Pending);
                    }
                }
                Err(NetError::Closed) => {
                    let _ = w.os.sock_close(self.sid);
                    return Ok(CoPoll::Ready);
                }
                Err(e) => return Err(format!("recv failed: {e}")),
            }
            self.fan_out(w)?;
            if self.out_host.is_empty() {
                return Ok(CoPoll::Pending);
            }
        }
    }
}

impl CoTask<ServeWorld> for ConnTask {
    fn step(&mut self, w: &mut ServeWorld, _id: CoTaskId) -> CoPoll {
        match self.drive(w) {
            Ok(p) => p,
            Err(e) => {
                w.errors.push(e);
                let _ = w.os.sock_close(self.sid);
                CoPoll::Ready
            }
        }
    }
}

// --- the frame-level client fleet ------------------------------------------------

struct SimConn {
    ip: u32,
    port: u16,
    snd_nxt: u32,
    rcv_nxt: u32,
    established: bool,
    parser: RespParser,
    /// Replies awaited for the in-flight burst (0 = idle).
    expected: u32,
    /// Scheduled arrival cycle of the in-flight burst.
    t_arrival: u64,
    /// Arrivals that landed while a burst was in flight (open-loop
    /// queueing; their latency clocks started at their scheduled time).
    queued: VecDeque<u64>,
    need_ack: bool,
}

/// The frame-level simulation of up to 10⁵ clients.
struct SimClients {
    conns: Vec<SimConn>,
    by_addr: HashMap<(u32, u16), usize>,
    server_mac: Mac,
    client_mac: Mac,
    ident: u16,
    payload: Vec<u8>,
    pipeline: usize,
    mix: Mix,
    /// Completed burst latencies in cycles.
    latencies: Vec<u64>,
    completed_bursts: u64,
    completed_reqs: u64,
    bursts_started: u64,
    established_count: usize,
    /// Connections whose `need_ack` went high since the last emit.
    ack_pending: Vec<usize>,
    /// Connections whose burst completed with arrivals still queued.
    pending_starts: Vec<usize>,
    reply_errors: Vec<String>,
}

#[allow(clippy::too_many_arguments)]
fn client_frame(
    server_mac: Mac,
    client_mac: Mac,
    ident: &mut u16,
    ip: u32,
    port: u16,
    rcv_nxt: u32,
    flags: TcpFlags,
    seq: u32,
    payload: &[u8],
) -> Vec<u8> {
    *ident = ident.wrapping_add(1);
    let eth = EthHeader {
        dst: server_mac,
        src: client_mac,
        ethertype: ETHERTYPE_IPV4,
    };
    let iph = Ipv4Header {
        src: ip,
        dst: SERVER_IP,
        proto: PROTO_TCP,
        total_len: (IPV4_LEN + TCP_LEN + payload.len()) as u16,
        ttl: 64,
        ident: *ident,
    };
    let tcp = TcpHeader {
        src_port: port,
        dst_port: SERVE_PORT,
        seq,
        ack: rcv_nxt,
        flags,
        window: 65_535,
    };
    build_tcp_frame(&eth, &iph, &tcp, payload).expect("client frame within wire limits")
}

impl SimClients {
    fn new(conns: usize, payload: usize, mix: Mix, pipeline: usize, nic_id: u8) -> Self {
        let mut list = Vec::with_capacity(conns);
        let mut by_addr = HashMap::with_capacity(conns);
        for i in 0..conns {
            let ip = CLIENT_IP_BASE + (i / PORTS_PER_IP) as u32;
            let port = CLIENT_PORT_BASE + (i % PORTS_PER_IP) as u16;
            by_addr.insert((ip, port), i);
            list.push(SimConn {
                ip,
                port,
                snd_nxt: 0,
                rcv_nxt: 0,
                established: false,
                parser: RespParser::new(),
                expected: 0,
                t_arrival: 0,
                queued: VecDeque::new(),
                need_ack: false,
            });
        }
        Self {
            conns: list,
            by_addr,
            server_mac: Mac::of_nic(nic_id),
            client_mac: Mac::of_nic(200),
            ident: 0,
            payload: vec![b'v'; payload.max(1)],
            pipeline: pipeline.max(1),
            mix,
            latencies: Vec::new(),
            completed_bursts: 0,
            completed_reqs: 0,
            bursts_started: 0,
            established_count: 0,
            ack_pending: Vec::new(),
            pending_starts: Vec::new(),
            reply_errors: Vec::new(),
        }
    }

    /// Deterministic per-connection initial sequence number.
    fn iss(i: usize) -> u32 {
        0x1000_0000u32.wrapping_add((i as u32).wrapping_mul(0x1001))
    }

    fn syn_frame(&mut self, i: usize) -> Vec<u8> {
        let iss = Self::iss(i);
        let c = &mut self.conns[i];
        c.snd_nxt = iss.wrapping_add(1);
        client_frame(
            self.server_mac,
            self.client_mac,
            &mut self.ident,
            c.ip,
            c.port,
            0,
            TcpFlags::SYN,
            iss,
            &[],
        )
    }

    fn mark_ack(&mut self, i: usize) {
        let c = &mut self.conns[i];
        if !c.need_ack {
            c.need_ack = true;
            self.ack_pending.push(i);
        }
    }

    /// Consumes one server frame at simulated time `now`.
    fn on_frame(&mut self, now: u64, frame: &[u8]) {
        let Some(eth) = EthHeader::parse(frame) else {
            return;
        };
        if eth.ethertype != ETHERTYPE_IPV4 {
            return;
        }
        let Some(ip) = Ipv4Header::parse(&frame[ETH_LEN..]) else {
            return;
        };
        if ip.proto != PROTO_TCP || frame.len() < ETH_LEN + ip.total_len as usize {
            return;
        }
        let l4 = &frame[ETH_LEN + IPV4_LEN..ETH_LEN + ip.total_len as usize];
        let Some((hdr, off)) = TcpHeader::parse(&ip, l4) else {
            return;
        };
        let payload = &l4[off..];
        let Some(&i) = self.by_addr.get(&(ip.dst, hdr.dst_port)) else {
            return;
        };
        if hdr.flags.rst {
            self.reply_errors
                .push(format!("connection {i} reset by server"));
            return;
        }
        if hdr.flags.syn && hdr.flags.ack {
            let c = &mut self.conns[i];
            if !c.established {
                c.established = true;
                c.rcv_nxt = hdr.seq.wrapping_add(1);
                self.established_count += 1;
                self.mark_ack(i);
            }
            return;
        }
        if payload.is_empty() {
            return; // pure ACK / window update
        }
        let c = &mut self.conns[i];
        if hdr.seq != c.rcv_nxt {
            // Duplicate (retransmit) or out-of-order: re-ack, drop.
            self.mark_ack(i);
            return;
        }
        c.rcv_nxt = c.rcv_nxt.wrapping_add(payload.len() as u32);
        c.parser.feed(payload);
        let mut finished_burst = false;
        while let Some(v) = c.parser.parse_value() {
            if let RespValue::Error(e) = &v {
                self.reply_errors.push(e.clone());
            }
            self.completed_reqs += 1;
            if c.expected > 0 {
                c.expected -= 1;
                if c.expected == 0 {
                    finished_burst = true;
                }
            }
        }
        if finished_burst {
            self.latencies.push(now.saturating_sub(c.t_arrival));
            self.completed_bursts += 1;
            if !c.queued.is_empty() {
                self.pending_starts.push(i);
            }
        }
        self.mark_ack(i);
    }

    /// Starts a burst on idle connection `i`; its latency clock starts
    /// at the burst's *scheduled* arrival.
    fn start_burst(&mut self, i: usize, t_arrival: u64, out: &mut Vec<Vec<u8>>) {
        let b = self.bursts_started;
        self.bursts_started += 1;
        let mut req = Vec::new();
        for j in 0..self.pipeline {
            let k = (b as usize)
                .wrapping_mul(7)
                .wrapping_add(j.wrapping_mul(3))
                .wrapping_add(i)
                % KEYSPACE;
            let key = format!("key:{k:04}").into_bytes();
            match self.mix {
                Mix::Set => {
                    req.extend_from_slice(&encode_command(&[b"SET", &key, &self.payload]));
                }
                Mix::Get => req.extend_from_slice(&encode_command(&[b"GET", &key])),
            }
        }
        let c = &mut self.conns[i];
        c.expected = self.pipeline as u32;
        c.t_arrival = t_arrival;
        c.need_ack = false; // data frames carry the cumulative ack
        for chunk in req.chunks(MSS) {
            let f = client_frame(
                self.server_mac,
                self.client_mac,
                &mut self.ident,
                c.ip,
                c.port,
                c.rcv_nxt,
                TcpFlags::ACK,
                c.snd_nxt,
                chunk,
            );
            c.snd_nxt = c.snd_nxt.wrapping_add(chunk.len() as u32);
            out.push(f);
        }
    }

    /// Records an arrival: starts the burst if the connection is idle,
    /// queues it (open-loop) otherwise.
    fn arrival(&mut self, i: usize, t: u64, out: &mut Vec<Vec<u8>>) {
        let c = &mut self.conns[i];
        if c.expected == 0 && c.queued.is_empty() {
            self.start_burst(i, t, out);
        } else {
            c.queued.push_back(t);
        }
    }

    /// Emits queued burst starts and batched ACKs.
    fn emit(&mut self, out: &mut Vec<Vec<u8>>) {
        let starts = std::mem::take(&mut self.pending_starts);
        for i in starts {
            if self.conns[i].expected == 0 {
                if let Some(t) = self.conns[i].queued.pop_front() {
                    self.start_burst(i, t, out);
                }
                if !self.conns[i].queued.is_empty() {
                    self.pending_starts.push(i);
                }
            }
        }
        let acks = std::mem::take(&mut self.ack_pending);
        for i in acks {
            let c = &mut self.conns[i];
            if !c.need_ack {
                continue;
            }
            c.need_ack = false;
            out.push(client_frame(
                self.server_mac,
                self.client_mac,
                &mut self.ident,
                c.ip,
                c.port,
                c.rcv_nxt,
                TcpFlags::ACK,
                c.snd_nxt,
                &[],
            ));
        }
    }
}

// --- the seeded Poisson arrival process ------------------------------------------

fn xorshift64(s: &mut u64) -> u64 {
    let mut x = *s;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *s = x;
    x
}

/// ln 2 in Q32 fixed point.
const LN2_Q32: u64 = 2_977_044_472;

/// `-ln(U) * mean` with `U` uniform in (0, 1], computed entirely in
/// integer fixed point (atanh series) so the arrival schedule is
/// bit-identical on every platform — no libm, no floats.
fn exp_gap(s: &mut u64, mean: u64) -> u64 {
    // U = r / 2^53 with r in [1, 2^53).
    let r = (xorshift64(s) >> 11) | 1;
    let bits = 64 - r.leading_zeros() as u64; // b: r in [2^(b-1), 2^b)
                                              // -ln(U) = 53·ln2 - ln(r) = (54 - b)·ln2 - ln(m), m = r / 2^(b-1).
    let m_q32 = ((r as u128) << 32) >> (bits - 1); // m in [1, 2) as Q32
    let one = 1u128 << 32;
    // ln(m) = 2·atanh(z), z = (m-1)/(m+1) in [0, 1/3): three series
    // terms give ~1e-6 relative error, far below load-gen needs.
    let z = ((m_q32 - one) << 32) / (m_q32 + one);
    let z2 = (z * z) >> 32;
    let z3 = (z * z2) >> 32;
    let z5 = (z3 * z2) >> 32;
    let ln_m = 2 * (z + z3 / 3 + z5 / 5);
    let neg_ln_u = ((54 - bits) as u128 * LN2_Q32 as u128).saturating_sub(ln_m);
    ((neg_ln_u * mean as u128) >> 32) as u64
}

/// Pre-generates the whole arrival schedule: `(cycle, connection)`
/// pairs, non-decreasing in time.
fn gen_arrivals(bursts: u64, conns: usize, mean_gap: u64, seed: u64) -> Vec<(u64, usize)> {
    let mut s = seed | 1;
    let mut t = 0u64;
    let mut out = Vec::with_capacity(bursts as usize);
    for _ in 0..bursts {
        t = t.saturating_add(exp_gap(&mut s, mean_gap.max(1)));
        let conn = (xorshift64(&mut s) % conns as u64) as usize;
        out.push((t, conn));
    }
    out
}

// --- the driver ------------------------------------------------------------------

/// Runs the serving tier and reports scaling figures.
///
/// # Errors
///
/// Returns [`ServeRunError`] when a shard answers with a RESP error or
/// the server image fails, so sweeps degrade instead of aborting.
pub fn run_serve(params: &ServeParams) -> Result<ServeResult, ServeRunError> {
    run_serve_inner(params, false).map(|(r, _, _)| r)
}

/// [`run_serve`] plus the full telemetry snapshot (including the
/// serving block: event-queue and executor counters).
pub fn run_serve_with_stats(
    params: &ServeParams,
) -> Result<(ServeResult, StatsSnapshot), ServeRunError> {
    run_serve_inner(params, false).map(|(r, s, _)| (r, s))
}

/// [`run_serve_with_stats`] plus the Chrome trace-event JSON of the
/// span stream (proxy → shard → proxy hops per request).
pub fn run_serve_traced(
    params: &ServeParams,
) -> Result<(ServeResult, StatsSnapshot, String), ServeRunError> {
    run_serve_inner(params, true).map(|(r, s, t)| (r, s, t.expect("trace requested")))
}

/// Nearest-rank percentile of a sorted sample.
fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[allow(clippy::type_complexity)]
fn run_serve_inner(
    params: &ServeParams,
    want_trace: bool,
) -> Result<(ServeResult, StatsSnapshot, Option<String>), ServeRunError> {
    let shards = params.shards.clamp(1, MAX_SHARDS);
    let conns = params.conns.max(1);
    let nic_id = 1u8;
    let image = plan(serve_image(params)).expect("serve image plans");
    let ncomp = image.num_compartments as u64;

    // Boot sizing: the socket-ring pool must hold every connection's
    // ring; heaps and physical frames scale with it.
    let net_pool_bytes = (conns as u64 + 64) * CONN_RING_BYTES + (1 << 20);
    let heap_per_compartment = net_pool_bytes + (2 << 20);
    let phys_frames = ((ncomp + 1) * heap_per_compartment + (16 << 20)).div_ceil(PAGE_SIZE);
    let opts = BootOptions {
        phys_frames,
        heap_per_compartment,
        shared_heap: 1 << 20,
        stack_size: 64 * 1024,
        net_pool_bytes,
    };
    let mut os = Os::boot_with(image, SERVER_IP, nic_id, opts).map_err(ServeRunError::server)?;
    os.net.set_sock_ring_bytes(CONN_RING_BYTES);

    let io_buf_len = 16 * 1024u64;
    let rx_buf = os
        .alloc_shared_buf(io_buf_len)
        .map_err(ServeRunError::server)?;
    let tx_buf = os
        .alloc_shared_buf(io_buf_len)
        .map_err(ServeRunError::server)?;
    let listener = os
        .listen(SERVE_PORT)
        .map_err(|e| ServeRunError::server(format!("listen failed: {e}")))?;
    let backend = backend_tag(params.model, params.backend);
    let app_vcpu = os.img.gates.ctx(os.roles.app).vcpu.0 as u16;
    let shard_comps: Vec<CompartmentId> = (0..shards)
        .map(|k| {
            os.img
                .compartment_of_lib(SHARD_NAMES[k])
                .expect("shard library placed")
        })
        .collect();
    let shard_vcpus: Vec<u16> = shard_comps
        .iter()
        .map(|&c| os.img.gates.ctx(c).vcpu.0 as u16)
        .collect();

    let mut world = ServeWorld {
        os,
        shards: vec![HashMap::new(); shards],
        shard_ops: vec![0; shards],
        shard_comps,
        shard_vcpus,
        rx_buf,
        tx_buf,
        io_buf_len,
        backend,
        app_vcpu,
        ops_scratch: Vec::new(),
        replies: Vec::new(),
        host_buf: Vec::new(),
        errors: Vec::new(),
    };

    // Preload the keyspace host-side so GET mixes hit (the measured
    // phase then exercises only the serving path).
    if params.mix == Mix::Get {
        let value = vec![b'v'; params.payload.max(1)];
        for k in 0..KEYSPACE {
            let key = format!("key:{k:04}").into_bytes();
            let shard = (fnv1a(&key) % shards as u64) as usize;
            world.shards[shard].insert(key, value.clone());
        }
    }

    let mut exec: CoExecutor<ServeWorld> = CoExecutor::new();
    let mut clients = SimClients::new(conns, params.payload, params.mix, params.pipeline, nic_id);
    let mut task_of: Vec<Option<CoTaskId>> = Vec::new();
    let mut accepted = 0usize;

    // Establishment, in waves that stay under the accept-backlog cap.
    let mut frames: Vec<Vec<u8>> = Vec::new();
    for start in (0..conns).step_by(ESTABLISH_WAVE) {
        let end = (start + ESTABLISH_WAVE).min(conns);
        for i in start..end {
            let syn = clients.syn_frame(i);
            world.os.net.nic.push_rx(syn);
        }
        let mut spins = 0u32;
        while clients.established_count < end || accepted < end {
            world.os.poll_net().map_err(ServeRunError::server)?;
            let now = world.os.img.machine.clock().cycles();
            while let Some(f) = world.os.net.nic.pop_tx() {
                clients.on_frame(now, &f);
            }
            frames.clear();
            clients.emit(&mut frames);
            for f in frames.drain(..) {
                world.os.net.nic.push_rx(f);
            }
            world.os.poll_net().map_err(ServeRunError::server)?;
            loop {
                match world.os.accept(listener) {
                    Ok(Some(sid)) => {
                        let tid = exec.spawn(Box::new(ConnTask::new(sid)));
                        if task_of.len() <= sid.0 {
                            task_of.resize(sid.0 + 1, None);
                        }
                        task_of[sid.0] = Some(tid);
                        accepted += 1;
                    }
                    Ok(None) => break,
                    Err(e) => return Err(ServeRunError::server(format!("accept failed: {e}"))),
                }
            }
            exec.run_until_idle(&mut world, 1_000_000);
            spins += 1;
            assert!(spins < 10_000, "serve handshake wave stalled");
        }
    }
    if !clients.reply_errors.is_empty() {
        return Err(ServeRunError::Server(clients.reply_errors.remove(0)));
    }

    // Measured phase: open-loop Poisson arrivals over simulated cycles.
    let bursts = (params.ops / params.pipeline.max(1) as u64).max(1);
    let t_base = world.os.img.machine.clock().cycles();
    let arrivals: Vec<(u64, usize)> =
        gen_arrivals(bursts, conns, params.arrival_gap_cycles, params.seed)
            .into_iter()
            .map(|(t, c)| (t_base + t, c))
            .collect();
    let start_cycles = t_base;
    let start_crossings = world.os.img.gates.stats().crossings;
    let mut arr_idx = 0usize;
    let mut idle = 0u32;
    let mut pending_migration = params.migrate_to;
    while clients.completed_bursts < bursts {
        // Live migration: once enough bursts completed, swap every
        // compartment pair to the target backend while traffic is
        // still in flight. `migrate_all` requests the swaps; pairs
        // that are quiescent right now swap immediately, busy ones
        // defer to their next safe point, which `poll_migrations`
        // below keeps pumping between executor slices.
        if let Some((after, to)) = pending_migration {
            if clients.completed_bursts >= after {
                let img = &mut world.os.img;
                flexos_backends::migrate_all(img, to, flexos::gate::MigrationReason::Manual)
                    .map_err(|e| ServeRunError::server(format!("live migration failed: {e}")))?;
                pending_migration = None;
            }
        }
        if params.migrate_to.is_some() {
            let img = &mut world.os.img;
            img.gates
                .poll_migrations(&mut img.machine)
                .map_err(|e| ServeRunError::server(format!("migration drain failed: {e}")))?;
        }
        let now = world.os.img.machine.clock().cycles();
        frames.clear();
        while arr_idx < arrivals.len() && arrivals[arr_idx].0 <= now {
            let (t, ci) = arrivals[arr_idx];
            clients.arrival(ci, t, &mut frames);
            arr_idx += 1;
        }
        let mut moved = !frames.is_empty();
        for f in frames.drain(..) {
            world.os.net.nic.push_rx(f);
        }
        world.os.poll_net().map_err(ServeRunError::server)?;
        for ev in world.os.ready_events() {
            if ev.ready.contains(Interest::READ) || ev.ready.contains(Interest::WRITE) {
                if let Some(Some(tid)) = task_of.get(ev.sid.0) {
                    exec.wake(*tid);
                }
            }
        }
        exec.run_until_idle(&mut world, 10_000_000);
        world.os.poll_net().map_err(ServeRunError::server)?;
        let now = world.os.img.machine.clock().cycles();
        let before = clients.completed_bursts;
        while let Some(f) = world.os.net.nic.pop_tx() {
            moved = true;
            clients.on_frame(now, &f);
        }
        frames.clear();
        clients.emit(&mut frames);
        for f in frames.drain(..) {
            moved = true;
            world.os.net.nic.push_rx(f);
        }
        if let Some(e) = world.errors.first() {
            return Err(ServeRunError::Server(e.clone()));
        }
        if let Some(e) = clients.reply_errors.first() {
            return Err(ServeRunError::Reply(e.clone()));
        }
        if moved || clients.completed_bursts > before {
            idle = 0;
            continue;
        }
        // Quiescent: jump the clock toward the next arrival. Jumps are
        // bounded well under the RTO, and every in-flight byte has been
        // delivered and acked before a jump, so nothing retransmits.
        idle += 1;
        if arr_idx < arrivals.len() && arrivals[arr_idx].0 > now {
            let jump = (arrivals[arr_idx].0 - now).min(5_000_000);
            world.os.img.machine.charge(jump);
        } else {
            world.os.img.machine.charge(10_000);
        }
        assert!(idle < 10_000, "serve made no progress");
    }

    let cycles = world.os.img.machine.clock().cycles() - start_cycles;
    let crossings = world.os.img.gates.stats().crossings - start_crossings;
    let ops_done = clients.completed_reqs;
    let mut lat = std::mem::take(&mut clients.latencies);
    lat.sort_unstable();
    world.os.record_serve_exec(exec.trace());
    let result = ServeResult {
        conns,
        ops: ops_done,
        cycles,
        cycles_per_op: cycles / ops_done.max(1),
        mreq_per_s: ops_done as f64 / (cycles as f64 / flexos_machine::CPU_FREQ_HZ as f64) / 1e6,
        crossings,
        p50_cycles: nearest_rank(&lat, 0.50),
        p99_cycles: nearest_rank(&lat, 0.99),
        p999_cycles: nearest_rank(&lat, 0.999),
        shard_ops: world.shard_ops.clone(),
        backlog_overflows: world.os.net.stats().backlog_overflows,
        steals: 0,
    };
    let trace = want_trace.then(|| world.os.trace_json());
    Ok((result, world.os.stats_snapshot(None), trace))
}

/// Free-running mode: shards the run into `2 × threads` independent
/// sub-instances (connections and ops split evenly) distributed over
/// host threads through a work-stealing queue, the repo's established
/// SMP idiom. Each sub-instance is itself deterministic; the
/// distribution (and the steal count) is host-dependent, so figures
/// from this mode are informational, never baselines.
pub fn run_serve_free(
    params: &ServeParams,
    threads: usize,
) -> Result<Vec<ServeResult>, ServeRunError> {
    let threads = threads.max(1);
    let chunks = threads * 2;
    let q: WorkStealQueue<ServeParams> = WorkStealQueue::new(threads);
    for c in 0..chunks {
        let sub = ServeParams {
            conns: (params.conns / chunks).max(1),
            ops: (params.ops / chunks as u64).max(params.pipeline as u64),
            seed: params.seed.wrapping_add(c as u64),
            ..params.clone()
        };
        q.push(c % threads, sub);
    }
    let q = &q;
    let results: Vec<Vec<Result<ServeResult, ServeRunError>>> = run_on_threads(threads, |w| {
        let mut out = Vec::new();
        while let Some(p) = q.pop(w) {
            out.push(run_serve(&p));
        }
        out
    });
    let steals = q.steals();
    let mut flat = Vec::new();
    for r in results.into_iter().flatten() {
        let mut r = r?;
        r.steals = steals;
        flat.push(r);
    }
    Ok(flat)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(params: ServeParams) -> ServeResult {
        run_serve(&params).expect("serve run succeeds")
    }

    #[test]
    fn small_serve_run_completes_and_spreads_shards() {
        let r = quick(ServeParams {
            conns: 64,
            ops: 400,
            ..ServeParams::default()
        });
        assert_eq!(r.ops, 400);
        assert!(r.mreq_per_s > 0.0);
        assert!(r.p50_cycles > 0 && r.p99_cycles >= r.p50_cycles);
        assert!(r.p999_cycles >= r.p99_cycles);
        let active = r.shard_ops.iter().filter(|&&n| n > 0).count();
        assert!(active > 1, "keys hashed to one shard: {:?}", r.shard_ops);
        assert_eq!(r.shard_ops.iter().sum::<u64>(), 400);
    }

    #[test]
    fn set_mix_round_trips_through_shards() {
        let r = quick(ServeParams {
            conns: 32,
            ops: 200,
            mix: Mix::Set,
            ..ServeParams::default()
        });
        assert_eq!(r.ops, 200);
        assert_eq!(r.shard_ops.iter().sum::<u64>(), 200);
    }

    #[test]
    fn serve_runs_are_deterministic() {
        let params = ServeParams {
            conns: 48,
            ops: 240,
            ..ServeParams::default()
        };
        let a = quick(params.clone());
        let b = quick(params);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.crossings, b.crossings);
        assert_eq!(
            (a.p50_cycles, a.p99_cycles, a.p999_cycles),
            (b.p50_cycles, b.p99_cycles, b.p999_cycles)
        );
        assert_eq!(a.shard_ops, b.shard_ops);
    }

    #[test]
    fn baseline_model_colocates_and_still_serves() {
        let r = quick(ServeParams {
            model: CompartmentModel::Baseline,
            backend: BackendChoice::None,
            conns: 16,
            ops: 120,
            ..ServeParams::default()
        });
        assert_eq!(r.ops, 120);
    }

    #[test]
    fn isolation_costs_crossings() {
        let base = quick(ServeParams {
            model: CompartmentModel::Baseline,
            backend: BackendChoice::None,
            conns: 16,
            ops: 120,
            ..ServeParams::default()
        });
        let mpk = quick(ServeParams {
            conns: 16,
            ops: 120,
            ..ServeParams::default()
        });
        assert!(mpk.crossings > base.crossings);
        assert!(mpk.mreq_per_s < base.mreq_per_s);
    }

    #[test]
    fn free_running_mode_serves_all_chunks() {
        let rs = run_serve_free(
            &ServeParams {
                conns: 64,
                ops: 320,
                ..ServeParams::default()
            },
            2,
        )
        .expect("free-running serve succeeds");
        assert_eq!(rs.len(), 4);
        let total: u64 = rs.iter().map(|r| r.ops).sum();
        assert_eq!(total, 320);
    }

    #[test]
    fn mid_serve_migration_completes_and_is_deterministic() {
        let params = ServeParams {
            conns: 48,
            ops: 240,
            migrate_to: Some((30, BackendChoice::VmRpc)),
            ..ServeParams::default()
        };
        let (a, sa) = run_serve_with_stats(&params).expect("migrating serve run succeeds");
        let (b, sb) = run_serve_with_stats(&params).expect("migrating serve run succeeds");
        assert_eq!(a.ops, 240);
        assert!(
            sa.migrations.completed >= 1,
            "the mid-serve swap never landed: {:?}",
            sa.migrations
        );
        // Traffic was in flight, so at least the request had to wait for
        // a safe point or refuse a submission at some pair.
        assert_eq!(
            a.cycles, b.cycles,
            "migrating serve must stay deterministic"
        );
        assert_eq!(a.crossings, b.crossings);
        assert_eq!(a.shard_ops, b.shard_ops);
        assert_eq!(sa.migrations, sb.migrations);
        // And the run still serves every burst through the new backend.
        assert_eq!(a.shard_ops.iter().sum::<u64>(), 240);
    }

    #[test]
    fn migrating_serve_escalates_isolation_without_losing_requests() {
        // Start on MPK shared stacks, escalate to VM-RPC early in the
        // run: every request is still answered, and the post-swap
        // crossings pay VM-RPC costs an un-migrated run never sees.
        let migrated = quick(ServeParams {
            conns: 16,
            ops: 120,
            migrate_to: Some((5, BackendChoice::VmRpc)),
            ..ServeParams::default()
        });
        assert_eq!(migrated.ops, 120);
        let stayed = quick(ServeParams {
            conns: 16,
            ops: 120,
            ..ServeParams::default()
        });
        assert!(
            migrated.cycles > stayed.cycles,
            "post-migration crossings should cost more: {} vs {}",
            migrated.cycles,
            stayed.cycles
        );
    }

    #[test]
    fn arrival_process_is_seeded_and_exponential_ish() {
        let a = gen_arrivals(1000, 10, 30_000, 7);
        let b = gen_arrivals(1000, 10, 30_000, 7);
        assert_eq!(a, b, "same seed must give the same schedule");
        let c = gen_arrivals(1000, 10, 30_000, 8);
        assert_ne!(a, c, "different seeds must differ");
        // Mean inter-arrival ≈ the configured gap (within 15%).
        let mean = a.last().unwrap().0 / 1000;
        assert!(
            (25_000..=35_000).contains(&mean),
            "mean gap {mean} not ≈ 30000"
        );
    }
}
