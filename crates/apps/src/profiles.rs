//! The evaluation image profiles: the micro-library set and the
//! compartmentalization models of the paper's §4.
//!
//! Library inventory (Unikraft naming): the application, `libc`
//! (newlib-role; semaphores live here — the root of Figure 5's
//! surprise), `lwip` (network stack), `uksched` (plain or verified
//! scheduler), `ukalloc` (memory manager), `uknetdev` (driver).
//!
//! Compartment models from §4 "Redis: Isolation Strategies":
//! `{NW stack, rest}` (NW only), `{NW, sched, rest}` (NW/sched/rest),
//! `{NW + sched, rest}` (NW and sched/rest), plus the no-isolation
//! baseline; and §4 "Safe iperf"'s two-compartment MPK/VM images.

use flexos::build::{BackendChoice, Hypervisor, ImageConfig, LibRole, LibraryConfig};
use flexos::spec::{
    parse_with_name, Analysis, ApiFunc, CallBehavior, Grant, GrantKind, LibSpec, MemBehavior,
    Region, Requires, ShMechanism, ShSet,
};

/// Which scheduler implementation an image runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// The plain C-style cooperative scheduler (76.6 ns switches).
    Coop,
    /// The contract-checked verified scheduler (218.6 ns switches).
    Verified,
}

/// The GCC hardening set the paper's SH experiments enable
/// (KASAN + stack protector + UBSAN, §3).
pub fn gcc_sh() -> ShSet {
    ShSet::of([
        ShMechanism::Asan,
        ShMechanism::StackProtector,
        ShMechanism::Ubsan,
    ])
}

/// The application library (`iperf` or `redis`): unsafe C, calls the
/// socket API through libc.
pub fn lib_app(name: &str) -> LibraryConfig {
    let spec = parse_with_name(
        "[Memory access] Read(*); Write(*)\n\
         [Call] libc::recv, libc::send, libc::malloc, libc::free, libc::memcpy\n\
         [API] main()",
        name,
    )
    .expect("static spec parses");
    LibraryConfig::new(spec, LibRole::App).with_analysis(Analysis::well_behaved())
}

/// The standard C library: unsafe C; exposes memcpy/malloc/semaphores.
pub fn lib_libc() -> LibraryConfig {
    let spec = parse_with_name(
        "[Memory access] Read(*); Write(*)\n\
         [Call] lwip::lwip_recv, lwip::lwip_send, ukalloc::palloc, uksched::yield\n\
         [API] recv(); send(); memcpy(); malloc(); free(); sem_down(); sem_up()",
        "libc",
    )
    .expect("static spec parses");
    LibraryConfig::new(spec, LibRole::LibC).with_analysis(Analysis::well_behaved())
}

/// The network stack (lwIP role): the canonical *untrusted* component of
/// the paper's iperf experiment.
pub fn lib_netstack() -> LibraryConfig {
    let spec = parse_with_name(
        "[Memory access] Read(*); Write(*)\n\
         [Call] uknetdev::xmit, uknetdev::recv, libc::sem_up, libc::sem_down, ukalloc::palloc\n\
         [API] lwip_listen(); lwip_accept(); lwip_recv(); lwip_send(); lwip_close()",
        "lwip",
    )
    .expect("static spec parses");
    LibraryConfig::new(spec, LibRole::NetStack).with_analysis(Analysis::well_behaved())
}

/// The scheduler micro-library. The verified flavour carries the paper's
/// grant-listed spec; the plain C flavour is adversarial like any
/// unverified C component.
pub fn lib_sched(kind: SchedKind) -> LibraryConfig {
    let spec = match kind {
        SchedKind::Verified => LibSpec::verified_scheduler(),
        SchedKind::Coop => LibSpec {
            name: "uksched".into(),
            mem: MemBehavior::adversarial(),
            call: CallBehavior::funcs([("ukalloc", "palloc"), ("ukalloc", "pfree")]),
            api: vec![
                ApiFunc::named("thread_add"),
                ApiFunc::named("thread_rm"),
                ApiFunc::named("yield"),
            ],
            requires: Requires::unconstrained(),
        },
    };
    LibraryConfig::new(spec, LibRole::Scheduler).with_analysis(Analysis::well_behaved())
}

/// The memory manager (`ukalloc`): trusted under MPK (owns the page
/// tables), so modelled as well-behaved with a grant-listed spec.
pub fn lib_alloc() -> LibraryConfig {
    let spec = LibSpec {
        name: "ukalloc".into(),
        mem: MemBehavior::well_behaved(),
        call: CallBehavior::none(),
        api: vec![ApiFunc::named("palloc"), ApiFunc::named("pfree")],
        requires: Requires::granting(vec![
            Grant::any(GrantKind::Read(Region::Own)),
            Grant::any(GrantKind::Read(Region::Shared)),
            Grant::any(GrantKind::Write(Region::Shared)),
            Grant::any(GrantKind::Call("palloc".into())),
            Grant::any(GrantKind::Call("pfree".into())),
        ]),
    };
    LibraryConfig::new(spec, LibRole::MemoryManager).with_analysis(Analysis::well_behaved())
}

/// The network driver (`uknetdev`, virtio-net role).
pub fn lib_driver() -> LibraryConfig {
    let spec = parse_with_name(
        "[Memory access] Read(*); Write(*)\n\
         [Call] ukalloc::palloc\n\
         [API] xmit(); recv(); configure()",
        "uknetdev",
    )
    .expect("static spec parses");
    LibraryConfig::new(spec, LibRole::Driver).with_analysis(Analysis::well_behaved())
}

/// A compartmentalization model from the paper's §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompartmentModel {
    /// No isolation (baseline): everything in one domain.
    Baseline,
    /// `{NW stack} | {rest of the system}` — "NW only".
    NwOnly,
    /// `{NW} | {sched} | {rest}` — "NW/sched/rest".
    NwSchedRest,
    /// `{NW + sched} | {rest}` — "NW and sched/rest".
    NwAndSchedRest,
}

impl CompartmentModel {
    /// All models, in the order Figure 5 plots them.
    pub const ALL: [CompartmentModel; 4] = [
        CompartmentModel::Baseline,
        CompartmentModel::NwOnly,
        CompartmentModel::NwSchedRest,
        CompartmentModel::NwAndSchedRest,
    ];

    /// The label used in the figures.
    pub fn label(self) -> &'static str {
        match self {
            CompartmentModel::Baseline => "No Isol.",
            CompartmentModel::NwOnly => "NW-only",
            CompartmentModel::NwSchedRest => "NW/Sched/Rest",
            CompartmentModel::NwAndSchedRest => "NW+Sched/Rest",
        }
    }
}

/// Short machine-readable tag for the backend an image was built with —
/// the `backend` key of the request-latency rows. The baseline model
/// always compiles to direct calls regardless of the requested backend
/// (mirroring [`evaluation_image`]'s override).
pub fn backend_tag(model: CompartmentModel, backend: BackendChoice) -> &'static str {
    if model == CompartmentModel::Baseline {
        return "direct";
    }
    match backend {
        BackendChoice::None => "direct",
        BackendChoice::MpkShared => "mpk-shared",
        BackendChoice::MpkSwitched => "mpk-switched",
        BackendChoice::VmRpc => "vmrpc",
        BackendChoice::Cheri => "cheri",
    }
}

/// Builds the six-library evaluation image for `app` under a
/// compartment model and backend.
///
/// Compartment numbering: 0 = rest of the system (app, libc, alloc,
/// driver), then the model's extra compartments.
pub fn evaluation_image(
    app: &str,
    model: CompartmentModel,
    backend: BackendChoice,
    sched: SchedKind,
) -> ImageConfig {
    let backend = if model == CompartmentModel::Baseline {
        BackendChoice::None
    } else {
        backend
    };
    let (net_c, sched_c) = match model {
        CompartmentModel::Baseline => (0, 0),
        CompartmentModel::NwOnly => (1, 0),
        CompartmentModel::NwSchedRest => (1, 2),
        CompartmentModel::NwAndSchedRest => (1, 1),
    };
    ImageConfig::new(format!("{app}-{}", model.label()), backend)
        .with_library(lib_app(app).in_compartment(0))
        .with_library(lib_libc().in_compartment(0))
        .with_library(lib_alloc().in_compartment(0))
        .with_library(lib_driver().in_compartment(0))
        .with_library(lib_netstack().in_compartment(net_c))
        .with_library(lib_sched(sched).in_compartment(sched_c))
}

/// Applies the GCC SH set to the library called `name` (Table 1 / Fig. 4
/// toggles), leaving placement untouched.
pub fn harden(mut cfg: ImageConfig, name: &str) -> ImageConfig {
    for lib in &mut cfg.libraries {
        if lib.spec.name == name {
            lib.sh = gcc_sh();
        }
    }
    cfg
}

/// Applies the GCC SH set to every library ("SH for the entire system",
/// Table 1's last row).
pub fn harden_all(mut cfg: ImageConfig) -> ImageConfig {
    for lib in &mut cfg.libraries {
        lib.sh = gcc_sh();
    }
    cfg
}

/// Selects the hypervisor (Figure 3 runs KVM and Xen curves).
pub fn on_hypervisor(cfg: ImageConfig, hv: Hypervisor) -> ImageConfig {
    cfg.on(hv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexos::build::plan;

    #[test]
    fn baseline_collapses_to_one_compartment() {
        let cfg = evaluation_image(
            "iperf",
            CompartmentModel::Baseline,
            BackendChoice::MpkShared,
            SchedKind::Coop,
        );
        let p = plan(cfg).unwrap();
        assert_eq!(p.num_compartments, 1);
        assert_eq!(p.config.backend, BackendChoice::None);
    }

    #[test]
    fn nw_only_isolates_the_stack() {
        let cfg = evaluation_image(
            "iperf",
            CompartmentModel::NwOnly,
            BackendChoice::MpkShared,
            SchedKind::Coop,
        );
        let p = plan(cfg).unwrap();
        assert_eq!(p.num_compartments, 2);
        let net = p.compartment_of_role(LibRole::NetStack).unwrap();
        let app = p.compartment_of_role(LibRole::App).unwrap();
        let sched = p.compartment_of_role(LibRole::Scheduler).unwrap();
        assert_ne!(net, app);
        assert_eq!(sched, app);
    }

    #[test]
    fn nw_sched_rest_uses_three_compartments() {
        let cfg = evaluation_image(
            "redis",
            CompartmentModel::NwSchedRest,
            BackendChoice::MpkSwitched,
            SchedKind::Coop,
        );
        let p = plan(cfg).unwrap();
        assert_eq!(p.num_compartments, 3);
        let net = p.compartment_of_role(LibRole::NetStack).unwrap();
        let sched = p.compartment_of_role(LibRole::Scheduler).unwrap();
        assert_ne!(net, sched);
    }

    #[test]
    fn nw_and_sched_share_a_compartment() {
        let cfg = evaluation_image(
            "redis",
            CompartmentModel::NwAndSchedRest,
            BackendChoice::MpkShared,
            SchedKind::Coop,
        );
        let p = plan(cfg).unwrap();
        assert_eq!(p.num_compartments, 2);
        let net = p.compartment_of_role(LibRole::NetStack).unwrap();
        let sched = p.compartment_of_role(LibRole::Scheduler).unwrap();
        assert_eq!(net, sched);
        // LibC stays in "rest" — the semaphores are elsewhere.
        let libc_idx = p
            .config
            .libraries
            .iter()
            .position(|l| l.spec.name == "libc")
            .unwrap();
        assert_ne!(p.compartment_of[libc_idx], net);
    }

    #[test]
    fn harden_targets_one_library() {
        let cfg = harden(
            evaluation_image(
                "iperf",
                CompartmentModel::Baseline,
                BackendChoice::None,
                SchedKind::Coop,
            ),
            "lwip",
        );
        let p = plan(cfg).unwrap();
        // The lwip library carries SH; others do not.
        for lib in &p.config.libraries {
            assert_eq!(!lib.sh.is_empty(), lib.spec.name == "lwip");
        }
        assert!(p.compartment_sh[0].has(ShMechanism::Asan));
    }

    #[test]
    fn harden_all_covers_every_library() {
        let cfg = harden_all(evaluation_image(
            "iperf",
            CompartmentModel::Baseline,
            BackendChoice::None,
            SchedKind::Coop,
        ));
        assert!(cfg.libraries.iter().all(|l| !l.sh.is_empty()));
    }

    #[test]
    fn verified_scheduler_spec_conflicts_with_unsafe_neighbours() {
        // Under an isolating backend with *automatic* placement, the
        // verified scheduler would demand separation; the manual models
        // pin it, and audit would flag the baseline (warnings).
        let cfg = evaluation_image(
            "iperf",
            CompartmentModel::Baseline,
            BackendChoice::None,
            SchedKind::Verified,
        );
        let p = plan(cfg).unwrap();
        assert!(!p.report.warnings.is_empty());
    }
}
