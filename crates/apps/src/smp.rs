//! Shared executor construction for the app workloads, SMP-aware.
//!
//! Both iperf and Redis used to build their executor locally with an
//! identical `match` on [`SchedKind`]; true SMP adds a second axis — the
//! logical vCPU count — so the construction lives here once.
//!
//! With `vcpus <= 1` the legacy single-queue schedulers are used
//! unchanged (this is the path every pre-SMP figure took, and the
//! reference the determinism matrix compares against). With `vcpus > 1`
//! the [`SmpRunQueue`] spreads threads over per-vCPU deques but pops in
//! the canonical global order, so outcomes, simulated cycles, crossing
//! counts and fault traces are identical to the single-queue run — the
//! property `tests/smp_equiv.rs` proves over random workloads and the
//! `smp-determinism` CI job enforces end-to-end. The switch cost charged
//! per context switch is the same for both paths (plain or verified), so
//! the simulated clock cannot diverge either.

use crate::os::Os;
use crate::profiles::SchedKind;
use flexos_kernel::exec::Executor;
use flexos_kernel::sched::{CoopScheduler, RunQueue, SmpRunQueue, VerifiedScheduler};

/// Builds the executor for one run: `kind` picks the scheduler flavour,
/// `vcpus` the run-queue topology (1 = legacy single queue).
pub fn make_executor(kind: SchedKind, vcpus: usize) -> Executor<Os> {
    let rq: Box<dyn RunQueue> = match (kind, vcpus) {
        (SchedKind::Coop, 0 | 1) => Box::new(CoopScheduler::new()),
        (SchedKind::Verified, 0 | 1) => Box::new(VerifiedScheduler::new()),
        (SchedKind::Coop, n) => Box::new(SmpRunQueue::new(n)),
        (SchedKind::Verified, n) => Box::new(SmpRunQueue::new_verified(n)),
    };
    Executor::new(rq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexos_machine::CostTable;

    #[test]
    fn single_vcpu_uses_legacy_queues() {
        assert_eq!(make_executor(SchedKind::Coop, 1).scheduler_name(), "coop");
        assert_eq!(
            make_executor(SchedKind::Verified, 1).scheduler_name(),
            "verified"
        );
        assert_eq!(make_executor(SchedKind::Coop, 0).scheduler_name(), "coop");
    }

    #[test]
    fn multi_vcpu_uses_smp_queues() {
        assert_eq!(make_executor(SchedKind::Coop, 4).scheduler_name(), "smp");
        assert_eq!(
            make_executor(SchedKind::Verified, 4).scheduler_name(),
            "smp-verified"
        );
    }

    #[test]
    fn smp_switch_cost_matches_the_legacy_scheduler() {
        // If these diverged, the simulated clock — and every figure —
        // would differ between `--vcpus 1` and `--vcpus 4`.
        use flexos_kernel::sched::RunQueue as _;
        let costs = CostTable::default();
        assert_eq!(
            SmpRunQueue::new(4).switch_cost(&costs),
            CoopScheduler::new().switch_cost(&costs)
        );
        assert_eq!(
            SmpRunQueue::new_verified(4).switch_cost(&costs),
            VerifiedScheduler::new().switch_cost(&costs)
        );
    }
}
