//! # flexos-apps — evaluation applications and OS assembly
//!
//! The paper's §4 workloads, running end to end on the FlexOS
//! reproduction: an iperf-style TCP throughput server and a Redis-style
//! RESP key-value server, each built as a FlexOS image whose
//! compartmentalization, isolation backend, hardening and scheduler are
//! chosen at build time.
//!
//! * [`profiles`] — the micro-library specs and the §4 compartment
//!   models (`NW-only`, `NW/Sched/Rest`, `NW+Sched/Rest`, baseline);
//! * [`os`] — the assembled [`os::Os`]: image + gates + SH runtime +
//!   semaphores (in libc) + network stack, with every cross-compartment
//!   interaction routed through gates;
//! * [`iperf`] — the iperf server/measurement harness (Figure 3,
//!   Table 1);
//! * [`resp`] / [`redis`] — the RESP protocol and Redis-style server
//!   (Figures 4 and 5);
//! * [`client`] — the external load generator (its own machine and
//!   clock, so client work never pollutes server-side throughput);
//! * [`serve`] — the million-connection serving tier: sharded Redis
//!   behind an async cluster proxy, per-connection cooperative tasks
//!   woken by readiness events, and an open-loop Poisson load
//!   generator (the O(ready) scaling experiment).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod iperf;
pub mod os;
pub mod profiles;
pub mod redis;
pub mod resp;
pub mod serve;
pub mod smp;

pub use os::{Os, OsStats, Roles};
pub use profiles::{
    backend_tag, evaluation_image, gcc_sh, harden, harden_all, CompartmentModel, SchedKind,
};
