//! The external load generator.
//!
//! The paper measures server-side throughput with an external client
//! machine. [`Client`] is exactly that: its own simulated [`Machine`]
//! (own clock — client work never pollutes the server's cycle count)
//! running only a network stack, connected to the server by a [`Link`].

use crate::os::Os;
use flexos_machine::{Addr, Fault, Machine, PageFlags, ProtKey, VcpuId, VmId};
use flexos_net::nic::{Link, Nic};
use flexos_net::stack::{NetError, NetResult, NetStack, SocketId};
use flexos_net::wire::Mac;
use std::fmt;

/// The client endpoint (IP used by every harness).
pub const CLIENT_IP: u32 = 0x0a00_0002;

/// The server endpoint.
pub const SERVER_IP: u32 = 0x0a00_0001;

/// A failure on the client side of an experiment. Chaos sweeps install
/// fault schedules on simulated machines, so every client operation can
/// legitimately fail mid-run; the error is typed (not a panic) so the
/// experiment layer records a degraded data point instead of aborting
/// the whole sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// A fault on the client's simulated machine (injected OOM,
    /// spurious pkey fault, ...).
    Machine(Fault),
    /// The client network stack rejected the operation.
    Net(NetError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Machine(fault) => write!(f, "client machine fault: {fault}"),
            ClientError::Net(e) => write!(f, "client net error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<Fault> for ClientError {
    fn from(fault: Fault) -> Self {
        ClientError::Machine(fault)
    }
}

impl From<NetError> for ClientError {
    fn from(e: NetError) -> Self {
        ClientError::Net(e)
    }
}

/// An external client with its own machine and clock.
#[derive(Debug)]
pub struct Client {
    /// The client's machine (separate clock).
    pub m: Machine,
    /// The client's network stack.
    pub net: NetStack,
    /// The vCPU the client runs on.
    pub vcpu: VcpuId,
    /// A staging buffer in the client's simulated memory.
    pub buf: Addr,
    buf_len: u64,
}

impl Client {
    /// Boots a client with address [`CLIENT_IP`].
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Machine`] when the client machine cannot
    /// allocate its packet pool or staging buffer (e.g. injected OOM).
    pub fn new(nic_id: u8) -> Result<Self, ClientError> {
        let mut m = Machine::with_defaults();
        let pool = m.alloc_region(VmId(0), 1 << 20, ProtKey(0), PageFlags::RW)?;
        let buf_len = 1 << 18;
        let buf = m.alloc_region(VmId(0), buf_len, ProtKey(0), PageFlags::RW)?;
        let net = NetStack::new(CLIENT_IP, Nic::new(Mac::of_nic(nic_id)), pool, 1 << 20);
        Ok(Self {
            m,
            net,
            vcpu: VcpuId(0),
            buf,
            buf_len,
        })
    }

    /// Starts a connection to the server.
    pub fn connect(&mut self, port: u16) -> NetResult<SocketId> {
        self.net.tcp_connect(SERVER_IP, port)
    }

    /// Whether the connection completed its handshake.
    pub fn established(&mut self, sid: SocketId) -> bool {
        self.net.tcp_is_established(sid).unwrap_or(false)
    }

    /// One stack iteration on the client side.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] when the stack iteration faults on the
    /// client machine.
    pub fn poll(&mut self) -> Result<(), ClientError> {
        self.net.poll(&mut self.m, self.vcpu)?;
        Ok(())
    }

    /// Sends `data` (bounded by the staging buffer); returns bytes
    /// accepted (0 when the transmit path is full).
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on a machine fault while staging the
    /// payload, or when the stack rejects the send for any reason other
    /// than back-pressure.
    pub fn send_bytes(&mut self, sid: SocketId, data: &[u8]) -> Result<u64, ClientError> {
        let n = (data.len() as u64).min(self.buf_len);
        self.m.write(self.vcpu, self.buf, &data[..n as usize])?;
        match self.net.tcp_send(&mut self.m, self.vcpu, sid, self.buf, n) {
            Ok(sent) => Ok(sent),
            Err(NetError::WouldBlock) => Ok(0),
            Err(e) => Err(e.into()),
        }
    }

    /// Keeps the transmit pipe full with `chunk` zero bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] when the stack rejects the send for any
    /// reason other than back-pressure or an already-closed pipe.
    pub fn pump_zeroes(&mut self, sid: SocketId, chunk: u64) -> Result<u64, ClientError> {
        let n = chunk.min(self.buf_len);
        match self.net.tcp_send(&mut self.m, self.vcpu, sid, self.buf, n) {
            Ok(sent) => Ok(sent),
            Err(NetError::WouldBlock) | Err(NetError::Closed) => Ok(0),
            Err(e) => Err(e.into()),
        }
    }

    /// Receives whatever is available, as host bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on a machine fault while draining the
    /// staging buffer, or when the stack fails the receive for any
    /// reason other than an empty ring.
    pub fn recv_bytes(&mut self, sid: SocketId, max: u64) -> Result<Vec<u8>, ClientError> {
        let max = max.min(self.buf_len);
        match self
            .net
            .tcp_recv(&mut self.m, self.vcpu, sid, self.buf, max)
        {
            Ok(n) => {
                let mut out = vec![0u8; n as usize];
                self.m.read(self.vcpu, self.buf, &mut out)?;
                Ok(out)
            }
            Err(NetError::WouldBlock) => Ok(Vec::new()),
            Err(e) => Err(e.into()),
        }
    }

    /// Half-closes the connection.
    pub fn close(&mut self, sid: SocketId) {
        let _ = self.net.close(sid);
    }

    /// Advances the client clock (lets client-side RTO timers fire).
    pub fn advance(&mut self, cycles: u64) {
        self.m.charge(cycles);
    }
}

/// Moves frames across the link in both directions.
pub fn exchange(link: &mut Link, client: &mut Client, os: &mut Os) -> usize {
    link.transfer(&mut client.net.nic, &mut os.net.nic)
        + link.transfer(&mut os.net.nic, &mut client.net.nic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{evaluation_image, CompartmentModel, SchedKind};
    use flexos::build::{plan, BackendChoice};
    use flexos_machine::{ChaosConfig, ChaosPlan, Schedule};

    #[test]
    fn client_connects_to_a_flexos_server() {
        let cfg = evaluation_image(
            "iperf",
            CompartmentModel::Baseline,
            BackendChoice::None,
            SchedKind::Coop,
        );
        let mut os = Os::boot(plan(cfg).unwrap(), SERVER_IP, 1).unwrap();
        let mut client = Client::new(2).unwrap();
        let mut link = Link::new();

        os.listen(5201).unwrap();
        let csid = client.connect(5201).unwrap();
        for _ in 0..6 {
            client.poll().unwrap();
            os.poll_net().unwrap();
            exchange(&mut link, &mut client, &mut os);
        }
        assert!(client.established(csid));
        // Server side accepted the connection.
        // (accept goes through the listener backlog)
    }

    #[test]
    fn client_clock_is_independent_of_the_server() {
        let cfg = evaluation_image(
            "iperf",
            CompartmentModel::Baseline,
            BackendChoice::None,
            SchedKind::Coop,
        );
        let os = Os::boot(plan(cfg).unwrap(), SERVER_IP, 1).unwrap();
        let mut client = Client::new(2).unwrap();
        client.advance(1_000_000);
        assert!(client.m.clock().cycles() >= 1_000_000);
        assert!(os.img.machine.clock().cycles() < 1_000_000);
    }

    #[test]
    fn client_machine_faults_surface_as_typed_errors_not_panics() {
        let mut client = Client::new(2).unwrap();
        let csid = client.connect(5201).unwrap();
        // Every access faults spuriously: staging the payload must
        // return the fault instead of panicking the whole sweep.
        client.m.set_chaos(ChaosPlan::new(ChaosConfig {
            seed: 9,
            spurious_pkey: Schedule::EveryNth(1),
            ..Default::default()
        }));
        let err = client.send_bytes(csid, b"payload").unwrap_err();
        assert!(matches!(err, ClientError::Machine(_)), "{err:?}");
    }
}
