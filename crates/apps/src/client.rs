//! The external load generator.
//!
//! The paper measures server-side throughput with an external client
//! machine. [`Client`] is exactly that: its own simulated [`Machine`]
//! (own clock — client work never pollutes the server's cycle count)
//! running only a network stack, connected to the server by a [`Link`].

use crate::os::Os;
use flexos_machine::{Addr, Machine, PageFlags, ProtKey, VcpuId, VmId};
use flexos_net::nic::{Link, Nic};
use flexos_net::stack::{NetError, NetResult, NetStack, SocketId};
use flexos_net::wire::Mac;

/// The client endpoint (IP used by every harness).
pub const CLIENT_IP: u32 = 0x0a00_0002;

/// The server endpoint.
pub const SERVER_IP: u32 = 0x0a00_0001;

/// An external client with its own machine and clock.
#[derive(Debug)]
pub struct Client {
    /// The client's machine (separate clock).
    pub m: Machine,
    /// The client's network stack.
    pub net: NetStack,
    /// The vCPU the client runs on.
    pub vcpu: VcpuId,
    /// A staging buffer in the client's simulated memory.
    pub buf: Addr,
    buf_len: u64,
}

impl Client {
    /// Boots a client with address [`CLIENT_IP`].
    pub fn new(nic_id: u8) -> Self {
        let mut m = Machine::with_defaults();
        let pool = m
            .alloc_region(VmId(0), 1 << 20, ProtKey(0), PageFlags::RW)
            .expect("client pool");
        let buf_len = 1 << 18;
        let buf = m
            .alloc_region(VmId(0), buf_len, ProtKey(0), PageFlags::RW)
            .expect("client buffer");
        let net = NetStack::new(CLIENT_IP, Nic::new(Mac::of_nic(nic_id)), pool, 1 << 20);
        Self {
            m,
            net,
            vcpu: VcpuId(0),
            buf,
            buf_len,
        }
    }

    /// Starts a connection to the server.
    pub fn connect(&mut self, port: u16) -> NetResult<SocketId> {
        self.net.tcp_connect(SERVER_IP, port)
    }

    /// Whether the connection completed its handshake.
    pub fn established(&mut self, sid: SocketId) -> bool {
        self.net.tcp_is_established(sid).unwrap_or(false)
    }

    /// One stack iteration on the client side.
    pub fn poll(&mut self) {
        self.net.poll(&mut self.m, self.vcpu).expect("client poll");
    }

    /// Sends `data` (bounded by the staging buffer); returns bytes
    /// accepted (0 when the transmit path is full).
    pub fn send_bytes(&mut self, sid: SocketId, data: &[u8]) -> u64 {
        let n = (data.len() as u64).min(self.buf_len);
        self.m
            .write(self.vcpu, self.buf, &data[..n as usize])
            .expect("client write");
        match self.net.tcp_send(&mut self.m, self.vcpu, sid, self.buf, n) {
            Ok(sent) => sent,
            Err(NetError::WouldBlock) => 0,
            Err(e) => panic!("client send failed: {e}"),
        }
    }

    /// Keeps the transmit pipe full with `chunk` zero bytes.
    pub fn pump_zeroes(&mut self, sid: SocketId, chunk: u64) -> u64 {
        let n = chunk.min(self.buf_len);
        match self.net.tcp_send(&mut self.m, self.vcpu, sid, self.buf, n) {
            Ok(sent) => sent,
            Err(NetError::WouldBlock) => 0,
            Err(NetError::Closed) => 0,
            Err(e) => panic!("client send failed: {e}"),
        }
    }

    /// Receives whatever is available, as host bytes.
    pub fn recv_bytes(&mut self, sid: SocketId, max: u64) -> Vec<u8> {
        let max = max.min(self.buf_len);
        match self
            .net
            .tcp_recv(&mut self.m, self.vcpu, sid, self.buf, max)
        {
            Ok(n) => {
                let mut out = vec![0u8; n as usize];
                self.m
                    .read(self.vcpu, self.buf, &mut out)
                    .expect("client read");
                out
            }
            Err(NetError::WouldBlock) => Vec::new(),
            Err(e) => panic!("client recv failed: {e}"),
        }
    }

    /// Half-closes the connection.
    pub fn close(&mut self, sid: SocketId) {
        let _ = self.net.close(sid);
    }

    /// Advances the client clock (lets client-side RTO timers fire).
    pub fn advance(&mut self, cycles: u64) {
        self.m.charge(cycles);
    }
}

/// Moves frames across the link in both directions.
pub fn exchange(link: &mut Link, client: &mut Client, os: &mut Os) -> usize {
    link.transfer(&mut client.net.nic, &mut os.net.nic)
        + link.transfer(&mut os.net.nic, &mut client.net.nic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{evaluation_image, CompartmentModel, SchedKind};
    use flexos::build::{plan, BackendChoice};

    #[test]
    fn client_connects_to_a_flexos_server() {
        let cfg = evaluation_image(
            "iperf",
            CompartmentModel::Baseline,
            BackendChoice::None,
            SchedKind::Coop,
        );
        let mut os = Os::boot(plan(cfg).unwrap(), SERVER_IP, 1).unwrap();
        let mut client = Client::new(2);
        let mut link = Link::new();

        os.listen(5201).unwrap();
        let csid = client.connect(5201).unwrap();
        for _ in 0..6 {
            client.poll();
            os.poll_net().unwrap();
            exchange(&mut link, &mut client, &mut os);
        }
        assert!(client.established(csid));
        // Server side accepted the connection.
        // (accept goes through the listener backlog)
    }

    #[test]
    fn client_clock_is_independent_of_the_server() {
        let cfg = evaluation_image(
            "iperf",
            CompartmentModel::Baseline,
            BackendChoice::None,
            SchedKind::Coop,
        );
        let os = Os::boot(plan(cfg).unwrap(), SERVER_IP, 1).unwrap();
        let mut client = Client::new(2);
        client.advance(1_000_000);
        assert!(client.m.clock().cycles() >= 1_000_000);
        assert!(os.img.machine.clock().cycles() < 1_000_000);
    }
}
