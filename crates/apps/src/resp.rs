//! The RESP protocol (REdis Serialization Protocol), v2.
//!
//! Implements the subset Redis clients use for the paper's workloads:
//! command arrays of bulk strings in, simple strings / errors / integers
//! / bulk strings out — with an incremental parser that tolerates
//! partial input (TCP delivers byte streams, not messages).

use std::fmt;

/// A RESP reply value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RespValue {
    /// `+OK\r\n`
    Simple(String),
    /// `-ERR ...\r\n`
    Error(String),
    /// `:42\r\n`
    Integer(i64),
    /// `$5\r\nhello\r\n`, or `$-1\r\n` for nil.
    Bulk(Option<Vec<u8>>),
    /// `*N\r\n...`
    Array(Vec<RespValue>),
}

impl fmt::Display for RespValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RespValue::Simple(s) => write!(f, "+{s}"),
            RespValue::Error(e) => write!(f, "-{e}"),
            RespValue::Integer(i) => write!(f, ":{i}"),
            RespValue::Bulk(Some(b)) => write!(f, "${}", String::from_utf8_lossy(b)),
            RespValue::Bulk(None) => write!(f, "$nil"),
            RespValue::Array(items) => write!(f, "*[{}]", items.len()),
        }
    }
}

/// Encodes a reply value to wire bytes.
pub fn encode(v: &RespValue) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(v, &mut out);
    out
}

fn encode_into(v: &RespValue, out: &mut Vec<u8>) {
    match v {
        RespValue::Simple(s) => {
            out.push(b'+');
            out.extend_from_slice(s.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        RespValue::Error(e) => {
            out.push(b'-');
            out.extend_from_slice(e.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        RespValue::Integer(i) => {
            out.push(b':');
            out.extend_from_slice(i.to_string().as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        RespValue::Bulk(Some(b)) => {
            out.push(b'$');
            out.extend_from_slice(b.len().to_string().as_bytes());
            out.extend_from_slice(b"\r\n");
            out.extend_from_slice(b);
            out.extend_from_slice(b"\r\n");
        }
        RespValue::Bulk(None) => out.extend_from_slice(b"$-1\r\n"),
        RespValue::Array(items) => {
            out.push(b'*');
            out.extend_from_slice(items.len().to_string().as_bytes());
            out.extend_from_slice(b"\r\n");
            for item in items {
                encode_into(item, out);
            }
        }
    }
}

/// Encodes a client command (array of bulk strings).
pub fn encode_command(args: &[&[u8]]) -> Vec<u8> {
    let items: Vec<RespValue> = args
        .iter()
        .map(|a| RespValue::Bulk(Some(a.to_vec())))
        .collect();
    encode(&RespValue::Array(items))
}

/// An incremental RESP parser over a growing byte buffer.
#[derive(Debug, Default)]
pub struct RespParser {
    buf: Vec<u8>,
    pos: usize,
}

impl RespParser {
    /// Creates an empty parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends newly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered and not yet consumed.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    fn line(&self, from: usize) -> Option<(&[u8], usize)> {
        let rest = &self.buf[from..];
        let nl = rest.windows(2).position(|w| w == b"\r\n")?;
        Some((&rest[..nl], from + nl + 2))
    }

    fn parse_value_at(&self, from: usize) -> Option<(RespValue, usize)> {
        let (line, after) = self.line(from)?;
        let (tag, body) = line.split_first()?;
        let text = std::str::from_utf8(body).ok()?;
        match tag {
            b'+' => Some((RespValue::Simple(text.to_string()), after)),
            b'-' => Some((RespValue::Error(text.to_string()), after)),
            b':' => Some((RespValue::Integer(text.parse().ok()?), after)),
            b'$' => {
                let n: i64 = text.parse().ok()?;
                if n < 0 {
                    return Some((RespValue::Bulk(None), after));
                }
                let n = n as usize;
                if self.buf.len() < after + n + 2 {
                    return None; // partial
                }
                if &self.buf[after + n..after + n + 2] != b"\r\n" {
                    return None;
                }
                Some((
                    RespValue::Bulk(Some(self.buf[after..after + n].to_vec())),
                    after + n + 2,
                ))
            }
            b'*' => {
                let n: i64 = text.parse().ok()?;
                if n < 0 {
                    return Some((RespValue::Array(Vec::new()), after));
                }
                let mut items = Vec::with_capacity(n as usize);
                let mut cursor = after;
                for _ in 0..n {
                    let (item, next) = self.parse_value_at(cursor)?;
                    items.push(item);
                    cursor = next;
                }
                Some((RespValue::Array(items), cursor))
            }
            _ => None,
        }
    }

    /// Parses one complete value, if buffered.
    pub fn parse_value(&mut self) -> Option<RespValue> {
        let (v, next) = self.parse_value_at(self.pos)?;
        self.pos = next;
        self.compact();
        Some(v)
    }

    /// Parses one complete client *command* (array of bulk strings) into
    /// its argument list.
    pub fn parse_command(&mut self) -> Option<Vec<Vec<u8>>> {
        let start = self.pos;
        match self.parse_value()? {
            RespValue::Array(items) => {
                let mut args = Vec::with_capacity(items.len());
                for item in items {
                    match item {
                        RespValue::Bulk(Some(b)) => args.push(b),
                        _ => {
                            // Malformed command: rewind and drop the value.
                            let _ = start;
                            return Some(Vec::new());
                        }
                    }
                }
                Some(args)
            }
            _ => Some(Vec::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for v in [
            RespValue::Simple("OK".into()),
            RespValue::Error("ERR no such key".into()),
            RespValue::Integer(-42),
            RespValue::Bulk(Some(b"hello\r\nworld".to_vec())),
            RespValue::Bulk(None),
            RespValue::Array(vec![
                RespValue::Bulk(Some(b"GET".to_vec())),
                RespValue::Bulk(Some(b"key".to_vec())),
            ]),
        ] {
            let mut p = RespParser::new();
            p.feed(&encode(&v));
            assert_eq!(p.parse_value().unwrap(), v);
            assert_eq!(p.pending(), 0);
        }
    }

    #[test]
    fn command_encoding_matches_redis_wire_format() {
        let cmd = encode_command(&[b"SET", b"k", b"v1"]);
        assert_eq!(cmd, b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$2\r\nv1\r\n");
    }

    #[test]
    fn partial_input_returns_none_until_complete() {
        let full = encode_command(&[b"SET", b"key", b"value"]);
        let mut p = RespParser::new();
        for (i, chunk) in full.chunks(3).enumerate() {
            p.feed(chunk);
            let done = (i + 1) * 3 >= full.len();
            if !done {
                assert!(p.parse_command().is_none(), "parsed too early at chunk {i}");
            }
        }
        let args = p.parse_command().unwrap();
        assert_eq!(
            args,
            vec![b"SET".to_vec(), b"key".to_vec(), b"value".to_vec()]
        );
    }

    #[test]
    fn pipelined_commands_parse_in_sequence() {
        let mut p = RespParser::new();
        p.feed(&encode_command(&[b"PING"]));
        p.feed(&encode_command(&[b"GET", b"k"]));
        assert_eq!(p.parse_command().unwrap(), vec![b"PING".to_vec()]);
        assert_eq!(
            p.parse_command().unwrap(),
            vec![b"GET".to_vec(), b"k".to_vec()]
        );
        assert!(p.parse_command().is_none());
    }

    #[test]
    fn binary_safe_values_survive() {
        let payload: Vec<u8> = (0..=255u8).collect();
        let cmd = encode_command(&[b"SET", b"bin", &payload]);
        let mut p = RespParser::new();
        p.feed(&cmd);
        let args = p.parse_command().unwrap();
        assert_eq!(args[2], payload);
    }

    #[test]
    fn nil_bulk_parses() {
        let mut p = RespParser::new();
        p.feed(b"$-1\r\n");
        assert_eq!(p.parse_value().unwrap(), RespValue::Bulk(None));
    }
}
