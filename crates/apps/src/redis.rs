//! The Redis-style workload (paper §4, Figures 4 and 5).
//!
//! A RESP key-value server running as a FlexOS application: values live
//! in the application compartment's simulated heap (so `SET`/`GET` hit
//! the — possibly instrumented — allocator, which is the whole point of
//! Figure 4's global-vs-local allocator comparison), requests arrive
//! pipelined over TCP from an external client, and every socket
//! operation crosses the image's gates.

use crate::client::{exchange, Client, ClientError, SERVER_IP};
use crate::os::Os;
use crate::profiles::{backend_tag, evaluation_image, harden, CompartmentModel, SchedKind};
use crate::resp::{encode, encode_command, RespParser, RespValue};
use crate::smp::make_executor;
use flexos::build::{plan, BackendChoice, Hypervisor};
use flexos::gate::CompartmentId;
use flexos_kernel::exec::{Executor, Step};
use flexos_kernel::sched::ThreadId;
use flexos_machine::{Addr, ChaosConfig, ChaosPlan};
use flexos_net::nic::Link;
use flexos_net::stack::{NetError, SocketId};
use flexos_trace::{SpanId, StatsSnapshot};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;

/// The Redis port.
pub const REDIS_PORT: u16 = 6379;

/// Request mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// Only `SET key value`.
    Set,
    /// Only `GET key` (keys preloaded).
    Get,
}

impl Mix {
    /// Label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            Mix::Set => "SET",
            Mix::Get => "GET",
        }
    }
}

/// Parameters of one Redis run.
#[derive(Debug, Clone)]
pub struct RedisParams {
    /// Compartment model.
    pub model: CompartmentModel,
    /// Isolation backend.
    pub backend: BackendChoice,
    /// Scheduler implementation.
    pub sched: SchedKind,
    /// Hypervisor.
    pub hypervisor: Hypervisor,
    /// Libraries hardened with the GCC SH set.
    pub sh_on: Vec<String>,
    /// Per-compartment allocators (Figure 4's "local allocator").
    pub dedicated_allocators: bool,
    /// Value payload size in bytes (5 / 50 / 500 in the paper).
    pub payload: usize,
    /// Request mix.
    pub mix: Mix,
    /// Requests to complete during measurement.
    pub ops: u64,
    /// Pipeline depth.
    pub pipeline: usize,
    /// A seeded fault schedule installed on the *server* machine after
    /// boot (doorbell loss, injected OOM, ...). Chaos sweeps use this
    /// to measure how the run degrades; failures come back as
    /// [`RedisRunError`], never as panics.
    pub machine_chaos: Option<ChaosConfig>,
    /// Logical vCPUs for the run queue (1 = legacy single queue; >1 uses
    /// the deterministic SMP queue, which schedules in the identical
    /// canonical order — see `crate::smp`).
    pub vcpus: usize,
    /// Live-migrate every gate pair to the given backend once the
    /// measured phase has completed this many requests. The swap runs
    /// the full quiescence protocol between scheduler steps, so it is
    /// deterministic and identical at every vCPU width.
    pub migrate_to: Option<(u64, BackendChoice)>,
}

impl Default for RedisParams {
    fn default() -> Self {
        Self {
            model: CompartmentModel::Baseline,
            backend: BackendChoice::None,
            sched: SchedKind::Coop,
            hypervisor: Hypervisor::Kvm,
            sh_on: Vec::new(),
            dedicated_allocators: false,
            payload: 50,
            mix: Mix::Get,
            ops: 2_000,
            pipeline: 16,
            machine_chaos: None,
            vcpus: 1,
            migrate_to: None,
        }
    }
}

/// The outcome of one Redis run.
#[derive(Debug, Clone, Copy)]
pub struct RedisResult {
    /// Requests completed (measured phase).
    pub ops: u64,
    /// Server cycles spent.
    pub cycles: u64,
    /// Throughput in mega-requests per second (the paper's MTps axis).
    pub mreq_per_s: f64,
    /// Gate crossings on the server during measurement.
    pub crossings: u64,
}

/// A failure during a Redis run, propagated (not panicked) so a
/// misbehaving compartment or a chaos schedule degrades a benchmark run
/// into a recorded data point instead of aborting the process.
#[derive(Debug, Clone, PartialEq)]
pub enum RedisRunError {
    /// The server answered a request with a RESP error.
    Reply(String),
    /// The external load generator failed (client machine fault or
    /// client stack error).
    Client(ClientError),
    /// The server image failed outside a reply: a gate timeout under
    /// injected doorbell loss, an allocation fault, a stack error.
    Server(String),
}

impl RedisRunError {
    fn server(e: impl fmt::Display) -> Self {
        RedisRunError::Server(e.to_string())
    }
}

impl fmt::Display for RedisRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RedisRunError::Reply(reply) => {
                write!(f, "redis server replied with error: {reply}")
            }
            RedisRunError::Client(e) => write!(f, "redis client failed: {e}"),
            RedisRunError::Server(e) => write!(f, "redis server failed: {e}"),
        }
    }
}

impl std::error::Error for RedisRunError {}

impl From<ClientError> for RedisRunError {
    fn from(e: ClientError) -> Self {
        RedisRunError::Client(e)
    }
}

/// The in-image Redis server state.
struct RedisServer {
    store: HashMap<Vec<u8>, (Addr, u64)>,
    parser: RespParser,
    out_host: Vec<u8>,
    c_app: CompartmentId,
    rx_buf: Addr,
    tx_buf: Addr,
    io_buf_len: u64,
    /// Commands executed.
    ops: u64,
    /// Backend tag for the request-latency key (`"mpk-shared"`, …).
    backend: &'static str,
    /// Plan-determined vCPU of the app compartment — the span shard key
    /// (fixed at build time, hoisted out of the per-command hot path).
    app_vcpu: u16,
    /// Open request spans, each paired with the cumulative staged-output
    /// offset at which its reply will have fully left the server.
    pending_spans: VecDeque<(SpanId, u64)>,
    /// Reply bytes ever staged into `out_host`.
    staged_total: u64,
    /// Reply bytes ever drained out of `out_host` by completed sends.
    sent_total: u64,
}

impl RedisServer {
    fn execute(&mut self, os: &mut Os, args: &[Vec<u8>]) -> RespValue {
        // Per-request application work (command dispatch, hashing).
        let work = os.img.machine.costs().app_request;
        os.app_compute(work);
        self.ops += 1;
        let cmd = args
            .first()
            .map(|c| c.to_ascii_uppercase())
            .unwrap_or_default();
        match (cmd.as_slice(), args.len()) {
            (b"PING", 1) => RespValue::Simple("PONG".into()),
            (b"SET", 3) => {
                let value = &args[2];
                match os.malloc_in(self.c_app, value.len().max(1) as u64) {
                    Ok(addr) => {
                        if let Err(f) = os.img.write(addr, value) {
                            return RespValue::Error(format!("ERR fault: {f}"));
                        }
                        if let Some((old, _)) = self
                            .store
                            .insert(args[1].clone(), (addr, value.len() as u64))
                        {
                            let _ = os.free_in(self.c_app, old);
                        }
                        RespValue::Simple("OK".into())
                    }
                    Err(f) => RespValue::Error(format!("ERR oom: {f}")),
                }
            }
            (b"GET", 2) => match self.store.get(&args[1]).copied() {
                Some((addr, len)) => {
                    // Redis builds the reply in a freshly allocated
                    // object (sds string) — so GETs hit the allocator
                    // too, instrumented or not.
                    let reply = match os.malloc_in(self.c_app, len.max(1)) {
                        Ok(r) => r,
                        Err(f) => return RespValue::Error(format!("ERR oom: {f}")),
                    };
                    let mut value = vec![0u8; len as usize];
                    let read = os
                        .img
                        .read(addr, &mut value)
                        .and_then(|()| os.img.copy(reply, addr, len));
                    let _ = os.free_in(self.c_app, reply);
                    if let Err(f) = read {
                        return RespValue::Error(format!("ERR fault: {f}"));
                    }
                    RespValue::Bulk(Some(value))
                }
                None => RespValue::Bulk(None),
            },
            (b"DEL", 2) => match self.store.remove(&args[1]) {
                Some((addr, _)) => {
                    let _ = os.free_in(self.c_app, addr);
                    RespValue::Integer(1)
                }
                None => RespValue::Integer(0),
            },
            (b"EXISTS", 2) => RespValue::Integer(i64::from(self.store.contains_key(&args[1]))),
            _ => RespValue::Error(format!(
                "ERR unknown command '{}'",
                String::from_utf8_lossy(&cmd)
            )),
        }
    }

    /// One service quantum on socket `sid`: drain input, execute, flush
    /// replies. Returns `Ok(None)` to yield, `Ok(Some(step))` to return.
    fn service(
        &mut self,
        os: &mut Os,
        tid: ThreadId,
        sid: SocketId,
    ) -> flexos_machine::Result<Step> {
        // Flush pending replies first, issuing the whole backlog as one
        // batched gate crossing per round: the `after` hook drains what
        // each send moved and stages the next chunk, exactly as the old
        // sequential send loop did between two crossings.
        while !self.out_host.is_empty() {
            let n = (self.out_host.len() as u64).min(self.io_buf_len);
            os.img.write(self.tx_buf, &self.out_host[..n as usize])?;
            let max = (self.out_host.len() as u64)
                .div_ceil(self.io_buf_len)
                .max(1) as usize;
            let (tx_buf, io_buf_len) = (self.tx_buf, self.io_buf_len);
            let app_vcpu = self.app_vcpu;
            // Tag ring descriptor `i` with the span of the i-th pending
            // request: the reply bytes a send ships belong to the oldest
            // requests still awaiting their last byte, so the causal
            // trace links each SQE to the command it answers.
            let sqe_spans: Vec<SpanId> = self
                .pending_spans
                .iter()
                .take(max)
                .map(|&(span, _)| span)
                .collect();
            let out_host = &mut self.out_host;
            let pending_spans = &mut self.pending_spans;
            let sent_total = &mut self.sent_total;
            let results = os.send_batch_spanned(sid, tx_buf, n, max, &sqe_spans, |m, rt, r| {
                let Ok(sent) = r else { return Ok(None) };
                out_host.drain(..*sent as usize);
                // A request span ends when the last byte of its reply
                // has left the server — end every span whose staged
                // offset the cumulative sent count just covered.
                *sent_total += sent;
                // The clock cannot advance inside this drain (no work is
                // charged), so every span completing here ends at the
                // same instant — read it once.
                let now = m.clock().cycles();
                while pending_spans
                    .front()
                    .is_some_and(|&(_, end)| end <= *sent_total)
                {
                    let (span, _) = pending_spans.pop_front().expect("front checked");
                    m.span_trace_mut().end_request(span, app_vcpu, now);
                }
                if out_host.is_empty() {
                    return Ok(None);
                }
                let next = (out_host.len() as u64).min(io_buf_len);
                m.write(rt.current_ctx().vcpu, tx_buf, &out_host[..next as usize])?;
                Ok(Some(next))
            })?;
            match results.last() {
                Some(Err(NetError::WouldBlock)) => return Ok(Step::Yield),
                Some(Err(NetError::Closed)) => return Ok(Step::Done),
                Some(Err(e)) => {
                    return Err(flexos_machine::Fault::HardeningAbort {
                        mechanism: "redis",
                        reason: format!("send failed: {e}"),
                    })
                }
                _ => {}
            }
        }
        // Pull in new request bytes.
        match os.recv(sid, self.rx_buf, self.io_buf_len) {
            Ok(0) => return Ok(Step::Done),
            Ok(n) => {
                let mut host = vec![0u8; n as usize];
                os.img.read(self.rx_buf, &mut host)?;
                self.parser.feed(&host);
            }
            Err(NetError::WouldBlock) => {
                if self.parser.pending() == 0 {
                    return match os.wait_readable(tid, sid)? {
                        Some(ch) => Ok(Step::Block(ch)),
                        None => Ok(Step::Yield),
                    };
                }
            }
            Err(e) => {
                return Err(flexos_machine::Fault::HardeningAbort {
                    mechanism: "redis",
                    reason: format!("recv failed: {e}"),
                })
            }
        }
        // Execute everything parseable. Each command opens a request
        // span (ended later, when its reply's last byte is sent).
        while let Some(args) = self.parser.parse_command() {
            let t0 = os.img.machine.clock().cycles();
            let span = os.img.machine.span_trace_mut().begin_request(
                "redis",
                self.backend,
                self.app_vcpu,
                t0,
            );
            let reply = if args.is_empty() {
                RespValue::Error("ERR protocol error".into())
            } else {
                self.execute(os, &args)
            };
            self.out_host.extend_from_slice(&encode(&reply));
            self.staged_total = self.sent_total + self.out_host.len() as u64;
            self.pending_spans.push_back((span, self.staged_total));
        }
        Ok(Step::Yield)
    }
}

/// Builds the image config for `params`.
pub fn redis_image(params: &RedisParams) -> flexos::build::ImageConfig {
    let mut cfg =
        evaluation_image("redis", params.model, params.backend, params.sched).on(params.hypervisor);
    for name in &params.sh_on {
        cfg = harden(cfg, name);
    }
    if params.dedicated_allocators {
        cfg.dedicated_allocators = true;
    }
    cfg
}

/// The external Redis load generator (pipelined).
struct LoadGen {
    replies: RespParser,
    completed: u64,
    inflight: u64,
    payload: Vec<u8>,
    keys: Vec<Vec<u8>>,
    next: usize,
    mix: Mix,
    pipeline: usize,
}

impl LoadGen {
    fn new(payload: usize, mix: Mix, pipeline: usize) -> Self {
        Self {
            replies: RespParser::new(),
            completed: 0,
            inflight: 0,
            payload: vec![b'v'; payload.max(1)],
            keys: (0..16)
                .map(|i| format!("key:{i:04}").into_bytes())
                .collect(),
            next: 0,
            mix,
            pipeline,
        }
    }

    fn batch(&mut self) -> Vec<u8> {
        let mut out = Vec::new();
        while self.inflight < self.pipeline as u64 {
            let key = &self.keys[self.next % self.keys.len()];
            self.next += 1;
            match self.mix {
                Mix::Set => out.extend_from_slice(&encode_command(&[b"SET", key, &self.payload])),
                Mix::Get => out.extend_from_slice(&encode_command(&[b"GET", key])),
            }
            self.inflight += 1;
        }
        out
    }

    fn consume(&mut self, bytes: &[u8]) -> Result<(), RedisRunError> {
        self.replies.feed(bytes);
        while let Some(v) = self.replies.parse_value() {
            if let RespValue::Error(e) = &v {
                return Err(RedisRunError::Reply(e.clone()));
            }
            self.completed += 1;
            self.inflight = self.inflight.saturating_sub(1);
        }
        Ok(())
    }
}

/// Runs the Redis workload and reports server-side request throughput.
///
/// # Errors
///
/// Returns [`RedisRunError`] when the server answers a request with a
/// RESP error (e.g. a faulting compartment), so callers can degrade a
/// benchmark run instead of aborting.
///
/// # Panics
///
/// Panics if the run makes no progress (a harness bug, not a recoverable
/// condition).
pub fn run_redis(params: &RedisParams) -> Result<RedisResult, RedisRunError> {
    run_redis_with_stats(params).map(|(r, _)| r)
}

/// [`run_redis`] plus the full telemetry snapshot of the server image
/// (gate crossings, scheduler, allocators, faults, net) for the
/// `reproduce --stats` report.
pub fn run_redis_with_stats(
    params: &RedisParams,
) -> Result<(RedisResult, StatsSnapshot), RedisRunError> {
    run_redis_inner(params, false).map(|(r, s, _)| (r, s))
}

/// [`run_redis_with_stats`] plus the Chrome trace-event JSON of the
/// run's span stream, for `reproduce --trace-out`. The trace string is
/// byte-identical at any `--vcpus` width in deterministic mode.
pub fn run_redis_traced(
    params: &RedisParams,
) -> Result<(RedisResult, StatsSnapshot, String), RedisRunError> {
    run_redis_inner(params, true).map(|(r, s, t)| (r, s, t.expect("trace requested")))
}

#[allow(clippy::type_complexity)]
fn run_redis_inner(
    params: &RedisParams,
    want_trace: bool,
) -> Result<(RedisResult, StatsSnapshot, Option<String>), RedisRunError> {
    let image = plan(redis_image(params)).expect("redis image plans");
    let mut os = Os::boot(image, SERVER_IP, 1).expect("redis image boots");
    if let Some(chaos) = params.machine_chaos {
        os.img.machine.set_chaos(ChaosPlan::new(chaos));
    }
    let mut exec = make_executor(params.sched, params.vcpus);
    let mut client = Client::new(2)?;
    let mut link = Link::new();

    let io_buf_len = 16 * 1024u64;
    let rx_buf = os
        .alloc_shared_buf(io_buf_len)
        .map_err(RedisRunError::server)?;
    let tx_buf = os
        .alloc_shared_buf(io_buf_len)
        .map_err(RedisRunError::server)?;
    let c_app = os.roles.app;
    let listener = os
        .listen(REDIS_PORT)
        .map_err(|e| RedisRunError::server(format!("listen failed: {e}")))?;

    let server = Rc::new(RefCell::new(RedisServer {
        store: HashMap::new(),
        parser: RespParser::new(),
        out_host: Vec::new(),
        c_app,
        rx_buf,
        tx_buf,
        io_buf_len,
        ops: 0,
        backend: backend_tag(params.model, params.backend),
        app_vcpu: os.img.gates.ctx(c_app).vcpu.0 as u16,
        pending_spans: VecDeque::new(),
        staged_total: 0,
        sent_total: 0,
    }));
    let server_task = Rc::clone(&server);
    let mut sid: Option<SocketId> = None;
    let task = move |os: &mut Os, tid| {
        if sid.is_none() {
            match os.accept(listener) {
                Ok(Some(s)) => sid = Some(s),
                Ok(None) => return Ok(Step::Yield),
                Err(e) => {
                    return Err(flexos_machine::Fault::HardeningAbort {
                        mechanism: "redis",
                        reason: format!("accept failed: {e}"),
                    })
                }
            }
        }
        server_task
            .borrow_mut()
            .service(os, tid, sid.expect("accepted"))
    };
    exec.spawn(c_app, Box::new(task))
        .expect("spawn redis server");

    let csid = client
        .connect(REDIS_PORT)
        .map_err(|e| RedisRunError::Client(ClientError::Net(e)))?;
    for _ in 0..8 {
        client.poll()?;
        exchange(&mut link, &mut client, &mut os);
        os.poll_net().map_err(RedisRunError::server)?;
        exec.run(&mut os, 16).map_err(RedisRunError::server)?;
        exchange(&mut link, &mut client, &mut os);
    }
    assert!(client.established(csid), "handshake did not complete");

    let mut load = LoadGen::new(params.payload, params.mix, params.pipeline);
    let drive = |os: &mut Os,
                 exec: &mut Executor<Os>,
                 client: &mut Client,
                 link: &mut Link,
                 load: &mut LoadGen,
                 target: u64|
     -> Result<(), RedisRunError> {
        let mut idle = 0u32;
        while load.completed < target {
            let batch = load.batch();
            if !batch.is_empty() {
                client.send_bytes(csid, &batch)?;
            }
            client.poll()?;
            exchange(link, client, os);
            os.poll_net().map_err(RedisRunError::server)?;
            exec.run(os, 64).map_err(RedisRunError::server)?;
            os.poll_net().map_err(RedisRunError::server)?;
            exchange(link, client, os);
            client.poll()?;
            let replies = client.recv_bytes(csid, 64 * 1024)?;
            let before = load.completed;
            load.consume(&replies)?;
            if load.completed == before {
                idle += 1;
                if idle > 200 {
                    client.advance(30_000_000);
                    os.img.machine.charge(30_000_000);
                }
                assert!(idle < 5_000, "redis made no progress");
            } else {
                idle = 0;
            }
        }
        Ok(())
    };

    // Preload phase (GET mixes need populated keys); not measured.
    if params.mix == Mix::Get {
        let mut preload = LoadGen::new(params.payload, Mix::Set, 16);
        drive(&mut os, &mut exec, &mut client, &mut link, &mut preload, 16)?;
    }

    // Measured phase. A live migration, if requested, splits it in
    // two: drive to the trigger point, run the quiescence protocol and
    // swap every pair, then finish on the new backend.
    let start_cycles = os.img.machine.clock().cycles();
    let start_crossings = os.img.gates.stats().crossings;
    if let Some((after, to)) = params.migrate_to {
        let mid = after.min(params.ops);
        drive(&mut os, &mut exec, &mut client, &mut link, &mut load, mid)?;
        let (_, deferred) =
            flexos_backends::migrate_all(&mut os.img, to, flexos::gate::MigrationReason::Manual)
                .map_err(RedisRunError::server)?;
        if deferred > 0 {
            os.img
                .gates
                .poll_migrations(&mut os.img.machine)
                .map_err(RedisRunError::server)?;
        }
    }
    drive(
        &mut os,
        &mut exec,
        &mut client,
        &mut link,
        &mut load,
        params.ops,
    )?;
    let cycles = os.img.machine.clock().cycles() - start_cycles;
    let ops = load.completed;
    let result = RedisResult {
        ops,
        cycles,
        mreq_per_s: ops as f64 / (cycles as f64 / flexos_machine::CPU_FREQ_HZ as f64) / 1e6,
        crossings: os.img.gates.stats().crossings - start_crossings,
    };
    let trace = want_trace.then(|| os.trace_json());
    Ok((result, os.stats_snapshot(Some(&exec)), trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexos_machine::Schedule;

    fn quick(params: RedisParams) -> RedisResult {
        run_redis(&RedisParams { ops: 300, ..params }).expect("redis run succeeds")
    }

    /// The chaos-sweep contract: with *every* doorbell dropped, the VM
    /// RPC gates exhaust their retry budget and the run comes back as a
    /// typed error (a degraded data point), never a panic.
    #[test]
    fn total_doorbell_loss_degrades_to_an_error_not_a_panic() {
        let err = run_redis(&RedisParams {
            model: CompartmentModel::NwOnly,
            backend: BackendChoice::VmRpc,
            ops: 50,
            machine_chaos: Some(ChaosConfig {
                seed: 5,
                notify_drop: Schedule::EveryNth(1),
                ..Default::default()
            }),
            ..RedisParams::default()
        })
        .unwrap_err();
        assert!(
            matches!(err, RedisRunError::Server(_)),
            "expected a server-side gate failure, got: {err}"
        );
        assert!(err.to_string().contains("timed out"), "{err}");
    }

    #[test]
    fn get_and_set_complete_against_the_server() {
        for mix in [Mix::Set, Mix::Get] {
            let r = quick(RedisParams {
                mix,
                ..RedisParams::default()
            });
            assert!(r.ops >= 300);
            assert!(r.mreq_per_s > 0.0);
        }
    }

    #[test]
    fn isolation_reduces_redis_throughput() {
        let base = quick(RedisParams::default());
        let nw = quick(RedisParams {
            model: CompartmentModel::NwOnly,
            backend: BackendChoice::MpkShared,
            ..RedisParams::default()
        });
        assert!(nw.mreq_per_s < base.mreq_per_s);
        assert!(nw.crossings > base.crossings);
    }

    #[test]
    fn switched_stacks_cost_more_than_shared() {
        let shared = quick(RedisParams {
            model: CompartmentModel::NwSchedRest,
            backend: BackendChoice::MpkShared,
            ..RedisParams::default()
        });
        let switched = quick(RedisParams {
            model: CompartmentModel::NwSchedRest,
            backend: BackendChoice::MpkSwitched,
            ..RedisParams::default()
        });
        assert!(switched.mreq_per_s < shared.mreq_per_s);
    }

    #[test]
    fn merging_nw_and_sched_does_not_recover_throughput() {
        // The paper's Figure 5 finding: semaphores live in LibC, so
        // putting the stack and scheduler together does not help.
        let separate = quick(RedisParams {
            model: CompartmentModel::NwSchedRest,
            backend: BackendChoice::MpkShared,
            ..RedisParams::default()
        });
        let merged = quick(RedisParams {
            model: CompartmentModel::NwAndSchedRest,
            backend: BackendChoice::MpkShared,
            ..RedisParams::default()
        });
        // Merged is not meaningfully faster (within 10%).
        assert!(merged.mreq_per_s < separate.mreq_per_s * 1.10);
    }

    #[test]
    fn local_allocator_beats_global_under_sh() {
        // Figure 4's configuration: SH on the network stack, no hardware
        // isolation; the NW-only model provides the allocator domain.
        let global = quick(RedisParams {
            model: CompartmentModel::NwOnly,
            backend: BackendChoice::None,
            sh_on: vec!["lwip".into()],
            dedicated_allocators: false,
            mix: Mix::Set,
            ..RedisParams::default()
        });
        let local = quick(RedisParams {
            model: CompartmentModel::NwOnly,
            backend: BackendChoice::None,
            sh_on: vec!["lwip".into()],
            dedicated_allocators: true,
            mix: Mix::Set,
            ..RedisParams::default()
        });
        assert!(
            local.mreq_per_s > global.mreq_per_s,
            "local {:.3} vs global {:.3} MTps",
            local.mreq_per_s,
            global.mreq_per_s
        );
    }

    #[test]
    fn verified_scheduler_overhead_is_small_for_redis() {
        let coop = quick(RedisParams::default());
        let verified = quick(RedisParams {
            sched: SchedKind::Verified,
            ..RedisParams::default()
        });
        assert!(verified.mreq_per_s <= coop.mreq_per_s);
        assert!(verified.mreq_per_s > coop.mreq_per_s * 0.9);
    }
}
