//! The iperf workload: a TCP throughput server on FlexOS (paper §4,
//! Figure 3 and Table 1).
//!
//! "we created an iperf server where an untrusted network stack is
//! isolated from the rest of the OS image … At the server side, we vary
//! the size of the buffer passed to recv." (§4)
//!
//! [`run_iperf`] builds the requested image (compartment model ×
//! backend × hypervisor × per-library SH × scheduler), boots it, drives
//! an external client at it, and reports server-side throughput derived
//! purely from the server machine's cycle clock.

use crate::client::{exchange, Client, SERVER_IP};
use crate::os::Os;
use crate::profiles::{backend_tag, evaluation_image, harden, CompartmentModel, SchedKind};
use crate::smp::make_executor;
use flexos::build::{plan, BackendChoice, Hypervisor};
use flexos_kernel::exec::Step;
use flexos_machine::throughput_mbps;
use flexos_net::nic::{Link, LinkChaos};
use flexos_net::stack::{NetError, SocketId};
use std::cell::Cell;
use std::rc::Rc;

/// The iperf control/data port.
pub const IPERF_PORT: u16 = 5201;

/// Parameters of one iperf run.
#[derive(Debug, Clone)]
pub struct IperfParams {
    /// Compartment model.
    pub model: CompartmentModel,
    /// Isolation backend (ignored for the baseline model).
    pub backend: BackendChoice,
    /// Scheduler implementation.
    pub sched: SchedKind,
    /// Hypervisor underneath.
    pub hypervisor: Hypervisor,
    /// Libraries to run with the GCC SH set.
    pub sh_on: Vec<String>,
    /// Force dedicated (per-compartment) allocators.
    pub dedicated_allocators: bool,
    /// Size of the buffer passed to `recv` (the Figure 3 x-axis).
    pub recv_buf: u64,
    /// Bytes to transfer before stopping.
    pub total_bytes: u64,
    /// Seeded link chaos (loss/corruption/duplication/reordering) to
    /// apply between client and server, with its PRNG seed.
    pub link_chaos: Option<(LinkChaos, u64)>,
    /// Logical vCPUs for the run queue (1 = legacy single queue; >1 uses
    /// the deterministic SMP queue, which schedules in the identical
    /// canonical order — see `crate::smp`).
    pub vcpus: usize,
}

impl Default for IperfParams {
    fn default() -> Self {
        Self {
            model: CompartmentModel::Baseline,
            backend: BackendChoice::None,
            sched: SchedKind::Coop,
            hypervisor: Hypervisor::Kvm,
            sh_on: Vec::new(),
            dedicated_allocators: false,
            recv_buf: 16 * 1024,
            total_bytes: 4 * 1024 * 1024,
            link_chaos: None,
            vcpus: 1,
        }
    }
}

/// The outcome of one iperf run.
#[derive(Debug, Clone, Copy)]
pub struct IperfResult {
    /// Bytes the server received.
    pub bytes: u64,
    /// Server cycles spent during the measured transfer.
    pub cycles: u64,
    /// Server-side throughput in Mb/s.
    pub mbps: f64,
    /// Gate crossings on the server.
    pub crossings: u64,
    /// Context switches on the server.
    pub switches: u64,
    /// Frames the link dropped (0 unless chaos or faults are on).
    pub frames_dropped: u64,
    /// Frames the link corrupted in flight.
    pub frames_corrupted: u64,
}

/// Builds the image config for `params`.
pub fn iperf_image(params: &IperfParams) -> flexos::build::ImageConfig {
    let mut cfg =
        evaluation_image("iperf", params.model, params.backend, params.sched).on(params.hypervisor);
    for name in &params.sh_on {
        cfg = harden(cfg, name);
    }
    if params.dedicated_allocators {
        cfg.dedicated_allocators = true;
    }
    cfg
}

/// Runs iperf end to end and reports server-side throughput.
///
/// # Panics
///
/// Panics if the transfer makes no progress (a harness bug, not a
/// recoverable condition).
pub fn run_iperf(params: &IperfParams) -> IperfResult {
    let image = plan(iperf_image(params)).expect("iperf image plans");
    let mut os = Os::boot(image, SERVER_IP, 1).expect("iperf image boots");
    let mut exec = make_executor(params.sched, params.vcpus);
    let mut client = Client::new(2).expect("client boots");
    let mut link = match params.link_chaos {
        Some((chaos, seed)) => Link::with_chaos(chaos, seed),
        None => Link::new(),
    };

    // Server application task: accept, then recv in a loop counting
    // bytes, blocking on the socket semaphore when the buffer runs dry.
    let received = Rc::new(Cell::new(0u64));
    let received_task = Rc::clone(&received);
    let listener = os.listen(IPERF_PORT).expect("listen");
    let recv_buf_len = params.recv_buf;
    let app_buf = os
        .alloc_shared_buf(recv_buf_len.max(64))
        .expect("app buffer");
    let c_app = os.roles.app;
    let burst_backend = backend_tag(params.model, params.backend);
    let burst_vcpu = os.img.gates.ctx(c_app).vcpu.0 as u16;
    let mut sid: Option<SocketId> = None;
    let task = move |os: &mut Os, tid| {
        // Accept phase.
        if sid.is_none() {
            match os.accept(listener) {
                Ok(Some(s)) => sid = Some(s),
                Ok(None) => return Ok(Step::Yield),
                Err(e) => {
                    return Err(flexos_machine::Fault::HardeningAbort {
                        mechanism: "iperf",
                        reason: format!("accept failed: {e}"),
                    })
                }
            }
        }
        let s = sid.expect("accepted");
        // Receive a bounded burst per quantum by submitting the whole
        // budget onto the app → libc gate ring and flushing once, then
        // yield. The `after` hook charges the per-recv application work
        // (iperf's accounting) between two receives, exactly where the
        // old sequential loop charged it; completions the flush posted
        // before an early stop stay delivered — the async payoff.
        let mut budget = 8usize;
        while budget > 0 {
            let app_tax = os.tax.app;
            let app_work = os.img.machine.costs().app_request;
            let counter = &received_task;
            let burst_t0 = os.img.machine.clock().cycles();
            let burst_before = counter.get();
            let results = os.recv_batch(s, app_buf, recv_buf_len, budget, |m, _rt, r| {
                Ok(match r {
                    Ok(n) if *n > 0 => {
                        counter.set(counter.get() + n);
                        m.charge(app_work + app_work * app_tax / 100);
                        Some(recv_buf_len)
                    }
                    _ => None,
                })
            })?;
            // One request span per receive burst that moved bytes: the
            // iperf "request" is a batched recv plus its app work.
            if counter.get() > burst_before {
                let t1 = os.img.machine.clock().cycles();
                let span = os.img.machine.span_trace_mut().begin_request(
                    "iperf",
                    burst_backend,
                    burst_vcpu,
                    burst_t0,
                );
                os.img
                    .machine
                    .span_trace_mut()
                    .end_request(span, burst_vcpu, t1);
            }
            budget -= results.len();
            match results.last() {
                Some(Ok(0)) => return Ok(Step::Done), // EOF
                Some(Err(NetError::WouldBlock)) => match os.wait_readable(tid, s)? {
                    Some(ch) => return Ok(Step::Block(ch)),
                    None => continue, // data raced in; retry within budget
                },
                Some(Err(e)) => {
                    return Err(flexos_machine::Fault::HardeningAbort {
                        mechanism: "iperf",
                        reason: format!("recv failed: {e}"),
                    })
                }
                _ => break, // budget exhausted on successful receives
            }
        }
        Ok(Step::Yield)
    };
    exec.spawn(c_app, Box::new(task))
        .expect("spawn iperf server");

    // Client connects and then keeps the pipe full.
    let csid = client.connect(IPERF_PORT).expect("client connect");
    for _ in 0..8 {
        client.poll().expect("client poll");
        exchange(&mut link, &mut client, &mut os);
        os.poll_net().expect("server poll");
        exec.run(&mut os, 16).expect("exec");
        exchange(&mut link, &mut client, &mut os);
    }
    assert!(client.established(csid), "handshake did not complete");

    // Measured transfer.
    let start_cycles = os.img.machine.clock().cycles();
    let start_crossings = os.img.gates.stats().crossings;
    let mut sent = 0u64;
    let mut idle_rounds = 0u32;
    while received.get() < params.total_bytes {
        if sent < params.total_bytes {
            sent += client.pump_zeroes(csid, 32 * 1024).expect("client send");
        }
        client.poll().expect("client poll");
        exchange(&mut link, &mut client, &mut os);
        os.poll_net().expect("server poll");
        let before = received.get();
        exec.run(&mut os, 64).expect("exec");
        os.poll_net().expect("server poll 2");
        exchange(&mut link, &mut client, &mut os);
        if received.get() == before {
            idle_rounds += 1;
            // Nudge retransmission timers if we are somehow stuck.
            if idle_rounds > 200 {
                client.advance(30_000_000);
                os.img.machine.charge(30_000_000);
            }
            assert!(idle_rounds < 5_000, "iperf made no progress");
        } else {
            idle_rounds = 0;
        }
    }
    let cycles = os.img.machine.clock().cycles() - start_cycles;
    let bytes = received.get();
    IperfResult {
        bytes,
        cycles,
        mbps: throughput_mbps(bytes, cycles),
        crossings: os.img.gates.stats().crossings - start_crossings,
        switches: exec.summary().switches,
        frames_dropped: link.dropped,
        frames_corrupted: link.corrupted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(params: IperfParams) -> IperfResult {
        run_iperf(&IperfParams {
            total_bytes: 256 * 1024,
            ..params
        })
    }

    #[test]
    fn baseline_transfers_all_bytes() {
        let r = quick(IperfParams::default());
        assert!(r.bytes >= 256 * 1024);
        assert!(r.mbps > 0.0);
    }

    #[test]
    fn transfer_completes_under_injected_loss() {
        let clean = quick(IperfParams::default());
        let lossy = quick(IperfParams {
            link_chaos: Some((
                LinkChaos {
                    loss_per_mille: 100,
                    ..Default::default()
                },
                42,
            )),
            ..IperfParams::default()
        });
        // Every byte still arrives (TCP retransmits), goodput degrades.
        assert!(lossy.bytes >= 256 * 1024);
        assert!(lossy.frames_dropped > 0, "chaos never fired");
        assert!(
            lossy.mbps < clean.mbps,
            "loss should cost goodput ({:.0} vs {:.0} Mb/s)",
            lossy.mbps,
            clean.mbps
        );
    }

    #[test]
    fn mpk_isolation_is_slower_than_baseline_at_small_buffers() {
        let base = quick(IperfParams {
            recv_buf: 256,
            ..IperfParams::default()
        });
        let mpk = quick(IperfParams {
            model: CompartmentModel::NwOnly,
            backend: BackendChoice::MpkShared,
            recv_buf: 256,
            ..IperfParams::default()
        });
        assert!(
            mpk.mbps < base.mbps,
            "MPK ({:.0} Mb/s) should trail baseline ({:.0} Mb/s) at 256 B",
            mpk.mbps,
            base.mbps
        );
        assert!(mpk.crossings > base.crossings);
    }

    #[test]
    fn vm_rpc_is_slower_than_mpk() {
        let mpk = quick(IperfParams {
            model: CompartmentModel::NwOnly,
            backend: BackendChoice::MpkShared,
            recv_buf: 1024,
            ..IperfParams::default()
        });
        let vm = quick(IperfParams {
            model: CompartmentModel::NwOnly,
            backend: BackendChoice::VmRpc,
            recv_buf: 1024,
            ..IperfParams::default()
        });
        assert!(vm.mbps < mpk.mbps);
    }

    #[test]
    fn sh_on_everything_is_much_slower_than_sh_on_scheduler() {
        let sched_only = quick(IperfParams {
            sh_on: vec!["uksched".into()],
            ..IperfParams::default()
        });
        let all = quick(IperfParams {
            sh_on: vec![
                "iperf".into(),
                "libc".into(),
                "ukalloc".into(),
                "uknetdev".into(),
                "lwip".into(),
                "uksched".into(),
            ],
            ..IperfParams::default()
        });
        assert!(all.mbps < sched_only.mbps);
    }

    #[test]
    fn xen_baseline_trails_kvm_baseline() {
        let kvm = quick(IperfParams::default());
        let xen = quick(IperfParams {
            hypervisor: Hypervisor::Xen,
            ..IperfParams::default()
        });
        assert!(xen.mbps < kvm.mbps);
    }

    #[test]
    fn verified_scheduler_costs_little_for_iperf() {
        let coop = quick(IperfParams::default());
        let verified = quick(IperfParams {
            sched: SchedKind::Verified,
            ..IperfParams::default()
        });
        // Slower, but within a few percent (switch costs are a small
        // share of the packet-processing work).
        assert!(verified.mbps <= coop.mbps);
        assert!(verified.mbps > coop.mbps * 0.85);
    }
}
