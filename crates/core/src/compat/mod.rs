//! Compatibility analysis: pairwise checks, the incompatibility graph,
//! graph coloring, and SH-variant enumeration (paper §2).

pub mod cache;
pub mod check;
pub mod coloring;
pub mod graph;
pub mod variants;

pub use cache::{CacheStats, CompatCache};
pub use check::{compatible, incompatibilities, violations, Violation, ViolationKind};
pub use coloring::{color, dsatur, exact, is_valid, Coloring, EXACT_THRESHOLD};
pub use graph::{Graph, IncompatGraph};
pub use variants::{
    enumerate_deployments, enumerate_deployments_with, Deployment, MAX_COMBINATIONS,
};
