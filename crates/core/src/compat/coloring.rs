//! Graph coloring: deriving the minimal compartmentalization.
//!
//! "Graph coloring assigns the smallest number of colors to the vertices
//! of a graph such that no two adjacent vertices have the same color. For
//! each color, we will instantiate a separate compartment." (paper §2)
//!
//! Two algorithms are provided:
//!
//! * [`dsatur`] — the classic saturation-degree greedy heuristic,
//!   linear-ish and good in practice;
//! * [`exact`] — branch-and-bound exact chromatic coloring, feasible for
//!   the graph sizes unikernel images produce (tens of vertices, sparse).
//!
//! [`color`] picks `exact` for small graphs and falls back to `dsatur`,
//! and the property tests check `dsatur` never beats `exact` and both are
//! always valid.

use super::graph::Graph;

/// A proper coloring: `colors[v]` is the compartment index of vertex `v`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    /// Color (compartment) per vertex.
    pub colors: Vec<usize>,
    /// Number of distinct colors used.
    pub num_colors: usize,
}

impl Coloring {
    /// Groups vertices by color: `groups()[c]` lists the vertices painted
    /// `c`.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.num_colors];
        for (v, &c) in self.colors.iter().enumerate() {
            out[c].push(v);
        }
        out
    }
}

/// Checks that `coloring` is proper for `g` and uses exactly
/// `num_colors` color values in `0..num_colors`.
pub fn is_valid(g: &Graph, coloring: &Coloring) -> bool {
    if coloring.colors.len() != g.len() {
        return false;
    }
    let mut seen = vec![false; coloring.num_colors];
    for v in 0..g.len() {
        let c = coloring.colors[v];
        if c >= coloring.num_colors {
            return false;
        }
        seen[c] = true;
        for u in 0..v {
            if g.has_edge(u, v) && coloring.colors[u] == c {
                return false;
            }
        }
    }
    seen.iter().all(|&s| s)
}

/// DSATUR greedy coloring (Brélaz 1979): repeatedly color the vertex with
/// the highest *saturation degree* (number of distinct neighbour colors),
/// breaking ties by degree.
pub fn dsatur(g: &Graph) -> Coloring {
    let n = g.len();
    if n == 0 {
        return Coloring {
            colors: Vec::new(),
            num_colors: 0,
        };
    }
    let mut colors: Vec<Option<usize>> = vec![None; n];
    // Bitmask of colors used by each vertex's neighbours.
    let mut nbr_colors: Vec<u64> = vec![0; n];
    let mut num_colors = 0usize;

    for _ in 0..n {
        // Pick the uncolored vertex with max saturation, tie-break by degree.
        let v = (0..n)
            .filter(|&v| colors[v].is_none())
            .max_by_key(|&v| (nbr_colors[v].count_ones(), g.degree(v)))
            .expect("an uncolored vertex exists");
        // Smallest color not used by neighbours.
        let c = (0..)
            .find(|&c| nbr_colors[v] & (1 << c) == 0)
            .expect("color < 64 exists");
        colors[v] = Some(c);
        num_colors = num_colors.max(c + 1);
        let mut nbrs = g.neighbors(v);
        while nbrs != 0 {
            let u = nbrs.trailing_zeros() as usize;
            nbrs &= nbrs - 1;
            nbr_colors[u] |= 1 << c;
        }
    }
    Coloring {
        colors: colors
            .into_iter()
            .map(|c| c.expect("all colored"))
            .collect(),
        num_colors,
    }
}

/// Exact chromatic coloring by iterative-deepening backtracking: try
/// `k = clique_lower_bound..=dsatur_upper_bound` and return the first
/// feasible assignment.
///
/// Worst case is exponential; unikernel-scale graphs (≤ ~32 sparse
/// vertices) solve instantly. For larger/denser graphs prefer [`dsatur`].
pub fn exact(g: &Graph) -> Coloring {
    let n = g.len();
    if n == 0 {
        return Coloring {
            colors: Vec::new(),
            num_colors: 0,
        };
    }
    let upper = dsatur(g);
    let lower = greedy_clique_size(g).max(1);
    for k in lower..upper.num_colors {
        if let Some(colors) = try_k_coloring(g, k) {
            return Coloring {
                colors,
                num_colors: k,
            };
        }
    }
    upper
}

/// Colors the graph: exact for ≤ [`EXACT_THRESHOLD`] vertices, DSATUR
/// beyond.
pub fn color(g: &Graph) -> Coloring {
    if g.len() <= EXACT_THRESHOLD {
        exact(g)
    } else {
        dsatur(g)
    }
}

/// Vertex-count threshold below which [`color`] runs the exact solver.
pub const EXACT_THRESHOLD: usize = 24;

/// Size of a greedily grown clique — a cheap lower bound on the chromatic
/// number.
fn greedy_clique_size(g: &Graph) -> usize {
    let n = g.len();
    let mut best = 0;
    for seed in 0..n {
        let mut clique = 1usize;
        let mut candidates = g.neighbors(seed);
        let mut in_clique: u64 = 1 << seed;
        while candidates != 0 {
            // Pick the candidate with the most edges into remaining candidates.
            let mut pick = None;
            let mut pick_score = 0u32;
            let mut c = candidates;
            while c != 0 {
                let v = c.trailing_zeros() as usize;
                c &= c - 1;
                let score = (g.neighbors(v) & candidates).count_ones();
                if pick.is_none() || score > pick_score {
                    pick = Some(v);
                    pick_score = score;
                }
            }
            let v = pick.expect("candidates nonempty");
            in_clique |= 1 << v;
            clique += 1;
            candidates &= g.neighbors(v);
            candidates &= !in_clique;
        }
        best = best.max(clique);
    }
    best
}

/// Backtracking k-colorability with vertex ordering by degree (descending)
/// and symmetry breaking (a vertex may use at most one brand-new color).
fn try_k_coloring(g: &Graph, k: usize) -> Option<Vec<usize>> {
    let n = g.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    let mut colors: Vec<Option<usize>> = vec![None; n];

    fn backtrack(
        g: &Graph,
        order: &[usize],
        pos: usize,
        k: usize,
        used_so_far: usize,
        colors: &mut Vec<Option<usize>>,
    ) -> bool {
        if pos == order.len() {
            return true;
        }
        let v = order[pos];
        // Colors to try: all already-introduced colors plus one fresh one.
        let limit = (used_so_far + 1).min(k);
        'next_color: for c in 0..limit {
            let mut nbrs = g.neighbors(v);
            while nbrs != 0 {
                let u = nbrs.trailing_zeros() as usize;
                nbrs &= nbrs - 1;
                if colors[u] == Some(c) {
                    continue 'next_color;
                }
            }
            colors[v] = Some(c);
            let new_used = used_so_far.max(c + 1);
            if backtrack(g, order, pos + 1, k, new_used, colors) {
                return true;
            }
            colors[v] = None;
        }
        false
    }

    if backtrack(g, &order, 0, k, 0, &mut colors) {
        // Normalize: colors already in 0..k, may use fewer than k — remap
        // to a dense 0..m range.
        let raw: Vec<usize> = colors.into_iter().map(|c| c.expect("complete")).collect();
        let mut remap = std::collections::BTreeMap::new();
        let mut dense = Vec::with_capacity(raw.len());
        for c in raw {
            let next = remap.len();
            let d = *remap.entry(c).or_insert(next);
            dense.push(d);
        }
        Some(dense)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    fn complete(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in 0..i {
                g.add_edge(i, j);
            }
        }
        g
    }

    #[test]
    fn edgeless_graph_is_one_color() {
        let g = Graph::new(5);
        let c = color(&g);
        assert_eq!(c.num_colors, 1);
        assert!(is_valid(&g, &c));
    }

    #[test]
    fn empty_graph_is_zero_colors() {
        let g = Graph::new(0);
        assert_eq!(color(&g).num_colors, 0);
        assert_eq!(dsatur(&g).num_colors, 0);
    }

    #[test]
    fn even_cycle_needs_two_colors() {
        let g = cycle(6);
        let c = exact(&g);
        assert_eq!(c.num_colors, 2);
        assert!(is_valid(&g, &c));
    }

    #[test]
    fn odd_cycle_needs_three_colors() {
        let g = cycle(7);
        let c = exact(&g);
        assert_eq!(c.num_colors, 3);
        assert!(is_valid(&g, &c));
        // DSATUR also gets odd cycles right.
        let d = dsatur(&g);
        assert_eq!(d.num_colors, 3);
        assert!(is_valid(&g, &d));
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        // "In the worst case where all libraries have conflicts, each
        // library will be instantiated in its own compartment."
        for n in 1..=8 {
            let g = complete(n);
            let c = exact(&g);
            assert_eq!(c.num_colors, n);
            assert!(is_valid(&g, &c));
        }
    }

    #[test]
    fn petersen_graph_is_three_chromatic() {
        // A classic case where naive greedy orderings can use 4.
        let mut g = Graph::new(10);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5); // outer cycle
            g.add_edge(5 + i, 5 + (i + 2) % 5); // inner pentagram
            g.add_edge(i, 5 + i); // spokes
        }
        let c = exact(&g);
        assert_eq!(c.num_colors, 3);
        assert!(is_valid(&g, &c));
    }

    #[test]
    fn star_graph_is_two_chromatic() {
        let mut g = Graph::new(9);
        for i in 1..9 {
            g.add_edge(0, i);
        }
        assert_eq!(exact(&g).num_colors, 2);
    }

    #[test]
    fn groups_partition_vertices() {
        let g = cycle(5);
        let c = exact(&g);
        let groups = c.groups();
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
        for (color, group) in groups.iter().enumerate() {
            for &v in group {
                assert_eq!(c.colors[v], color);
            }
        }
    }

    #[test]
    fn is_valid_rejects_monochromatic_edges() {
        let g = cycle(4);
        let bad = Coloring {
            colors: vec![0, 0, 1, 1],
            num_colors: 2,
        };
        assert!(!is_valid(&g, &bad)); // edge (0,1) monochromatic
    }

    #[test]
    fn is_valid_rejects_unused_color_counts() {
        let g = Graph::new(2);
        let bad = Coloring {
            colors: vec![0, 0],
            num_colors: 2,
        };
        assert!(!is_valid(&g, &bad));
    }
}
