//! Memoized pairwise compatibility verdicts.
//!
//! The design-space exploration of §2 is combinatorial: enumerating SH
//! variants re-checks the same `(victim, offender)` spec pairs once per
//! combination, and candidate generation re-plans (and therefore
//! re-checks) the same pairs once per backend × hardening toggle. The
//! verdict for a pair, however, depends only on the two *effective*
//! (post-SH-rewrite) specs — so a shared [`CompatCache`] lets the whole
//! exploration check each distinct pair exactly once.
//!
//! **Key.** Entries are keyed by the ordered pair of spec
//! *fingerprints* `(fp(victim), fp(offender))`. A fingerprint
//! ([`CompatCache::fingerprint`]) hashes the complete effective spec —
//! name, memory behaviour, call behaviour, API and grants — so two
//! `(lib, sh)` choices collide only if hardening rewrites them to
//! identical specs, in which case their verdicts are identical too. This
//! realizes the `(lib_a, sh_a, lib_b, sh_b)` key: the effective spec *is*
//! the pair of library and applied hardening.
//!
//! **Concurrency.** The cache is sharded 16 ways, each shard behind its
//! own `RwLock`, so the parallel exploration driver's threads mostly take
//! uncontended read locks once the working set is warm. Hit/miss counters
//! are plain atomics; [`CompatCache::stats`] exposes them for benchmarks
//! and reports.

use super::check::{violations, Violation};
use super::coloring::{color, Coloring};
use super::graph::IncompatGraph;
use crate::spec::model::LibSpec;
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of independent shards; a power of two so the shard index is a
/// mask of the key hash.
const SHARDS: usize = 16;

type Shard = RwLock<HashMap<(u64, u64), Arc<Vec<Violation>>>>;

/// Hit/miss/occupancy counters of a [`CompatCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the underlying check.
    pub misses: u64,
    /// Distinct `(victim, offender)` verdicts stored.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache, in `[0, 1]`
    /// (`0.0` when there were no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, thread-safe memo table for directional
/// [`violations`] verdicts. See the module docs for the key scheme.
#[derive(Debug, Default)]
pub struct CompatCache {
    shards: [Shard; SHARDS],
    /// Whole incompatibility graphs keyed by the fingerprint vector of
    /// their spec set: across backends the same SH mask yields the same
    /// effective specs, so exploration rebuilds each graph once.
    graphs: RwLock<HashMap<Vec<u64>, Arc<IncompatGraph>>>,
    /// Colorings keyed by the colored graph's adjacency (graphs are at
    /// most 64 vertices, so the bitmask rows are the whole structure).
    colorings: RwLock<HashMap<Vec<u64>, Coloring>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CompatCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The fingerprint of a spec: a hash over every field that the
    /// compatibility check reads. Two specs with equal fingerprints are
    /// treated as the same cache key (the full spec is not stored), so
    /// the fingerprint must — and does — cover the entire spec.
    pub fn fingerprint(spec: &LibSpec) -> u64 {
        let mut h = DefaultHasher::new();
        spec.hash(&mut h);
        h.finish()
    }

    fn shard_of(&self, key: (u64, u64)) -> &Shard {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Memoized [`violations`]: what `offender` may do to `victim`
    /// beyond `victim`'s grants. Equal to a fresh check by construction.
    pub fn violations(&self, victim: &LibSpec, offender: &LibSpec) -> Arc<Vec<Violation>> {
        self.violations_keyed(
            Self::fingerprint(victim),
            victim,
            Self::fingerprint(offender),
            offender,
        )
    }

    /// [`CompatCache::violations`] with caller-precomputed fingerprints.
    ///
    /// Fingerprinting a spec costs more than a warm lookup, so hot paths
    /// (graph construction, exploration scoring) hash each spec once and
    /// use this entry point for the O(n²) pair lookups. `victim_fp` /
    /// `offender_fp` MUST equal `fingerprint(victim)` /
    /// `fingerprint(offender)` — mismatched keys poison the cache.
    pub fn violations_keyed(
        &self,
        victim_fp: u64,
        victim: &LibSpec,
        offender_fp: u64,
        offender: &LibSpec,
    ) -> Arc<Vec<Violation>> {
        let key = (victim_fp, offender_fp);
        let shard = self.shard_of(key);
        if let Some(hit) = shard.read().expect("compat cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(violations(victim, offender));
        let mut shard = shard.write().expect("compat cache poisoned");
        // A racing thread may have inserted meanwhile; keep the first
        // entry so all readers share one allocation.
        Arc::clone(shard.entry(key).or_insert(fresh))
    }

    /// Memoized [`IncompatGraph`] construction: whole graphs are keyed by
    /// the fingerprint vector of their spec set, so re-planning the same
    /// effective specs (e.g. one SH mask under each backend) rebuilds the
    /// graph once. Misses fill pairwise entries through
    /// [`CompatCache::violations_keyed`], so even distinct spec sets
    /// share per-pair work.
    pub fn graph(&self, specs: &[LibSpec]) -> Arc<IncompatGraph> {
        let fps: Vec<u64> = specs.iter().map(Self::fingerprint).collect();
        self.graph_keyed(specs, &fps)
    }

    /// [`CompatCache::graph`] with caller-precomputed fingerprints
    /// (`fps[i]` MUST equal `fingerprint(&specs[i])`).
    pub(crate) fn graph_keyed(&self, specs: &[LibSpec], fps: &[u64]) -> Arc<IncompatGraph> {
        if let Some(hit) = self.graphs.read().expect("compat cache poisoned").get(fps) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(IncompatGraph::build_keyed(specs, fps, self));
        let mut graphs = self.graphs.write().expect("compat cache poisoned");
        Arc::clone(graphs.entry(fps.to_vec()).or_insert(fresh))
    }

    /// Memoized graph coloring, keyed by the graph's adjacency bitmasks.
    /// Identical to [`color`] by construction (the coloring algorithms
    /// are deterministic).
    pub fn coloring(&self, g: &super::graph::Graph) -> Coloring {
        let key: Vec<u64> = (0..g.len()).map(|v| g.neighbors(v)).collect();
        if let Some(hit) = self
            .colorings
            .read()
            .expect("compat cache poisoned")
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = color(g);
        let mut colorings = self.colorings.write().expect("compat cache poisoned");
        colorings.entry(key).or_insert(fresh).clone()
    }

    /// Memoized symmetric check: whether the two libraries may share a
    /// compartment.
    pub fn compatible(&self, a: &LibSpec, b: &LibSpec) -> bool {
        self.violations(a, b).is_empty() && self.violations(b, a).is_empty()
    }

    /// Memoized both-directions violation list, as
    /// [`incompatibilities`](super::check::incompatibilities) returns it.
    pub fn incompatibilities(&self, a: &LibSpec, b: &LibSpec) -> Vec<Violation> {
        let mut out: Vec<Violation> = self.violations(a, b).as_ref().clone();
        out.extend(self.violations(b, a).iter().cloned());
        out
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.read().expect("compat cache poisoned").len())
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compat::check::{compatible, incompatibilities};

    fn sched() -> LibSpec {
        LibSpec::verified_scheduler()
    }

    fn raw(name: &str) -> LibSpec {
        LibSpec::unsafe_c(name)
    }

    #[test]
    fn cached_verdicts_match_fresh_checks() {
        let cache = CompatCache::new();
        let specs = [sched(), raw("rawlib"), raw("other")];
        for a in &specs {
            for b in &specs {
                assert_eq!(*cache.violations(a, b), violations(a, b));
                assert_eq!(cache.compatible(a, b), compatible(a, b));
                assert_eq!(cache.incompatibilities(a, b), incompatibilities(a, b));
            }
        }
    }

    #[test]
    fn repeat_lookups_hit() {
        let cache = CompatCache::new();
        let (a, b) = (sched(), raw("rawlib"));
        cache.violations(&a, &b);
        cache.violations(&a, &b);
        cache.violations(&a, &b);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.entries, 1);
        assert!(stats.hit_rate() > 0.6);
    }

    #[test]
    fn direction_matters_in_the_key() {
        let cache = CompatCache::new();
        let (a, b) = (sched(), raw("rawlib"));
        // sched -> raw and raw -> sched are distinct verdicts.
        assert_ne!(*cache.violations(&a, &b), *cache.violations(&b, &a));
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn fingerprint_distinguishes_name_and_behaviour() {
        assert_ne!(
            CompatCache::fingerprint(&raw("a")),
            CompatCache::fingerprint(&raw("b"))
        );
        assert_ne!(
            CompatCache::fingerprint(&sched()),
            CompatCache::fingerprint(&raw("uksched_verified"))
        );
        assert_eq!(
            CompatCache::fingerprint(&sched()),
            CompatCache::fingerprint(&sched())
        );
    }

    #[test]
    fn stats_start_empty() {
        let stats = CompatCache::new().stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
        assert_eq!(stats.hit_rate(), 0.0);
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache = CompatCache::new();
        let specs: Vec<LibSpec> = (0..8)
            .map(|i| {
                if i % 2 == 0 {
                    raw(&format!("r{i}"))
                } else {
                    sched()
                }
            })
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for a in &specs {
                        for b in &specs {
                            assert_eq!(*cache.violations(a, b), violations(a, b));
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 4 * 64);
        assert!(stats.entries <= 64);
    }
}
