//! Pairwise compatibility checking between library specs.
//!
//! "Given two libraries and their metadata, we now have enough information
//! to automatically decide whether they can run in the same compartment.
//! If both libraries have no Requires clause, the answer is yes. If any of
//! the libraries has such clauses, each clause can be automatically
//! checked in the presence of the other library." (paper §2)
//!
//! The check is directional: [`violations`] lists what `offender`'s
//! declared (possibly adversarial) behaviour would do to `victim` beyond
//! what `victim`'s `[Requires]` grants. Two libraries are compatible iff
//! neither direction produces violations.

use crate::spec::model::{CallBehavior, GrantKind, LibSpec, Region};
use std::fmt;

/// One way `offender` exceeds `victim`'s grants when co-located.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The library whose safety expectation is broken.
    pub victim: String,
    /// The library whose behaviour breaks it.
    pub offender: String,
    /// What exactly is not granted.
    pub kind: ViolationKind,
}

/// The specific un-granted behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// Offender may read a region of victim that victim does not grant.
    UngrantedRead(Region),
    /// Offender may write a region of victim that victim does not grant.
    UngrantedWrite(Region),
    /// Offender may call arbitrary victim code but victim restricts entry
    /// points.
    UngrantedArbitraryCall,
    /// Offender calls a specific function the victim does not grant.
    UngrantedCall(String),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ViolationKind::UngrantedRead(r) => write!(
                f,
                "{} may read {}'s {r} memory, which {} does not grant",
                self.offender, self.victim, self.victim
            ),
            ViolationKind::UngrantedWrite(r) => write!(
                f,
                "{} may write {}'s {r} memory, which {} does not grant",
                self.offender, self.victim, self.victim
            ),
            ViolationKind::UngrantedArbitraryCall => write!(
                f,
                "{} may execute arbitrary code in {}, which restricts its entry points",
                self.offender, self.victim
            ),
            ViolationKind::UngrantedCall(func) => write!(
                f,
                "{} calls {}::{func}, which {} does not grant",
                self.offender, self.victim, self.victim
            ),
        }
    }
}

/// Lists everything `offender` may do to `victim` (per its declared,
/// worst-case behaviour) that `victim`'s `[Requires]` does not grant.
///
/// Region semantics: `offender`'s `Own`/`Shared` accesses are relative to
/// *itself*; only the wildcard `*` reaches `victim`'s `Own` memory.
/// Accesses to `Shared` touch the common segment and therefore need the
/// victim's `Shared` grant (the victim may depend on shared state it
/// reads not being written by others).
pub fn violations(victim: &LibSpec, offender: &LibSpec) -> Vec<Violation> {
    let mut out = Vec::new();
    if !victim.requires.is_constrained() {
        return out;
    }
    let mut push = |kind: ViolationKind| {
        out.push(Violation {
            victim: victim.name.clone(),
            offender: offender.name.clone(),
            kind,
        });
    };

    // --- memory ----------------------------------------------------------
    let read = &offender.mem.read;
    if read.is_star()
        && !victim
            .requires
            .permits(&offender.name, &GrantKind::Read(Region::Own))
    {
        push(ViolationKind::UngrantedRead(Region::Own));
    }
    if read.contains(Region::Shared)
        && !victim
            .requires
            .permits(&offender.name, &GrantKind::Read(Region::Shared))
    {
        push(ViolationKind::UngrantedRead(Region::Shared));
    }
    let write = &offender.mem.write;
    if write.is_star()
        && !victim
            .requires
            .permits(&offender.name, &GrantKind::Write(Region::Own))
    {
        push(ViolationKind::UngrantedWrite(Region::Own));
    }
    if write.contains(Region::Shared)
        && !victim
            .requires
            .permits(&offender.name, &GrantKind::Write(Region::Shared))
    {
        push(ViolationKind::UngrantedWrite(Region::Shared));
    }

    // --- control flow -----------------------------------------------------
    match &offender.call {
        CallBehavior::Star => {
            if !victim.requires.permits(&offender.name, &GrantKind::CallAny) {
                push(ViolationKind::UngrantedArbitraryCall);
            }
        }
        CallBehavior::Funcs(funcs) => {
            for f in funcs {
                if f.lib == victim.name
                    && !victim
                        .requires
                        .permits(&offender.name, &GrantKind::Call(f.func.clone()))
                {
                    push(ViolationKind::UngrantedCall(f.func.clone()));
                }
            }
        }
    }
    out
}

/// Whether two libraries may share a compartment.
pub fn compatible(a: &LibSpec, b: &LibSpec) -> bool {
    violations(a, b).is_empty() && violations(b, a).is_empty()
}

/// Both directions of violations, for diagnostics.
pub fn incompatibilities(a: &LibSpec, b: &LibSpec) -> Vec<Violation> {
    let mut v = violations(a, b);
    v.extend(violations(b, a));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::model::{Grant, GrantSubject, MemBehavior, Requires};
    use crate::spec::transform::{apply_sh, suggest_sh, Analysis};

    fn sched() -> LibSpec {
        LibSpec::verified_scheduler()
    }

    fn rawlib() -> LibSpec {
        LibSpec::unsafe_c("rawlib")
    }

    #[test]
    fn paper_example_scheduler_vs_unsafe_c_is_incompatible() {
        // "these two libraries cannot be run in the same compartment".
        assert!(!compatible(&sched(), &rawlib()));
        let v = violations(&sched(), &rawlib());
        assert!(v
            .iter()
            .any(|v| v.kind == ViolationKind::UngrantedWrite(Region::Own)));
    }

    #[test]
    fn two_unconstrained_libraries_are_compatible() {
        // "If both libraries have no Requires clause, the answer is yes."
        assert!(compatible(&rawlib(), &LibSpec::unsafe_c("other")));
    }

    #[test]
    fn two_schedule_like_libraries_are_compatible() {
        let mut other = sched();
        other.name = "uklock".into();
        // `other` calls only alloc functions, reads/writes Own+Shared;
        // sched grants Read(Own)+Shared both ways.
        assert!(compatible(&sched(), &other));
    }

    #[test]
    fn sh_makes_the_unsafe_library_cohabitable() {
        // Paper: "the SH version will be able to share a compartment with
        // the scheduler, while the original version will require a
        // separate compartment."
        let raw = rawlib();
        let hardened = apply_sh(
            &raw,
            &suggest_sh(&raw),
            &Analysis {
                call_targets: Some(
                    [crate::spec::model::FuncRef::new(
                        "uksched_verified",
                        "yield",
                    )]
                    .into(),
                ),
                ..Analysis::well_behaved()
            },
        );
        assert!(compatible(&sched(), &hardened));
        assert!(!compatible(&sched(), &raw));
    }

    #[test]
    fn ungranted_shared_write_is_flagged() {
        let mut victim = sched();
        // Victim revokes the shared-write grant.
        victim.requires = Requires::granting(vec![
            Grant::any(GrantKind::Read(Region::Own)),
            Grant::any(GrantKind::Read(Region::Shared)),
        ]);
        let mut writer = sched();
        writer.name = "writer".into();
        let v = violations(&victim, &writer);
        assert!(v
            .iter()
            .any(|v| v.kind == ViolationKind::UngrantedWrite(Region::Shared)));
    }

    #[test]
    fn call_grants_are_per_function() {
        let victim = sched();
        let mut caller = LibSpec {
            name: "caller".into(),
            mem: MemBehavior::well_behaved(),
            call: CallBehavior::funcs([("uksched_verified", "thread_add")]),
            api: Vec::new(),
            requires: Requires::unconstrained(),
        };
        assert!(compatible(&victim, &caller));
        // Calling a non-granted internal function is a violation.
        caller.call = CallBehavior::funcs([("uksched_verified", "internal_requeue")]);
        let v = violations(&victim, &caller);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0].kind, ViolationKind::UngrantedCall(_)));
    }

    #[test]
    fn arbitrary_execution_needs_call_any_grant() {
        let mut victim = sched();
        let hijackable = rawlib();
        assert!(violations(&victim, &hijackable)
            .iter()
            .any(|v| v.kind == ViolationKind::UngrantedArbitraryCall));
        // Granting Call(*) silences that specific violation.
        victim
            .requires
            .grants
            .as_mut()
            .unwrap()
            .push(Grant::any(GrantKind::CallAny));
        assert!(!violations(&victim, &hijackable)
            .iter()
            .any(|v| v.kind == ViolationKind::UngrantedArbitraryCall));
    }

    #[test]
    fn lib_scoped_grants_distinguish_offenders() {
        let mut victim = sched();
        victim.requires.grants.as_mut().unwrap().push(Grant {
            subject: GrantSubject::Lib("trusted_writer".into()),
            kind: GrantKind::Write(Region::Own),
        });
        let mut trusted = rawlib();
        trusted.name = "trusted_writer".into();
        let v = violations(&victim, &trusted);
        assert!(!v
            .iter()
            .any(|v| v.kind == ViolationKind::UngrantedWrite(Region::Own)));
        // A different star-writer still violates.
        let v = violations(&victim, &rawlib());
        assert!(v
            .iter()
            .any(|v| v.kind == ViolationKind::UngrantedWrite(Region::Own)));
    }

    #[test]
    fn compatibility_is_symmetric() {
        let libs = [sched(), rawlib(), LibSpec::unsafe_c("x")];
        for a in &libs {
            for b in &libs {
                assert_eq!(compatible(a, b), compatible(b, a));
            }
        }
    }

    #[test]
    fn violations_display_names_both_parties() {
        let v = violations(&sched(), &rawlib());
        let text = v[0].to_string();
        assert!(text.contains("rawlib"));
        assert!(text.contains("uksched_verified"));
    }
}
