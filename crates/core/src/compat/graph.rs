//! The incompatibility graph over a set of library specs.
//!
//! "Armed with information about pair-wise incompatibility, selecting the
//! smallest number of compartments in a FlexOS image can be reduced to the
//! classical graph coloring problem: each library is a vertex, and an edge
//! connects two incompatible libraries." (paper §2)

use super::cache::CompatCache;
use super::check::{incompatibilities, Violation};
use crate::spec::model::LibSpec;
use std::collections::BTreeMap;

/// An undirected graph over `n` vertices, adjacency stored as bitmasks
/// (supports up to 64 vertices — far beyond any unikernel image's
/// micro-library count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    adj: Vec<u64>,
}

impl Graph {
    /// Maximum supported vertex count.
    pub const MAX_VERTICES: usize = 64;

    /// Creates an edgeless graph with `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn new(n: usize) -> Self {
        assert!(
            n <= Self::MAX_VERTICES,
            "graph supports at most 64 vertices"
        );
        Self { n, adj: vec![0; n] }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds the undirected edge `(a, b)`. Self-loops are ignored.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        self.adj[a] |= 1 << b;
        self.adj[b] |= 1 << a;
    }

    /// Whether `(a, b)` is an edge.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        a != b && self.adj[a] & (1 << b) != 0
    }

    /// Neighbour bitmask of `v`.
    pub fn neighbors(&self, v: usize) -> u64 {
        self.adj[v]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> u32 {
        self.adj[v].count_ones()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj
            .iter()
            .map(|m| m.count_ones() as usize)
            .sum::<usize>()
            / 2
    }
}

/// The incompatibility graph for a concrete set of specs, with the
/// per-edge violations kept for diagnostics.
#[derive(Debug, Clone)]
pub struct IncompatGraph {
    /// Library names, index-aligned with graph vertices.
    pub names: Vec<String>,
    /// The underlying conflict graph.
    pub graph: Graph,
    /// For each conflicting pair `(i, j)` with `i < j`, why.
    pub reasons: BTreeMap<(usize, usize), Vec<Violation>>,
}

impl IncompatGraph {
    /// Builds the graph by checking every pair of specs.
    pub fn build(specs: &[LibSpec]) -> Self {
        Self::build_with(specs, incompatibilities)
    }

    /// Like [`IncompatGraph::build`], but answers pairwise checks from
    /// `cache`, so repeated builds over overlapping spec sets (SH-variant
    /// enumeration, candidate exploration) check each distinct pair once.
    pub fn build_cached(specs: &[LibSpec], cache: &CompatCache) -> Self {
        let fps: Vec<u64> = specs.iter().map(CompatCache::fingerprint).collect();
        Self::build_keyed(specs, &fps, cache)
    }

    /// [`IncompatGraph::build_cached`] with caller-precomputed spec
    /// fingerprints (`fps[i] == CompatCache::fingerprint(&specs[i])`), so
    /// each spec is hashed once instead of once per pair.
    pub(crate) fn build_keyed(specs: &[LibSpec], fps: &[u64], cache: &CompatCache) -> Self {
        let n = specs.len();
        let mut graph = Graph::new(n);
        let mut reasons = BTreeMap::new();
        for i in 0..n {
            for j in i + 1..n {
                let ab = cache.violations_keyed(fps[i], &specs[i], fps[j], &specs[j]);
                let ba = cache.violations_keyed(fps[j], &specs[j], fps[i], &specs[i]);
                if !(ab.is_empty() && ba.is_empty()) {
                    graph.add_edge(i, j);
                    let mut v = ab.as_ref().clone();
                    v.extend(ba.iter().cloned());
                    reasons.insert((i, j), v);
                }
            }
        }
        Self {
            names: specs.iter().map(|s| s.name.clone()).collect(),
            graph,
            reasons,
        }
    }

    fn build_with(
        specs: &[LibSpec],
        mut check: impl FnMut(&LibSpec, &LibSpec) -> Vec<Violation>,
    ) -> Self {
        let n = specs.len();
        let mut graph = Graph::new(n);
        let mut reasons = BTreeMap::new();
        for i in 0..n {
            for j in i + 1..n {
                let v = check(&specs[i], &specs[j]);
                if !v.is_empty() {
                    graph.add_edge(i, j);
                    reasons.insert((i, j), v);
                }
            }
        }
        Self {
            names: specs.iter().map(|s| s.name.clone()).collect(),
            graph,
            reasons,
        }
    }

    /// The violations that put the edge `(a, b)` in the graph, if any.
    pub fn why(&self, a: usize, b: usize) -> Option<&[Violation]> {
        let key = if a < b { (a, b) } else { (b, a) };
        self.reasons.get(&key).map(|v| v.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_edges_are_undirected() {
        let mut g = Graph::new(4);
        g.add_edge(0, 2);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn degree_counts_neighbors() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(4), 0);
    }

    #[test]
    fn incompat_graph_of_paper_example() {
        let specs = vec![
            LibSpec::verified_scheduler(),
            LibSpec::unsafe_c("rawlib"),
            LibSpec::unsafe_c("x"),
        ];
        let g = IncompatGraph::build(&specs);
        // sched conflicts with both unsafe libs; they don't conflict with
        // each other.
        assert!(g.graph.has_edge(0, 1));
        assert!(g.graph.has_edge(0, 2));
        assert!(!g.graph.has_edge(1, 2));
        assert!(g.why(0, 1).is_some());
        assert!(g.why(1, 0).is_some()); // order-insensitive lookup
        assert!(g.why(1, 2).is_none());
    }

    #[test]
    fn cached_build_matches_uncached() {
        let specs = vec![
            LibSpec::verified_scheduler(),
            LibSpec::unsafe_c("rawlib"),
            LibSpec::unsafe_c("x"),
        ];
        let cache = CompatCache::new();
        let plain = IncompatGraph::build(&specs);
        let cached = IncompatGraph::build_cached(&specs, &cache);
        let warm = IncompatGraph::build_cached(&specs, &cache);
        for g in [&cached, &warm] {
            assert_eq!(g.names, plain.names);
            assert_eq!(g.graph, plain.graph);
            assert_eq!(g.reasons, plain.reasons);
        }
        // The second build was answered entirely from the cache.
        assert!(cache.stats().hits >= cache.stats().misses);
    }
}
