//! Enumeration of SH-variant combinations and their compartmentalizations.
//!
//! "We then iterate through all combinations of such library versions and
//! run the graph coloring algorithm described above. This will result in
//! as many colorings as there are possible combinations of libraries."
//! (paper §2)

use super::cache::CompatCache;
use super::coloring::{color, Coloring};
use super::graph::IncompatGraph;
use crate::explore::ExploreOptions;
use crate::parallel::{effective_threads, par_map_indexed};
use crate::spec::model::LibSpec;
use crate::spec::transform::{variants_for, Analysis, ShSet, ShVariant};

/// One enumerated deployment: a concrete variant choice per library plus
/// the resulting minimal compartmentalization.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// Chosen variant per library (index-aligned with the input set).
    pub variants: Vec<ShVariant>,
    /// The incompatibility graph of the chosen variants.
    pub graph: IncompatGraph,
    /// The derived compartment assignment.
    pub coloring: Coloring,
}

impl Deployment {
    /// Number of compartments this deployment needs.
    pub fn num_compartments(&self) -> usize {
        self.coloring.num_colors
    }

    /// Number of libraries running with hardening enabled.
    pub fn hardened_count(&self) -> usize {
        self.variants.iter().filter(|v| !v.sh.is_empty()).count()
    }

    /// The hardening applied to library `i`.
    pub fn sh_of(&self, i: usize) -> &ShSet {
        &self.variants[i].sh
    }
}

/// Upper bound on enumerated combinations, to keep the search bounded on
/// pathological inputs (2^12 variant choices).
pub const MAX_COMBINATIONS: usize = 4096;

/// Enumerates every combination of per-library SH variants (plain vs the
/// paper-suggested hardened version) and colors each combination's
/// incompatibility graph. Results are sorted by ascending compartment
/// count, then ascending hardened-library count (cheapest first).
///
/// Returns an empty vector if the input is empty.
///
/// # Panics
///
/// Panics if the combination space exceeds [`MAX_COMBINATIONS`].
pub fn enumerate_deployments(libs: &[(LibSpec, Analysis)]) -> Vec<Deployment> {
    enumerate_deployments_with(libs, &CompatCache::new(), &ExploreOptions::default())
}

/// [`enumerate_deployments`] with an explicit shared [`CompatCache`] and
/// [`ExploreOptions`]. Every combination reuses `cache` (each distinct
/// variant pair is checked once across the whole enumeration — and
/// across callers sharing the cache), and combinations are colored on
/// `opts.threads` workers.
///
/// Combination `k` decodes to per-library variant indices in the same
/// mixed-radix order the serial odometer walks (library 0 varies
/// fastest); results are re-sorted by `k` before the final stable
/// cheapest-first sort, so the output is byte-identical to the serial
/// enumeration for any thread count.
///
/// # Panics
///
/// Panics if the combination space exceeds [`MAX_COMBINATIONS`].
pub fn enumerate_deployments_with(
    libs: &[(LibSpec, Analysis)],
    cache: &CompatCache,
    opts: &ExploreOptions,
) -> Vec<Deployment> {
    let per_lib: Vec<Vec<ShVariant>> = libs
        .iter()
        .map(|(spec, analysis)| variants_for(spec, analysis))
        .collect();
    let combos: usize = per_lib.iter().map(Vec::len).product();
    assert!(
        combos <= MAX_COMBINATIONS,
        "variant space too large ({combos} > {MAX_COMBINATIONS}); prune inputs"
    );
    if libs.is_empty() {
        return Vec::new();
    }

    let threads = effective_threads(opts.threads, combos);
    let mut out = par_map_indexed(combos, threads, |k| {
        // Mixed-radix decode of k, library 0 fastest (odometer order).
        let mut rem = k;
        let variants: Vec<ShVariant> = per_lib
            .iter()
            .map(|vs| {
                let v = vs[rem % vs.len()].clone();
                rem /= vs.len();
                v
            })
            .collect();
        let specs: Vec<LibSpec> = variants.iter().map(|v| v.spec.clone()).collect();
        let graph = IncompatGraph::build_cached(&specs, cache);
        let coloring = color(&graph.graph);
        Deployment {
            variants,
            graph,
            coloring,
        }
    });
    // Stable sort over the enumeration order: identical tie-breaking to
    // the serial path.
    out.sort_by_key(|d| (d.num_compartments(), d.hardened_count()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::model::FuncRef;

    fn paper_inputs() -> Vec<(LibSpec, Analysis)> {
        let sched = LibSpec::verified_scheduler();
        let raw = LibSpec::unsafe_c("rawlib");
        let raw_analysis = Analysis {
            call_targets: Some([FuncRef::new("uksched_verified", "yield")].into()),
            ..Analysis::well_behaved()
        };
        vec![(sched, Analysis::default()), (raw, raw_analysis)]
    }

    #[test]
    fn paper_example_produces_both_deployments() {
        // "When put together with the scheduler in the same image, the SH
        // version will be able to share a compartment with the scheduler,
        // while the original version will require a separate compartment."
        let deployments = enumerate_deployments(&paper_inputs());
        assert_eq!(deployments.len(), 2); // sched has 1 variant, raw has 2.

        let best = &deployments[0];
        assert_eq!(best.num_compartments(), 1);
        assert_eq!(best.hardened_count(), 1); // the SH rawlib co-locates

        let worst = deployments.last().unwrap();
        assert_eq!(worst.num_compartments(), 2);
        assert_eq!(worst.hardened_count(), 0); // the plain rawlib is split off
    }

    #[test]
    fn colorings_are_valid_for_their_graphs() {
        for d in enumerate_deployments(&paper_inputs()) {
            assert!(super::super::coloring::is_valid(
                &d.graph.graph,
                &d.coloring
            ));
        }
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(enumerate_deployments(&[]).is_empty());
    }

    #[test]
    fn all_safe_libraries_enumerate_one_deployment() {
        let mut a = LibSpec::verified_scheduler();
        a.name = "a".into();
        let mut b = LibSpec::verified_scheduler();
        b.name = "b".into();
        let deployments =
            enumerate_deployments(&[(a, Analysis::default()), (b, Analysis::default())]);
        assert_eq!(deployments.len(), 1);
        assert_eq!(deployments[0].num_compartments(), 1);
    }

    #[test]
    fn sh_of_reports_per_library_choice() {
        let deployments = enumerate_deployments(&paper_inputs());
        let best = &deployments[0];
        assert!(best.sh_of(0).is_empty()); // scheduler never hardened
        assert!(!best.sh_of(1).is_empty()); // rawlib hardened
    }
}
