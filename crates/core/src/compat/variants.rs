//! Enumeration of SH-variant combinations and their compartmentalizations.
//!
//! "We then iterate through all combinations of such library versions and
//! run the graph coloring algorithm described above. This will result in
//! as many colorings as there are possible combinations of libraries."
//! (paper §2)

use super::coloring::{color, Coloring};
use super::graph::IncompatGraph;
use crate::spec::model::LibSpec;
use crate::spec::transform::{variants_for, Analysis, ShSet, ShVariant};

/// One enumerated deployment: a concrete variant choice per library plus
/// the resulting minimal compartmentalization.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// Chosen variant per library (index-aligned with the input set).
    pub variants: Vec<ShVariant>,
    /// The incompatibility graph of the chosen variants.
    pub graph: IncompatGraph,
    /// The derived compartment assignment.
    pub coloring: Coloring,
}

impl Deployment {
    /// Number of compartments this deployment needs.
    pub fn num_compartments(&self) -> usize {
        self.coloring.num_colors
    }

    /// Number of libraries running with hardening enabled.
    pub fn hardened_count(&self) -> usize {
        self.variants.iter().filter(|v| !v.sh.is_empty()).count()
    }

    /// The hardening applied to library `i`.
    pub fn sh_of(&self, i: usize) -> &ShSet {
        &self.variants[i].sh
    }
}

/// Upper bound on enumerated combinations, to keep the search bounded on
/// pathological inputs (2^12 variant choices).
pub const MAX_COMBINATIONS: usize = 4096;

/// Enumerates every combination of per-library SH variants (plain vs the
/// paper-suggested hardened version) and colors each combination's
/// incompatibility graph. Results are sorted by ascending compartment
/// count, then ascending hardened-library count (cheapest first).
///
/// Returns an empty vector if the input is empty.
///
/// # Panics
///
/// Panics if the combination space exceeds [`MAX_COMBINATIONS`].
pub fn enumerate_deployments(libs: &[(LibSpec, Analysis)]) -> Vec<Deployment> {
    let per_lib: Vec<Vec<ShVariant>> =
        libs.iter().map(|(spec, analysis)| variants_for(spec, analysis)).collect();
    let combos: usize = per_lib.iter().map(Vec::len).product();
    assert!(
        combos <= MAX_COMBINATIONS,
        "variant space too large ({combos} > {MAX_COMBINATIONS}); prune inputs"
    );
    if libs.is_empty() {
        return Vec::new();
    }

    let mut out = Vec::with_capacity(combos);
    let mut indices = vec![0usize; per_lib.len()];
    loop {
        let variants: Vec<ShVariant> =
            indices.iter().zip(&per_lib).map(|(&i, vs)| vs[i].clone()).collect();
        let specs: Vec<LibSpec> = variants.iter().map(|v| v.spec.clone()).collect();
        let graph = IncompatGraph::build(&specs);
        let coloring = color(&graph.graph);
        out.push(Deployment { variants, graph, coloring });

        // Odometer increment.
        let mut pos = 0;
        loop {
            if pos == indices.len() {
                out.sort_by_key(|d| (d.num_compartments(), d.hardened_count()));
                return out;
            }
            indices[pos] += 1;
            if indices[pos] < per_lib[pos].len() {
                break;
            }
            indices[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::model::FuncRef;

    fn paper_inputs() -> Vec<(LibSpec, Analysis)> {
        let sched = LibSpec::verified_scheduler();
        let raw = LibSpec::unsafe_c("rawlib");
        let raw_analysis = Analysis {
            call_targets: Some([FuncRef::new("uksched_verified", "yield")].into()),
            ..Analysis::well_behaved()
        };
        vec![(sched, Analysis::default()), (raw, raw_analysis)]
    }

    #[test]
    fn paper_example_produces_both_deployments() {
        // "When put together with the scheduler in the same image, the SH
        // version will be able to share a compartment with the scheduler,
        // while the original version will require a separate compartment."
        let deployments = enumerate_deployments(&paper_inputs());
        assert_eq!(deployments.len(), 2); // sched has 1 variant, raw has 2.

        let best = &deployments[0];
        assert_eq!(best.num_compartments(), 1);
        assert_eq!(best.hardened_count(), 1); // the SH rawlib co-locates

        let worst = deployments.last().unwrap();
        assert_eq!(worst.num_compartments(), 2);
        assert_eq!(worst.hardened_count(), 0); // the plain rawlib is split off
    }

    #[test]
    fn colorings_are_valid_for_their_graphs() {
        for d in enumerate_deployments(&paper_inputs()) {
            assert!(super::super::coloring::is_valid(&d.graph.graph, &d.coloring));
        }
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(enumerate_deployments(&[]).is_empty());
    }

    #[test]
    fn all_safe_libraries_enumerate_one_deployment() {
        let mut a = LibSpec::verified_scheduler();
        a.name = "a".into();
        let mut b = LibSpec::verified_scheduler();
        b.name = "b".into();
        let deployments =
            enumerate_deployments(&[(a, Analysis::default()), (b, Analysis::default())]);
        assert_eq!(deployments.len(), 1);
        assert_eq!(deployments[0].num_compartments(), 1);
    }

    #[test]
    fn sh_of_reports_per_library_choice() {
        let deployments = enumerate_deployments(&paper_inputs());
        let best = &deployments[0];
        assert!(best.sh_of(0).is_empty()); // scheduler never hardened
        assert!(!best.sh_of(1).is_empty()); // rawlib hardened
    }
}
