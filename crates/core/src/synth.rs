//! Synthetic large-image generation for benchmarks and stress tests.
//!
//! The paper's running example has a handful of micro-libraries; real
//! unikernel images (and the exploration benchmarks) need bigger design
//! spaces. [`synthetic_image`] builds a deterministic image of `n_libs`
//! micro-libraries — a verified scheduler, more verified libraries, and
//! `toggleable` unsafe C libraries (the ones with a non-empty SH
//! suggestion, i.e. the ones that double the candidate space each) —
//! plus a matching [`CallProfile`] with pseudo-random per-request call
//! counts and base work.
//!
//! Generation is seeded (xorshift64*) and uses no global state: the same
//! `(n_libs, toggleable, seed)` always produces the same image, so
//! benchmark runs and determinism tests are reproducible.

use crate::build::{BackendChoice, ImageConfig, LibRole, LibraryConfig};
use crate::explore::CallProfile;
use crate::spec::model::LibSpec;
use crate::spec::transform::Analysis;

/// A deterministic xorshift64* stream.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        // A zero state would be a fixed point; fold in a constant.
        Self(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform-ish draw in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// A generated image plus the workload profile to cost it under.
#[derive(Debug, Clone)]
pub struct SyntheticImage {
    /// The image configuration (backend [`BackendChoice::None`]; the
    /// exploration engine substitutes backends per candidate).
    pub config: ImageConfig,
    /// A per-request call/work profile over the image's libraries.
    pub profile: CallProfile,
}

/// Builds a synthetic image of `n_libs` micro-libraries, `toggleable` of
/// which are unsafe C libraries carrying an SH suggestion (so the
/// explored candidate space has `2^toggleable` hardening masks per
/// backend). Library 0 is always the verified scheduler; the remaining
/// verified libraries get unique names. The profile gives every library
/// base work, calls into the scheduler, and a call ring between
/// neighbours.
///
/// # Panics
///
/// Panics if `toggleable > 12` (the exploration bound) or
/// `toggleable >= n_libs` (library 0 is always the verified scheduler).
pub fn synthetic_image(n_libs: usize, toggleable: usize, seed: u64) -> SyntheticImage {
    assert!(toggleable <= 12, "SH toggle space too large to explore");
    assert!(toggleable < n_libs, "need room for the verified scheduler");
    let mut rng = Rng::new(seed);

    let mut config = ImageConfig::new(
        format!("synthetic-{n_libs}libs-{toggleable}sh"),
        BackendChoice::None,
    );
    // Spread the unsafe libraries evenly through positions 1..n_libs
    // instead of clustering them at one end.
    let unsafe_slots: std::collections::BTreeSet<usize> = (0..toggleable)
        .map(|k| 1 + k * (n_libs - 1) / toggleable.max(1))
        .collect();
    assert_eq!(
        unsafe_slots.len(),
        toggleable,
        "even spacing yields distinct slots"
    );

    let mut names = Vec::with_capacity(n_libs);
    for i in 0..n_libs {
        let unsafe_slot = unsafe_slots.contains(&i);
        let lib = if i == 0 {
            LibraryConfig::new(LibSpec::verified_scheduler(), LibRole::Scheduler)
        } else if unsafe_slot {
            LibraryConfig::new(LibSpec::unsafe_c(format!("unsafelib{i}")), LibRole::Other)
                .with_analysis(Analysis::well_behaved())
        } else {
            let mut spec = LibSpec::verified_scheduler();
            spec.name = format!("ukverified{i}");
            LibraryConfig::new(spec, LibRole::Other)
        };
        names.push(lib.spec.name.clone());
        config = config.with_library(lib);
    }
    let actual = config
        .libraries
        .iter()
        .filter(|l| !crate::spec::transform::suggest_sh(&l.spec).is_empty())
        .count();
    assert_eq!(
        actual, toggleable,
        "slot spreading must place every unsafe library"
    );

    let mut profile = CallProfile {
        arg_bytes: rng.range(16, 256),
        ..CallProfile::default()
    };
    for (i, name) in names.iter().enumerate() {
        profile = profile.with_work(name, rng.range(500, 2500));
        if i > 0 {
            profile = profile.with_calls(name, &names[0], rng.range(1, 8));
            profile = profile.with_calls(name, &names[i - 1], rng.range(0, 3));
        }
    }
    SyntheticImage { config, profile }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::transform::suggest_sh;

    #[test]
    fn generation_is_deterministic() {
        let a = synthetic_image(16, 6, 42);
        let b = synthetic_image(16, 6, 42);
        assert_eq!(a.config.name, b.config.name);
        let names = |img: &SyntheticImage| {
            img.config
                .libraries
                .iter()
                .map(|l| l.spec.name.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(names(&a), names(&b));
        assert_eq!(a.profile.calls, b.profile.calls);
        assert_eq!(a.profile.base_cycles, b.profile.base_cycles);
        assert_eq!(a.profile.arg_bytes, b.profile.arg_bytes);
    }

    #[test]
    fn seeds_change_the_profile() {
        let a = synthetic_image(16, 6, 1);
        let b = synthetic_image(16, 6, 2);
        assert_ne!(a.profile.base_cycles, b.profile.base_cycles);
    }

    #[test]
    fn toggleable_count_is_exact() {
        for (n, t) in [(16, 6), (20, 8), (24, 12), (24, 1), (17, 0)] {
            let img = synthetic_image(n, t, 7);
            assert_eq!(img.config.libraries.len(), n);
            let sh = img
                .config
                .libraries
                .iter()
                .filter(|l| !suggest_sh(&l.spec).is_empty())
                .count();
            assert_eq!(sh, t, "n={n} t={t}");
        }
    }

    #[test]
    fn library_names_are_unique() {
        let img = synthetic_image(24, 10, 3);
        let mut names: Vec<_> = img
            .config
            .libraries
            .iter()
            .map(|l| l.spec.name.clone())
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 24);
    }

    #[test]
    fn synthetic_images_plan_under_isolating_backends() {
        let img = synthetic_image(16, 6, 42);
        let mut cfg = img.config.clone();
        cfg.backend = crate::build::BackendChoice::MpkShared;
        let p = crate::build::plan(cfg).unwrap();
        // Verified libs co-locate, unsafe libs co-locate: two compartments.
        assert_eq!(p.num_compartments, 2);
    }
}
