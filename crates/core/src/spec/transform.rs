//! Software-hardening (SH) mechanisms and their *spec-level* effect.
//!
//! The paper uses SH in two decoupled roles:
//!
//! 1. **Metadata transformation** (§2 "When to Enable SH?"): enabling an
//!    SH technique *rewrites a library's safety spec* — e.g. CFI turns
//!    `Call(*)` into `Call(func-list)` (populated by control-flow
//!    analysis), DFI/ASAN turn `Write(*)` into `Write(Own)` (or whatever
//!    the data-flow graph supports). The rewritten spec may be compatible
//!    with libraries the original was not, letting them share a
//!    compartment.
//! 2. **Runtime cost/protection**: the hardened build pays per-access
//!    instrumentation (implemented in the `flexos-sh` crate, costed by the
//!    machine's [`CostTable`](flexos_machine::CostTable)).
//!
//! This module implements role 1: a pure rewrite over [`LibSpec`]s driven
//! by per-library analysis results, plus the paper's SH-suggestion rule
//! ("1) for each library that writes to all memory, enable DFI / ASAN;
//! 2) for each library that can execute arbitrary code, enable CFI").

use super::model::{CallBehavior, FuncRef, LibSpec, RegionSet};
use std::collections::BTreeSet;
use std::fmt;

/// A software-hardening mechanism supported by FlexOS (§3: "Our
/// implementation supports KASAN, Stack protector and UBSAN on GCC, and
/// CFI and SafeStack under clang", plus DFI from §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ShMechanism {
    /// Address sanitizer (KASAN in-kernel): redzones + shadow memory +
    /// quarantine; confines accesses to valid allocations.
    Asan,
    /// Control-flow integrity: indirect calls restricted to the static
    /// call graph.
    Cfi,
    /// Data-flow integrity: stores restricted to statically legal
    /// destinations.
    Dfi,
    /// Stack canaries ("Strong" stack protection).
    StackProtector,
    /// SafeStack: split safe/unsafe stacks.
    SafeStack,
    /// Undefined-behaviour sanitizer: checked arithmetic/shifts/bounds.
    Ubsan,
}

impl ShMechanism {
    /// All supported mechanisms.
    pub const ALL: [ShMechanism; 6] = [
        ShMechanism::Asan,
        ShMechanism::Cfi,
        ShMechanism::Dfi,
        ShMechanism::StackProtector,
        ShMechanism::SafeStack,
        ShMechanism::Ubsan,
    ];

    /// Short lowercase name (matches toolchain flag spellings).
    pub fn name(self) -> &'static str {
        match self {
            ShMechanism::Asan => "asan",
            ShMechanism::Cfi => "cfi",
            ShMechanism::Dfi => "dfi",
            ShMechanism::StackProtector => "stack-protector",
            ShMechanism::SafeStack => "safestack",
            ShMechanism::Ubsan => "ubsan",
        }
    }

    /// Which compiler family provides the mechanism in the prototype
    /// (paper §3): GCC for KASAN/stack-protector/UBSAN, clang for
    /// CFI/SafeStack; DFI is from the literature (WIT).
    pub fn toolchain(self) -> &'static str {
        match self {
            ShMechanism::Asan | ShMechanism::StackProtector | ShMechanism::Ubsan => "gcc",
            ShMechanism::Cfi | ShMechanism::SafeStack => "clang",
            ShMechanism::Dfi => "research",
        }
    }

    /// Whether this mechanism requires a *separate memory allocator* for
    /// the hardened compartment (paper §3: "A key requirement for SH is
    /// the ability to have a separate memory allocator per compartment:
    /// as many SH techniques instrument malloc…").
    pub fn instruments_malloc(self) -> bool {
        matches!(self, ShMechanism::Asan | ShMechanism::Dfi)
    }
}

impl fmt::Display for ShMechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of SH mechanisms applied together to one library/compartment.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ShSet(pub BTreeSet<ShMechanism>);

impl ShSet {
    /// The empty set (no hardening).
    pub fn none() -> Self {
        Self::default()
    }

    /// A set from a list of mechanisms.
    pub fn of(mechs: impl IntoIterator<Item = ShMechanism>) -> Self {
        Self(mechs.into_iter().collect())
    }

    /// Whether `m` is enabled.
    pub fn has(&self, m: ShMechanism) -> bool {
        self.0.contains(&m)
    }

    /// Whether no mechanism is enabled.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether any enabled mechanism instruments the allocator.
    pub fn instruments_malloc(&self) -> bool {
        self.0.iter().any(|m| m.instruments_malloc())
    }
}

impl fmt::Display for ShSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return f.write_str("none");
        }
        let names: Vec<&str> = self.0.iter().map(|m| m.name()).collect();
        f.write_str(&names.join("+"))
    }
}

/// Results of static analysis over a library's sources, consumed by the
/// spec transformations. In the FlexOS vision these come from "a standard
/// control-flow analysis" and a data-flow graph; here they are provided by
/// the library author / test fixtures (the prototype, likewise, created
/// compartment specifications manually).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Analysis {
    /// The library's concrete call targets (CFG): what `Call(*)` becomes
    /// under CFI.
    pub call_targets: Option<BTreeSet<FuncRef>>,
    /// The regions the library's stores can actually reach (DFG): what
    /// `Write(*)` becomes under DFI.
    pub write_regions: Option<RegionSet>,
    /// The regions the library's loads can actually reach (DFG).
    pub read_regions: Option<RegionSet>,
}

impl Analysis {
    /// Analysis showing the library is fully well-behaved (the common case
    /// for leaf C libraries whose bugs, not intent, are the problem).
    pub fn well_behaved() -> Self {
        Self {
            call_targets: Some(BTreeSet::new()),
            write_regions: Some(RegionSet::own_and_shared()),
            read_regions: Some(RegionSet::own_and_shared()),
        }
    }
}

/// Applies the spec-level effect of `sh` to `spec`, using `analysis`
/// where a mechanism needs analysis input. The returned spec describes
/// "the safety behavior of the library when the SH technique is enabled"
/// (paper §2).
///
/// Rules:
/// * **CFI**: `Call(*)` → `Call(list)` from [`Analysis::call_targets`].
/// * **DFI**: `Write(*)` → [`Analysis::write_regions`]; reads likewise if
///   the analysis bounds them.
/// * **ASAN**: accesses are confined to valid allocations, so `Read(*)`
///   / `Write(*)` collapse to `Own,Shared` *without* needing analysis
///   (overflow out of an allocation is dynamically impossible).
/// * Stack protector / SafeStack / UBSAN do not change the declared
///   memory/call behaviour (they protect the library's own integrity);
///   they participate in cost and security scoring only.
pub fn apply_sh(spec: &LibSpec, sh: &ShSet, analysis: &Analysis) -> LibSpec {
    let mut out = spec.clone();
    if sh.has(ShMechanism::Cfi) && out.call.is_star() {
        if let Some(targets) = &analysis.call_targets {
            out.call = CallBehavior::Funcs(targets.clone());
        }
    }
    if sh.has(ShMechanism::Dfi) {
        if out.mem.write.is_star() {
            if let Some(w) = &analysis.write_regions {
                out.mem.write = w.clone();
            }
        }
        if out.mem.read.is_star() {
            if let Some(r) = &analysis.read_regions {
                out.mem.read = r.clone();
            }
        }
    }
    if sh.has(ShMechanism::Asan) {
        if out.mem.write.is_star() {
            out.mem.write = RegionSet::own_and_shared();
        }
        if out.mem.read.is_star() {
            out.mem.read = RegionSet::own_and_shared();
        }
    }
    out
}

/// The paper's SH-enabling heuristic: DFI/ASAN for libraries that write to
/// all memory, CFI for libraries that can execute arbitrary code.
pub fn suggest_sh(spec: &LibSpec) -> ShSet {
    let mut set = BTreeSet::new();
    if spec.mem.write.is_star() {
        set.insert(ShMechanism::Asan);
        set.insert(ShMechanism::Dfi);
    }
    if spec.call.is_star() {
        set.insert(ShMechanism::Cfi);
    }
    ShSet(set)
}

/// A library together with one choice of hardening: the unit over which
/// the compatibility search enumerates ("a list of libraries that have two
/// versions: one with SH, and one without").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShVariant {
    /// The (possibly rewritten) spec.
    pub spec: LibSpec,
    /// The hardening applied.
    pub sh: ShSet,
}

/// Produces the variant list for a library: the plain version plus, when
/// the suggestion heuristic fires, the hardened version.
pub fn variants_for(spec: &LibSpec, analysis: &Analysis) -> Vec<ShVariant> {
    let mut out = vec![ShVariant {
        spec: spec.clone(),
        sh: ShSet::none(),
    }];
    let suggested = suggest_sh(spec);
    if !suggested.is_empty() {
        let hardened = apply_sh(spec, &suggested, analysis);
        out.push(ShVariant {
            spec: hardened,
            sh: suggested,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::model::MemBehavior;

    fn unsafe_lib() -> LibSpec {
        LibSpec::unsafe_c("rawlib")
    }

    #[test]
    fn cfi_bounds_star_calls_with_cfg() {
        let analysis = Analysis {
            call_targets: Some([FuncRef::new("alloc", "malloc")].into()),
            ..Default::default()
        };
        let out = apply_sh(&unsafe_lib(), &ShSet::of([ShMechanism::Cfi]), &analysis);
        assert_eq!(out.call, CallBehavior::funcs([("alloc", "malloc")]));
        // Memory behaviour untouched by CFI.
        assert!(out.mem.write.is_star());
    }

    #[test]
    fn cfi_without_analysis_leaves_star() {
        let out = apply_sh(
            &unsafe_lib(),
            &ShSet::of([ShMechanism::Cfi]),
            &Analysis::default(),
        );
        assert!(out.call.is_star());
    }

    #[test]
    fn dfi_applies_dfg_write_regions() {
        let analysis = Analysis {
            write_regions: Some(RegionSet::own()),
            ..Default::default()
        };
        let out = apply_sh(&unsafe_lib(), &ShSet::of([ShMechanism::Dfi]), &analysis);
        assert_eq!(out.mem.write, RegionSet::own());
        // Reads not bounded by this analysis.
        assert!(out.mem.read.is_star());
    }

    #[test]
    fn asan_confines_accesses_without_analysis() {
        let out = apply_sh(
            &unsafe_lib(),
            &ShSet::of([ShMechanism::Asan]),
            &Analysis::default(),
        );
        assert_eq!(out.mem, MemBehavior::well_behaved());
        assert!(out.call.is_star()); // ASAN says nothing about control flow.
    }

    #[test]
    fn passive_mechanisms_change_nothing() {
        for m in [
            ShMechanism::StackProtector,
            ShMechanism::SafeStack,
            ShMechanism::Ubsan,
        ] {
            let out = apply_sh(&unsafe_lib(), &ShSet::of([m]), &Analysis::well_behaved());
            assert_eq!(out, unsafe_lib());
        }
    }

    #[test]
    fn suggestion_follows_the_paper_heuristic() {
        let s = suggest_sh(&unsafe_lib());
        assert!(s.has(ShMechanism::Asan));
        assert!(s.has(ShMechanism::Dfi));
        assert!(s.has(ShMechanism::Cfi));

        let s = suggest_sh(&LibSpec::verified_scheduler());
        assert!(s.is_empty());
    }

    #[test]
    fn variants_are_plain_plus_suggested() {
        let v = variants_for(&unsafe_lib(), &Analysis::well_behaved());
        assert_eq!(v.len(), 2);
        assert!(v[0].sh.is_empty());
        assert!(!v[1].sh.is_empty());
        assert_eq!(v[1].spec.mem, MemBehavior::well_behaved());

        let v = variants_for(&LibSpec::verified_scheduler(), &Analysis::default());
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn malloc_instrumentation_flag() {
        assert!(ShSet::of([ShMechanism::Asan]).instruments_malloc());
        assert!(!ShSet::of([ShMechanism::Cfi, ShMechanism::Ubsan]).instruments_malloc());
    }

    #[test]
    fn sh_set_display() {
        assert_eq!(ShSet::none().to_string(), "none");
        assert_eq!(
            ShSet::of([ShMechanism::Cfi, ShMechanism::Asan]).to_string(),
            "asan+cfi"
        );
    }
}
