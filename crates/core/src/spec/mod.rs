//! The FlexOS library-metadata language: model, parser, printer, and
//! SH spec-transformations.
//!
//! See the paper's §2: metadata specify "1) the expected memory access
//! behavior of other components running in the same compartment …; 2) the
//! areas of memory this library can access in normal but also adversarial
//! operation …; and 3) API specific information".

pub mod infer;
pub mod model;
pub mod parse;
pub mod print;
pub mod transform;

pub use infer::{infer_analysis, infer_spec, BehaviorTrace, ObservedRegion};
pub use model::{
    ApiFunc, CallBehavior, FuncRef, Grant, GrantKind, GrantSubject, LibSpec, MemBehavior, Region,
    RegionSet, Requires,
};
pub use parse::{parse, parse_with_name, ParseError};
pub use print::print;
pub use transform::{apply_sh, suggest_sh, variants_for, Analysis, ShMechanism, ShSet, ShVariant};
