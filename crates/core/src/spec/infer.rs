//! Semi-automatic metadata generation from observed behaviour.
//!
//! The paper's §5: "The process of writing metadata is error prone, and
//! methods for (semi-)automatically generating them should be
//! explored." This module is that exploration: record a library's
//! behaviour during representative runs into a [`BehaviorTrace`], then
//! [`infer_spec`] derives a `LibSpec` (and [`infer_analysis`] the
//! analysis inputs for SH transformations) from it.
//!
//! Inference is *semi*-automatic by design:
//!
//! * outgoing behaviour (`[Memory access]`, `[Call]`) is inferred
//!   **conservatively upward**: any observed foreign touch or suspected
//!   hijack widens to `*` — a trace proves presence, not absence;
//! * incoming behaviour (`[Requires]`, `[API]`) is inferred
//!   **downward**: only grants actually exercised during the trace are
//!   emitted, so an unrepresentative trace yields a spec that is too
//!   strict, never too lax — the safe failure mode (a too-strict spec
//!   splits compartments; a too-lax one would merge incompatible ones).
//!
//! The author reviews and edits the result (that is the "semi").

use super::model::{
    ApiFunc, CallBehavior, FuncRef, Grant, GrantKind, LibSpec, MemBehavior, Region, RegionSet,
    Requires,
};
use super::transform::Analysis;
use std::collections::BTreeSet;

/// A memory region as seen by the tracer.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObservedRegion {
    /// The library's own data.
    Own,
    /// The shared segment.
    Shared,
    /// Another library's private data (evidence of `*` behaviour).
    Foreign(String),
}

/// Recorded behaviour of one library across representative runs.
#[derive(Debug, Clone, Default)]
pub struct BehaviorTrace {
    /// The traced library's name.
    pub lib: String,
    /// Regions it read.
    pub reads: BTreeSet<ObservedRegion>,
    /// Regions it wrote.
    pub writes: BTreeSet<ObservedRegion>,
    /// Functions it called.
    pub calls: BTreeSet<FuncRef>,
    /// Entry points through which other libraries entered it.
    pub entered_via: BTreeSet<String>,
    /// Incoming accesses other libraries performed on this library's
    /// memory / the shared segment while co-resident.
    pub incoming: BTreeSet<GrantKind>,
    /// Evidence of control-flow corruption during tracing (unknown
    /// indirect-call targets, smashed canaries): forces `Call(*)`.
    pub hijack_suspected: bool,
}

impl BehaviorTrace {
    /// Starts an empty trace for `lib`.
    pub fn new(lib: impl Into<String>) -> Self {
        Self {
            lib: lib.into(),
            ..Self::default()
        }
    }

    /// Records a read.
    pub fn read(&mut self, region: ObservedRegion) -> &mut Self {
        self.reads.insert(region);
        self
    }

    /// Records a write.
    pub fn write(&mut self, region: ObservedRegion) -> &mut Self {
        self.writes.insert(region);
        self
    }

    /// Records an outgoing call.
    pub fn call(&mut self, lib: impl Into<String>, func: impl Into<String>) -> &mut Self {
        self.calls.insert(FuncRef::new(lib, func));
        self
    }

    /// Records an inbound entry through `func`.
    pub fn entered(&mut self, func: impl Into<String>) -> &mut Self {
        self.entered_via.insert(func.into());
        self
    }

    /// Records an incoming access by a co-resident library.
    pub fn inbound(&mut self, kind: GrantKind) -> &mut Self {
        self.incoming.insert(kind);
        self
    }
}

fn region_set(observed: &BTreeSet<ObservedRegion>) -> RegionSet {
    if observed
        .iter()
        .any(|r| matches!(r, ObservedRegion::Foreign(_)))
    {
        return RegionSet::Star;
    }
    let mut set = BTreeSet::new();
    for r in observed {
        match r {
            ObservedRegion::Own => {
                set.insert(Region::Own);
            }
            ObservedRegion::Shared => {
                set.insert(Region::Shared);
            }
            ObservedRegion::Foreign(_) => unreachable!("handled above"),
        }
    }
    RegionSet::Set(set)
}

/// Derives a library spec from a trace.
pub fn infer_spec(trace: &BehaviorTrace) -> LibSpec {
    let call = if trace.hijack_suspected {
        CallBehavior::Star
    } else {
        CallBehavior::Funcs(trace.calls.clone())
    };
    let api: Vec<ApiFunc> = trace
        .entered_via
        .iter()
        .map(|f| ApiFunc::named(f.clone()))
        .collect();
    // Grants: exactly the incoming behaviour exercised, plus calling the
    // observed entry points.
    let mut grants: Vec<Grant> = trace.incoming.iter().cloned().map(Grant::any).collect();
    for func in &trace.entered_via {
        let g = GrantKind::Call(func.clone());
        if !trace.incoming.contains(&g) {
            grants.push(Grant::any(g));
        }
    }
    LibSpec {
        name: trace.lib.clone(),
        mem: MemBehavior {
            read: region_set(&trace.reads),
            write: region_set(&trace.writes),
        },
        call,
        api,
        requires: Requires::granting(grants),
    }
}

/// Derives SH-transformation analysis inputs from a trace (the dynamic
/// stand-in for the static CFG/DFG analyses of §2).
pub fn infer_analysis(trace: &BehaviorTrace) -> Analysis {
    Analysis {
        call_targets: (!trace.hijack_suspected).then(|| trace.calls.clone()),
        write_regions: Some(region_set(
            &trace
                .writes
                .iter()
                .filter(|r| !matches!(r, ObservedRegion::Foreign(_)))
                .cloned()
                .collect(),
        )),
        read_regions: Some(region_set(
            &trace
                .reads
                .iter()
                .filter(|r| !matches!(r, ObservedRegion::Foreign(_)))
                .cloned()
                .collect(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compat::compatible;
    use crate::spec::transform::{apply_sh, suggest_sh};

    /// A trace of the verified scheduler behaving exactly as its
    /// handwritten spec describes.
    fn scheduler_trace() -> BehaviorTrace {
        let mut t = BehaviorTrace::new("uksched_verified");
        t.read(ObservedRegion::Own)
            .read(ObservedRegion::Shared)
            .write(ObservedRegion::Own)
            .write(ObservedRegion::Shared)
            .call("alloc", "malloc")
            .call("alloc", "free")
            .entered("thread_add")
            .entered("thread_rm")
            .entered("yield")
            .inbound(GrantKind::Read(Region::Own))
            .inbound(GrantKind::Read(Region::Shared))
            .inbound(GrantKind::Write(Region::Shared));
        t
    }

    #[test]
    fn inferred_scheduler_spec_matches_the_handwritten_one_structurally() {
        let inferred = infer_spec(&scheduler_trace());
        let handwritten = LibSpec::verified_scheduler();
        assert_eq!(inferred.mem, handwritten.mem);
        assert_eq!(inferred.call, handwritten.call);
        assert_eq!(
            inferred
                .api
                .iter()
                .map(|a| &a.name)
                .collect::<BTreeSet<_>>(),
            handwritten
                .api
                .iter()
                .map(|a| &a.name)
                .collect::<BTreeSet<_>>()
        );
        // Same compatibility verdicts against the paper's other example.
        let raw = LibSpec::unsafe_c("rawlib");
        assert_eq!(compatible(&inferred, &raw), compatible(&handwritten, &raw));
        // And against a well-behaved sibling.
        let mut sibling = handwritten.clone();
        sibling.name = "uklock".into();
        assert_eq!(
            compatible(&inferred, &sibling),
            compatible(&handwritten, &sibling)
        );
    }

    #[test]
    fn foreign_touches_widen_to_star() {
        let mut t = BehaviorTrace::new("buggy");
        t.write(ObservedRegion::Own)
            .write(ObservedRegion::Foreign("uksched".into()));
        let spec = infer_spec(&t);
        assert!(spec.mem.write.is_star());
        assert!(!spec.mem.read.is_star());
    }

    #[test]
    fn hijack_evidence_forces_call_star() {
        let mut t = BehaviorTrace::new("pwned");
        t.call("alloc", "malloc");
        t.hijack_suspected = true;
        let spec = infer_spec(&t);
        assert!(spec.call.is_star());
        // …and the inferred analysis refuses to supply a CFG for CFI.
        assert!(infer_analysis(&t).call_targets.is_none());
    }

    #[test]
    fn inference_is_strict_on_the_requires_side() {
        // A trace where nobody ever wrote our shared state: the inferred
        // spec does NOT grant Write(Shared) — too strict is the safe
        // failure mode.
        let mut t = BehaviorTrace::new("quiet");
        t.read(ObservedRegion::Own)
            .write(ObservedRegion::Own)
            .entered("poke");
        let spec = infer_spec(&t);
        assert!(spec.requires.is_constrained());
        assert!(!spec
            .requires
            .permits("x", &GrantKind::Write(Region::Shared)));
        assert!(spec.requires.permits("x", &GrantKind::Call("poke".into())));
        assert!(!spec.requires.permits("x", &GrantKind::Call("other".into())));
    }

    #[test]
    fn inferred_analysis_feeds_the_sh_transformations() {
        // A library whose *trace* is clean but whose static spec is
        // adversarial: the inferred analysis lets DFI/CFI tighten it.
        let mut t = BehaviorTrace::new("rawlib");
        t.read(ObservedRegion::Own)
            .write(ObservedRegion::Own)
            .write(ObservedRegion::Shared)
            .call("uksched_verified", "yield");
        let analysis = infer_analysis(&t);
        let raw = LibSpec::unsafe_c("rawlib");
        let hardened = apply_sh(&raw, &suggest_sh(&raw), &analysis);
        assert!(!hardened.mem.write.is_star());
        assert!(!hardened.call.is_star());
        assert!(compatible(&LibSpec::verified_scheduler(), &hardened));
    }

    #[test]
    fn empty_trace_yields_a_hermit_spec() {
        let spec = infer_spec(&BehaviorTrace::new("hermit"));
        assert_eq!(spec.mem.read, RegionSet::none());
        assert_eq!(spec.call, CallBehavior::none());
        assert!(spec.api.is_empty());
        // Grants nothing — maximally suspicious of co-residents.
        assert!(spec.requires.is_constrained());
    }
}
