//! Canonical printer for library specs.
//!
//! `print` emits the textual form accepted by [`super::parse`], such that
//! `parse(print(spec)) == spec` (verified by a property test). This is
//! what FlexOS tooling uses to persist derived (e.g. SH-transformed)
//! specs next to a library's sources.

use super::model::{CallBehavior, GrantKind, GrantSubject, LibSpec, Region, RegionSet};
use std::fmt::Write as _;

fn region_str(r: Region) -> &'static str {
    match r {
        Region::Own => "Own",
        Region::Shared => "Shared",
    }
}

fn region_set_str(s: &RegionSet) -> String {
    match s {
        RegionSet::Star => "*".to_string(),
        RegionSet::Set(set) => set
            .iter()
            .map(|&r| region_str(r))
            .collect::<Vec<_>>()
            .join(","),
    }
}

/// Renders `spec` in canonical textual form.
pub fn print(spec: &LibSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "[Library] {}", spec.name);
    let _ = writeln!(
        out,
        "[Memory access] Read({}); Write({})",
        region_set_str(&spec.mem.read),
        region_set_str(&spec.mem.write)
    );
    match &spec.call {
        CallBehavior::Star => {
            let _ = writeln!(out, "[Call] *");
        }
        CallBehavior::Funcs(fs) => {
            let items: Vec<String> = fs.iter().map(|f| f.to_string()).collect();
            let _ = writeln!(out, "[Call] {}", items.join(", "));
        }
    }
    if !spec.api.is_empty() {
        let items: Vec<String> = spec
            .api
            .iter()
            .map(|a| {
                let mut s = format!("{}({})", a.name, a.params.join(", "));
                for pre in &a.preconditions {
                    let _ = write!(s, " requires \"{pre}\"");
                }
                s
            })
            .collect();
        let _ = writeln!(out, "[API] {}", items.join("; "));
    }
    if let Some(grants) = &spec.requires.grants {
        let items: Vec<String> = grants
            .iter()
            .map(|g| {
                let subject = match &g.subject {
                    GrantSubject::Any => "*".to_string(),
                    GrantSubject::Lib(l) => l.clone(),
                };
                let kind = match &g.kind {
                    GrantKind::Read(r) => format!("Read,{}", region_str(*r)),
                    GrantKind::Write(r) => format!("Write,{}", region_str(*r)),
                    GrantKind::Call(f) => format!("Call, {f}"),
                    GrantKind::CallAny => "Call, *".to_string(),
                };
                format!("{subject}({kind})")
            })
            .collect();
        let _ = writeln!(out, "[Requires] {}", items.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::model::{ApiFunc, Grant, LibSpec, MemBehavior, Requires};
    use crate::spec::parse::parse;

    #[test]
    fn print_parse_round_trips_the_scheduler() {
        let spec = LibSpec::verified_scheduler();
        let text = print(&spec);
        let reparsed = parse(&text).unwrap();
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn print_parse_round_trips_unsafe_c() {
        let spec = LibSpec::unsafe_c("rawlib");
        let reparsed = parse(&print(&spec)).unwrap();
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn empty_grant_list_round_trips_as_constrained() {
        let spec = LibSpec {
            name: "locked".into(),
            mem: MemBehavior::well_behaved(),
            call: crate::spec::model::CallBehavior::none(),
            api: vec![ApiFunc::named("poke")],
            requires: Requires::granting(Vec::<Grant>::new()),
        };
        let reparsed = parse(&print(&spec)).unwrap();
        assert_eq!(reparsed, spec);
        assert!(reparsed.requires.is_constrained());
    }

    #[test]
    fn preconditions_survive_round_trip() {
        let mut spec = LibSpec::verified_scheduler();
        spec.api[0].preconditions.push("interrupts disabled".into());
        let reparsed = parse(&print(&spec)).unwrap();
        assert_eq!(reparsed.api[0].preconditions.len(), 2);
    }
}
