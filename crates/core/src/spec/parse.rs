//! Parser for the textual library-metadata language.
//!
//! The grammar follows the paper's listings:
//!
//! ```text
//! [Library] uksched_verified
//! [Memory access] Read(Own,Shared); Write(Own,Shared)
//! [Call] alloc::malloc, alloc::free
//! [API] thread_add(t) requires "thread not already added"; thread_rm(t); yield()
//! [Requires] *(Read,Own), *(Write,Shared), *(Call, thread_add)
//! ```
//!
//! Sections may appear in any order and may span multiple lines (a section
//! runs until the next `[...]` header). `#`-prefixed lines are comments.
//! The wildcard `*` is accepted for memory regions (`Read(*)`), call
//! behaviour (`[Call] *`), grant subjects (`*(Read,Own)`) and call grants
//! (`*(Call, *)`).

use super::model::{
    ApiFunc, CallBehavior, FuncRef, Grant, GrantKind, GrantSubject, LibSpec, MemBehavior, Region,
    RegionSet, Requires,
};
use std::collections::BTreeSet;
use std::fmt;

/// A parse failure, with the 1-based line number where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "spec parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Parses a spec whose name is given by a `[Library]` section in the text.
pub fn parse(input: &str) -> Result<LibSpec, ParseError> {
    parse_named(input, None)
}

/// Parses a spec, using `default_name` when no `[Library]` section exists.
pub fn parse_with_name(input: &str, default_name: &str) -> Result<LibSpec, ParseError> {
    parse_named(input, Some(default_name))
}

struct Section {
    header: String,
    body: String,
    line: usize,
}

fn split_sections(input: &str) -> Result<Vec<Section>, ParseError> {
    let mut sections: Vec<Section> = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let close = match rest.find(']') {
                Some(c) => c,
                None => return err(line_no, "unterminated section header"),
            };
            let header = rest[..close].trim().to_string();
            let body = rest[close + 1..].trim().to_string();
            sections.push(Section {
                header,
                body,
                line: line_no,
            });
        } else {
            match sections.last_mut() {
                Some(s) => {
                    if !s.body.is_empty() {
                        s.body.push(' ');
                    }
                    s.body.push_str(line);
                }
                None => return err(line_no, "content before first section header"),
            }
        }
    }
    Ok(sections)
}

/// Splits on `sep` at depth 0 (outside parentheses and quotes).
fn split_top_level(s: &str, seps: &[char]) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut depth = 0usize;
    let mut in_quote = false;
    for ch in s.chars() {
        match ch {
            '"' => {
                in_quote = !in_quote;
                cur.push(ch);
            }
            '(' if !in_quote => {
                depth += 1;
                cur.push(ch);
            }
            ')' if !in_quote => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
            }
            c if !in_quote && depth == 0 && seps.contains(&c) => {
                if !cur.trim().is_empty() {
                    parts.push(cur.trim().to_string());
                }
                cur.clear();
            }
            c => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur.trim().to_string());
    }
    parts
}

fn parse_region(tok: &str, line: usize) -> Result<Region, ParseError> {
    match tok.trim() {
        "Own" | "own" => Ok(Region::Own),
        "Shared" | "shared" => Ok(Region::Shared),
        other => err(
            line,
            format!("unknown region `{other}` (expected Own/Shared/*)"),
        ),
    }
}

fn parse_region_set(body: &str, line: usize) -> Result<RegionSet, ParseError> {
    let body = body.trim();
    if body == "*" {
        return Ok(RegionSet::Star);
    }
    if body.is_empty() {
        return Ok(RegionSet::none());
    }
    let mut set = BTreeSet::new();
    for tok in body.split(',') {
        set.insert(parse_region(tok, line)?);
    }
    Ok(RegionSet::Set(set))
}

fn parse_mem(body: &str, line: usize) -> Result<MemBehavior, ParseError> {
    let mut mem = MemBehavior {
        read: RegionSet::none(),
        write: RegionSet::none(),
    };
    for item in split_top_level(body, &[';']) {
        let open = item.find('(').ok_or_else(|| ParseError {
            line,
            message: format!("expected `Kind(...)` in `{item}`"),
        })?;
        if !item.ends_with(')') {
            return err(line, format!("missing `)` in `{item}`"));
        }
        let kind = item[..open].trim();
        let inner = &item[open + 1..item.len() - 1];
        let set = parse_region_set(inner, line)?;
        match kind {
            "Read" | "read" => mem.read = set,
            "Write" | "write" => mem.write = set,
            other => return err(line, format!("unknown access kind `{other}`")),
        }
    }
    Ok(mem)
}

fn parse_call(body: &str, line: usize) -> Result<CallBehavior, ParseError> {
    let body = body.trim();
    if body == "*" {
        return Ok(CallBehavior::Star);
    }
    let mut funcs = BTreeSet::new();
    for item in split_top_level(body, &[',', ';']) {
        let (lib, func) = item.split_once("::").ok_or_else(|| ParseError {
            line,
            message: format!("expected `lib::func`, got `{item}`"),
        })?;
        if lib.trim().is_empty() || func.trim().is_empty() {
            return err(line, format!("empty library or function in `{item}`"));
        }
        funcs.insert(FuncRef::new(lib.trim(), func.trim()));
    }
    Ok(CallBehavior::Funcs(funcs))
}

fn parse_api(body: &str, line: usize) -> Result<Vec<ApiFunc>, ParseError> {
    let mut api = Vec::new();
    for item in split_top_level(body, &[';']) {
        // `name(params)` optionally followed by `requires "..."` clauses.
        let (sig, rest) = match item.find(')') {
            Some(close) => (&item[..=close], item[close + 1..].trim()),
            None => (item.as_str(), ""),
        };
        let (name, params) = match sig.find('(') {
            Some(open) => {
                if !sig.ends_with(')') {
                    return err(line, format!("missing `)` in `{sig}`"));
                }
                let inner = &sig[open + 1..sig.len() - 1];
                let params: Vec<String> = inner
                    .split(',')
                    .map(|p| p.trim().to_string())
                    .filter(|p| !p.is_empty() && p != "...")
                    .collect();
                (sig[..open].trim().to_string(), params)
            }
            None => (sig.trim().to_string(), Vec::new()),
        };
        if name.is_empty() {
            return err(line, format!("API entry with empty name in `{item}`"));
        }
        let mut preconditions = Vec::new();
        let mut rest = rest;
        while let Some(after) = rest.strip_prefix("requires") {
            let after = after.trim_start();
            let Some(stripped) = after.strip_prefix('"') else {
                return err(line, "expected quoted string after `requires`");
            };
            let Some(end) = stripped.find('"') else {
                return err(line, "unterminated precondition string");
            };
            preconditions.push(stripped[..end].to_string());
            rest = stripped[end + 1..].trim_start();
        }
        if !rest.is_empty() {
            return err(line, format!("trailing content after API entry: `{rest}`"));
        }
        api.push(ApiFunc {
            name,
            params,
            preconditions,
        });
    }
    Ok(api)
}

fn parse_requires(body: &str, line: usize) -> Result<Requires, ParseError> {
    let mut grants = Vec::new();
    for item in split_top_level(body, &[',']) {
        // Tolerate the paper's trailing ellipsis `*...`.
        if item == "*..." || item == "..." {
            continue;
        }
        let open = item.find('(').ok_or_else(|| ParseError {
            line,
            message: format!("expected `subject(kind, arg)`, got `{item}`"),
        })?;
        if !item.ends_with(')') {
            return err(line, format!("missing `)` in `{item}`"));
        }
        let subject = match item[..open].trim() {
            "*" => GrantSubject::Any,
            name if !name.is_empty() => GrantSubject::Lib(name.to_string()),
            _ => return err(line, format!("empty grant subject in `{item}`")),
        };
        let inner = &item[open + 1..item.len() - 1];
        let parts: Vec<&str> = inner.splitn(2, ',').map(str::trim).collect();
        if parts.len() != 2 {
            return err(line, format!("grant needs two arguments: `{item}`"));
        }
        let kind = match parts[0] {
            "Read" | "read" => GrantKind::Read(parse_region(parts[1], line)?),
            "Write" | "write" => GrantKind::Write(parse_region(parts[1], line)?),
            "Call" | "call" => {
                if parts[1] == "*" {
                    GrantKind::CallAny
                } else {
                    GrantKind::Call(parts[1].to_string())
                }
            }
            other => return err(line, format!("unknown grant kind `{other}`")),
        };
        grants.push(Grant { subject, kind });
    }
    Ok(Requires::granting(grants))
}

fn parse_named(input: &str, default_name: Option<&str>) -> Result<LibSpec, ParseError> {
    let sections = split_sections(input)?;
    let mut name: Option<String> = default_name.map(str::to_string);
    let mut mem: Option<MemBehavior> = None;
    let mut call: Option<CallBehavior> = None;
    let mut api: Vec<ApiFunc> = Vec::new();
    let mut requires = Requires::unconstrained();

    for s in &sections {
        match s.header.to_ascii_lowercase().as_str() {
            "library" => {
                let n = s.body.trim();
                if n.is_empty() {
                    return err(s.line, "[Library] section requires a name");
                }
                name = Some(n.to_string());
            }
            "memory access" => mem = Some(parse_mem(&s.body, s.line)?),
            "call" => call = Some(parse_call(&s.body, s.line)?),
            "api" => api = parse_api(&s.body, s.line)?,
            "requires" => requires = parse_requires(&s.body, s.line)?,
            other => return err(s.line, format!("unknown section `[{other}]`")),
        }
    }

    let name = match name {
        Some(n) => n,
        None => return err(1, "no [Library] section and no default name given"),
    };
    Ok(LibSpec {
        name,
        mem: mem.unwrap_or_else(MemBehavior::adversarial),
        call: call.unwrap_or(CallBehavior::Star),
        api,
        requires,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHED: &str = r#"
        [Library] uksched_verified
        [Memory access] Read(Own,Shared); Write(Own,Shared)
        [Call] alloc::malloc, alloc::free
        [API] thread_add(t) requires "thread not already added"; thread_rm(t); yield()
        [Requires] *(Read,Own), *(Write,Shared), *(Read,Shared),
                   *(Call, thread_add), *(Call, thread_rm), *(Call, yield)
    "#;

    #[test]
    fn parses_the_paper_scheduler_example() {
        let spec = parse(SCHED).unwrap();
        assert_eq!(spec.name, "uksched_verified");
        assert_eq!(spec.mem, MemBehavior::well_behaved());
        assert_eq!(
            spec.call,
            CallBehavior::funcs([("alloc", "malloc"), ("alloc", "free")])
        );
        assert_eq!(spec.api.len(), 3);
        assert_eq!(spec.api[0].preconditions, vec!["thread not already added"]);
        assert!(spec.requires.permits("x", &GrantKind::Read(Region::Own)));
        assert!(!spec.requires.permits("x", &GrantKind::Write(Region::Own)));
        assert!(spec.requires.permits("x", &GrantKind::Call("yield".into())));
    }

    #[test]
    fn parses_the_paper_unsafe_c_example() {
        let spec =
            parse_with_name("[Memory access] Read(*); Write(*)\n[Call] *", "rawlib").unwrap();
        assert_eq!(spec.name, "rawlib");
        assert!(spec.mem.read.is_star());
        assert!(spec.mem.write.is_star());
        assert!(spec.call.is_star());
        assert!(!spec.requires.is_constrained());
    }

    #[test]
    fn missing_sections_default_to_adversarial() {
        let spec = parse_with_name("", "empty").unwrap();
        assert_eq!(spec.mem, MemBehavior::adversarial());
        assert!(spec.call.is_star());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let spec = parse_with_name(
            "# top comment\n\n[Memory access] Read(Own)\n# inline\n[Call] a::b\n",
            "x",
        )
        .unwrap();
        assert_eq!(spec.mem.read, RegionSet::own());
    }

    #[test]
    fn multi_line_sections_accumulate() {
        let spec = parse_with_name("[Call] a::b,\n c::d,\n e::f", "x").unwrap();
        match spec.call {
            CallBehavior::Funcs(fs) => assert_eq!(fs.len(), 3),
            _ => panic!("expected funcs"),
        }
    }

    #[test]
    fn trailing_ellipsis_in_requires_is_tolerated() {
        let spec = parse_with_name("[Requires] *(Read,Own), *...", "x").unwrap();
        assert!(spec.requires.is_constrained());
        assert_eq!(spec.requires.grants.as_ref().unwrap().len(), 1);
    }

    #[test]
    fn empty_requires_section_grants_nothing() {
        let spec = parse_with_name("[Requires]", "x").unwrap();
        assert!(spec.requires.is_constrained());
        assert!(!spec.requires.permits("y", &GrantKind::Read(Region::Own)));
    }

    #[test]
    fn lib_scoped_grant_subjects() {
        let spec = parse_with_name("[Requires] libc(Write,Own), *(Read,Own)", "x").unwrap();
        assert!(spec
            .requires
            .permits("libc", &GrantKind::Write(Region::Own)));
        assert!(!spec.requires.permits("net", &GrantKind::Write(Region::Own)));
        assert!(spec.requires.permits("net", &GrantKind::Read(Region::Own)));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_with_name("[Memory access] Read(Bogus)", "x").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("Bogus"));

        let e = parse("[Call] nodoublecolon").unwrap_err();
        assert!(e.message.contains("lib::func"));
    }

    #[test]
    fn unknown_section_is_an_error() {
        assert!(parse_with_name("[Bogus] x", "x").is_err());
    }

    #[test]
    fn content_before_header_is_an_error() {
        assert!(parse("orphan line").is_err());
    }

    #[test]
    fn api_variadic_ellipsis_is_dropped_from_params() {
        let spec = parse_with_name("[API] thread_add (...) ; yield()", "x").unwrap();
        assert_eq!(spec.api[0].name, "thread_add");
        assert!(spec.api[0].params.is_empty());
    }

    #[test]
    fn call_grant_star_parses_to_call_any() {
        let spec = parse_with_name("[Requires] *(Call, *)", "x").unwrap();
        assert!(spec
            .requires
            .permits("y", &GrantKind::Call("anything".into())));
    }
}
