//! Data model of the FlexOS library-metadata language.
//!
//! The paper (§2) attaches to every micro-library a description of:
//!
//! 1. its **memory-access behaviour** — which memory it reads/writes, in
//!    normal *and adversarial* operation (`[Memory access]`),
//! 2. which **functions it calls** (`[Call]`),
//! 3. which functions it **exposes as API** (`[API]`),
//! 4. what it **requires** from libraries co-located in the same
//!    compartment for its own safety properties to hold (`[Requires]`).
//!
//! The paper's verified-scheduler example:
//!
//! ```text
//! [Memory access] Read(Own,Shared); Write(Own,Shared)
//! [Call] alloc::malloc, alloc::free
//! [API] thread_add(...); thread_rm(...); yield(...)
//! [Requires] *(Read,Own), *(Write,Shared), *(Call, thread_add), *...
//! ```
//!
//! and the unsafe-C example:
//!
//! ```text
//! [Memory access] Read(*); Write(*)
//! [Call] *
//! ```
//!
//! Semantics captured here:
//!
//! * Regions are **relative to the declaring library**: `Own` is its
//!   private data, `Shared` the cross-library shared segment. `*` means
//!   the library may touch *anything reachable in its compartment* —
//!   including other libraries' `Own` memory (e.g. when hijacked).
//! * `[Requires]` is a **grant list**: it whitelists what co-located
//!   libraries may do *to this library* (read/write its regions, call its
//!   entry points). Absence of a `[Requires]` section grants everything —
//!   "this means other libraries should not be prevented from writing to
//!   memory owned by this library" (paper §2).

use std::collections::BTreeSet;
use std::fmt;

/// A memory region, relative to the library declaring the spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Region {
    /// The library's private data (static memory, its heap objects).
    Own,
    /// The cross-library shared segment.
    Shared,
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Region::Own => write!(f, "Own"),
            Region::Shared => write!(f, "Shared"),
        }
    }
}

/// A set of regions a library may access — either an explicit subset of
/// `{Own, Shared}` or the wildcard `*` ("anything reachable in the
/// compartment", the adversarial case).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RegionSet {
    /// `*`: may touch any memory reachable in the compartment.
    Star,
    /// An explicit set of self-relative regions.
    Set(BTreeSet<Region>),
}

impl RegionSet {
    /// The empty set (the library never performs this kind of access).
    pub fn none() -> Self {
        RegionSet::Set(BTreeSet::new())
    }

    /// `{Own}`.
    pub fn own() -> Self {
        RegionSet::Set([Region::Own].into())
    }

    /// `{Shared}`.
    pub fn shared() -> Self {
        RegionSet::Set([Region::Shared].into())
    }

    /// `{Own, Shared}` — the well-behaved maximum.
    pub fn own_and_shared() -> Self {
        RegionSet::Set([Region::Own, Region::Shared].into())
    }

    /// Whether the set is the wildcard.
    pub fn is_star(&self) -> bool {
        matches!(self, RegionSet::Star)
    }

    /// Whether the set contains `r` (wildcard contains everything).
    pub fn contains(&self, r: Region) -> bool {
        match self {
            RegionSet::Star => true,
            RegionSet::Set(s) => s.contains(&r),
        }
    }

    /// Whether `self` is a subset of `other`.
    pub fn subset_of(&self, other: &RegionSet) -> bool {
        match (self, other) {
            (_, RegionSet::Star) => true,
            (RegionSet::Star, RegionSet::Set(_)) => false,
            (RegionSet::Set(a), RegionSet::Set(b)) => a.is_subset(b),
        }
    }
}

/// Declared memory-access behaviour (`[Memory access]` section).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemBehavior {
    /// Regions the library may read.
    pub read: RegionSet,
    /// Regions the library may write.
    pub write: RegionSet,
}

impl MemBehavior {
    /// Well-behaved: reads and writes confined to own + shared memory.
    pub fn well_behaved() -> Self {
        Self {
            read: RegionSet::own_and_shared(),
            write: RegionSet::own_and_shared(),
        }
    }

    /// Adversarial: `Read(*); Write(*)` — may be hijacked into touching
    /// anything reachable.
    pub fn adversarial() -> Self {
        Self {
            read: RegionSet::Star,
            write: RegionSet::Star,
        }
    }
}

/// A reference to a function in a (possibly other) library, `lib::func`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncRef {
    /// The library exposing the function.
    pub lib: String,
    /// The function name.
    pub func: String,
}

impl FuncRef {
    /// Builds a `lib::func` reference.
    pub fn new(lib: impl Into<String>, func: impl Into<String>) -> Self {
        Self {
            lib: lib.into(),
            func: func.into(),
        }
    }
}

impl fmt::Display for FuncRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}::{}", self.lib, self.func)
    }
}

/// Declared call behaviour (`[Call]` section).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CallBehavior {
    /// `*`: may execute arbitrary code / call anything (hijackable).
    Star,
    /// Calls only the listed functions.
    Funcs(BTreeSet<FuncRef>),
}

impl CallBehavior {
    /// The empty call set (leaf library).
    pub fn none() -> Self {
        CallBehavior::Funcs(BTreeSet::new())
    }

    /// Builds a call set from `lib::func` pairs.
    pub fn funcs<I, L, F>(items: I) -> Self
    where
        I: IntoIterator<Item = (L, F)>,
        L: Into<String>,
        F: Into<String>,
    {
        CallBehavior::Funcs(items.into_iter().map(|(l, f)| FuncRef::new(l, f)).collect())
    }

    /// Whether the behaviour is the wildcard.
    pub fn is_star(&self) -> bool {
        matches!(self, CallBehavior::Star)
    }
}

/// A function exposed by the library (`[API]` section).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ApiFunc {
    /// Function name.
    pub name: String,
    /// Parameter names (informational; used by gate marshalling docs).
    pub params: Vec<String>,
    /// Human-readable preconditions (paper §2 "Handling pre and post
    /// conditions": e.g. `thread_add` must not add an already-added
    /// thread). The build system decides whether to insert runtime checks
    /// for these at gate boundaries.
    pub preconditions: Vec<String>,
}

impl ApiFunc {
    /// An API function with no declared parameters or preconditions.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            params: Vec::new(),
            preconditions: Vec::new(),
        }
    }
}

/// What kinds of access a `[Requires]` grant permits on the declaring
/// library.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GrantKind {
    /// `(Read, R)`: others may read region `R` of this library.
    Read(Region),
    /// `(Write, R)`: others may write region `R` of this library.
    Write(Region),
    /// `(Call, f)`: others may call entry point `f` of this library.
    Call(String),
    /// `(Call, *)`: others may call any entry point.
    CallAny,
}

/// Who a grant applies to.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GrantSubject {
    /// `*`: any co-located library.
    Any,
    /// A specific library by name.
    Lib(String),
}

/// One entry of the `[Requires]` section: `subject(kind)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Grant {
    /// Which co-located libraries the grant applies to.
    pub subject: GrantSubject,
    /// What is being permitted.
    pub kind: GrantKind,
}

impl Grant {
    /// `*(kind)` — grant to any co-located library.
    pub fn any(kind: GrantKind) -> Self {
        Self {
            subject: GrantSubject::Any,
            kind,
        }
    }

    /// Whether this grant applies to the library named `lib`.
    pub fn applies_to(&self, lib: &str) -> bool {
        match &self.subject {
            GrantSubject::Any => true,
            GrantSubject::Lib(l) => l == lib,
        }
    }
}

/// The `[Requires]` section: `None` means the section is absent, which
/// per the paper grants everything ("other libraries should not be
/// prevented from writing to memory owned by this library").
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Requires {
    /// The grant whitelist; `None` = unconstrained (grants everything).
    pub grants: Option<Vec<Grant>>,
}

impl Requires {
    /// An absent `[Requires]` section (grants everything).
    pub fn unconstrained() -> Self {
        Self { grants: None }
    }

    /// A grant whitelist.
    pub fn granting(grants: Vec<Grant>) -> Self {
        Self {
            grants: Some(grants),
        }
    }

    /// Whether this library constrains its co-residents at all.
    pub fn is_constrained(&self) -> bool {
        self.grants.is_some()
    }

    /// Whether `lib` is granted `kind` by this requires-section.
    pub fn permits(&self, lib: &str, kind: &GrantKind) -> bool {
        match &self.grants {
            None => true,
            Some(grants) => grants.iter().any(|g| {
                g.applies_to(lib)
                    && (g.kind == *kind
                        || matches!((&g.kind, kind), (GrantKind::CallAny, GrantKind::Call(_))))
            }),
        }
    }
}

/// A complete library specification.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LibSpec {
    /// The library's name (Unikraft micro-library granularity, e.g.
    /// `uknetdev`, `uksched`, `libc`).
    pub name: String,
    /// `[Memory access]`.
    pub mem: MemBehavior,
    /// `[Call]`.
    pub call: CallBehavior,
    /// `[API]`.
    pub api: Vec<ApiFunc>,
    /// `[Requires]`.
    pub requires: Requires,
}

impl LibSpec {
    /// A conservative spec for a library written in an unsafe language
    /// with no analysis available: it may do anything and demands nothing.
    pub fn unsafe_c(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            mem: MemBehavior::adversarial(),
            call: CallBehavior::Star,
            api: Vec::new(),
            requires: Requires::unconstrained(),
        }
    }

    /// The paper's verified-scheduler spec.
    pub fn verified_scheduler() -> Self {
        Self {
            name: "uksched_verified".into(),
            mem: MemBehavior::well_behaved(),
            call: CallBehavior::funcs([("alloc", "malloc"), ("alloc", "free")]),
            api: vec![
                ApiFunc {
                    name: "thread_add".into(),
                    params: vec!["thread".into()],
                    preconditions: vec!["thread not already added".into()],
                },
                ApiFunc::named("thread_rm"),
                ApiFunc::named("yield"),
            ],
            requires: Requires::granting(vec![
                Grant::any(GrantKind::Read(Region::Own)),
                Grant::any(GrantKind::Write(Region::Shared)),
                Grant::any(GrantKind::Read(Region::Shared)),
                Grant::any(GrantKind::Call("thread_add".into())),
                Grant::any(GrantKind::Call("thread_rm".into())),
                Grant::any(GrantKind::Call("yield".into())),
            ]),
        }
    }

    /// Whether `func` is one of this library's exposed API entry points.
    pub fn exposes(&self, func: &str) -> bool {
        self.api.iter().any(|a| a.name == func)
    }

    /// The set of functions this library calls in libraries other than
    /// itself, or `None` for the wildcard.
    pub fn external_calls(&self) -> Option<impl Iterator<Item = &FuncRef>> {
        match &self.call {
            CallBehavior::Star => None,
            CallBehavior::Funcs(fs) => Some(fs.iter().filter(move |f| f.lib != self.name)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_set_subset_lattice() {
        assert!(RegionSet::none().subset_of(&RegionSet::own()));
        assert!(RegionSet::own().subset_of(&RegionSet::own_and_shared()));
        assert!(RegionSet::own_and_shared().subset_of(&RegionSet::Star));
        assert!(!RegionSet::Star.subset_of(&RegionSet::own_and_shared()));
        assert!(!RegionSet::shared().subset_of(&RegionSet::own()));
    }

    #[test]
    fn star_contains_everything() {
        assert!(RegionSet::Star.contains(Region::Own));
        assert!(RegionSet::Star.contains(Region::Shared));
        assert!(!RegionSet::none().contains(Region::Own));
    }

    #[test]
    fn unconstrained_requires_permits_all() {
        let r = Requires::unconstrained();
        assert!(r.permits("anything", &GrantKind::Write(Region::Own)));
        assert!(r.permits("x", &GrantKind::Call("foo".into())));
    }

    #[test]
    fn grant_whitelist_is_exact() {
        let r = Requires::granting(vec![Grant::any(GrantKind::Read(Region::Own))]);
        assert!(r.permits("x", &GrantKind::Read(Region::Own)));
        assert!(!r.permits("x", &GrantKind::Write(Region::Own)));
        assert!(!r.permits("x", &GrantKind::Read(Region::Shared)));
    }

    #[test]
    fn call_any_grant_covers_specific_calls() {
        let r = Requires::granting(vec![Grant::any(GrantKind::CallAny)]);
        assert!(r.permits("x", &GrantKind::Call("thread_add".into())));
    }

    #[test]
    fn lib_scoped_grants_only_apply_to_that_lib() {
        let r = Requires::granting(vec![Grant {
            subject: GrantSubject::Lib("libc".into()),
            kind: GrantKind::Write(Region::Own),
        }]);
        assert!(r.permits("libc", &GrantKind::Write(Region::Own)));
        assert!(!r.permits("netstack", &GrantKind::Write(Region::Own)));
    }

    #[test]
    fn paper_specs_have_expected_shape() {
        let sched = LibSpec::verified_scheduler();
        assert!(sched.requires.is_constrained());
        assert!(sched.exposes("thread_add"));
        assert!(!sched.exposes("malloc"));
        assert_eq!(sched.external_calls().unwrap().count(), 2);

        let c = LibSpec::unsafe_c("rawlib");
        assert!(c.mem.read.is_star());
        assert!(c.call.is_star());
        assert!(!c.requires.is_constrained());
        assert!(c.external_calls().is_none());
    }
}
