//! # flexos — the FlexOS framework (the paper's primary contribution)
//!
//! A Rust implementation of the core of *"FlexOS: Making OS Isolation
//! Flexible"* (HotOS '21): an OS whose **compartmentalization and
//! protection profile is decided at build time**, not design time.
//!
//! The crate provides, end to end:
//!
//! * [`spec`] — the **library metadata language**: memory-access
//!   behaviour (normal *and* adversarial), call behaviour, API entry
//!   points, and `[Requires]` grants; a parser/printer for the paper's
//!   textual syntax; and the **SH spec-transformations** (CFI bounds
//!   `Call(*)`, DFI/ASAN bound `Write(*)`, …).
//! * [`compat`] — **pairwise compatibility checking**, the
//!   incompatibility graph, **graph coloring** (exact + DSATUR) deriving
//!   the minimal number of compartments, and enumeration of SH-variant
//!   deployments.
//! * [`gate`] — the **gate abstraction**: compartment contexts, the
//!   `Gate` trait isolation backends implement (direct call, MPK
//!   shared/switched stack, VM RPC — see `flexos-backends`), and the
//!   `GateRuntime` dispatcher replacing FlexOS's link-time gate
//!   substitution.
//! * [`build`] — the **build system**: image configuration →
//!   validated compartmentalization plan (manual and automatic
//!   placement, backend constraints such as MPK's key budget and
//!   scheduler/MM trust requirements).
//! * [`explore`] — **design-space exploration**: a per-request cost
//!   model, a security score, candidate enumeration, and the paper's two
//!   §2 objectives (max security within a performance budget; fastest
//!   configuration meeting a security floor).
//!
//! ## Quick tour
//!
//! ```
//! use flexos::spec::{parse_with_name, LibSpec};
//! use flexos::compat::{compatible, IncompatGraph, color};
//! use flexos::build::{plan, BackendChoice, ImageConfig, LibraryConfig, LibRole};
//!
//! // The paper's two example specs:
//! let sched = LibSpec::verified_scheduler();
//! let rawlib = parse_with_name("[Memory access] Read(*); Write(*)\n[Call] *", "rawlib").unwrap();
//! assert!(!compatible(&sched, &rawlib)); // must be separated
//!
//! // Derive the compartmentalization automatically:
//! let cfg = ImageConfig::new("demo", BackendChoice::MpkShared)
//!     .with_library(LibraryConfig::new(sched, LibRole::Scheduler))
//!     .with_library(LibraryConfig::new(rawlib, LibRole::Other));
//! let plan = plan(cfg).unwrap();
//! assert_eq!(plan.num_compartments, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod compat;
pub mod explore;
pub mod gate;
pub(crate) mod parallel;
pub mod spec;
pub mod synth;
pub mod wrappers;

pub use build::{
    plan, plan_with_cache, BackendChoice, ImageConfig, ImagePlan, LibRole, LibraryConfig,
};
pub use explore::{explore, Exploration, ExploreOptions};
pub use gate::{CompartmentCtx, CompartmentId, DirectGate, Gate, GateMechanism, GateRuntime};
pub use spec::{LibSpec, ShMechanism, ShSet};
