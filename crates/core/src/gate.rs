//! Gates: the isolation abstraction between compartments.
//!
//! "Compartments in FlexOS are separated via gates which are made up of
//! the API each compartment exposes. The gates also implement isolation
//! between compartments, and can leverage different isolation mechanisms
//! … Implementations vary from cheap function calls all the way to
//! expensive RPC across VM boundaries." (paper §2)
//!
//! This module defines the [`Gate`] trait that isolation backends
//! implement, the [`CompartmentCtx`] runtime state of one compartment,
//! and the [`GateRuntime`] dispatcher that replaces FlexOS's link-time
//! gate substitution: library code calls [`GateRuntime::cross`] (the
//! analogue of the `uk_gate_r(rc, listen, sockfd, 5)` placeholder) and
//! the runtime either performs a plain function call (same compartment)
//! or drives the configured backend's enter/exit sequence.

use crate::spec::transform::ShSet;
use flexos_machine::{Addr, Fault, Machine, Pkru, ProtKey, Result, VcpuId, VmId};
use flexos_trace::{GateTrace, SpanId, SpanKind};
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// Identifier of a compartment within an image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CompartmentId(pub u16);

impl fmt::Display for CompartmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compartment{}", self.0)
    }
}

/// The isolation mechanism a gate implements (Figure 2's gate library).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateMechanism {
    /// Plain function call — no protection-domain switch.
    DirectCall,
    /// Intel MPK with a shared stack domain (ERIM-style).
    MpkSharedStack,
    /// Intel MPK with per-compartment stacks switched at the boundary
    /// (Hodor-style).
    MpkSwitchedStack,
    /// RPC across VM (EPT) boundaries via inter-VM notifications.
    VmRpc,
    /// CHERI sealed-capability domain transition (CompartOS-style) —
    /// the paper's other "heterogeneous hardware" example.
    Cheri,
}

impl GateMechanism {
    /// Human-readable name as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            GateMechanism::DirectCall => "function call",
            GateMechanism::MpkSharedStack => "MPK (shared stack)",
            GateMechanism::MpkSwitchedStack => "MPK (switched stack)",
            GateMechanism::VmRpc => "VM RPC (EPT)",
            GateMechanism::Cheri => "CHERI (sealed caps)",
        }
    }

    /// Where thread stacks live under this mechanism: `true` if stacks sit
    /// in a domain shared by all compartments (the shared-stack gate), in
    /// which case stack memory cannot be assumed private.
    pub fn stacks_shared(self) -> bool {
        matches!(
            self,
            GateMechanism::DirectCall | GateMechanism::MpkSharedStack
        )
    }

    /// Position on the isolation-strength ladder the migration policy
    /// climbs: function call (0) → MPK shared stack → MPK switched
    /// stack → CHERI → VM RPC (4). A live migration to a higher rank
    /// escalates isolation; to a lower rank relaxes it.
    pub fn isolation_rank(self) -> u8 {
        match self {
            GateMechanism::DirectCall => 0,
            GateMechanism::MpkSharedStack => 1,
            GateMechanism::MpkSwitchedStack => 2,
            GateMechanism::Cheri => 3,
            GateMechanism::VmRpc => 4,
        }
    }
}

/// Why a live backend migration was requested — the policy intent,
/// tallied in [`MigrationStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationReason {
    /// Operator- or test-driven switch.
    Manual,
    /// Policy raised isolation (flexos-inject chaos or a
    /// `HardeningAbort` fired).
    Escalate,
    /// Policy lowered isolation under sustained load.
    Relax,
}

impl MigrationReason {
    /// Short machine-readable tag.
    pub fn label(self) -> &'static str {
        match self {
            MigrationReason::Manual => "manual",
            MigrationReason::Escalate => "escalate",
            MigrationReason::Relax => "relax",
        }
    }
}

/// Cumulative live-migration counters (additive `--stats` block since
/// PR 10). Host-side bookkeeping: the drain/swap machinery charges no
/// simulated cycles of its own, so a run in which no migration triggers
/// is bit-identical to one without the machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Migrations requested (applied immediately or deferred).
    pub requested: u64,
    /// Migrations whose backend swap completed.
    pub completed: u64,
    /// Requests that had to wait for in-flight work to drain.
    pub deferred: u64,
    /// SQE submissions refused with [`Fault::GateDraining`] while the
    /// pair was draining (the admission stop that bounds the drain).
    pub rejected_submits: u64,
    /// Pending SQEs carried across a swap — they re-issue through the
    /// incoming backend on the next flush.
    pub requeued_sqes: u64,
    /// Ready CQEs preserved (still reapable) across a swap.
    pub preserved_cqes: u64,
    /// Total drain latency (request → swap), simulated cycles.
    pub drain_cycles_total: u64,
    /// Worst single drain latency, simulated cycles.
    pub drain_cycles_max: u64,
    /// Completed migrations requested as [`MigrationReason::Escalate`].
    pub escalations: u64,
    /// Completed migrations requested as [`MigrationReason::Relax`].
    pub relaxations: u64,
}

/// Backend-state re-establishment hook a migration runs at swap time,
/// once the pair is quiescent: pkey retags (driving the machine's
/// generation-counter TLB invalidation), PKRU view updates, VM-RPC
/// inbox/doorbell hygiene. Runs with the machine, every compartment
/// context, and the currently-executing compartment; the backend layer
/// builds it (`flexos-backends::migrate`), the gate runtime only
/// schedules it.
pub type ReestablishFn =
    Arc<dyn Fn(&mut Machine, &mut [CompartmentCtx], CompartmentId) -> Result<()> + Send + Sync>;

/// One draining pair: the backend swap waiting for quiescence.
struct PendingMigration {
    gate: Arc<dyn Gate>,
    reason: MigrationReason,
    reestablish: Option<ReestablishFn>,
    requested_at: u64,
}

/// Tunable gate-runtime behaviour (per image).
///
/// `batch_enabled` selects the vectored fast path for
/// [`GateRuntime::cross_batch`]: on, batched crossings hoist the gate
/// lookup and let backends elide host-side work that repeats across the
/// batch (doorbell queue churn, split PKRU writes); off, every batched
/// call degrades to a plain [`GateRuntime::cross`] — the reference path
/// the differential suite compares against. Either way the *simulated*
/// cycles, faults, and trace events are bit-identical: batching is a
/// host-time optimisation only.
///
/// `overlap_enabled` does the same for the async gate rings: on, a
/// [`GateRuntime::flush_async`] drains the submission ring through the
/// vectored fast path (one hoisted gate + the backend's batch hooks, so
/// VM-RPC posts a single coalesced doorbell per flush); off, the flush
/// degrades to a loop of plain [`GateRuntime::cross`] — the reference
/// path the sync-vs-async differential suite compares against. The same
/// invariant holds: overlap is a host-time optimisation only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateConfig {
    /// Use the vectored fast path in `cross_batch` (default: on).
    pub batch_enabled: bool,
    /// Use the overlapped fast path when flushing async rings
    /// (default: on).
    pub overlap_enabled: bool,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self {
            batch_enabled: true,
            overlap_enabled: true,
        }
    }
}

/// A builder for the per-call marshalling sizes of one batched crossing.
///
/// Each entry is the `(arg_bytes, ret_bytes)` pair one call moves
/// through the gate — the same two numbers a plain [`GateRuntime::cross`]
/// takes. Batches are homogeneous in *target* (all calls cross into the
/// same compartment) but heterogeneous in size.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallVec {
    calls: Vec<(u64, u64)>,
}

impl CallVec {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// A batch of `n` identical calls (the common microbench shape).
    pub fn uniform(n: usize, arg_bytes: u64, ret_bytes: u64) -> Self {
        Self {
            calls: vec![(arg_bytes, ret_bytes); n],
        }
    }

    /// Appends one call.
    pub fn push(&mut self, arg_bytes: u64, ret_bytes: u64) -> &mut Self {
        self.calls.push((arg_bytes, ret_bytes));
        self
    }

    /// Appends `n` identical calls.
    pub fn push_uniform(&mut self, n: usize, arg_bytes: u64, ret_bytes: u64) -> &mut Self {
        let new_len = self.calls.len() + n;
        self.calls.resize(new_len, (arg_bytes, ret_bytes));
        self
    }

    /// Number of calls in the batch.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    /// Drops all calls, keeping the allocation.
    pub fn clear(&mut self) {
        self.calls.clear();
    }

    /// The `(arg_bytes, ret_bytes)` of call `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn get(&self, idx: usize) -> (u64, u64) {
        self.calls[idx]
    }

    /// All calls, in issue order.
    pub fn as_slice(&self) -> &[(u64, u64)] {
        &self.calls
    }
}

/// Default slot capacity of one async gate ring pair.
///
/// Deep enough for every in-tree consumer's natural burst (redis drains
/// its RESP pipeline in ≤ a few chunks, iperf bursts 8 segments); callers
/// with bigger bursts raise it with [`GateRuntime::ensure_ring_depth`].
pub const DEFAULT_RING_DEPTH: usize = 64;

/// One submitted gate-call descriptor — the io_uring SQE analogue.
///
/// Carries the same `(arg_bytes, ret_bytes)` marshalling sizes a plain
/// [`GateRuntime::cross`] takes, an opaque `user_data` cookie copied to
/// the completion verbatim (io_uring convention), and the PR-7 request
/// span the call belongs to, so latency attribution survives the
/// submit/reap decoupling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sqe {
    /// Marshalled argument bytes the call moves into the target.
    pub arg_bytes: u64,
    /// Marshalled return bytes the call moves back out.
    pub ret_bytes: u64,
    /// Opaque caller cookie, echoed in the matching [`Cqe`].
    pub user_data: u64,
    /// Request span this call is attributed to ([`SpanId::NONE`] if
    /// the caller isn't inside a traced request).
    pub span: SpanId,
}

impl Sqe {
    /// A descriptor with no span attribution.
    pub fn new(arg_bytes: u64, ret_bytes: u64, user_data: u64) -> Self {
        Self {
            arg_bytes,
            ret_bytes,
            user_data,
            span: SpanId::NONE,
        }
    }

    /// Tags the descriptor with a request span.
    pub fn with_span(mut self, span: SpanId) -> Self {
        self.span = span;
        self
    }
}

/// One completed gate call — the io_uring CQE analogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cqe {
    /// The cookie from the matching [`Sqe`].
    pub user_data: u64,
    /// The call's result value. io_uring-style: callers encode
    /// application-level errors as negative values; machine faults abort
    /// the flush instead and never produce a completion.
    pub res: i64,
    /// The span from the matching [`Sqe`].
    pub span: SpanId,
}

/// Cumulative async-ring counters (additive `--stats` block since PR 8).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AsyncGateStats {
    /// Descriptors accepted by [`GateRuntime::submit`].
    pub submitted: u64,
    /// Completions delivered (CQEs produced by flushes).
    pub completed: u64,
    /// Flushes that drained at least one descriptor.
    pub flushes: u64,
    /// Pending submissions dropped by [`GateRuntime::cancel_pending`].
    pub cancelled: u64,
    /// Submissions rejected with [`Fault::RingFull`].
    pub sq_full: u64,
    /// Reaps rejected with [`Fault::RingEmpty`].
    pub cq_empty: u64,
}

/// One (caller, target) pair's submission/completion ring state.
///
/// Host-side bookkeeping only: no simulated cycles are charged until a
/// flush replays the queued calls through `cross_batch_until`, so the
/// simulated instruction stream is exactly what a sequential driver
/// would have issued.
#[derive(Debug)]
struct AsyncRing {
    depth: usize,
    /// Contiguous so a flush indexes descriptors straight off a slice
    /// (a flush drains from the front; partial drains shift only the
    /// rare fault-path survivors).
    sq: Vec<Sqe>,
    /// Completions, `cq[cq_head..]` ready to reap. A `Vec` plus head
    /// index instead of a deque: posting and draining — the hot flush
    /// ops — are straight appends/copies, and only the one-at-a-time
    /// `reap` path pays the head bookkeeping.
    cq: Vec<Cqe>,
    cq_head: usize,
}

impl AsyncRing {
    /// Completions ready to reap.
    fn cq_ready(&self) -> usize {
        self.cq.len() - self.cq_head
    }

    /// Resets the backing `Vec` once every ready completion is gone, so
    /// reap-then-flush cycles reuse the buffer instead of growing it.
    fn cq_compact(&mut self) {
        if self.cq_head == self.cq.len() {
            self.cq.clear();
            self.cq_head = 0;
        }
    }
}

impl Default for AsyncRing {
    fn default() -> Self {
        Self {
            depth: DEFAULT_RING_DEPTH,
            sq: Vec::new(),
            cq: Vec::new(),
            cq_head: 0,
        }
    }
}

/// Runtime state of one compartment.
#[derive(Debug, Clone)]
pub struct CompartmentCtx {
    /// The compartment's identity.
    pub id: CompartmentId,
    /// Human-readable name (e.g. `"net"` or joined library names).
    pub name: String,
    /// The VM the compartment executes in (VM 0 for intra-address-space
    /// backends; its own VM for the VM backend).
    pub vm: VmId,
    /// The vCPU the compartment executes on ("Compartments do not share a
    /// single address space anymore, and run on different vCPUs" — VM
    /// backend; a single vCPU otherwise).
    pub vcpu: VcpuId,
    /// The PKRU view the compartment runs with (MPK backends).
    pub pkru: Pkru,
    /// Protection keys owned by this compartment (its private domain).
    pub keys: Vec<ProtKey>,
    /// Software hardening applied to this compartment.
    pub sh: ShSet,
    /// Base of this compartment's private heap region.
    pub heap_base: Addr,
    /// Size in bytes of the private heap region.
    pub heap_size: u64,
}

/// An isolation backend's gate implementation.
///
/// `enter` is executed when control crosses *into* `to` from `from`
/// carrying `arg_bytes` of arguments; `exit` when control returns,
/// carrying `ret_bytes`. Implementations charge their cycle costs on the
/// machine clock and perform the actual domain switch (PKRU write, vCPU
/// handoff, notification, …) so that enforcement matches the mechanism.
///
/// `Send + Sync` is a supertrait since true SMP: gates are stateless
/// behind `&self` (all mutable state — clock, PKRU, doorbells — lives in
/// the `Machine` passed in), and the runtime shares them via `Arc` so a
/// booted image can move to, or be driven from, another host thread in
/// free-running mode. A backend needing interior state must use atomics,
/// not `Cell` — the compiler now enforces that.
pub trait Gate: fmt::Debug + Send + Sync {
    /// The mechanism this gate implements.
    fn mechanism(&self) -> GateMechanism;

    /// Crosses from `from` into `to`.
    fn enter(
        &self,
        m: &mut Machine,
        from: &CompartmentCtx,
        to: &CompartmentCtx,
        arg_bytes: u64,
    ) -> Result<()>;

    /// Returns from `callee` back into `caller`.
    fn exit(
        &self,
        m: &mut Machine,
        callee: &CompartmentCtx,
        caller: &CompartmentCtx,
        ret_bytes: u64,
    ) -> Result<()>;

    /// Like [`Gate::enter`], for call `idx` (0-based) of a batched
    /// crossing into the same target.
    ///
    /// The default forwards to `enter`. Backends override this to elide
    /// *host-side* work that repeats across a batch (doorbell queue
    /// churn, split register writes). Overrides MUST charge exactly the
    /// same simulated cycles, draw exactly the same chaos decisions and
    /// raise exactly the same faults as `enter` would — the differential
    /// suite in `crates/backends/tests/backend_equiv.rs` holds them to
    /// that contract.
    fn enter_nth(
        &self,
        m: &mut Machine,
        from: &CompartmentCtx,
        to: &CompartmentCtx,
        arg_bytes: u64,
        idx: usize,
    ) -> Result<()> {
        let _ = idx;
        self.enter(m, from, to, arg_bytes)
    }

    /// Like [`Gate::exit`], for call `idx` of a batched crossing. Same
    /// equivalence contract as [`Gate::enter_nth`].
    fn exit_nth(
        &self,
        m: &mut Machine,
        callee: &CompartmentCtx,
        caller: &CompartmentCtx,
        ret_bytes: u64,
        idx: usize,
    ) -> Result<()> {
        let _ = idx;
        self.exit(m, callee, caller, ret_bytes)
    }
}

/// The trivial gate: a plain function call. Used within a compartment and
/// by the "no isolation" baseline configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectGate;

impl Gate for DirectGate {
    fn mechanism(&self) -> GateMechanism {
        GateMechanism::DirectCall
    }

    fn enter(
        &self,
        m: &mut Machine,
        _from: &CompartmentCtx,
        _to: &CompartmentCtx,
        _arg_bytes: u64,
    ) -> Result<()> {
        m.charge(m.costs().func_call);
        Ok(())
    }

    fn exit(
        &self,
        _m: &mut Machine,
        _callee: &CompartmentCtx,
        _caller: &CompartmentCtx,
        _ret_bytes: u64,
    ) -> Result<()> {
        Ok(())
    }
}

/// Cumulative gate-crossing statistics (reported by the bench harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateStats {
    /// Cross-compartment crossings (round trips).
    pub crossings: u64,
    /// Same-compartment calls that compiled down to direct calls.
    pub direct_calls: u64,
    /// Total argument + return bytes moved through gates.
    pub bytes_marshalled: u64,
    /// Cycles spent inside gate enter/exit sequences.
    pub gate_cycles: u64,
}

/// The per-image gate dispatcher.
///
/// Holds every compartment's context, the configured backend gate (plus
/// optional per-pair overrides — Figure 2 shows different gate types can
/// coexist in one image), and the current call stack of compartments.
pub struct GateRuntime {
    compartments: Vec<CompartmentCtx>,
    default_gate: Arc<dyn Gate>,
    pair_gates: BTreeMap<(CompartmentId, CompartmentId), Arc<dyn Gate>>,
    stack: Vec<CompartmentId>,
    stats: GateStats,
    trace: GateTrace,
    config: GateConfig,
    rings: BTreeMap<(CompartmentId, CompartmentId), AsyncRing>,
    async_stats: AsyncGateStats,
    /// Pairs (normalized `a <= b`) whose backend swap is waiting for
    /// quiescence. Admission onto the pair's submission rings is
    /// stopped while an entry is present.
    draining: BTreeMap<(CompartmentId, CompartmentId), PendingMigration>,
    /// Stack of pairs with a `cross_batch`/flush in progress — those
    /// pairs are not quiescent even when no call is on the compartment
    /// stack (between two calls of a batch).
    active_batches: Vec<(CompartmentId, CompartmentId)>,
    /// Pairs that swapped but have not crossed since: the next crossing
    /// records the post-swap span probe.
    post_swap: BTreeSet<(CompartmentId, CompartmentId)>,
    migration_stats: MigrationStats,
}

impl fmt::Debug for GateRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GateRuntime")
            .field("compartments", &self.compartments.len())
            .field("current", &self.current())
            .field("stats", &self.stats)
            .finish()
    }
}

impl GateRuntime {
    /// Creates a runtime over `compartments` using `default_gate` for all
    /// cross-compartment calls, starting execution in `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `compartments` is empty or `initial` is out of range.
    pub fn new(
        compartments: Vec<CompartmentCtx>,
        default_gate: Arc<dyn Gate>,
        initial: CompartmentId,
    ) -> Self {
        assert!(
            !compartments.is_empty(),
            "an image has at least one compartment"
        );
        assert!(
            (initial.0 as usize) < compartments.len(),
            "unknown initial compartment"
        );
        Self {
            compartments,
            default_gate,
            pair_gates: BTreeMap::new(),
            stack: vec![initial],
            stats: GateStats::default(),
            trace: GateTrace::new(),
            config: GateConfig::default(),
            rings: BTreeMap::new(),
            async_stats: AsyncGateStats::default(),
            draining: BTreeMap::new(),
            active_batches: Vec::new(),
            post_swap: BTreeSet::new(),
            migration_stats: MigrationStats::default(),
        }
    }

    /// The runtime's configuration.
    pub fn config(&self) -> GateConfig {
        self.config
    }

    /// Toggles the vectored `cross_batch` fast path. Off means batched
    /// entry points degrade to loops of plain [`GateRuntime::cross`] —
    /// the reference path for equivalence testing.
    pub fn set_batch_enabled(&mut self, on: bool) {
        self.config.batch_enabled = on;
    }

    /// Toggles the overlapped flush path for async gate rings. Off means
    /// every flush degrades to a loop of plain [`GateRuntime::cross`] —
    /// the reference path for the sync-vs-async differential suite.
    pub fn set_overlap_enabled(&mut self, on: bool) {
        self.config.overlap_enabled = on;
    }

    /// Normalized (both-directions) key for a compartment pair.
    fn pair_key(a: CompartmentId, b: CompartmentId) -> (CompartmentId, CompartmentId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Overrides the gate used between `a` and `b` (both directions).
    pub fn set_pair_gate(&mut self, a: CompartmentId, b: CompartmentId, gate: Arc<dyn Gate>) {
        self.pair_gates.insert(Self::pair_key(a, b), gate);
    }

    fn gate_for(&self, a: CompartmentId, b: CompartmentId) -> Arc<dyn Gate> {
        self.pair_gates
            .get(&Self::pair_key(a, b))
            .cloned()
            .unwrap_or_else(|| Arc::clone(&self.default_gate))
    }

    /// The mechanism currently serving the `(a, b)` pair.
    pub fn pair_mechanism(&self, a: CompartmentId, b: CompartmentId) -> GateMechanism {
        self.gate_for(a, b).mechanism()
    }

    /// The compartment currently executing.
    pub fn current(&self) -> CompartmentId {
        *self.stack.last().expect("compartment stack never empty")
    }

    /// Context of the current compartment.
    pub fn current_ctx(&self) -> &CompartmentCtx {
        &self.compartments[self.current().0 as usize]
    }

    /// Context of a specific compartment.
    pub fn ctx(&self, id: CompartmentId) -> &CompartmentCtx {
        &self.compartments[id.0 as usize]
    }

    /// Number of compartments.
    pub fn len(&self) -> usize {
        self.compartments.len()
    }

    /// Whether the image has a single compartment.
    pub fn is_empty(&self) -> bool {
        self.compartments.is_empty()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> GateStats {
        self.stats
    }

    /// Resets statistics (benchmark warm-up support).
    pub fn reset_stats(&mut self) {
        self.stats = GateStats::default();
        self.async_stats = AsyncGateStats::default();
        self.migration_stats = MigrationStats::default();
        self.trace.reset();
    }

    /// Cumulative async-ring counters.
    pub fn async_stats(&self) -> AsyncGateStats {
        self.async_stats
    }

    /// Cumulative live-migration counters.
    pub fn migration_stats(&self) -> MigrationStats {
        self.migration_stats
    }

    /// Whether the `(a, b)` pair is draining towards a backend swap.
    pub fn migration_pending(&self, a: CompartmentId, b: CompartmentId) -> bool {
        self.draining.contains_key(&Self::pair_key(a, b))
    }

    /// Requests a live backend swap for the `(a, b)` pair — the
    /// quiescence protocol's entry point.
    ///
    /// If the pair is quiescent (no in-flight sync call has the pair on
    /// the compartment stack, no `cross_batch` or async-ring flush over
    /// the pair is mid-loop), the swap applies immediately and `Ok(true)`
    /// is returned. Otherwise the pair is marked *draining* — SQE
    /// admission onto its rings is refused with [`Fault::GateDraining`]
    /// so a continuous submitter cannot stall quiescence — and the swap
    /// is deferred to the next safe point (end of the in-flight call,
    /// batch, flush, or a [`GateRuntime::resume_in`] context switch);
    /// `Ok(false)` is returned. Either way the pair's queued SQEs are
    /// carried across the swap (they re-issue through the new backend on
    /// the next flush) and ready CQEs stay reapable — the same
    /// completed-prefix machinery a mid-flush `HardeningAbort` uses.
    ///
    /// `reestablish`, when present, runs at swap time to re-establish
    /// backend state (pkey retags via the generation-counter TLB
    /// invalidation, PKRU views, VM-RPC inbox hygiene); the
    /// `flexos-backends` migration layer builds it.
    ///
    /// Span probes: `drain-start` at the request, `drain-end` spanning
    /// the drain window, `swap` at the switch, and `first-crossing` on
    /// the pair's next crossing — all [`SpanKind::Migrate`].
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is unknown or `a == b`.
    pub fn request_migration(
        &mut self,
        m: &mut Machine,
        a: CompartmentId,
        b: CompartmentId,
        gate: Arc<dyn Gate>,
        reason: MigrationReason,
        reestablish: Option<ReestablishFn>,
    ) -> Result<bool> {
        assert!((a.0 as usize) < self.compartments.len(), "unknown {a}");
        assert!((b.0 as usize) < self.compartments.len(), "unknown {b}");
        assert_ne!(a, b, "a gate pair has two distinct compartments");
        let key = Self::pair_key(a, b);
        let now = m.clock().cycles();
        m.span_trace_mut().record(
            self.compartments[key.0 .0 as usize].vcpu.0 as u16,
            SpanKind::Migrate,
            "drain-start",
            key.0 .0,
            key.1 .0,
            now,
            now,
        );
        self.migration_stats.requested += 1;
        let pending = PendingMigration {
            gate,
            reason,
            reestablish,
            requested_at: now,
        };
        if self.migration_safe(key) {
            self.complete_migration(m, key, pending)?;
            Ok(true)
        } else {
            self.migration_stats.deferred += 1;
            // Latest request wins if the pair was already draining; the
            // admission stop carries over either way.
            self.draining.insert(key, pending);
            Ok(false)
        }
    }

    /// Applies every pending migration whose pair became quiescent —
    /// the pump drivers call from their idle loop so a drain completes
    /// even when no further crossings occur. Returns how many swaps
    /// were applied.
    pub fn poll_migrations(&mut self, m: &mut Machine) -> Result<usize> {
        let before = self.migration_stats.completed;
        self.apply_ready_migrations(m)?;
        Ok((self.migration_stats.completed - before) as usize)
    }

    /// A pair is quiescent when no in-flight sync call crosses it (no
    /// adjacent window of the compartment stack is the pair) and no
    /// batch or flush over it is mid-loop.
    fn migration_safe(&self, key: (CompartmentId, CompartmentId)) -> bool {
        !self.active_batches.contains(&key)
            && !self
                .stack
                .windows(2)
                .any(|w| Self::pair_key(w[0], w[1]) == key)
    }

    /// Completes every ready pending migration, in normalized pair
    /// order (deterministic). Invoked from the quiescence safe points:
    /// end of a crossing, each batched call, batch/flush epilogues, and
    /// context switches.
    fn apply_ready_migrations(&mut self, m: &mut Machine) -> Result<()> {
        if self.draining.is_empty() {
            return Ok(());
        }
        let ready: Vec<_> = self
            .draining
            .keys()
            .copied()
            .filter(|k| self.migration_safe(*k))
            .collect();
        for key in ready {
            let pending = self.draining.remove(&key).expect("collected above");
            self.complete_migration(m, key, pending)?;
        }
        Ok(())
    }

    /// The swap itself, run at quiescence: count the descriptors
    /// carried across, re-establish backend state, install the new
    /// gate, and record the migration span probes and counters.
    fn complete_migration(
        &mut self,
        m: &mut Machine,
        key: (CompartmentId, CompartmentId),
        pending: PendingMigration,
    ) -> Result<()> {
        let (a, b) = key;
        // Quiesced rings: pending SQEs stay queued and re-issue through
        // the incoming backend on the next flush; ready CQEs stay
        // reapable (the completed prefix is preserved, like a mid-flush
        // HardeningAbort).
        let mut requeued = 0u64;
        let mut preserved = 0u64;
        for dir in [(a, b), (b, a)] {
            if let Some(r) = self.rings.get(&dir) {
                requeued += r.sq.len() as u64;
                preserved += r.cq_ready() as u64;
            }
        }
        // Re-establish backend state before the swap becomes visible;
        // the pair is quiescent, so nothing simulated interleaves. A
        // failure here aborts the migration (the old gate stays).
        if let Some(re) = &pending.reestablish {
            let cur = self.current();
            re(m, &mut self.compartments, cur)?;
        }
        let now = m.clock().cycles();
        let shard = self.compartments[a.0 as usize].vcpu.0 as u16;
        m.span_trace_mut().record(
            shard,
            SpanKind::Migrate,
            "drain-end",
            a.0,
            b.0,
            pending.requested_at,
            now,
        );
        m.span_trace_mut()
            .record(shard, SpanKind::Migrate, "swap", a.0, b.0, now, now);
        self.pair_gates.insert(key, pending.gate);
        self.post_swap.insert(key);
        let st = &mut self.migration_stats;
        st.completed += 1;
        st.requeued_sqes += requeued;
        st.preserved_cqes += preserved;
        let drain = now - pending.requested_at;
        st.drain_cycles_total += drain;
        st.drain_cycles_max = st.drain_cycles_max.max(drain);
        match pending.reason {
            MigrationReason::Escalate => st.escalations += 1,
            MigrationReason::Relax => st.relaxations += 1,
            MigrationReason::Manual => {}
        }
        Ok(())
    }

    /// Per-pair/per-mechanism crossing telemetry.
    pub fn trace(&self) -> &GateTrace {
        &self.trace
    }

    /// The gate-call placeholder: runs `f` inside `target`.
    ///
    /// If `target` is the current compartment this is a direct function
    /// call (FlexOS replaces the placeholder with a plain call at link
    /// time). Otherwise the configured gate's `enter` sequence runs, `f`
    /// executes with the target compartment current, and `exit` restores
    /// the caller — including on error paths.
    ///
    /// `arg_bytes`/`ret_bytes` are the marshalled argument and return
    /// sizes ("gates take care of executing the function call in the
    /// foreign compartment, and of copying the return value back").
    pub fn cross<R>(
        &mut self,
        m: &mut Machine,
        target: CompartmentId,
        arg_bytes: u64,
        ret_bytes: u64,
        f: impl FnOnce(&mut Machine, &mut GateRuntime) -> Result<R>,
    ) -> Result<R> {
        let from = self.current();
        if from == target {
            m.charge(m.costs().func_call);
            self.stats.direct_calls += 1;
            self.trace.record_direct();
            return f(m, self);
        }
        assert!(
            (target.0 as usize) < self.compartments.len(),
            "unknown {target}"
        );

        let gate = self.gate_for(from, target);
        let t0 = m.clock().cycles();
        {
            let (from_ctx, to_ctx) = (
                &self.compartments[from.0 as usize],
                &self.compartments[target.0 as usize],
            );
            gate.enter(m, from_ctx, to_ctx, arg_bytes)?;
        }
        let enter_cycles = m.clock().cycles() - t0;
        self.stats.gate_cycles += enter_cycles;
        self.stack.push(target);

        let result = f(m, self);

        self.stack.pop();
        let t1 = m.clock().cycles();
        {
            let (callee_ctx, caller_ctx) = (
                &self.compartments[target.0 as usize],
                &self.compartments[from.0 as usize],
            );
            gate.exit(m, callee_ctx, caller_ctx, ret_bytes)?;
        }
        let exit_cycles = m.clock().cycles() - t1;
        let label = gate.mechanism().label();
        self.stats.gate_cycles += exit_cycles;
        self.stats.crossings += 1;
        self.stats.bytes_marshalled += arg_bytes + ret_bytes;
        self.trace.record_crossing(
            label,
            from.0,
            target.0,
            enter_cycles + exit_cycles,
            arg_bytes + ret_bytes,
            t1 + exit_cycles,
        );
        // Span probe: the whole crossing window [enter, exit], sharded
        // by the caller's plan-determined vCPU (run-queue-invisible).
        m.span_trace_mut().record(
            self.compartments[from.0 as usize].vcpu.0 as u16,
            SpanKind::Gate,
            label,
            from.0,
            target.0,
            t0,
            t1 + exit_cycles,
        );
        self.record_post_swap(m, from, target, t0, t1 + exit_cycles);
        self.apply_ready_migrations(m)?;
        result
    }

    /// Records the `first-crossing` migration span probe if this was the
    /// pair's first crossing since a backend swap.
    fn record_post_swap(
        &mut self,
        m: &mut Machine,
        from: CompartmentId,
        target: CompartmentId,
        t0: u64,
        t1: u64,
    ) {
        if self.post_swap.is_empty() {
            return;
        }
        let key = Self::pair_key(from, target);
        if self.post_swap.remove(&key) {
            m.span_trace_mut().record(
                self.compartments[from.0 as usize].vcpu.0 as u16,
                SpanKind::Migrate,
                "first-crossing",
                from.0,
                target.0,
                t0,
                t1,
            );
        }
    }

    /// Vectored gate crossing: runs `calls.len()` calls into `target`,
    /// call `idx` executing `f(m, rt, idx)`.
    ///
    /// With [`GateConfig::batch_enabled`] on, the gate lookup is hoisted
    /// out of the loop and each call goes through the backend's
    /// [`Gate::enter_nth`]/[`Gate::exit_nth`] batch hooks, which may
    /// skip host-side work that repeats across the batch. Off, this is
    /// exactly a loop of [`GateRuntime::cross`]. Both paths issue the
    /// identical sequence of simulated operations: cycles charged,
    /// chaos decisions drawn, faults raised and trace events recorded
    /// are bit-identical, and the per-mechanism batch-size histogram is
    /// recorded either way.
    ///
    /// The batch stops at the first call error, which is returned after
    /// that call's exit path has run (same contract as `cross`).
    pub fn cross_batch<R>(
        &mut self,
        m: &mut Machine,
        target: CompartmentId,
        calls: &CallVec,
        mut f: impl FnMut(&mut Machine, &mut GateRuntime, usize) -> Result<R>,
    ) -> Result<Vec<R>> {
        self.cross_batch_until(m, target, calls, &mut f, |_, _, _, _| Ok(true))
    }

    /// [`GateRuntime::cross_batch`] with an inter-call hook.
    ///
    /// `between(m, rt, idx, &r)` runs after call `idx` returned `r` and
    /// its exit path completed — i.e. in the *caller's* compartment,
    /// outside the gate. Consumers use it to apply the work a sequential
    /// driver would do between two crossings (marshalling charges,
    /// per-reply bookkeeping) so the simulated instruction stream is
    /// unchanged, and to stop the batch early (`Ok(false)`) the way a
    /// sequential loop breaks on `WouldBlock` or EOF. The results of all
    /// completed calls, including the stopping one, are returned.
    pub fn cross_batch_until<R>(
        &mut self,
        m: &mut Machine,
        target: CompartmentId,
        calls: &CallVec,
        mut f: impl FnMut(&mut Machine, &mut GateRuntime, usize) -> Result<R>,
        mut between: impl FnMut(&mut Machine, &mut GateRuntime, usize, &R) -> Result<bool>,
    ) -> Result<Vec<R>> {
        let mut out = Vec::with_capacity(calls.len());
        self.cross_batch_core(
            m,
            target,
            calls.len(),
            |idx| calls.get(idx),
            &mut f,
            |m, rt, idx, r| {
                let more = between(m, rt, idx, &r)?;
                out.push(r);
                Ok(more)
            },
        )?;
        Ok(out)
    }

    /// The batch loop behind [`GateRuntime::cross_batch_until`] and
    /// [`GateRuntime::flush_async_until`], generic over where the
    /// marshalling sizes live (`desc(idx)` returns call `idx`'s
    /// `(arg_bytes, ret_bytes)`): a `CallVec` for the sync API, the
    /// submission ring itself for a flush — which therefore never copies
    /// descriptors into a side table. Each completed call's result is
    /// handed to `sink` by value (the sync API collects, a flush posts a
    /// CQE — neither pays for a result buffer it doesn't want); `sink`
    /// returning `Ok(false)` stops the batch after the current call.
    fn cross_batch_core<R>(
        &mut self,
        m: &mut Machine,
        target: CompartmentId,
        len: usize,
        desc: impl Fn(usize) -> (u64, u64),
        f: impl FnMut(&mut Machine, &mut GateRuntime, usize) -> Result<R>,
        sink: impl FnMut(&mut Machine, &mut GateRuntime, usize, R) -> Result<bool>,
    ) -> Result<()> {
        if len == 0 {
            return Ok(());
        }
        let from = self.current();
        if from == target {
            return self.cross_batch_core_inner(m, target, len, desc, f, sink);
        }
        // The whole batch holds the pair non-quiescent — a migration
        // requested from inside any call (reference or fast path alike)
        // defers to the batch's end, keeping batch on/off bit-identical.
        self.active_batches.push(Self::pair_key(from, target));
        let result = self.cross_batch_core_inner(m, target, len, desc, f, sink);
        self.active_batches.pop();
        // The batch boundary is a safe point, even when the batch
        // itself errored out.
        let mig = self.apply_ready_migrations(m);
        result.and(mig)
    }

    /// The batch loop proper; `cross_batch_core` wraps it with the
    /// active-batch quiescence guard.
    fn cross_batch_core_inner<R>(
        &mut self,
        m: &mut Machine,
        target: CompartmentId,
        len: usize,
        desc: impl Fn(usize) -> (u64, u64),
        mut f: impl FnMut(&mut Machine, &mut GateRuntime, usize) -> Result<R>,
        mut sink: impl FnMut(&mut Machine, &mut GateRuntime, usize, R) -> Result<bool>,
    ) -> Result<()> {
        if len == 0 {
            return Ok(());
        }
        let from = self.current();
        let label = if from == target {
            GateMechanism::DirectCall.label()
        } else {
            assert!(
                (target.0 as usize) < self.compartments.len(),
                "unknown {target}"
            );
            self.gate_for(from, target).mechanism().label()
        };
        let mut issued: u64 = 0;

        if !self.config.batch_enabled {
            // Reference path: a plain loop of `cross` plus the hook.
            for idx in 0..len {
                let (arg_bytes, ret_bytes) = desc(idx);
                issued += 1;
                let r = match self.cross(m, target, arg_bytes, ret_bytes, |m, rt| f(m, rt, idx)) {
                    Ok(r) => r,
                    Err(e) => {
                        self.trace.record_batch(label, issued);
                        return Err(e);
                    }
                };
                let more = match sink(m, self, idx, r) {
                    Ok(more) => more,
                    Err(e) => {
                        self.trace.record_batch(label, issued);
                        return Err(e);
                    }
                };
                if !more {
                    break;
                }
            }
            self.trace.record_batch(label, issued);
            return Ok(());
        }

        if from == target {
            // Direct-call loop: only the cost lookup is hoisted (the
            // cost table is immutable for the life of the machine).
            let func_call = m.costs().func_call;
            for idx in 0..len {
                issued += 1;
                m.charge(func_call);
                self.stats.direct_calls += 1;
                self.trace.record_direct();
                let r = match f(m, self, idx) {
                    Ok(r) => r,
                    Err(e) => {
                        self.trace.record_batch(label, issued);
                        return Err(e);
                    }
                };
                let more = match sink(m, self, idx, r) {
                    Ok(more) => more,
                    Err(e) => {
                        self.trace.record_batch(label, issued);
                        return Err(e);
                    }
                };
                if !more {
                    break;
                }
            }
            self.trace.record_batch(label, issued);
            return Ok(());
        }

        // Fast path: the gate lookup (BTreeMap probe + `Arc` clone) is
        // hoisted out of the loop, and each call runs the backend's
        // batch hooks. The per-call body below mirrors `cross` exactly —
        // including running the exit path and the stats/trace updates
        // when `f` fails, with the exit's own error taking precedence.
        let gate = self.gate_for(from, target);
        for idx in 0..len {
            let (arg_bytes, ret_bytes) = desc(idx);
            issued += 1;
            let t0 = m.clock().cycles();
            {
                let (from_ctx, to_ctx) = (
                    &self.compartments[from.0 as usize],
                    &self.compartments[target.0 as usize],
                );
                if let Err(e) = gate.enter_nth(m, from_ctx, to_ctx, arg_bytes, idx) {
                    self.trace.record_batch(label, issued);
                    return Err(e);
                }
            }
            let enter_cycles = m.clock().cycles() - t0;
            self.stats.gate_cycles += enter_cycles;
            self.stack.push(target);

            let result = f(m, self, idx);

            self.stack.pop();
            let t1 = m.clock().cycles();
            {
                let (callee_ctx, caller_ctx) = (
                    &self.compartments[target.0 as usize],
                    &self.compartments[from.0 as usize],
                );
                if let Err(e) = gate.exit_nth(m, callee_ctx, caller_ctx, ret_bytes, idx) {
                    self.trace.record_batch(label, issued);
                    return Err(e);
                }
            }
            let exit_cycles = m.clock().cycles() - t1;
            self.stats.gate_cycles += exit_cycles;
            self.stats.crossings += 1;
            self.stats.bytes_marshalled += arg_bytes + ret_bytes;
            self.trace.record_crossing(
                label,
                from.0,
                target.0,
                enter_cycles + exit_cycles,
                arg_bytes + ret_bytes,
                t1 + exit_cycles,
            );
            // Span probe mirroring `cross` exactly, so the batched fast
            // path emits the byte-identical span stream.
            m.span_trace_mut().record(
                self.compartments[from.0 as usize].vcpu.0 as u16,
                SpanKind::Gate,
                label,
                from.0,
                target.0,
                t0,
                t1 + exit_cycles,
            );
            // Migration safe point mirroring `cross` (the batch's own
            // pair stays guarded by `active_batches`).
            self.record_post_swap(m, from, target, t0, t1 + exit_cycles);
            if let Err(e) = self.apply_ready_migrations(m) {
                self.trace.record_batch(label, issued);
                return Err(e);
            }
            let r = match result {
                Ok(r) => r,
                Err(e) => {
                    self.trace.record_batch(label, issued);
                    return Err(e);
                }
            };
            let more = match sink(m, self, idx, r) {
                Ok(more) => more,
                Err(e) => {
                    self.trace.record_batch(label, issued);
                    return Err(e);
                }
            };
            if !more {
                break;
            }
        }
        self.trace.record_batch(label, issued);
        Ok(())
    }

    /// Queues one gate-call descriptor on the `(current → target)`
    /// submission ring — the io_uring-style async entry point.
    ///
    /// Submission is host-side bookkeeping only: nothing is charged on
    /// the simulated clock and no crossing happens until a flush drains
    /// the ring, so the caller genuinely keeps computing while crossing
    /// latency is pending. A full ring returns [`Fault::RingFull`] (the
    /// caller must flush or cancel first) — never a panic.
    pub fn submit(&mut self, target: CompartmentId, sqe: Sqe) -> Result<()> {
        assert!(
            (target.0 as usize) < self.compartments.len(),
            "unknown {target}"
        );
        let from = self.current();
        self.check_admission(from, target)?;
        let ring = self.rings.entry((from, target)).or_default();
        if ring.sq.len() >= ring.depth {
            self.async_stats.sq_full += 1;
            return Err(Fault::RingFull {
                ring: "gate-sq",
                depth: ring.depth,
            });
        }
        ring.sq.push(sqe);
        self.async_stats.submitted += 1;
        Ok(())
    }

    /// Queues a whole burst of descriptors with one ring lookup — the
    /// submission-side analogue of the kernel ring's single tail
    /// publication. Descriptors are accepted in order until the ring is
    /// full; the accepted count is returned (callers that must not drop
    /// compare it against `sqes.len()`), so a partial burst is visible,
    /// never silent.
    pub fn submit_many(&mut self, target: CompartmentId, sqes: &[Sqe]) -> Result<usize> {
        assert!(
            (target.0 as usize) < self.compartments.len(),
            "unknown {target}"
        );
        let from = self.current();
        self.check_admission(from, target)?;
        let ring = self.rings.entry((from, target)).or_default();
        let room = ring.depth.saturating_sub(ring.sq.len());
        let take = room.min(sqes.len());
        ring.sq.extend_from_slice(&sqes[..take]);
        self.async_stats.submitted += take as u64;
        if take < sqes.len() {
            self.async_stats.sq_full += 1;
        }
        Ok(take)
    }

    /// The quiescence protocol's admission stop: submissions onto a
    /// draining pair's rings are refused so continuous submitters
    /// cannot stall the drain — queued work only ever shrinks while a
    /// migration is pending.
    fn check_admission(&mut self, from: CompartmentId, target: CompartmentId) -> Result<()> {
        if self.draining.is_empty() || !self.draining.contains_key(&Self::pair_key(from, target)) {
            return Ok(());
        }
        self.migration_stats.rejected_submits += 1;
        Err(Fault::GateDraining {
            mechanism: self.gate_for(from, target).mechanism().label(),
        })
    }

    /// Raises (never lowers) the `(current → target)` ring's slot
    /// capacity so a burst of `depth` submissions fits without flushing.
    pub fn ensure_ring_depth(&mut self, target: CompartmentId, depth: usize) {
        let from = self.current();
        let ring = self.rings.entry((from, target)).or_default();
        ring.depth = ring.depth.max(depth);
    }

    /// Number of descriptors queued but not yet flushed on the
    /// `(current → target)` submission ring.
    pub fn sq_pending(&self, target: CompartmentId) -> usize {
        self.rings
            .get(&(self.current(), target))
            .map_or(0, |r| r.sq.len())
    }

    /// Number of completions ready to reap on the `(current → target)`
    /// completion ring.
    pub fn cq_ready(&self, target: CompartmentId) -> usize {
        self.rings
            .get(&(self.current(), target))
            .map_or(0, AsyncRing::cq_ready)
    }

    /// Pops the oldest completion from the `(current → target)` ring.
    ///
    /// An empty ring returns [`Fault::RingEmpty`] (flush first) — never
    /// a panic, matching io_uring's `-EAGAIN`.
    pub fn reap(&mut self, target: CompartmentId) -> Result<Cqe> {
        let from = self.current();
        let cqe = self.rings.get_mut(&(from, target)).and_then(|r| {
            let cqe = r.cq.get(r.cq_head).copied();
            if cqe.is_some() {
                r.cq_head += 1;
                r.cq_compact();
            }
            cqe
        });
        match cqe {
            Some(cqe) => Ok(cqe),
            None => {
                self.async_stats.cq_empty += 1;
                Err(Fault::RingEmpty { ring: "gate-cq" })
            }
        }
    }

    /// Drains every ready completion into `out`, returning how many were
    /// moved. Never fails: an empty ring is just a zero-length drain.
    pub fn poll_completions(&mut self, target: CompartmentId, out: &mut Vec<Cqe>) -> usize {
        let from = self.current();
        let Some(ring) = self.rings.get_mut(&(from, target)) else {
            return 0;
        };
        let n = ring.cq_ready();
        out.extend_from_slice(&ring.cq[ring.cq_head..]);
        ring.cq.clear();
        ring.cq_head = 0;
        n
    }

    /// Drops all not-yet-flushed submissions on the `(current → target)`
    /// ring (descriptors a failed flush left pending), returning how many
    /// were discarded. Ready completions are untouched.
    pub fn cancel_pending(&mut self, target: CompartmentId) -> usize {
        let from = self.current();
        let Some(ring) = self.rings.get_mut(&(from, target)) else {
            return 0;
        };
        let n = ring.sq.len();
        ring.sq.clear();
        self.async_stats.cancelled += n as u64;
        n
    }

    /// Flushes the `(current → target)` submission ring:
    /// [`GateRuntime::flush_async_until`] with no inter-call hook.
    pub fn flush_async(
        &mut self,
        m: &mut Machine,
        target: CompartmentId,
        f: impl FnMut(&mut Machine, &mut GateRuntime, &Sqe) -> Result<i64>,
    ) -> Result<usize> {
        self.flush_async_until(m, target, f, |_, _, _, _| Ok(true))
    }

    /// Flushes the `(current → target)` submission ring, running `f`
    /// inside the target once per queued descriptor (oldest first) and
    /// posting each successful result to the completion ring.
    ///
    /// The flush is [`GateRuntime::cross_batch_until`] over the queued
    /// descriptors, so its simulated behaviour is *identical* to a
    /// sequential driver issuing the same calls: cycles charged, chaos
    /// decisions drawn, faults raised, span probes and batch histograms
    /// recorded are all bit-for-bit the same, and with
    /// [`GateConfig::overlap_enabled`] on the backend's batch hooks elide
    /// repeated host-side work (VM-RPC posts one coalesced doorbell per
    /// flush via the hot-page descriptor cache; direct/MPK complete
    /// inline) — the overlap is host-time only.
    ///
    /// `between(m, rt, &sqe, res)` runs after each completion lands, in
    /// the caller's compartment; returning `Ok(false)` stops the flush
    /// early. Descriptor lifecycle on the three non-success paths:
    ///
    /// * **early stop** — descriptors not yet issued stay queued for the
    ///   next flush (or [`GateRuntime::cancel_pending`]);
    /// * **call fault** (e.g. a `HardeningAbort` inside `f`, or an exit
    ///   fault after it) — the faulting descriptor is consumed *without*
    ///   a completion, exactly like the sync path losing the return
    ///   value; descriptors behind it stay queued;
    /// * **enter fault** (e.g. a VM-RPC `GateTimeout` before `f` ran) —
    ///   the descriptor never crossed and stays queued, so the caller
    ///   can retry or cancel.
    ///
    /// Returns the number of completions posted by this flush.
    pub fn flush_async_until(
        &mut self,
        m: &mut Machine,
        target: CompartmentId,
        mut f: impl FnMut(&mut Machine, &mut GateRuntime, &Sqe) -> Result<i64>,
        mut between: impl FnMut(&mut Machine, &mut GateRuntime, &Sqe, i64) -> Result<bool>,
    ) -> Result<usize> {
        let from = self.current();
        // The ring leaves the map for the duration of the flush so `f`
        // and `between` can borrow the runtime freely; the default ring
        // left in its slot catches nested submits to the same pair,
        // merged back below (`mem::take` instead of remove + insert —
        // two tree probes per flush, no rebalancing).
        let Some(slot) = self.rings.get_mut(&(from, target)) else {
            return Ok(0);
        };
        if slot.sq.is_empty() {
            return Ok(0);
        }
        // The pair stays non-quiescent until the ring is merged back:
        // a migration completed mid-flush would otherwise count (and
        // requeue) the placeholder ring instead of the real one. The
        // inner `cross_batch_core` pushes and pops its own guard; this
        // outer one outlives it.
        let flush_guard = if from == target {
            None
        } else {
            let key = Self::pair_key(from, target);
            self.active_batches.push(key);
            Some(key)
        };
        let mut ring = std::mem::take(slot);
        // Overlap-off maps onto the batch choice for this one internal
        // call: the flush degrades to a loop of plain `cross`.
        let saved_batch = self.config.batch_enabled;
        self.config.batch_enabled = saved_batch && self.config.overlap_enabled;
        // `idx + 1` descriptors have been issued once `f` runs for `idx`;
        // a fault before `f` (enter path) leaves the descriptor queued.
        let issued = Cell::new(0usize);
        ring.cq_compact();
        let cq_before = ring.cq.len();
        ring.cq.reserve(ring.sq.len());
        let result = {
            let sq = ring.sq.as_slice();
            let cq = &mut ring.cq;
            self.cross_batch_core(
                m,
                target,
                sq.len(),
                |idx| {
                    let s = &sq[idx];
                    (s.arg_bytes, s.ret_bytes)
                },
                |m, rt, idx| {
                    issued.set(idx + 1);
                    f(m, rt, &sq[idx])
                },
                |m, rt, idx, res| {
                    let sqe = &sq[idx];
                    cq.push(Cqe {
                        user_data: sqe.user_data,
                        res,
                        span: sqe.span,
                    });
                    between(m, rt, sqe, res)
                },
            )
        };
        self.config.batch_enabled = saved_batch;
        // A faulting call is consumed only once it crossed (its `f` ran);
        // keep everything from the first unissued descriptor onwards.
        ring.sq.drain(..issued.get());
        self.async_stats.flushes += 1;
        // Completions that landed before a mid-flush fault stay reapable
        // (the async payoff), so count CQ growth, not the success result.
        let posted = ring.cq.len() - cq_before;
        self.async_stats.completed += posted as u64;
        let slot = self
            .rings
            .get_mut(&(from, target))
            .expect("the flush leaves the ring's slot in place");
        ring.depth = ring.depth.max(slot.depth);
        ring.sq.append(&mut slot.sq);
        ring.cq.extend_from_slice(&slot.cq[slot.cq_head..]);
        *slot = ring;
        if flush_guard.is_some() {
            self.active_batches.pop();
            // With the ring back in place the flush boundary is a safe
            // point: a swap here carries the leftover descriptors.
            let mig = self.apply_ready_migrations(m);
            return result.and(mig).map(|_| posted);
        }
        result.map(|_| posted)
    }

    /// Restores the current compartment's protection view on the machine.
    ///
    /// The scheduler calls this after a context switch: the incoming
    /// thread resumes in some compartment, and (for MPK backends) its
    /// saved PKRU must be loaded — "the scheduler holds the value of the
    /// PKRU for threads that are not currently running" (paper §3).
    pub fn resume_in(&mut self, m: &mut Machine, id: CompartmentId) -> Result<()> {
        assert!((id.0 as usize) < self.compartments.len(), "unknown {id}");
        let ctx = &self.compartments[id.0 as usize];
        let tok = m.gate_token();
        let vcpu = ctx.vcpu;
        let pkru = ctx.pkru;
        // Skip the (costed) `wrpkru` when the register already holds the
        // right value — e.g. the VM backend never changes PKRU.
        if m.rdpkru(vcpu) != pkru {
            m.restore_pkru(vcpu, pkru, tok)?;
        }
        self.stack.clear();
        self.stack.push(id);
        // A context switch is a quiescent point for every pair.
        self.apply_ready_migrations(m)?;
        Ok(())
    }
}

/// A convenience error for gate misuse surfaced to library authors.
pub fn not_an_entry_point(lib: &str, func: &str) -> Fault {
    Fault::HardeningAbort {
        mechanism: "gate",
        reason: format!("{func} is not an exposed entry point of {lib}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexos_machine::PageFlags;

    fn two_compartments(m: &mut Machine) -> Vec<CompartmentCtx> {
        let heap0 = m
            .alloc_region(VmId(0), 4096, ProtKey(1), PageFlags::RW)
            .unwrap();
        let heap1 = m
            .alloc_region(VmId(0), 4096, ProtKey(2), PageFlags::RW)
            .unwrap();
        vec![
            CompartmentCtx {
                id: CompartmentId(0),
                name: "rest".into(),
                vm: VmId(0),
                vcpu: VcpuId(0),
                pkru: Pkru::ALLOW_ALL,
                keys: vec![ProtKey(1)],
                sh: ShSet::none(),
                heap_base: heap0,
                heap_size: 4096,
            },
            CompartmentCtx {
                id: CompartmentId(1),
                name: "net".into(),
                vm: VmId(0),
                vcpu: VcpuId(0),
                pkru: Pkru::ALLOW_ALL,
                keys: vec![ProtKey(2)],
                sh: ShSet::none(),
                heap_base: heap1,
                heap_size: 4096,
            },
        ]
    }

    #[test]
    fn same_compartment_cross_is_a_direct_call() {
        let mut m = Machine::with_defaults();
        let cpts = two_compartments(&mut m);
        let mut rt = GateRuntime::new(cpts, Arc::new(DirectGate), CompartmentId(0));
        let before = m.clock().cycles();
        let v = rt
            .cross(&mut m, CompartmentId(0), 16, 8, |_, _| Ok(42))
            .unwrap();
        assert_eq!(v, 42);
        assert_eq!(m.clock().cycles() - before, m.costs().func_call);
        assert_eq!(rt.stats().direct_calls, 1);
        assert_eq!(rt.stats().crossings, 0);
    }

    #[test]
    fn cross_switches_current_and_restores_it() {
        let mut m = Machine::with_defaults();
        let cpts = two_compartments(&mut m);
        let mut rt = GateRuntime::new(cpts, Arc::new(DirectGate), CompartmentId(0));
        rt.cross(&mut m, CompartmentId(1), 0, 0, |m, rt| {
            assert_eq!(rt.current(), CompartmentId(1));
            // Nested crossing back.
            rt.cross(m, CompartmentId(0), 0, 0, |_, rt| {
                assert_eq!(rt.current(), CompartmentId(0));
                Ok(())
            })
        })
        .unwrap();
        assert_eq!(rt.current(), CompartmentId(0));
        assert_eq!(rt.stats().crossings, 2);
    }

    #[test]
    fn cross_restores_caller_on_error() {
        let mut m = Machine::with_defaults();
        let cpts = two_compartments(&mut m);
        let mut rt = GateRuntime::new(cpts, Arc::new(DirectGate), CompartmentId(0));
        let err = rt
            .cross(&mut m, CompartmentId(1), 0, 0, |_, _| {
                Err::<(), _>(Fault::OutOfMemory { requested_pages: 1 })
            })
            .unwrap_err();
        assert!(matches!(err, Fault::OutOfMemory { .. }));
        assert_eq!(rt.current(), CompartmentId(0));
    }

    #[test]
    fn stats_accumulate_bytes() {
        let mut m = Machine::with_defaults();
        let cpts = two_compartments(&mut m);
        let mut rt = GateRuntime::new(cpts, Arc::new(DirectGate), CompartmentId(0));
        rt.cross(&mut m, CompartmentId(1), 100, 28, |_, _| Ok(()))
            .unwrap();
        assert_eq!(rt.stats().bytes_marshalled, 128);
    }

    #[test]
    fn mechanism_stack_policy() {
        assert!(GateMechanism::MpkSharedStack.stacks_shared());
        assert!(!GateMechanism::MpkSwitchedStack.stacks_shared());
        assert!(!GateMechanism::VmRpc.stacks_shared());
    }

    #[test]
    fn callvec_builders_agree() {
        let mut v = CallVec::new();
        v.push(16, 8).push_uniform(2, 16, 8);
        assert_eq!(v, CallVec::uniform(3, 16, 8));
        assert_eq!(v.len(), 3);
        assert_eq!(v.get(2), (16, 8));
        v.clear();
        assert!(v.is_empty());
    }

    /// Runs the same batch with the fast path on and off and returns
    /// `(cycles, stats)` for each, so tests can assert bit-identity.
    fn run_both_modes(calls: &CallVec, target: CompartmentId) -> [(u64, GateStats, Vec<i32>); 2] {
        [true, false].map(|on| {
            let mut m = Machine::with_defaults();
            let cpts = two_compartments(&mut m);
            let mut rt = GateRuntime::new(cpts, Arc::new(DirectGate), CompartmentId(0));
            rt.set_batch_enabled(on);
            let before = m.clock().cycles();
            let out = rt
                .cross_batch(&mut m, target, calls, |m, _, idx| {
                    m.charge(10 + idx as u64);
                    Ok(idx as i32)
                })
                .unwrap();
            (m.clock().cycles() - before, rt.stats(), out)
        })
    }

    #[test]
    fn batch_on_and_off_are_cycle_identical() {
        for target in [CompartmentId(0), CompartmentId(1)] {
            let calls = CallVec::uniform(5, 32, 8);
            let [on, off] = run_both_modes(&calls, target);
            assert_eq!(on, off, "batch fast path diverged for {target}");
        }
    }

    #[test]
    fn batch_equals_sequential_crossings() {
        let mut calls = CallVec::new();
        calls.push(16, 8).push(100, 28).push(0, 0);

        let mut m1 = Machine::with_defaults();
        let cpts = two_compartments(&mut m1);
        let mut rt1 = GateRuntime::new(cpts, Arc::new(DirectGate), CompartmentId(0));
        let out = rt1
            .cross_batch(&mut m1, CompartmentId(1), &calls, |_, _, idx| Ok(idx))
            .unwrap();
        assert_eq!(out, vec![0, 1, 2]);

        let mut m2 = Machine::with_defaults();
        let cpts = two_compartments(&mut m2);
        let mut rt2 = GateRuntime::new(cpts, Arc::new(DirectGate), CompartmentId(0));
        for (idx, &(a, r)) in calls.as_slice().iter().enumerate() {
            rt2.cross(&mut m2, CompartmentId(1), a, r, |_, _| Ok(idx))
                .unwrap();
        }
        assert_eq!(m1.clock().cycles(), m2.clock().cycles());
        assert_eq!(rt1.stats(), rt2.stats());
        assert_eq!(rt1.stats().crossings, 3);
        assert_eq!(rt1.stats().bytes_marshalled, 152);
    }

    #[test]
    fn batch_stops_at_first_error_and_restores_caller() {
        for on in [true, false] {
            let mut m = Machine::with_defaults();
            let cpts = two_compartments(&mut m);
            let mut rt = GateRuntime::new(cpts, Arc::new(DirectGate), CompartmentId(0));
            rt.set_batch_enabled(on);
            let err = rt
                .cross_batch(
                    &mut m,
                    CompartmentId(1),
                    &CallVec::uniform(4, 8, 8),
                    |_, _, idx| {
                        if idx == 2 {
                            Err(Fault::OutOfMemory { requested_pages: 1 })
                        } else {
                            Ok(idx)
                        }
                    },
                )
                .unwrap_err();
            assert!(matches!(err, Fault::OutOfMemory { .. }));
            assert_eq!(rt.current(), CompartmentId(0));
            // The failing call still completed its exit path, like `cross`.
            assert_eq!(rt.stats().crossings, 3);
        }
    }

    #[test]
    fn batch_until_early_stop_keeps_stopping_result() {
        for on in [true, false] {
            let mut m = Machine::with_defaults();
            let cpts = two_compartments(&mut m);
            let mut rt = GateRuntime::new(cpts, Arc::new(DirectGate), CompartmentId(0));
            rt.set_batch_enabled(on);
            let out = rt
                .cross_batch_until(
                    &mut m,
                    CompartmentId(1),
                    &CallVec::uniform(8, 4, 4),
                    |_, _, idx| Ok(idx),
                    |_, _, idx, _| Ok(idx < 2),
                )
                .unwrap();
            assert_eq!(out, vec![0, 1, 2]);
            assert_eq!(rt.stats().crossings, 3);
            assert_eq!(rt.current(), CompartmentId(0));
        }
    }

    #[test]
    fn batch_records_size_histogram_per_mechanism() {
        let mut m = Machine::with_defaults();
        let cpts = two_compartments(&mut m);
        let mut rt = GateRuntime::new(cpts, Arc::new(DirectGate), CompartmentId(0));
        rt.cross_batch(
            &mut m,
            CompartmentId(1),
            &CallVec::uniform(4, 0, 0),
            |_, _, _| Ok(()),
        )
        .unwrap();
        rt.cross_batch(
            &mut m,
            CompartmentId(0),
            &CallVec::uniform(2, 0, 0),
            |_, _, _| Ok(()),
        )
        .unwrap();
        // Empty batches leave no histogram entry.
        rt.cross_batch(&mut m, CompartmentId(1), &CallVec::new(), |_, _, _| Ok(()))
            .unwrap();
        let cross = rt
            .trace()
            .batch_hist(GateMechanism::DirectCall.label())
            .unwrap();
        // Both batches used the direct-call label (DirectGate is the
        // default pair gate here too), so sizes 4 and 2 land together.
        assert_eq!(cross.count(), 2);
        assert_eq!(cross.sum(), 6);
    }

    #[test]
    fn nested_batches_restore_compartments() {
        let mut m = Machine::with_defaults();
        let cpts = two_compartments(&mut m);
        let mut rt = GateRuntime::new(cpts, Arc::new(DirectGate), CompartmentId(0));
        rt.cross_batch(
            &mut m,
            CompartmentId(1),
            &CallVec::uniform(2, 0, 0),
            |m, rt, _| {
                assert_eq!(rt.current(), CompartmentId(1));
                let inner = rt.cross_batch(
                    m,
                    CompartmentId(0),
                    &CallVec::uniform(3, 0, 0),
                    |_, rt, i| {
                        assert_eq!(rt.current(), CompartmentId(0));
                        Ok(i)
                    },
                )?;
                assert_eq!(inner, vec![0, 1, 2]);
                assert_eq!(rt.current(), CompartmentId(1));
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(rt.current(), CompartmentId(0));
        assert_eq!(rt.stats().crossings, 8);
    }

    fn fresh_rt() -> (Machine, GateRuntime) {
        let mut m = Machine::with_defaults();
        let cpts = two_compartments(&mut m);
        let rt = GateRuntime::new(cpts, Arc::new(DirectGate), CompartmentId(0));
        (m, rt)
    }

    #[test]
    fn async_submit_flush_reap_roundtrip() {
        let (mut m, mut rt) = fresh_rt();
        let t = CompartmentId(1);
        for i in 0..3u64 {
            rt.submit(t, Sqe::new(16, 8, 0xbeef + i).with_span(SpanId(7 + i)))
                .unwrap();
        }
        assert_eq!(rt.sq_pending(t), 3);
        assert_eq!(rt.cq_ready(t), 0);
        // Nothing simulated happens at submit time.
        assert_eq!(m.clock().cycles(), 0);

        let posted = rt
            .flush_async(&mut m, t, |m, _, sqe| {
                m.charge(5);
                Ok((sqe.user_data - 0xbeef) as i64 * 10)
            })
            .unwrap();
        assert_eq!(posted, 3);
        assert_eq!(rt.sq_pending(t), 0);
        assert_eq!(rt.cq_ready(t), 3);

        for i in 0..3u64 {
            let cqe = rt.reap(t).unwrap();
            assert_eq!(cqe.user_data, 0xbeef + i);
            assert_eq!(cqe.res, i as i64 * 10);
            assert_eq!(cqe.span, SpanId(7 + i));
        }
        let stats = rt.async_stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.flushes, 1);
    }

    /// The PR-5 invariant extended to async: a submit+flush must charge
    /// the byte-identical simulated cycles (and gate stats) as the
    /// sequential loop of `cross` it replaces — with overlap on or off.
    #[test]
    fn async_flush_is_cycle_identical_to_sync_loop() {
        let run_sync = || {
            let (mut m, mut rt) = fresh_rt();
            let mut out = Vec::new();
            for idx in 0..5u64 {
                out.push(
                    rt.cross(&mut m, CompartmentId(1), 32, 8, |m, _| {
                        m.charge(10 + idx);
                        Ok(idx as i64)
                    })
                    .unwrap(),
                );
            }
            (m.clock().cycles(), rt.stats(), out)
        };
        let run_async = |overlap: bool| {
            let (mut m, mut rt) = fresh_rt();
            rt.set_overlap_enabled(overlap);
            for idx in 0..5u64 {
                rt.submit(CompartmentId(1), Sqe::new(32, 8, idx)).unwrap();
            }
            rt.flush_async(&mut m, CompartmentId(1), |m, _, sqe| {
                m.charge(10 + sqe.user_data);
                Ok(sqe.user_data as i64)
            })
            .unwrap();
            let mut cqes = Vec::new();
            rt.poll_completions(CompartmentId(1), &mut cqes);
            let out: Vec<i64> = cqes.iter().map(|c| c.res).collect();
            (m.clock().cycles(), rt.stats(), out)
        };
        let sync = run_sync();
        assert_eq!(sync, run_async(true), "overlapped flush diverged");
        assert_eq!(sync, run_async(false), "degraded flush diverged");
    }

    #[test]
    fn async_submit_onto_full_sq_is_a_typed_error() {
        let (_m, mut rt) = fresh_rt();
        let t = CompartmentId(1);
        for i in 0..DEFAULT_RING_DEPTH as u64 {
            rt.submit(t, Sqe::new(0, 0, i)).unwrap();
        }
        let err = rt.submit(t, Sqe::new(0, 0, 99)).unwrap_err();
        assert!(matches!(
            err,
            Fault::RingFull {
                ring: "gate-sq",
                depth: DEFAULT_RING_DEPTH
            }
        ));
        assert_eq!(rt.async_stats().sq_full, 1);
        // Raising the depth unblocks the caller.
        rt.ensure_ring_depth(t, DEFAULT_RING_DEPTH + 1);
        rt.submit(t, Sqe::new(0, 0, 99)).unwrap();
    }

    #[test]
    fn async_submit_many_fills_to_capacity_and_reports_the_partial() {
        let (mut m, mut rt) = fresh_rt();
        let t = CompartmentId(1);
        let burst: Vec<Sqe> = (0..DEFAULT_RING_DEPTH as u64 + 3)
            .map(|i| Sqe::new(8, 8, i))
            .collect();
        // Three descriptors don't fit: the burst is truncated, visibly.
        let accepted = rt.submit_many(t, &burst).unwrap();
        assert_eq!(accepted, DEFAULT_RING_DEPTH);
        assert_eq!(rt.sq_pending(t), DEFAULT_RING_DEPTH);
        assert_eq!(rt.async_stats().submitted, DEFAULT_RING_DEPTH as u64);
        assert_eq!(rt.async_stats().sq_full, 1);
        // A full ring accepts nothing more, and an empty burst is a no-op.
        assert_eq!(rt.submit_many(t, &burst[accepted..]).unwrap(), 0);
        assert_eq!(rt.async_stats().sq_full, 2);
        assert_eq!(rt.submit_many(t, &[]).unwrap(), 0);
        assert_eq!(rt.async_stats().sq_full, 2);
        // Submission order is the burst's order, as a flush observes it.
        rt.flush_async(&mut m, t, |_, _, sqe| Ok(sqe.user_data as i64))
            .unwrap();
        let mut cqes = Vec::new();
        rt.poll_completions(t, &mut cqes);
        let order: Vec<u64> = cqes.iter().map(|c| c.user_data).collect();
        assert_eq!(order, (0..DEFAULT_RING_DEPTH as u64).collect::<Vec<_>>());
    }

    #[test]
    fn async_reap_from_empty_cq_is_a_typed_error() {
        let (_m, mut rt) = fresh_rt();
        let err = rt.reap(CompartmentId(1)).unwrap_err();
        assert!(matches!(err, Fault::RingEmpty { ring: "gate-cq" }));
        assert_eq!(rt.async_stats().cq_empty, 1);
        let mut out = Vec::new();
        assert_eq!(rt.poll_completions(CompartmentId(1), &mut out), 0);
    }

    /// Satellite: completions that landed before a mid-flush
    /// `HardeningAbort` stay reapable; the faulting descriptor is
    /// consumed without a completion; descriptors behind it stay queued.
    #[test]
    fn async_fault_consumes_only_the_faulting_descriptor() {
        for overlap in [true, false] {
            let (mut m, mut rt) = fresh_rt();
            rt.set_overlap_enabled(overlap);
            let t = CompartmentId(1);
            for i in 0..4u64 {
                rt.submit(t, Sqe::new(8, 8, i)).unwrap();
            }
            let err = rt
                .flush_async(&mut m, t, |_, _, sqe| {
                    if sqe.user_data == 2 {
                        Err(Fault::HardeningAbort {
                            mechanism: "async-test",
                            reason: "synthetic".into(),
                        })
                    } else {
                        Ok(sqe.user_data as i64)
                    }
                })
                .unwrap_err();
            assert!(matches!(err, Fault::HardeningAbort { .. }));
            assert_eq!(rt.current(), CompartmentId(0));
            // Calls 0 and 1 completed; 2 was consumed by the fault; 3 is
            // still pending and can be cancelled.
            assert_eq!(rt.cq_ready(t), 2);
            assert_eq!(rt.reap(t).unwrap().user_data, 0);
            assert_eq!(rt.reap(t).unwrap().user_data, 1);
            assert_eq!(rt.sq_pending(t), 1);
            assert_eq!(rt.cancel_pending(t), 1);
            assert_eq!(rt.sq_pending(t), 0);
            assert_eq!(rt.async_stats().completed, 2);
            assert_eq!(rt.async_stats().cancelled, 1);
        }
    }

    #[test]
    fn async_early_stop_keeps_remainder_pending() {
        let (mut m, mut rt) = fresh_rt();
        let t = CompartmentId(1);
        for i in 0..8u64 {
            rt.submit(t, Sqe::new(4, 4, i)).unwrap();
        }
        let posted = rt
            .flush_async_until(
                &mut m,
                t,
                |_, _, sqe| Ok(sqe.user_data as i64),
                |_, _, sqe, _| Ok(sqe.user_data < 2),
            )
            .unwrap();
        // The stopping call's completion is posted, like `cross_batch`.
        assert_eq!(posted, 3);
        assert_eq!(rt.sq_pending(t), 5);
        // A second flush drains the survivors in order.
        let posted = rt
            .flush_async(&mut m, t, |_, _, sqe| Ok(sqe.user_data as i64))
            .unwrap();
        assert_eq!(posted, 5);
        let mut cqes = Vec::new();
        rt.poll_completions(t, &mut cqes);
        let order: Vec<u64> = cqes.iter().map(|c| c.user_data).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn async_nested_submit_during_flush_is_merged_behind_survivors() {
        let (mut m, mut rt) = fresh_rt();
        let t = CompartmentId(1);
        for i in 0..3u64 {
            rt.submit(t, Sqe::new(0, 0, i)).unwrap();
        }
        // The between hook runs in the caller's compartment, so a submit
        // there targets the same (caller → t) ring mid-flush.
        rt.flush_async_until(
            &mut m,
            t,
            |_, _, sqe| Ok(sqe.user_data as i64),
            |_, rt, sqe, _| {
                if sqe.user_data == 0 {
                    rt.submit(t, Sqe::new(0, 0, 100))?;
                }
                Ok(sqe.user_data < 1)
            },
        )
        .unwrap();
        // Survivor (2) queues ahead of the nested submission (100).
        assert_eq!(rt.sq_pending(t), 2);
        rt.flush_async(&mut m, t, |_, _, sqe| Ok(sqe.user_data as i64))
            .unwrap();
        let mut cqes = Vec::new();
        rt.poll_completions(t, &mut cqes);
        let order: Vec<u64> = cqes.iter().map(|c| c.user_data).collect();
        assert_eq!(order, vec![0, 1, 2, 100]);
    }

    /// A distinguishable gate for migration tests: flat per-leg cost,
    /// advertised as the MPK shared-stack mechanism.
    #[derive(Debug)]
    struct CostedGate {
        mech: GateMechanism,
        cost: u64,
    }

    impl Gate for CostedGate {
        fn mechanism(&self) -> GateMechanism {
            self.mech
        }
        fn enter(
            &self,
            m: &mut Machine,
            _from: &CompartmentCtx,
            _to: &CompartmentCtx,
            _arg_bytes: u64,
        ) -> Result<()> {
            m.charge(self.cost);
            Ok(())
        }
        fn exit(
            &self,
            m: &mut Machine,
            _callee: &CompartmentCtx,
            _caller: &CompartmentCtx,
            _ret_bytes: u64,
        ) -> Result<()> {
            m.charge(self.cost);
            Ok(())
        }
    }

    fn mpk_gate() -> Arc<dyn Gate> {
        Arc::new(CostedGate {
            mech: GateMechanism::MpkSharedStack,
            cost: 30,
        })
    }

    #[test]
    fn isolation_rank_orders_the_ladder() {
        use GateMechanism::*;
        let ladder = [DirectCall, MpkSharedStack, MpkSwitchedStack, Cheri, VmRpc];
        for w in ladder.windows(2) {
            assert!(w[0].isolation_rank() < w[1].isolation_rank());
        }
    }

    #[test]
    fn quiescent_migration_applies_immediately() {
        let (mut m, mut rt) = fresh_rt();
        let (a, b) = (CompartmentId(0), CompartmentId(1));
        assert_eq!(rt.pair_mechanism(a, b), GateMechanism::DirectCall);
        let applied = rt
            .request_migration(&mut m, a, b, mpk_gate(), MigrationReason::Manual, None)
            .unwrap();
        assert!(applied);
        assert!(!rt.migration_pending(a, b));
        assert_eq!(rt.pair_mechanism(a, b), GateMechanism::MpkSharedStack);
        let st = rt.migration_stats();
        assert_eq!((st.requested, st.completed, st.deferred), (1, 1, 0));

        // The next crossing runs through the new backend and records the
        // first-crossing probe.
        rt.cross(&mut m, b, 8, 8, |_, _| Ok(())).unwrap();
        let labels: Vec<&str> = m
            .span_trace()
            .merged_events()
            .iter()
            .filter(|(_, ev)| ev.kind == SpanKind::Migrate)
            .map(|(_, ev)| ev.label)
            .collect();
        assert_eq!(
            labels,
            vec!["drain-start", "drain-end", "swap", "first-crossing"]
        );
    }

    #[test]
    fn migration_mid_call_defers_to_the_crossing_end() {
        let (mut m, mut rt) = fresh_rt();
        let (a, b) = (CompartmentId(0), CompartmentId(1));
        rt.cross(&mut m, b, 0, 0, |m, rt| {
            let applied =
                rt.request_migration(m, a, b, mpk_gate(), MigrationReason::Escalate, None)?;
            assert!(!applied, "pair is on the call stack; must defer");
            assert!(rt.migration_pending(a, b));
            // The swap stays invisible while the call is in flight.
            assert_eq!(rt.pair_mechanism(a, b), GateMechanism::DirectCall);
            // Simulated work between the request and the safe point makes
            // the drain window observable in the counters.
            m.charge(100);
            Ok(())
        })
        .unwrap();
        // The crossing's epilogue was the safe point.
        assert!(!rt.migration_pending(a, b));
        assert_eq!(rt.pair_mechanism(a, b), GateMechanism::MpkSharedStack);
        let st = rt.migration_stats();
        assert_eq!((st.deferred, st.completed, st.escalations), (1, 1, 1));
        assert!(st.drain_cycles_max > 0);
    }

    #[test]
    fn migration_mid_batch_defers_in_both_batch_modes() {
        for on in [true, false] {
            let (mut m, mut rt) = fresh_rt();
            rt.set_batch_enabled(on);
            let (a, b) = (CompartmentId(0), CompartmentId(1));
            rt.cross_batch(&mut m, b, &CallVec::uniform(3, 4, 4), |m, rt, idx| {
                if idx == 1 {
                    let applied =
                        rt.request_migration(m, a, b, mpk_gate(), MigrationReason::Relax, None)?;
                    assert!(!applied, "mid-batch request must defer (batch on={on})");
                }
                Ok(())
            })
            .unwrap();
            assert!(!rt.migration_pending(a, b));
            assert_eq!(rt.pair_mechanism(a, b), GateMechanism::MpkSharedStack);
            assert_eq!(rt.migration_stats().relaxations, 1);
        }
    }

    #[test]
    fn submissions_onto_a_draining_pair_are_refused() {
        let (mut m, mut rt) = fresh_rt();
        let (a, b) = (CompartmentId(0), CompartmentId(1));
        rt.cross(&mut m, b, 0, 0, |m, rt| {
            rt.request_migration(m, a, b, mpk_gate(), MigrationReason::Manual, None)?;
            // Admission stop: the drain only ever shrinks queued work.
            let err = rt.submit(a, Sqe::new(4, 4, 7)).unwrap_err();
            assert!(matches!(
                err,
                Fault::GateDraining {
                    mechanism: "function call"
                }
            ));
            assert!(!err.is_protection_fault());
            let err = rt.submit_many(a, &[Sqe::new(4, 4, 8)]).unwrap_err();
            assert!(matches!(err, Fault::GateDraining { .. }));
            Ok(())
        })
        .unwrap();
        assert_eq!(rt.migration_stats().rejected_submits, 2);
        // Post-swap the pair admits again.
        rt.cross(&mut m, b, 0, 0, |_, rt| {
            rt.submit(a, Sqe::new(4, 4, 9))?;
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn swap_requeues_pending_sqes_and_preserves_ready_cqes() {
        let (mut m, mut rt) = fresh_rt();
        let (a, b) = (CompartmentId(0), CompartmentId(1));
        for i in 0..4u64 {
            rt.submit(b, Sqe::new(4, 4, i)).unwrap();
        }
        // Complete the first two, keep two queued.
        rt.flush_async_until(
            &mut m,
            b,
            |_, _, sqe| Ok(sqe.user_data as i64),
            |_, _, sqe, _| Ok(sqe.user_data < 1),
        )
        .unwrap();
        assert_eq!((rt.sq_pending(b), rt.cq_ready(b)), (2, 2));

        let applied = rt
            .request_migration(&mut m, a, b, mpk_gate(), MigrationReason::Manual, None)
            .unwrap();
        assert!(applied);
        let st = rt.migration_stats();
        assert_eq!((st.requeued_sqes, st.preserved_cqes), (2, 2));
        // Completed prefix reaps; survivors re-issue via the new backend.
        assert_eq!(rt.reap(b).unwrap().user_data, 0);
        assert_eq!(rt.reap(b).unwrap().user_data, 1);
        let before = m.clock().cycles();
        rt.flush_async(&mut m, b, |_, _, sqe| Ok(sqe.user_data as i64))
            .unwrap();
        assert!(m.clock().cycles() > before, "new gate charges crossings");
        let mut cqes = Vec::new();
        rt.poll_completions(b, &mut cqes);
        let order: Vec<u64> = cqes.iter().map(|c| c.user_data).collect();
        assert_eq!(order, vec![2, 3]);
    }

    #[test]
    fn reestablish_failure_aborts_the_swap() {
        let (mut m, mut rt) = fresh_rt();
        let (a, b) = (CompartmentId(0), CompartmentId(1));
        let re: ReestablishFn = Arc::new(|_, _, _| Err(Fault::OutOfMemory { requested_pages: 1 }));
        let err = rt
            .request_migration(&mut m, a, b, mpk_gate(), MigrationReason::Manual, Some(re))
            .unwrap_err();
        assert!(matches!(err, Fault::OutOfMemory { .. }));
        // The old gate stays installed and the pair is not stuck draining.
        assert_eq!(rt.pair_mechanism(a, b), GateMechanism::DirectCall);
        assert!(!rt.migration_pending(a, b));
        assert_eq!(rt.migration_stats().completed, 0);
    }

    #[test]
    fn context_switch_is_a_quiescent_point() {
        let (mut m, mut rt) = fresh_rt();
        let (a, b) = (CompartmentId(0), CompartmentId(1));
        // Defer a swap, then resume instead of crossing again.
        rt.cross(&mut m, b, 0, 0, |m, rt| {
            rt.request_migration(m, a, b, mpk_gate(), MigrationReason::Manual, None)?;
            Ok(())
        })
        .unwrap();
        // Already applied at the crossing end; poll is then a no-op.
        assert_eq!(rt.poll_migrations(&mut m).unwrap(), 0);
        assert_eq!(rt.pair_mechanism(a, b), GateMechanism::MpkSharedStack);
        rt.resume_in(&mut m, a).unwrap();
        assert_eq!(rt.current(), a);
    }
}
