//! Gates: the isolation abstraction between compartments.
//!
//! "Compartments in FlexOS are separated via gates which are made up of
//! the API each compartment exposes. The gates also implement isolation
//! between compartments, and can leverage different isolation mechanisms
//! … Implementations vary from cheap function calls all the way to
//! expensive RPC across VM boundaries." (paper §2)
//!
//! This module defines the [`Gate`] trait that isolation backends
//! implement, the [`CompartmentCtx`] runtime state of one compartment,
//! and the [`GateRuntime`] dispatcher that replaces FlexOS's link-time
//! gate substitution: library code calls [`GateRuntime::cross`] (the
//! analogue of the `uk_gate_r(rc, listen, sockfd, 5)` placeholder) and
//! the runtime either performs a plain function call (same compartment)
//! or drives the configured backend's enter/exit sequence.

use crate::spec::transform::ShSet;
use flexos_machine::{Addr, Fault, Machine, Pkru, ProtKey, Result, VcpuId, VmId};
use flexos_trace::GateTrace;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Identifier of a compartment within an image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CompartmentId(pub u16);

impl fmt::Display for CompartmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compartment{}", self.0)
    }
}

/// The isolation mechanism a gate implements (Figure 2's gate library).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateMechanism {
    /// Plain function call — no protection-domain switch.
    DirectCall,
    /// Intel MPK with a shared stack domain (ERIM-style).
    MpkSharedStack,
    /// Intel MPK with per-compartment stacks switched at the boundary
    /// (Hodor-style).
    MpkSwitchedStack,
    /// RPC across VM (EPT) boundaries via inter-VM notifications.
    VmRpc,
    /// CHERI sealed-capability domain transition (CompartOS-style) —
    /// the paper's other "heterogeneous hardware" example.
    Cheri,
}

impl GateMechanism {
    /// Human-readable name as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            GateMechanism::DirectCall => "function call",
            GateMechanism::MpkSharedStack => "MPK (shared stack)",
            GateMechanism::MpkSwitchedStack => "MPK (switched stack)",
            GateMechanism::VmRpc => "VM RPC (EPT)",
            GateMechanism::Cheri => "CHERI (sealed caps)",
        }
    }

    /// Where thread stacks live under this mechanism: `true` if stacks sit
    /// in a domain shared by all compartments (the shared-stack gate), in
    /// which case stack memory cannot be assumed private.
    pub fn stacks_shared(self) -> bool {
        matches!(
            self,
            GateMechanism::DirectCall | GateMechanism::MpkSharedStack
        )
    }
}

/// Runtime state of one compartment.
#[derive(Debug, Clone)]
pub struct CompartmentCtx {
    /// The compartment's identity.
    pub id: CompartmentId,
    /// Human-readable name (e.g. `"net"` or joined library names).
    pub name: String,
    /// The VM the compartment executes in (VM 0 for intra-address-space
    /// backends; its own VM for the VM backend).
    pub vm: VmId,
    /// The vCPU the compartment executes on ("Compartments do not share a
    /// single address space anymore, and run on different vCPUs" — VM
    /// backend; a single vCPU otherwise).
    pub vcpu: VcpuId,
    /// The PKRU view the compartment runs with (MPK backends).
    pub pkru: Pkru,
    /// Protection keys owned by this compartment (its private domain).
    pub keys: Vec<ProtKey>,
    /// Software hardening applied to this compartment.
    pub sh: ShSet,
    /// Base of this compartment's private heap region.
    pub heap_base: Addr,
    /// Size in bytes of the private heap region.
    pub heap_size: u64,
}

/// An isolation backend's gate implementation.
///
/// `enter` is executed when control crosses *into* `to` from `from`
/// carrying `arg_bytes` of arguments; `exit` when control returns,
/// carrying `ret_bytes`. Implementations charge their cycle costs on the
/// machine clock and perform the actual domain switch (PKRU write, vCPU
/// handoff, notification, …) so that enforcement matches the mechanism.
pub trait Gate: fmt::Debug {
    /// The mechanism this gate implements.
    fn mechanism(&self) -> GateMechanism;

    /// Crosses from `from` into `to`.
    fn enter(
        &self,
        m: &mut Machine,
        from: &CompartmentCtx,
        to: &CompartmentCtx,
        arg_bytes: u64,
    ) -> Result<()>;

    /// Returns from `callee` back into `caller`.
    fn exit(
        &self,
        m: &mut Machine,
        callee: &CompartmentCtx,
        caller: &CompartmentCtx,
        ret_bytes: u64,
    ) -> Result<()>;
}

/// The trivial gate: a plain function call. Used within a compartment and
/// by the "no isolation" baseline configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectGate;

impl Gate for DirectGate {
    fn mechanism(&self) -> GateMechanism {
        GateMechanism::DirectCall
    }

    fn enter(
        &self,
        m: &mut Machine,
        _from: &CompartmentCtx,
        _to: &CompartmentCtx,
        _arg_bytes: u64,
    ) -> Result<()> {
        m.charge(m.costs().func_call);
        Ok(())
    }

    fn exit(
        &self,
        _m: &mut Machine,
        _callee: &CompartmentCtx,
        _caller: &CompartmentCtx,
        _ret_bytes: u64,
    ) -> Result<()> {
        Ok(())
    }
}

/// Cumulative gate-crossing statistics (reported by the bench harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateStats {
    /// Cross-compartment crossings (round trips).
    pub crossings: u64,
    /// Same-compartment calls that compiled down to direct calls.
    pub direct_calls: u64,
    /// Total argument + return bytes moved through gates.
    pub bytes_marshalled: u64,
    /// Cycles spent inside gate enter/exit sequences.
    pub gate_cycles: u64,
}

/// The per-image gate dispatcher.
///
/// Holds every compartment's context, the configured backend gate (plus
/// optional per-pair overrides — Figure 2 shows different gate types can
/// coexist in one image), and the current call stack of compartments.
pub struct GateRuntime {
    compartments: Vec<CompartmentCtx>,
    default_gate: Rc<dyn Gate>,
    pair_gates: BTreeMap<(CompartmentId, CompartmentId), Rc<dyn Gate>>,
    stack: Vec<CompartmentId>,
    stats: GateStats,
    trace: GateTrace,
}

impl fmt::Debug for GateRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GateRuntime")
            .field("compartments", &self.compartments.len())
            .field("current", &self.current())
            .field("stats", &self.stats)
            .finish()
    }
}

impl GateRuntime {
    /// Creates a runtime over `compartments` using `default_gate` for all
    /// cross-compartment calls, starting execution in `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `compartments` is empty or `initial` is out of range.
    pub fn new(
        compartments: Vec<CompartmentCtx>,
        default_gate: Rc<dyn Gate>,
        initial: CompartmentId,
    ) -> Self {
        assert!(
            !compartments.is_empty(),
            "an image has at least one compartment"
        );
        assert!(
            (initial.0 as usize) < compartments.len(),
            "unknown initial compartment"
        );
        Self {
            compartments,
            default_gate,
            pair_gates: BTreeMap::new(),
            stack: vec![initial],
            stats: GateStats::default(),
            trace: GateTrace::new(),
        }
    }

    /// Overrides the gate used between `a` and `b` (both directions).
    pub fn set_pair_gate(&mut self, a: CompartmentId, b: CompartmentId, gate: Rc<dyn Gate>) {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.pair_gates.insert(key, gate);
    }

    fn gate_for(&self, a: CompartmentId, b: CompartmentId) -> Rc<dyn Gate> {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.pair_gates
            .get(&key)
            .cloned()
            .unwrap_or_else(|| Rc::clone(&self.default_gate))
    }

    /// The compartment currently executing.
    pub fn current(&self) -> CompartmentId {
        *self.stack.last().expect("compartment stack never empty")
    }

    /// Context of the current compartment.
    pub fn current_ctx(&self) -> &CompartmentCtx {
        &self.compartments[self.current().0 as usize]
    }

    /// Context of a specific compartment.
    pub fn ctx(&self, id: CompartmentId) -> &CompartmentCtx {
        &self.compartments[id.0 as usize]
    }

    /// Number of compartments.
    pub fn len(&self) -> usize {
        self.compartments.len()
    }

    /// Whether the image has a single compartment.
    pub fn is_empty(&self) -> bool {
        self.compartments.is_empty()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> GateStats {
        self.stats
    }

    /// Resets statistics (benchmark warm-up support).
    pub fn reset_stats(&mut self) {
        self.stats = GateStats::default();
        self.trace.reset();
    }

    /// Per-pair/per-mechanism crossing telemetry.
    pub fn trace(&self) -> &GateTrace {
        &self.trace
    }

    /// The gate-call placeholder: runs `f` inside `target`.
    ///
    /// If `target` is the current compartment this is a direct function
    /// call (FlexOS replaces the placeholder with a plain call at link
    /// time). Otherwise the configured gate's `enter` sequence runs, `f`
    /// executes with the target compartment current, and `exit` restores
    /// the caller — including on error paths.
    ///
    /// `arg_bytes`/`ret_bytes` are the marshalled argument and return
    /// sizes ("gates take care of executing the function call in the
    /// foreign compartment, and of copying the return value back").
    pub fn cross<R>(
        &mut self,
        m: &mut Machine,
        target: CompartmentId,
        arg_bytes: u64,
        ret_bytes: u64,
        f: impl FnOnce(&mut Machine, &mut GateRuntime) -> Result<R>,
    ) -> Result<R> {
        let from = self.current();
        if from == target {
            m.charge(m.costs().func_call);
            self.stats.direct_calls += 1;
            self.trace.record_direct();
            return f(m, self);
        }
        assert!(
            (target.0 as usize) < self.compartments.len(),
            "unknown {target}"
        );

        let gate = self.gate_for(from, target);
        let t0 = m.clock().cycles();
        {
            let (from_ctx, to_ctx) = (
                &self.compartments[from.0 as usize],
                &self.compartments[target.0 as usize],
            );
            gate.enter(m, from_ctx, to_ctx, arg_bytes)?;
        }
        let enter_cycles = m.clock().cycles() - t0;
        self.stats.gate_cycles += enter_cycles;
        self.stack.push(target);

        let result = f(m, self);

        self.stack.pop();
        let t1 = m.clock().cycles();
        {
            let (callee_ctx, caller_ctx) = (
                &self.compartments[target.0 as usize],
                &self.compartments[from.0 as usize],
            );
            gate.exit(m, callee_ctx, caller_ctx, ret_bytes)?;
        }
        let exit_cycles = m.clock().cycles() - t1;
        self.stats.gate_cycles += exit_cycles;
        self.stats.crossings += 1;
        self.stats.bytes_marshalled += arg_bytes + ret_bytes;
        self.trace.record_crossing(
            gate.mechanism().label(),
            from.0,
            target.0,
            enter_cycles + exit_cycles,
            arg_bytes + ret_bytes,
            t1 + exit_cycles,
        );
        result
    }

    /// Restores the current compartment's protection view on the machine.
    ///
    /// The scheduler calls this after a context switch: the incoming
    /// thread resumes in some compartment, and (for MPK backends) its
    /// saved PKRU must be loaded — "the scheduler holds the value of the
    /// PKRU for threads that are not currently running" (paper §3).
    pub fn resume_in(&mut self, m: &mut Machine, id: CompartmentId) -> Result<()> {
        assert!((id.0 as usize) < self.compartments.len(), "unknown {id}");
        let ctx = &self.compartments[id.0 as usize];
        let tok = m.gate_token();
        let vcpu = ctx.vcpu;
        let pkru = ctx.pkru;
        // Skip the (costed) `wrpkru` when the register already holds the
        // right value — e.g. the VM backend never changes PKRU.
        if m.rdpkru(vcpu) != pkru {
            m.restore_pkru(vcpu, pkru, tok)?;
        }
        self.stack.clear();
        self.stack.push(id);
        Ok(())
    }
}

/// A convenience error for gate misuse surfaced to library authors.
pub fn not_an_entry_point(lib: &str, func: &str) -> Fault {
    Fault::HardeningAbort {
        mechanism: "gate",
        reason: format!("{func} is not an exposed entry point of {lib}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexos_machine::PageFlags;

    fn two_compartments(m: &mut Machine) -> Vec<CompartmentCtx> {
        let heap0 = m
            .alloc_region(VmId(0), 4096, ProtKey(1), PageFlags::RW)
            .unwrap();
        let heap1 = m
            .alloc_region(VmId(0), 4096, ProtKey(2), PageFlags::RW)
            .unwrap();
        vec![
            CompartmentCtx {
                id: CompartmentId(0),
                name: "rest".into(),
                vm: VmId(0),
                vcpu: VcpuId(0),
                pkru: Pkru::ALLOW_ALL,
                keys: vec![ProtKey(1)],
                sh: ShSet::none(),
                heap_base: heap0,
                heap_size: 4096,
            },
            CompartmentCtx {
                id: CompartmentId(1),
                name: "net".into(),
                vm: VmId(0),
                vcpu: VcpuId(0),
                pkru: Pkru::ALLOW_ALL,
                keys: vec![ProtKey(2)],
                sh: ShSet::none(),
                heap_base: heap1,
                heap_size: 4096,
            },
        ]
    }

    #[test]
    fn same_compartment_cross_is_a_direct_call() {
        let mut m = Machine::with_defaults();
        let cpts = two_compartments(&mut m);
        let mut rt = GateRuntime::new(cpts, Rc::new(DirectGate), CompartmentId(0));
        let before = m.clock().cycles();
        let v = rt
            .cross(&mut m, CompartmentId(0), 16, 8, |_, _| Ok(42))
            .unwrap();
        assert_eq!(v, 42);
        assert_eq!(m.clock().cycles() - before, m.costs().func_call);
        assert_eq!(rt.stats().direct_calls, 1);
        assert_eq!(rt.stats().crossings, 0);
    }

    #[test]
    fn cross_switches_current_and_restores_it() {
        let mut m = Machine::with_defaults();
        let cpts = two_compartments(&mut m);
        let mut rt = GateRuntime::new(cpts, Rc::new(DirectGate), CompartmentId(0));
        rt.cross(&mut m, CompartmentId(1), 0, 0, |m, rt| {
            assert_eq!(rt.current(), CompartmentId(1));
            // Nested crossing back.
            rt.cross(m, CompartmentId(0), 0, 0, |_, rt| {
                assert_eq!(rt.current(), CompartmentId(0));
                Ok(())
            })
        })
        .unwrap();
        assert_eq!(rt.current(), CompartmentId(0));
        assert_eq!(rt.stats().crossings, 2);
    }

    #[test]
    fn cross_restores_caller_on_error() {
        let mut m = Machine::with_defaults();
        let cpts = two_compartments(&mut m);
        let mut rt = GateRuntime::new(cpts, Rc::new(DirectGate), CompartmentId(0));
        let err = rt
            .cross(&mut m, CompartmentId(1), 0, 0, |_, _| {
                Err::<(), _>(Fault::OutOfMemory { requested_pages: 1 })
            })
            .unwrap_err();
        assert!(matches!(err, Fault::OutOfMemory { .. }));
        assert_eq!(rt.current(), CompartmentId(0));
    }

    #[test]
    fn stats_accumulate_bytes() {
        let mut m = Machine::with_defaults();
        let cpts = two_compartments(&mut m);
        let mut rt = GateRuntime::new(cpts, Rc::new(DirectGate), CompartmentId(0));
        rt.cross(&mut m, CompartmentId(1), 100, 28, |_, _| Ok(()))
            .unwrap();
        assert_eq!(rt.stats().bytes_marshalled, 128);
    }

    #[test]
    fn mechanism_stack_policy() {
        assert!(GateMechanism::MpkSharedStack.stacks_shared());
        assert!(!GateMechanism::MpkSwitchedStack.stacks_shared());
        assert!(!GateMechanism::VmRpc.stacks_shared());
    }
}
