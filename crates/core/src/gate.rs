//! Gates: the isolation abstraction between compartments.
//!
//! "Compartments in FlexOS are separated via gates which are made up of
//! the API each compartment exposes. The gates also implement isolation
//! between compartments, and can leverage different isolation mechanisms
//! … Implementations vary from cheap function calls all the way to
//! expensive RPC across VM boundaries." (paper §2)
//!
//! This module defines the [`Gate`] trait that isolation backends
//! implement, the [`CompartmentCtx`] runtime state of one compartment,
//! and the [`GateRuntime`] dispatcher that replaces FlexOS's link-time
//! gate substitution: library code calls [`GateRuntime::cross`] (the
//! analogue of the `uk_gate_r(rc, listen, sockfd, 5)` placeholder) and
//! the runtime either performs a plain function call (same compartment)
//! or drives the configured backend's enter/exit sequence.

use crate::spec::transform::ShSet;
use flexos_machine::{Addr, Fault, Machine, Pkru, ProtKey, Result, VcpuId, VmId};
use flexos_trace::{GateTrace, SpanKind};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of a compartment within an image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CompartmentId(pub u16);

impl fmt::Display for CompartmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compartment{}", self.0)
    }
}

/// The isolation mechanism a gate implements (Figure 2's gate library).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateMechanism {
    /// Plain function call — no protection-domain switch.
    DirectCall,
    /// Intel MPK with a shared stack domain (ERIM-style).
    MpkSharedStack,
    /// Intel MPK with per-compartment stacks switched at the boundary
    /// (Hodor-style).
    MpkSwitchedStack,
    /// RPC across VM (EPT) boundaries via inter-VM notifications.
    VmRpc,
    /// CHERI sealed-capability domain transition (CompartOS-style) —
    /// the paper's other "heterogeneous hardware" example.
    Cheri,
}

impl GateMechanism {
    /// Human-readable name as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            GateMechanism::DirectCall => "function call",
            GateMechanism::MpkSharedStack => "MPK (shared stack)",
            GateMechanism::MpkSwitchedStack => "MPK (switched stack)",
            GateMechanism::VmRpc => "VM RPC (EPT)",
            GateMechanism::Cheri => "CHERI (sealed caps)",
        }
    }

    /// Where thread stacks live under this mechanism: `true` if stacks sit
    /// in a domain shared by all compartments (the shared-stack gate), in
    /// which case stack memory cannot be assumed private.
    pub fn stacks_shared(self) -> bool {
        matches!(
            self,
            GateMechanism::DirectCall | GateMechanism::MpkSharedStack
        )
    }
}

/// Tunable gate-runtime behaviour (per image).
///
/// `batch_enabled` selects the vectored fast path for
/// [`GateRuntime::cross_batch`]: on, batched crossings hoist the gate
/// lookup and let backends elide host-side work that repeats across the
/// batch (doorbell queue churn, split PKRU writes); off, every batched
/// call degrades to a plain [`GateRuntime::cross`] — the reference path
/// the differential suite compares against. Either way the *simulated*
/// cycles, faults, and trace events are bit-identical: batching is a
/// host-time optimisation only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateConfig {
    /// Use the vectored fast path in `cross_batch` (default: on).
    pub batch_enabled: bool,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self {
            batch_enabled: true,
        }
    }
}

/// A builder for the per-call marshalling sizes of one batched crossing.
///
/// Each entry is the `(arg_bytes, ret_bytes)` pair one call moves
/// through the gate — the same two numbers a plain [`GateRuntime::cross`]
/// takes. Batches are homogeneous in *target* (all calls cross into the
/// same compartment) but heterogeneous in size.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallVec {
    calls: Vec<(u64, u64)>,
}

impl CallVec {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// A batch of `n` identical calls (the common microbench shape).
    pub fn uniform(n: usize, arg_bytes: u64, ret_bytes: u64) -> Self {
        Self {
            calls: vec![(arg_bytes, ret_bytes); n],
        }
    }

    /// Appends one call.
    pub fn push(&mut self, arg_bytes: u64, ret_bytes: u64) -> &mut Self {
        self.calls.push((arg_bytes, ret_bytes));
        self
    }

    /// Appends `n` identical calls.
    pub fn push_uniform(&mut self, n: usize, arg_bytes: u64, ret_bytes: u64) -> &mut Self {
        let new_len = self.calls.len() + n;
        self.calls.resize(new_len, (arg_bytes, ret_bytes));
        self
    }

    /// Number of calls in the batch.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    /// Drops all calls, keeping the allocation.
    pub fn clear(&mut self) {
        self.calls.clear();
    }

    /// The `(arg_bytes, ret_bytes)` of call `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn get(&self, idx: usize) -> (u64, u64) {
        self.calls[idx]
    }

    /// All calls, in issue order.
    pub fn as_slice(&self) -> &[(u64, u64)] {
        &self.calls
    }
}

/// Runtime state of one compartment.
#[derive(Debug, Clone)]
pub struct CompartmentCtx {
    /// The compartment's identity.
    pub id: CompartmentId,
    /// Human-readable name (e.g. `"net"` or joined library names).
    pub name: String,
    /// The VM the compartment executes in (VM 0 for intra-address-space
    /// backends; its own VM for the VM backend).
    pub vm: VmId,
    /// The vCPU the compartment executes on ("Compartments do not share a
    /// single address space anymore, and run on different vCPUs" — VM
    /// backend; a single vCPU otherwise).
    pub vcpu: VcpuId,
    /// The PKRU view the compartment runs with (MPK backends).
    pub pkru: Pkru,
    /// Protection keys owned by this compartment (its private domain).
    pub keys: Vec<ProtKey>,
    /// Software hardening applied to this compartment.
    pub sh: ShSet,
    /// Base of this compartment's private heap region.
    pub heap_base: Addr,
    /// Size in bytes of the private heap region.
    pub heap_size: u64,
}

/// An isolation backend's gate implementation.
///
/// `enter` is executed when control crosses *into* `to` from `from`
/// carrying `arg_bytes` of arguments; `exit` when control returns,
/// carrying `ret_bytes`. Implementations charge their cycle costs on the
/// machine clock and perform the actual domain switch (PKRU write, vCPU
/// handoff, notification, …) so that enforcement matches the mechanism.
///
/// `Send + Sync` is a supertrait since true SMP: gates are stateless
/// behind `&self` (all mutable state — clock, PKRU, doorbells — lives in
/// the `Machine` passed in), and the runtime shares them via `Arc` so a
/// booted image can move to, or be driven from, another host thread in
/// free-running mode. A backend needing interior state must use atomics,
/// not `Cell` — the compiler now enforces that.
pub trait Gate: fmt::Debug + Send + Sync {
    /// The mechanism this gate implements.
    fn mechanism(&self) -> GateMechanism;

    /// Crosses from `from` into `to`.
    fn enter(
        &self,
        m: &mut Machine,
        from: &CompartmentCtx,
        to: &CompartmentCtx,
        arg_bytes: u64,
    ) -> Result<()>;

    /// Returns from `callee` back into `caller`.
    fn exit(
        &self,
        m: &mut Machine,
        callee: &CompartmentCtx,
        caller: &CompartmentCtx,
        ret_bytes: u64,
    ) -> Result<()>;

    /// Like [`Gate::enter`], for call `idx` (0-based) of a batched
    /// crossing into the same target.
    ///
    /// The default forwards to `enter`. Backends override this to elide
    /// *host-side* work that repeats across a batch (doorbell queue
    /// churn, split register writes). Overrides MUST charge exactly the
    /// same simulated cycles, draw exactly the same chaos decisions and
    /// raise exactly the same faults as `enter` would — the differential
    /// suite in `crates/backends/tests/backend_equiv.rs` holds them to
    /// that contract.
    fn enter_nth(
        &self,
        m: &mut Machine,
        from: &CompartmentCtx,
        to: &CompartmentCtx,
        arg_bytes: u64,
        idx: usize,
    ) -> Result<()> {
        let _ = idx;
        self.enter(m, from, to, arg_bytes)
    }

    /// Like [`Gate::exit`], for call `idx` of a batched crossing. Same
    /// equivalence contract as [`Gate::enter_nth`].
    fn exit_nth(
        &self,
        m: &mut Machine,
        callee: &CompartmentCtx,
        caller: &CompartmentCtx,
        ret_bytes: u64,
        idx: usize,
    ) -> Result<()> {
        let _ = idx;
        self.exit(m, callee, caller, ret_bytes)
    }
}

/// The trivial gate: a plain function call. Used within a compartment and
/// by the "no isolation" baseline configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectGate;

impl Gate for DirectGate {
    fn mechanism(&self) -> GateMechanism {
        GateMechanism::DirectCall
    }

    fn enter(
        &self,
        m: &mut Machine,
        _from: &CompartmentCtx,
        _to: &CompartmentCtx,
        _arg_bytes: u64,
    ) -> Result<()> {
        m.charge(m.costs().func_call);
        Ok(())
    }

    fn exit(
        &self,
        _m: &mut Machine,
        _callee: &CompartmentCtx,
        _caller: &CompartmentCtx,
        _ret_bytes: u64,
    ) -> Result<()> {
        Ok(())
    }
}

/// Cumulative gate-crossing statistics (reported by the bench harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateStats {
    /// Cross-compartment crossings (round trips).
    pub crossings: u64,
    /// Same-compartment calls that compiled down to direct calls.
    pub direct_calls: u64,
    /// Total argument + return bytes moved through gates.
    pub bytes_marshalled: u64,
    /// Cycles spent inside gate enter/exit sequences.
    pub gate_cycles: u64,
}

/// The per-image gate dispatcher.
///
/// Holds every compartment's context, the configured backend gate (plus
/// optional per-pair overrides — Figure 2 shows different gate types can
/// coexist in one image), and the current call stack of compartments.
pub struct GateRuntime {
    compartments: Vec<CompartmentCtx>,
    default_gate: Arc<dyn Gate>,
    pair_gates: BTreeMap<(CompartmentId, CompartmentId), Arc<dyn Gate>>,
    stack: Vec<CompartmentId>,
    stats: GateStats,
    trace: GateTrace,
    config: GateConfig,
}

impl fmt::Debug for GateRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GateRuntime")
            .field("compartments", &self.compartments.len())
            .field("current", &self.current())
            .field("stats", &self.stats)
            .finish()
    }
}

impl GateRuntime {
    /// Creates a runtime over `compartments` using `default_gate` for all
    /// cross-compartment calls, starting execution in `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `compartments` is empty or `initial` is out of range.
    pub fn new(
        compartments: Vec<CompartmentCtx>,
        default_gate: Arc<dyn Gate>,
        initial: CompartmentId,
    ) -> Self {
        assert!(
            !compartments.is_empty(),
            "an image has at least one compartment"
        );
        assert!(
            (initial.0 as usize) < compartments.len(),
            "unknown initial compartment"
        );
        Self {
            compartments,
            default_gate,
            pair_gates: BTreeMap::new(),
            stack: vec![initial],
            stats: GateStats::default(),
            trace: GateTrace::new(),
            config: GateConfig::default(),
        }
    }

    /// The runtime's configuration.
    pub fn config(&self) -> GateConfig {
        self.config
    }

    /// Toggles the vectored `cross_batch` fast path. Off means batched
    /// entry points degrade to loops of plain [`GateRuntime::cross`] —
    /// the reference path for equivalence testing.
    pub fn set_batch_enabled(&mut self, on: bool) {
        self.config.batch_enabled = on;
    }

    /// Overrides the gate used between `a` and `b` (both directions).
    pub fn set_pair_gate(&mut self, a: CompartmentId, b: CompartmentId, gate: Arc<dyn Gate>) {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.pair_gates.insert(key, gate);
    }

    fn gate_for(&self, a: CompartmentId, b: CompartmentId) -> Arc<dyn Gate> {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.pair_gates
            .get(&key)
            .cloned()
            .unwrap_or_else(|| Arc::clone(&self.default_gate))
    }

    /// The compartment currently executing.
    pub fn current(&self) -> CompartmentId {
        *self.stack.last().expect("compartment stack never empty")
    }

    /// Context of the current compartment.
    pub fn current_ctx(&self) -> &CompartmentCtx {
        &self.compartments[self.current().0 as usize]
    }

    /// Context of a specific compartment.
    pub fn ctx(&self, id: CompartmentId) -> &CompartmentCtx {
        &self.compartments[id.0 as usize]
    }

    /// Number of compartments.
    pub fn len(&self) -> usize {
        self.compartments.len()
    }

    /// Whether the image has a single compartment.
    pub fn is_empty(&self) -> bool {
        self.compartments.is_empty()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> GateStats {
        self.stats
    }

    /// Resets statistics (benchmark warm-up support).
    pub fn reset_stats(&mut self) {
        self.stats = GateStats::default();
        self.trace.reset();
    }

    /// Per-pair/per-mechanism crossing telemetry.
    pub fn trace(&self) -> &GateTrace {
        &self.trace
    }

    /// The gate-call placeholder: runs `f` inside `target`.
    ///
    /// If `target` is the current compartment this is a direct function
    /// call (FlexOS replaces the placeholder with a plain call at link
    /// time). Otherwise the configured gate's `enter` sequence runs, `f`
    /// executes with the target compartment current, and `exit` restores
    /// the caller — including on error paths.
    ///
    /// `arg_bytes`/`ret_bytes` are the marshalled argument and return
    /// sizes ("gates take care of executing the function call in the
    /// foreign compartment, and of copying the return value back").
    pub fn cross<R>(
        &mut self,
        m: &mut Machine,
        target: CompartmentId,
        arg_bytes: u64,
        ret_bytes: u64,
        f: impl FnOnce(&mut Machine, &mut GateRuntime) -> Result<R>,
    ) -> Result<R> {
        let from = self.current();
        if from == target {
            m.charge(m.costs().func_call);
            self.stats.direct_calls += 1;
            self.trace.record_direct();
            return f(m, self);
        }
        assert!(
            (target.0 as usize) < self.compartments.len(),
            "unknown {target}"
        );

        let gate = self.gate_for(from, target);
        let t0 = m.clock().cycles();
        {
            let (from_ctx, to_ctx) = (
                &self.compartments[from.0 as usize],
                &self.compartments[target.0 as usize],
            );
            gate.enter(m, from_ctx, to_ctx, arg_bytes)?;
        }
        let enter_cycles = m.clock().cycles() - t0;
        self.stats.gate_cycles += enter_cycles;
        self.stack.push(target);

        let result = f(m, self);

        self.stack.pop();
        let t1 = m.clock().cycles();
        {
            let (callee_ctx, caller_ctx) = (
                &self.compartments[target.0 as usize],
                &self.compartments[from.0 as usize],
            );
            gate.exit(m, callee_ctx, caller_ctx, ret_bytes)?;
        }
        let exit_cycles = m.clock().cycles() - t1;
        let label = gate.mechanism().label();
        self.stats.gate_cycles += exit_cycles;
        self.stats.crossings += 1;
        self.stats.bytes_marshalled += arg_bytes + ret_bytes;
        self.trace.record_crossing(
            label,
            from.0,
            target.0,
            enter_cycles + exit_cycles,
            arg_bytes + ret_bytes,
            t1 + exit_cycles,
        );
        // Span probe: the whole crossing window [enter, exit], sharded
        // by the caller's plan-determined vCPU (run-queue-invisible).
        m.span_trace_mut().record(
            self.compartments[from.0 as usize].vcpu.0 as u16,
            SpanKind::Gate,
            label,
            from.0,
            target.0,
            t0,
            t1 + exit_cycles,
        );
        result
    }

    /// Vectored gate crossing: runs `calls.len()` calls into `target`,
    /// call `idx` executing `f(m, rt, idx)`.
    ///
    /// With [`GateConfig::batch_enabled`] on, the gate lookup is hoisted
    /// out of the loop and each call goes through the backend's
    /// [`Gate::enter_nth`]/[`Gate::exit_nth`] batch hooks, which may
    /// skip host-side work that repeats across the batch. Off, this is
    /// exactly a loop of [`GateRuntime::cross`]. Both paths issue the
    /// identical sequence of simulated operations: cycles charged,
    /// chaos decisions drawn, faults raised and trace events recorded
    /// are bit-identical, and the per-mechanism batch-size histogram is
    /// recorded either way.
    ///
    /// The batch stops at the first call error, which is returned after
    /// that call's exit path has run (same contract as `cross`).
    pub fn cross_batch<R>(
        &mut self,
        m: &mut Machine,
        target: CompartmentId,
        calls: &CallVec,
        mut f: impl FnMut(&mut Machine, &mut GateRuntime, usize) -> Result<R>,
    ) -> Result<Vec<R>> {
        self.cross_batch_until(m, target, calls, &mut f, |_, _, _, _| Ok(true))
    }

    /// [`GateRuntime::cross_batch`] with an inter-call hook.
    ///
    /// `between(m, rt, idx, &r)` runs after call `idx` returned `r` and
    /// its exit path completed — i.e. in the *caller's* compartment,
    /// outside the gate. Consumers use it to apply the work a sequential
    /// driver would do between two crossings (marshalling charges,
    /// per-reply bookkeeping) so the simulated instruction stream is
    /// unchanged, and to stop the batch early (`Ok(false)`) the way a
    /// sequential loop breaks on `WouldBlock` or EOF. The results of all
    /// completed calls, including the stopping one, are returned.
    pub fn cross_batch_until<R>(
        &mut self,
        m: &mut Machine,
        target: CompartmentId,
        calls: &CallVec,
        mut f: impl FnMut(&mut Machine, &mut GateRuntime, usize) -> Result<R>,
        mut between: impl FnMut(&mut Machine, &mut GateRuntime, usize, &R) -> Result<bool>,
    ) -> Result<Vec<R>> {
        if calls.is_empty() {
            return Ok(Vec::new());
        }
        let from = self.current();
        let label = if from == target {
            GateMechanism::DirectCall.label()
        } else {
            assert!(
                (target.0 as usize) < self.compartments.len(),
                "unknown {target}"
            );
            self.gate_for(from, target).mechanism().label()
        };
        let mut out = Vec::with_capacity(calls.len());
        let mut issued: u64 = 0;

        if !self.config.batch_enabled {
            // Reference path: a plain loop of `cross` plus the hook.
            for idx in 0..calls.len() {
                let (arg_bytes, ret_bytes) = calls.get(idx);
                issued += 1;
                let r = match self.cross(m, target, arg_bytes, ret_bytes, |m, rt| f(m, rt, idx)) {
                    Ok(r) => r,
                    Err(e) => {
                        self.trace.record_batch(label, issued);
                        return Err(e);
                    }
                };
                let more = match between(m, self, idx, &r) {
                    Ok(more) => more,
                    Err(e) => {
                        self.trace.record_batch(label, issued);
                        return Err(e);
                    }
                };
                out.push(r);
                if !more {
                    break;
                }
            }
            self.trace.record_batch(label, issued);
            return Ok(out);
        }

        if from == target {
            // Direct-call loop: only the cost lookup is hoisted (the
            // cost table is immutable for the life of the machine).
            let func_call = m.costs().func_call;
            for idx in 0..calls.len() {
                issued += 1;
                m.charge(func_call);
                self.stats.direct_calls += 1;
                self.trace.record_direct();
                let r = match f(m, self, idx) {
                    Ok(r) => r,
                    Err(e) => {
                        self.trace.record_batch(label, issued);
                        return Err(e);
                    }
                };
                let more = match between(m, self, idx, &r) {
                    Ok(more) => more,
                    Err(e) => {
                        self.trace.record_batch(label, issued);
                        return Err(e);
                    }
                };
                out.push(r);
                if !more {
                    break;
                }
            }
            self.trace.record_batch(label, issued);
            return Ok(out);
        }

        // Fast path: the gate lookup (BTreeMap probe + `Arc` clone) is
        // hoisted out of the loop, and each call runs the backend's
        // batch hooks. The per-call body below mirrors `cross` exactly —
        // including running the exit path and the stats/trace updates
        // when `f` fails, with the exit's own error taking precedence.
        let gate = self.gate_for(from, target);
        for idx in 0..calls.len() {
            let (arg_bytes, ret_bytes) = calls.get(idx);
            issued += 1;
            let t0 = m.clock().cycles();
            {
                let (from_ctx, to_ctx) = (
                    &self.compartments[from.0 as usize],
                    &self.compartments[target.0 as usize],
                );
                if let Err(e) = gate.enter_nth(m, from_ctx, to_ctx, arg_bytes, idx) {
                    self.trace.record_batch(label, issued);
                    return Err(e);
                }
            }
            let enter_cycles = m.clock().cycles() - t0;
            self.stats.gate_cycles += enter_cycles;
            self.stack.push(target);

            let result = f(m, self, idx);

            self.stack.pop();
            let t1 = m.clock().cycles();
            {
                let (callee_ctx, caller_ctx) = (
                    &self.compartments[target.0 as usize],
                    &self.compartments[from.0 as usize],
                );
                if let Err(e) = gate.exit_nth(m, callee_ctx, caller_ctx, ret_bytes, idx) {
                    self.trace.record_batch(label, issued);
                    return Err(e);
                }
            }
            let exit_cycles = m.clock().cycles() - t1;
            self.stats.gate_cycles += exit_cycles;
            self.stats.crossings += 1;
            self.stats.bytes_marshalled += arg_bytes + ret_bytes;
            self.trace.record_crossing(
                label,
                from.0,
                target.0,
                enter_cycles + exit_cycles,
                arg_bytes + ret_bytes,
                t1 + exit_cycles,
            );
            // Span probe mirroring `cross` exactly, so the batched fast
            // path emits the byte-identical span stream.
            m.span_trace_mut().record(
                self.compartments[from.0 as usize].vcpu.0 as u16,
                SpanKind::Gate,
                label,
                from.0,
                target.0,
                t0,
                t1 + exit_cycles,
            );
            let r = match result {
                Ok(r) => r,
                Err(e) => {
                    self.trace.record_batch(label, issued);
                    return Err(e);
                }
            };
            let more = match between(m, self, idx, &r) {
                Ok(more) => more,
                Err(e) => {
                    self.trace.record_batch(label, issued);
                    return Err(e);
                }
            };
            out.push(r);
            if !more {
                break;
            }
        }
        self.trace.record_batch(label, issued);
        Ok(out)
    }

    /// Restores the current compartment's protection view on the machine.
    ///
    /// The scheduler calls this after a context switch: the incoming
    /// thread resumes in some compartment, and (for MPK backends) its
    /// saved PKRU must be loaded — "the scheduler holds the value of the
    /// PKRU for threads that are not currently running" (paper §3).
    pub fn resume_in(&mut self, m: &mut Machine, id: CompartmentId) -> Result<()> {
        assert!((id.0 as usize) < self.compartments.len(), "unknown {id}");
        let ctx = &self.compartments[id.0 as usize];
        let tok = m.gate_token();
        let vcpu = ctx.vcpu;
        let pkru = ctx.pkru;
        // Skip the (costed) `wrpkru` when the register already holds the
        // right value — e.g. the VM backend never changes PKRU.
        if m.rdpkru(vcpu) != pkru {
            m.restore_pkru(vcpu, pkru, tok)?;
        }
        self.stack.clear();
        self.stack.push(id);
        Ok(())
    }
}

/// A convenience error for gate misuse surfaced to library authors.
pub fn not_an_entry_point(lib: &str, func: &str) -> Fault {
    Fault::HardeningAbort {
        mechanism: "gate",
        reason: format!("{func} is not an exposed entry point of {lib}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexos_machine::PageFlags;

    fn two_compartments(m: &mut Machine) -> Vec<CompartmentCtx> {
        let heap0 = m
            .alloc_region(VmId(0), 4096, ProtKey(1), PageFlags::RW)
            .unwrap();
        let heap1 = m
            .alloc_region(VmId(0), 4096, ProtKey(2), PageFlags::RW)
            .unwrap();
        vec![
            CompartmentCtx {
                id: CompartmentId(0),
                name: "rest".into(),
                vm: VmId(0),
                vcpu: VcpuId(0),
                pkru: Pkru::ALLOW_ALL,
                keys: vec![ProtKey(1)],
                sh: ShSet::none(),
                heap_base: heap0,
                heap_size: 4096,
            },
            CompartmentCtx {
                id: CompartmentId(1),
                name: "net".into(),
                vm: VmId(0),
                vcpu: VcpuId(0),
                pkru: Pkru::ALLOW_ALL,
                keys: vec![ProtKey(2)],
                sh: ShSet::none(),
                heap_base: heap1,
                heap_size: 4096,
            },
        ]
    }

    #[test]
    fn same_compartment_cross_is_a_direct_call() {
        let mut m = Machine::with_defaults();
        let cpts = two_compartments(&mut m);
        let mut rt = GateRuntime::new(cpts, Arc::new(DirectGate), CompartmentId(0));
        let before = m.clock().cycles();
        let v = rt
            .cross(&mut m, CompartmentId(0), 16, 8, |_, _| Ok(42))
            .unwrap();
        assert_eq!(v, 42);
        assert_eq!(m.clock().cycles() - before, m.costs().func_call);
        assert_eq!(rt.stats().direct_calls, 1);
        assert_eq!(rt.stats().crossings, 0);
    }

    #[test]
    fn cross_switches_current_and_restores_it() {
        let mut m = Machine::with_defaults();
        let cpts = two_compartments(&mut m);
        let mut rt = GateRuntime::new(cpts, Arc::new(DirectGate), CompartmentId(0));
        rt.cross(&mut m, CompartmentId(1), 0, 0, |m, rt| {
            assert_eq!(rt.current(), CompartmentId(1));
            // Nested crossing back.
            rt.cross(m, CompartmentId(0), 0, 0, |_, rt| {
                assert_eq!(rt.current(), CompartmentId(0));
                Ok(())
            })
        })
        .unwrap();
        assert_eq!(rt.current(), CompartmentId(0));
        assert_eq!(rt.stats().crossings, 2);
    }

    #[test]
    fn cross_restores_caller_on_error() {
        let mut m = Machine::with_defaults();
        let cpts = two_compartments(&mut m);
        let mut rt = GateRuntime::new(cpts, Arc::new(DirectGate), CompartmentId(0));
        let err = rt
            .cross(&mut m, CompartmentId(1), 0, 0, |_, _| {
                Err::<(), _>(Fault::OutOfMemory { requested_pages: 1 })
            })
            .unwrap_err();
        assert!(matches!(err, Fault::OutOfMemory { .. }));
        assert_eq!(rt.current(), CompartmentId(0));
    }

    #[test]
    fn stats_accumulate_bytes() {
        let mut m = Machine::with_defaults();
        let cpts = two_compartments(&mut m);
        let mut rt = GateRuntime::new(cpts, Arc::new(DirectGate), CompartmentId(0));
        rt.cross(&mut m, CompartmentId(1), 100, 28, |_, _| Ok(()))
            .unwrap();
        assert_eq!(rt.stats().bytes_marshalled, 128);
    }

    #[test]
    fn mechanism_stack_policy() {
        assert!(GateMechanism::MpkSharedStack.stacks_shared());
        assert!(!GateMechanism::MpkSwitchedStack.stacks_shared());
        assert!(!GateMechanism::VmRpc.stacks_shared());
    }

    #[test]
    fn callvec_builders_agree() {
        let mut v = CallVec::new();
        v.push(16, 8).push_uniform(2, 16, 8);
        assert_eq!(v, CallVec::uniform(3, 16, 8));
        assert_eq!(v.len(), 3);
        assert_eq!(v.get(2), (16, 8));
        v.clear();
        assert!(v.is_empty());
    }

    /// Runs the same batch with the fast path on and off and returns
    /// `(cycles, stats)` for each, so tests can assert bit-identity.
    fn run_both_modes(calls: &CallVec, target: CompartmentId) -> [(u64, GateStats, Vec<i32>); 2] {
        [true, false].map(|on| {
            let mut m = Machine::with_defaults();
            let cpts = two_compartments(&mut m);
            let mut rt = GateRuntime::new(cpts, Arc::new(DirectGate), CompartmentId(0));
            rt.set_batch_enabled(on);
            let before = m.clock().cycles();
            let out = rt
                .cross_batch(&mut m, target, calls, |m, _, idx| {
                    m.charge(10 + idx as u64);
                    Ok(idx as i32)
                })
                .unwrap();
            (m.clock().cycles() - before, rt.stats(), out)
        })
    }

    #[test]
    fn batch_on_and_off_are_cycle_identical() {
        for target in [CompartmentId(0), CompartmentId(1)] {
            let calls = CallVec::uniform(5, 32, 8);
            let [on, off] = run_both_modes(&calls, target);
            assert_eq!(on, off, "batch fast path diverged for {target}");
        }
    }

    #[test]
    fn batch_equals_sequential_crossings() {
        let mut calls = CallVec::new();
        calls.push(16, 8).push(100, 28).push(0, 0);

        let mut m1 = Machine::with_defaults();
        let cpts = two_compartments(&mut m1);
        let mut rt1 = GateRuntime::new(cpts, Arc::new(DirectGate), CompartmentId(0));
        let out = rt1
            .cross_batch(&mut m1, CompartmentId(1), &calls, |_, _, idx| Ok(idx))
            .unwrap();
        assert_eq!(out, vec![0, 1, 2]);

        let mut m2 = Machine::with_defaults();
        let cpts = two_compartments(&mut m2);
        let mut rt2 = GateRuntime::new(cpts, Arc::new(DirectGate), CompartmentId(0));
        for (idx, &(a, r)) in calls.as_slice().iter().enumerate() {
            rt2.cross(&mut m2, CompartmentId(1), a, r, |_, _| Ok(idx))
                .unwrap();
        }
        assert_eq!(m1.clock().cycles(), m2.clock().cycles());
        assert_eq!(rt1.stats(), rt2.stats());
        assert_eq!(rt1.stats().crossings, 3);
        assert_eq!(rt1.stats().bytes_marshalled, 152);
    }

    #[test]
    fn batch_stops_at_first_error_and_restores_caller() {
        for on in [true, false] {
            let mut m = Machine::with_defaults();
            let cpts = two_compartments(&mut m);
            let mut rt = GateRuntime::new(cpts, Arc::new(DirectGate), CompartmentId(0));
            rt.set_batch_enabled(on);
            let err = rt
                .cross_batch(
                    &mut m,
                    CompartmentId(1),
                    &CallVec::uniform(4, 8, 8),
                    |_, _, idx| {
                        if idx == 2 {
                            Err(Fault::OutOfMemory { requested_pages: 1 })
                        } else {
                            Ok(idx)
                        }
                    },
                )
                .unwrap_err();
            assert!(matches!(err, Fault::OutOfMemory { .. }));
            assert_eq!(rt.current(), CompartmentId(0));
            // The failing call still completed its exit path, like `cross`.
            assert_eq!(rt.stats().crossings, 3);
        }
    }

    #[test]
    fn batch_until_early_stop_keeps_stopping_result() {
        for on in [true, false] {
            let mut m = Machine::with_defaults();
            let cpts = two_compartments(&mut m);
            let mut rt = GateRuntime::new(cpts, Arc::new(DirectGate), CompartmentId(0));
            rt.set_batch_enabled(on);
            let out = rt
                .cross_batch_until(
                    &mut m,
                    CompartmentId(1),
                    &CallVec::uniform(8, 4, 4),
                    |_, _, idx| Ok(idx),
                    |_, _, idx, _| Ok(idx < 2),
                )
                .unwrap();
            assert_eq!(out, vec![0, 1, 2]);
            assert_eq!(rt.stats().crossings, 3);
            assert_eq!(rt.current(), CompartmentId(0));
        }
    }

    #[test]
    fn batch_records_size_histogram_per_mechanism() {
        let mut m = Machine::with_defaults();
        let cpts = two_compartments(&mut m);
        let mut rt = GateRuntime::new(cpts, Arc::new(DirectGate), CompartmentId(0));
        rt.cross_batch(
            &mut m,
            CompartmentId(1),
            &CallVec::uniform(4, 0, 0),
            |_, _, _| Ok(()),
        )
        .unwrap();
        rt.cross_batch(
            &mut m,
            CompartmentId(0),
            &CallVec::uniform(2, 0, 0),
            |_, _, _| Ok(()),
        )
        .unwrap();
        // Empty batches leave no histogram entry.
        rt.cross_batch(&mut m, CompartmentId(1), &CallVec::new(), |_, _, _| Ok(()))
            .unwrap();
        let cross = rt
            .trace()
            .batch_hist(GateMechanism::DirectCall.label())
            .unwrap();
        // Both batches used the direct-call label (DirectGate is the
        // default pair gate here too), so sizes 4 and 2 land together.
        assert_eq!(cross.count(), 2);
        assert_eq!(cross.sum(), 6);
    }

    #[test]
    fn nested_batches_restore_compartments() {
        let mut m = Machine::with_defaults();
        let cpts = two_compartments(&mut m);
        let mut rt = GateRuntime::new(cpts, Arc::new(DirectGate), CompartmentId(0));
        rt.cross_batch(
            &mut m,
            CompartmentId(1),
            &CallVec::uniform(2, 0, 0),
            |m, rt, _| {
                assert_eq!(rt.current(), CompartmentId(1));
                let inner = rt.cross_batch(
                    m,
                    CompartmentId(0),
                    &CallVec::uniform(3, 0, 0),
                    |_, rt, i| {
                        assert_eq!(rt.current(), CompartmentId(0));
                        Ok(i)
                    },
                )?;
                assert_eq!(inner, vec![0, 1, 2]);
                assert_eq!(rt.current(), CompartmentId(1));
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(rt.current(), CompartmentId(0));
        assert_eq!(rt.stats().crossings, 8);
    }
}
