//! The FlexOS build system: from an image configuration to a validated
//! compartmentalization plan.
//!
//! "FlexOS's build system extends Unikraft's to allow specifying how many
//! compartments the resulting image should have, how they should be
//! isolated, and whether SH techniques should be applied to one or
//! multiple of these." (paper §2)
//!
//! [`plan`] consumes an [`ImageConfig`] (libraries + specs + requested
//! hardening + manual or automatic placement + isolation backend) and
//! produces an [`ImagePlan`]: the compartment assignment, per-compartment
//! hardening, and a validation report enforcing the paper's backend
//! constraints (MPK key budget, MPK's scheduler/MM trust requirement, the
//! VM backend's per-compartment allocator/scheduler requirement, …).
//! Isolation backends then *instantiate* the plan on a simulated machine
//! (see the `flexos-backends` crate).

use crate::compat::{color, violations, CompatCache, IncompatGraph};
use crate::gate::GateMechanism;
use crate::spec::model::LibSpec;
use crate::spec::transform::{apply_sh, Analysis, ShSet};
use std::fmt;

/// The isolation backend an image is built against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendChoice {
    /// No isolation: every compartment boundary is a function call
    /// (the paper's baseline configurations).
    None,
    /// Intel MPK, shared stacks (ERIM-like).
    MpkShared,
    /// Intel MPK, per-compartment switched stacks (Hodor-like).
    MpkSwitched,
    /// One VM per compartment, RPC over inter-VM notifications.
    VmRpc,
    /// CHERI capabilities: per-compartment capability reach, sealed
    /// capabilities as gates (heterogeneous-hardware extension).
    Cheri,
}

impl BackendChoice {
    /// The gate mechanism this backend instantiates between compartments.
    pub fn mechanism(self) -> GateMechanism {
        match self {
            BackendChoice::None => GateMechanism::DirectCall,
            BackendChoice::MpkShared => GateMechanism::MpkSharedStack,
            BackendChoice::MpkSwitched => GateMechanism::MpkSwitchedStack,
            BackendChoice::VmRpc => GateMechanism::VmRpc,
            BackendChoice::Cheri => GateMechanism::Cheri,
        }
    }

    /// Whether this backend provides an actual protection-domain switch.
    pub fn isolates(self) -> bool {
        !matches!(self, BackendChoice::None)
    }
}

impl fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mechanism().label())
    }
}

/// The hypervisor the image runs on (affects baseline per-packet costs;
/// the paper's Xen numbers are lower because "Unikraft [is] not optimized
/// for this hypervisor").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Hypervisor {
    /// KVM (the paper's primary platform).
    #[default]
    Kvm,
    /// Xen (used for the VM/EPT backend in the paper).
    Xen,
}

/// Functional role of a micro-library inside the unikernel, used for
/// backend trust checks and kernel wiring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LibRole {
    /// The application itself (iperf, Redis, …).
    App,
    /// The network stack.
    NetStack,
    /// The scheduler micro-library.
    Scheduler,
    /// The memory manager / allocator micro-library.
    MemoryManager,
    /// The standard C library (semaphores live here — §4's Redis finding).
    LibC,
    /// Device drivers (virtio-net, …).
    Driver,
    /// Anything else.
    Other,
}

/// One library's build configuration.
#[derive(Debug, Clone)]
pub struct LibraryConfig {
    /// The library's safety metadata.
    pub spec: LibSpec,
    /// Static-analysis results available for SH transformations.
    pub analysis: Analysis,
    /// Hardening requested for this library.
    pub sh: ShSet,
    /// Manual compartment placement (`None` = derive automatically).
    pub compartment: Option<usize>,
    /// Functional role.
    pub role: LibRole,
}

impl LibraryConfig {
    /// A library with no hardening and automatic placement.
    pub fn new(spec: LibSpec, role: LibRole) -> Self {
        Self {
            spec,
            analysis: Analysis::default(),
            sh: ShSet::none(),
            compartment: None,
            role,
        }
    }

    /// Sets the hardening set.
    #[must_use]
    pub fn with_sh(mut self, sh: ShSet) -> Self {
        self.sh = sh;
        self
    }

    /// Pins the library into compartment `c`.
    #[must_use]
    pub fn in_compartment(mut self, c: usize) -> Self {
        self.compartment = Some(c);
        self
    }

    /// Attaches analysis results.
    #[must_use]
    pub fn with_analysis(mut self, analysis: Analysis) -> Self {
        self.analysis = analysis;
        self
    }

    /// The spec as seen by the compatibility analysis: the declared spec
    /// rewritten by the requested hardening.
    pub fn effective_spec(&self) -> LibSpec {
        apply_sh(&self.spec, &self.sh, &self.analysis)
    }
}

/// A complete image configuration.
#[derive(Debug, Clone)]
pub struct ImageConfig {
    /// Image name (used in reports).
    pub name: String,
    /// The micro-libraries composing the image.
    pub libraries: Vec<LibraryConfig>,
    /// The isolation backend.
    pub backend: BackendChoice,
    /// The hypervisor underneath.
    pub hypervisor: Hypervisor,
    /// Use a dedicated memory allocator per compartment ("FlexOS can be
    /// configured to use separate memory allocators per compartment to
    /// avoid such overheads when only a subset of compartments are
    /// hardened", §3). Forced on by the VM backend.
    pub dedicated_allocators: bool,
}

impl ImageConfig {
    /// Starts a configuration with no libraries.
    pub fn new(name: impl Into<String>, backend: BackendChoice) -> Self {
        Self {
            name: name.into(),
            libraries: Vec::new(),
            backend,
            hypervisor: Hypervisor::default(),
            dedicated_allocators: false,
        }
    }

    /// Adds a library.
    #[must_use]
    pub fn with_library(mut self, lib: LibraryConfig) -> Self {
        self.libraries.push(lib);
        self
    }

    /// Selects the hypervisor.
    #[must_use]
    pub fn on(mut self, hv: Hypervisor) -> Self {
        self.hypervisor = hv;
        self
    }

    /// Enables per-compartment allocators.
    #[must_use]
    pub fn with_dedicated_allocators(mut self) -> Self {
        self.dedicated_allocators = true;
        self
    }

    /// Index of the first library with `role`, if any.
    pub fn find_role(&self, role: LibRole) -> Option<usize> {
        self.libraries.iter().position(|l| l.role == role)
    }
}

/// A build-stopping configuration error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildError(pub String);

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "image build error: {}", self.0)
    }
}

impl std::error::Error for BuildError {}

/// Validation findings that do not stop the build.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// Security-relevant observations the user should review.
    pub warnings: Vec<String>,
}

/// A validated compartmentalization plan, ready for backend
/// instantiation.
#[derive(Debug, Clone)]
pub struct ImagePlan {
    /// The originating configuration.
    pub config: ImageConfig,
    /// Compartment index per library (aligned with `config.libraries`).
    pub compartment_of: Vec<usize>,
    /// Number of compartments.
    pub num_compartments: usize,
    /// Human-readable compartment names (joined member names).
    pub compartment_names: Vec<String>,
    /// Per-compartment hardening: the union of member libraries'
    /// requested SH ("each compartment can be individually hardened by
    /// using SH without code changes", §2).
    pub compartment_sh: Vec<ShSet>,
    /// Non-fatal findings.
    pub report: ValidationReport,
}

impl ImagePlan {
    /// Compartment of the first library with `role`.
    pub fn compartment_of_role(&self, role: LibRole) -> Option<usize> {
        self.config.find_role(role).map(|i| self.compartment_of[i])
    }

    /// Library indices in compartment `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        (0..self.compartment_of.len())
            .filter(|&i| self.compartment_of[i] == c)
            .collect()
    }

    /// Whether any compartment needs an instrumented allocator.
    pub fn any_instrumented_allocator(&self) -> bool {
        self.compartment_sh.iter().any(ShSet::instruments_malloc)
    }

    /// Renders a human-readable build report (what `make menuconfig`-era
    /// tooling would print at the end of a FlexOS build).
    pub fn render_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "image `{}` — backend: {}, hypervisor: {:?}, allocators: {}",
            self.config.name,
            self.config.backend,
            self.config.hypervisor,
            if self.config.dedicated_allocators {
                "per-compartment"
            } else {
                "global"
            },
        );
        for c in 0..self.num_compartments {
            let members: Vec<&str> = self
                .members(c)
                .into_iter()
                .map(|i| self.config.libraries[i].spec.name.as_str())
                .collect();
            let _ = writeln!(
                out,
                "  compartment {c}: [{}] sh={}",
                members.join(", "),
                self.compartment_sh[c],
            );
        }
        for w in &self.report.warnings {
            let _ = writeln!(out, "  warning: {w}");
        }
        out
    }
}

/// Maximum compartments the MPK backends support: 16 hardware keys minus
/// key 0, which FlexOS reserves for the shared domain.
pub const MPK_MAX_COMPARTMENTS: usize = 15;

/// Derives and validates the compartmentalization plan for `config`.
///
/// Placement: libraries with a manual `compartment` keep it; the rest are
/// placed automatically by coloring the incompatibility graph of their
/// *effective* (SH-rewritten) specs, using colors disjoint from the
/// manual ones. With `BackendChoice::None`, everything collapses into a
/// single compartment (there is no protection domain to split over) and
/// incompatibilities surface as warnings.
pub fn plan(config: ImageConfig) -> Result<ImagePlan, BuildError> {
    plan_impl(config, None)
}

/// [`plan`] with pairwise compatibility checks answered from a shared
/// [`CompatCache`]. Exploration drivers that plan many closely related
/// configurations (same libraries, different hardening toggles or
/// backends) pass one cache through every call so each distinct
/// effective-spec pair is checked once. The resulting plan is identical
/// to [`plan`]'s.
pub fn plan_with_cache(config: ImageConfig, cache: &CompatCache) -> Result<ImagePlan, BuildError> {
    let effective: Vec<LibSpec> = config
        .libraries
        .iter()
        .map(|l| l.effective_spec())
        .collect();
    let fps: Vec<u64> = effective.iter().map(CompatCache::fingerprint).collect();
    plan_core(config, &effective, &fps, Some(cache))
}

/// [`plan_with_cache`] for callers that already hold the effective specs
/// and their fingerprints (the exploration engine assembles them from a
/// small per-library variant table instead of re-deriving them per
/// candidate). `effective`/`fps` MUST be index-aligned with
/// `config.libraries` and equal to what [`plan_with_cache`] would
/// compute.
pub(crate) fn plan_prepared(
    config: ImageConfig,
    effective: &[LibSpec],
    fps: &[u64],
    cache: &CompatCache,
) -> Result<ImagePlan, BuildError> {
    plan_core(config, effective, fps, Some(cache))
}

fn plan_impl(config: ImageConfig, cache: Option<&CompatCache>) -> Result<ImagePlan, BuildError> {
    debug_assert!(cache.is_none(), "cached callers go through plan_with_cache");
    let effective: Vec<LibSpec> = config
        .libraries
        .iter()
        .map(|l| l.effective_spec())
        .collect();
    plan_core(config, &effective, &[], cache)
}

fn plan_core(
    config: ImageConfig,
    effective: &[LibSpec],
    fps: &[u64],
    cache: Option<&CompatCache>,
) -> Result<ImagePlan, BuildError> {
    if config.libraries.is_empty() {
        return Err(BuildError("an image needs at least one library".into()));
    }
    let n = config.libraries.len();
    let graph = match cache {
        Some(cache) => cache.graph_keyed(effective, fps),
        None => std::sync::Arc::new(IncompatGraph::build(effective)),
    };
    let mut warnings = Vec::new();

    let mut compartment_of = vec![usize::MAX; n];

    if config.backend == BackendChoice::None {
        // No protection domains: manual placements are kept as *logical*
        // compartments (they still select allocator topology and gate
        // placeholders compile to direct calls), everything else lands in
        // compartment 0. Conflicts are reported — nothing enforces them.
        for (i, lib) in config.libraries.iter().enumerate() {
            compartment_of[i] = lib.compartment.unwrap_or(0);
        }
        for ((i, j), v) in &graph.reasons {
            warnings.push(format!(
                "no isolation: {} and {} are unprotected from each other: {}",
                graph.names[*i],
                graph.names[*j],
                v.first().map(|v| v.to_string()).unwrap_or_default()
            ));
        }
        // Compact numbering.
        let mut remap = std::collections::BTreeMap::new();
        for c in compartment_of.iter_mut() {
            let next = remap.len();
            *c = *remap.entry(*c).or_insert(next);
        }
    } else {
        // Manual placements first.
        let mut next_color = 0usize;
        for (i, lib) in config.libraries.iter().enumerate() {
            if let Some(c) = lib.compartment {
                compartment_of[i] = c;
                next_color = next_color.max(c + 1);
            }
        }
        // Validate manual placements against the incompatibility graph.
        for i in 0..n {
            #[allow(clippy::needless_range_loop)] // symmetric pair scan
            for j in i + 1..n {
                if compartment_of[i] != usize::MAX
                    && compartment_of[i] == compartment_of[j]
                    && graph.graph.has_edge(i, j)
                {
                    warnings.push(format!(
                        "manual placement co-locates incompatible {} and {}: {}",
                        graph.names[i],
                        graph.names[j],
                        graph
                            .why(i, j)
                            .and_then(|v| v.first())
                            .map(|v| v.to_string())
                            .unwrap_or_default()
                    ));
                }
            }
        }
        // Automatic placement for the rest: color the subgraph, offsetting
        // past manual colors, then merge auto colors into compatible
        // manual compartments when possible.
        let auto: Vec<usize> = (0..n)
            .filter(|&i| compartment_of[i] == usize::MAX)
            .collect();
        if !auto.is_empty() {
            let mut sub = crate::compat::Graph::new(auto.len());
            for (a, &i) in auto.iter().enumerate() {
                for (b, &j) in auto.iter().enumerate().take(a) {
                    if graph.graph.has_edge(i, j) {
                        sub.add_edge(a, b);
                    }
                }
            }
            let coloring = match cache {
                Some(cache) => cache.coloring(&sub),
                None => color(&sub),
            };
            // Try to fold each auto color class into an existing manual
            // compartment if every member is compatible with every manual
            // member of that compartment.
            for class in coloring.groups() {
                let mut target: Option<usize> = None;
                'manual: for c in 0..next_color {
                    for &a in &class {
                        let i = auto[a];
                        for (j, &cpt) in compartment_of.iter().enumerate() {
                            if cpt == c && graph.graph.has_edge(i, j) {
                                continue 'manual;
                            }
                        }
                    }
                    target = Some(c);
                    break;
                }
                let c = target.unwrap_or_else(|| {
                    let c = next_color;
                    next_color += 1;
                    c
                });
                for &a in &class {
                    compartment_of[auto[a]] = c;
                }
            }
        }
        // Compact compartment numbering (manual gaps allowed in input).
        let mut remap = std::collections::BTreeMap::new();
        for c in compartment_of.iter_mut() {
            let next = remap.len();
            *c = *remap.entry(*c).or_insert(next);
        }
    }

    let num_compartments = compartment_of.iter().copied().max().unwrap_or(0) + 1;

    // Backend constraints.
    match config.backend {
        BackendChoice::Cheri => {
            // The simulation reuses per-page tags to model capability
            // reachability, so it shares the 15-compartment budget; real
            // CHERI has no such limit.
            if num_compartments > MPK_MAX_COMPARTMENTS {
                return Err(BuildError(format!(
                    "the CHERI simulation supports at most {MPK_MAX_COMPARTMENTS}                      compartments, plan needs {num_compartments}"
                )));
            }
        }
        BackendChoice::MpkShared | BackendChoice::MpkSwitched => {
            if num_compartments > MPK_MAX_COMPARTMENTS {
                return Err(BuildError(format!(
                    "MPK supports at most {MPK_MAX_COMPARTMENTS} compartments, plan needs \
                     {num_compartments}"
                )));
            }
            // §3: "the scheduler and MM have to be trusted when using MPK".
            for role in [LibRole::Scheduler, LibRole::MemoryManager] {
                if let Some(i) = config.find_role(role) {
                    let lib = &config.libraries[i];
                    let trusted = !effective[i].mem.write.is_star();
                    if !trusted {
                        warnings.push(format!(
                            "MPK backend: {} ({role:?}) is adversarial but must be trusted \
                             (holds PKRU state / page tables); verify it or enable SH",
                            lib.spec.name
                        ));
                    }
                }
            }
        }
        BackendChoice::VmRpc => {
            // §3: "each compartment needs its own memory allocator and
            // scheduler, so these have to be trusted".
        }
        BackendChoice::None => {}
    }

    let dedicated_allocators =
        config.dedicated_allocators || config.backend == BackendChoice::VmRpc;
    let mut config = config;
    config.dedicated_allocators = dedicated_allocators;

    let mut compartment_names = vec![String::new(); num_compartments];
    let mut compartment_sh = vec![ShSet::none(); num_compartments];
    for (i, lib) in config.libraries.iter().enumerate() {
        let c = compartment_of[i];
        if !compartment_names[c].is_empty() {
            compartment_names[c].push('+');
        }
        compartment_names[c].push_str(&lib.spec.name);
        compartment_sh[c].0.extend(lib.sh.0.iter().copied());
    }

    Ok(ImagePlan {
        config,
        compartment_of,
        num_compartments,
        compartment_names,
        compartment_sh,
        report: ValidationReport { warnings },
    })
}

/// Re-checks an existing plan after manual edits: returns every violation
/// among co-located effective specs ("our future work aims to automate
/// checking the safety of a proposed configuration", §7 — this is that
/// checker).
pub fn audit(plan: &ImagePlan) -> Vec<String> {
    let effective: Vec<LibSpec> = plan
        .config
        .libraries
        .iter()
        .map(|l| l.effective_spec())
        .collect();
    let mut findings = Vec::new();
    for i in 0..effective.len() {
        for j in 0..effective.len() {
            if i != j && plan.compartment_of[i] == plan.compartment_of[j] {
                for v in violations(&effective[i], &effective[j]) {
                    findings.push(v.to_string());
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::transform::{suggest_sh, ShMechanism};

    fn sched_lib() -> LibraryConfig {
        LibraryConfig::new(LibSpec::verified_scheduler(), LibRole::Scheduler)
    }

    fn raw_lib(name: &str) -> LibraryConfig {
        LibraryConfig::new(LibSpec::unsafe_c(name), LibRole::Other)
    }

    #[test]
    fn auto_placement_separates_incompatible_libraries() {
        let cfg = ImageConfig::new("test", BackendChoice::MpkShared)
            .with_library(sched_lib())
            .with_library(raw_lib("rawlib"));
        let p = plan(cfg).unwrap();
        assert_eq!(p.num_compartments, 2);
        assert_ne!(p.compartment_of[0], p.compartment_of[1]);
        assert!(audit(&p).is_empty());
    }

    #[test]
    fn hardening_allows_colocation() {
        let raw = LibSpec::unsafe_c("rawlib");
        let sh = suggest_sh(&raw);
        let cfg = ImageConfig::new("test", BackendChoice::MpkShared)
            .with_library(sched_lib())
            .with_library(
                LibraryConfig::new(raw, LibRole::Other)
                    .with_sh(sh)
                    .with_analysis(Analysis::well_behaved()),
            );
        let p = plan(cfg).unwrap();
        assert_eq!(p.num_compartments, 1);
        assert!(audit(&p).is_empty());
    }

    #[test]
    fn no_isolation_collapses_and_warns() {
        let cfg = ImageConfig::new("baseline", BackendChoice::None)
            .with_library(sched_lib())
            .with_library(raw_lib("rawlib"));
        let p = plan(cfg).unwrap();
        assert_eq!(p.num_compartments, 1);
        assert!(!p.report.warnings.is_empty());
        // The audit surfaces the ungranted accesses too.
        assert!(!audit(&p).is_empty());
    }

    #[test]
    fn manual_placement_is_respected_and_checked() {
        let cfg = ImageConfig::new("manual", BackendChoice::MpkSwitched)
            .with_library(sched_lib().in_compartment(0))
            .with_library(raw_lib("rawlib").in_compartment(0));
        let p = plan(cfg).unwrap();
        assert_eq!(p.num_compartments, 1);
        assert!(p.report.warnings.iter().any(|w| w.contains("co-locates")));
        assert!(!audit(&p).is_empty());
    }

    #[test]
    fn auto_libs_fold_into_compatible_manual_compartments() {
        let mut other_sched = LibSpec::verified_scheduler();
        other_sched.name = "uklock".into();
        let cfg = ImageConfig::new("fold", BackendChoice::MpkShared)
            .with_library(sched_lib().in_compartment(0))
            .with_library(LibraryConfig::new(other_sched, LibRole::Other));
        let p = plan(cfg).unwrap();
        assert_eq!(p.num_compartments, 1);
    }

    #[test]
    fn mpk_key_budget_is_enforced() {
        let mut cfg = ImageConfig::new("big", BackendChoice::MpkShared);
        for i in 0..16 {
            cfg = cfg.with_library(raw_lib(&format!("lib{i}")).in_compartment(i));
        }
        assert!(plan(cfg).is_err());
    }

    #[test]
    fn mpk_warns_on_untrusted_scheduler() {
        let cfg = ImageConfig::new("bad-sched", BackendChoice::MpkShared).with_library(
            LibraryConfig::new(LibSpec::unsafe_c("csched"), LibRole::Scheduler),
        );
        let p = plan(cfg).unwrap();
        assert!(p
            .report
            .warnings
            .iter()
            .any(|w| w.contains("must be trusted")));
    }

    #[test]
    fn mpk_trusts_hardened_scheduler() {
        let csched = LibSpec::unsafe_c("csched");
        let cfg = ImageConfig::new("sh-sched", BackendChoice::MpkShared).with_library(
            LibraryConfig::new(csched, LibRole::Scheduler)
                .with_sh(ShSet::of([ShMechanism::Asan]))
                .with_analysis(Analysis::well_behaved()),
        );
        let p = plan(cfg).unwrap();
        assert!(p.report.warnings.is_empty());
    }

    #[test]
    fn vm_backend_forces_dedicated_allocators() {
        let cfg = ImageConfig::new("vm", BackendChoice::VmRpc)
            .with_library(sched_lib())
            .with_library(raw_lib("rawlib"));
        let p = plan(cfg).unwrap();
        assert!(p.config.dedicated_allocators);
    }

    #[test]
    fn compartment_metadata_is_consistent() {
        let cfg = ImageConfig::new("meta", BackendChoice::MpkShared)
            .with_library(sched_lib())
            .with_library(raw_lib("rawlib").with_sh(ShSet::of([ShMechanism::Ubsan])));
        let p = plan(cfg).unwrap();
        assert_eq!(p.compartment_names.len(), p.num_compartments);
        assert_eq!(p.compartment_sh.len(), p.num_compartments);
        let raw_c = p.compartment_of[1];
        assert!(p.compartment_sh[raw_c].has(ShMechanism::Ubsan));
        assert!(p.members(raw_c).contains(&1));
        assert_eq!(
            p.compartment_of_role(LibRole::Scheduler),
            Some(p.compartment_of[0])
        );
    }

    #[test]
    fn empty_image_is_rejected() {
        assert!(plan(ImageConfig::new("empty", BackendChoice::None)).is_err());
    }

    #[test]
    fn cached_plan_matches_uncached() {
        let cache = CompatCache::new();
        for backend in [
            BackendChoice::None,
            BackendChoice::MpkShared,
            BackendChoice::VmRpc,
        ] {
            let cfg = ImageConfig::new("cmp", backend)
                .with_library(sched_lib())
                .with_library(raw_lib("rawlib"))
                .with_library(raw_lib("other").with_sh(ShSet::of([ShMechanism::Asan])));
            let plain = plan(cfg.clone()).unwrap();
            let cached = plan_with_cache(cfg, &cache).unwrap();
            assert_eq!(cached.compartment_of, plain.compartment_of);
            assert_eq!(cached.num_compartments, plain.num_compartments);
            assert_eq!(cached.compartment_names, plain.compartment_names);
            assert_eq!(cached.compartment_sh, plain.compartment_sh);
            assert_eq!(cached.report, plain.report);
        }
        // Three backends over the same specs: later plans reuse verdicts.
        assert!(cache.stats().hits > 0);
    }

    #[test]
    fn render_report_summarizes_the_plan() {
        let cfg = ImageConfig::new("rpt", BackendChoice::MpkShared)
            .with_library(sched_lib())
            .with_library(raw_lib("rawlib").with_sh(ShSet::of([ShMechanism::Asan])));
        let p = plan(cfg).unwrap();
        let r = p.render_report();
        assert!(r.contains("image `rpt`"));
        assert!(r.contains("MPK (shared stack)"));
        assert!(r.contains("compartment 0"));
        assert!(r.contains("compartment 1"));
        assert!(r.contains("asan"));
    }
}
