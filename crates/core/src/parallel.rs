//! Deterministic work-stealing fan-out over an indexed work list.
//!
//! The exploration drivers ([`crate::explore::explore`],
//! [`crate::compat::variants::enumerate_deployments_with`]) parallelize
//! an embarrassingly parallel map `0..n -> T`. Workers claim the next
//! index from a shared atomic counter (cheap dynamic load balancing —
//! the std-only equivalent of a work-stealing deque for an indexed work
//! list), stream `(index, result)` pairs over a channel, and the caller
//! sorts by index before returning. The output is therefore the *exact*
//! sequence a serial `(0..n).map(f)` would produce, regardless of thread
//! count or scheduling — byte-identical parallel and serial results.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Maps `f` over `0..n` on up to `threads` scoped worker threads,
/// returning results in index order. `threads <= 1` (or trivial `n`)
/// runs serially with no thread or channel overhead.
pub(crate) fn par_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let threads = threads.min(n);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let (next, f) = (&next, &f);
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n || tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut tagged: Vec<(usize, T)> = rx.iter().collect();
        tagged.sort_by_key(|&(i, _)| i);
        tagged.into_iter().map(|(_, v)| v).collect()
    })
}

/// Resolves a requested thread count: `0` means "auto" (the machine's
/// available parallelism), and the result is clamped to the work size so
/// no idle threads are spawned.
pub(crate) fn effective_threads(requested: usize, work: usize) -> usize {
    let t = if requested == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        requested
    };
    t.clamp(1, work.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_index_order() {
        for threads in [1, 2, 8] {
            let out = par_map_indexed(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_singleton_work() {
        assert_eq!(par_map_indexed(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, 8, |i| i + 7), vec![7]);
    }

    #[test]
    fn effective_threads_resolves_auto_and_clamps() {
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert_eq!(effective_threads(4, 0), 1);
    }
}
