//! On-demand API wrappers: trust-boundary checks only where needed.
//!
//! The paper's §5 ("Isolation alone is not enough"): kernel-internal
//! APIs were never designed as trust boundaries, so compartmentalizing
//! them requires argument/precondition checks at the gate — but "we only
//! want to execute such checks when they are really needed, depending on
//! the instantiated kernel configuration: if component A is together
//! with component B in the same trust domain, then checks are not
//! necessary, but they are when component C (in another domain) calls
//! component B. … by enriching all microlibraries with API metadata, the
//! build system could possess sufficient information to automatically
//! generate wrappers that would include or exclude these checks
//! on-demand."
//!
//! [`generate_wrappers`] implements exactly that: for every exposed API
//! function of every library in a plan, it determines — from the
//! libraries' `[Call]` metadata and the compartment assignment — whether
//! any caller sits in a *different* compartment, and emits a wrapper
//! descriptor with checks enabled or elided accordingly.

use crate::build::ImagePlan;
use crate::spec::model::CallBehavior;
use flexos_machine::CostTable;
use std::collections::BTreeMap;

/// Why a wrapper's checks are enabled (or not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckReason {
    /// Every caller shares the callee's compartment: checks elided.
    AllCallersTrusted,
    /// These libraries call from foreign compartments: checks included.
    ForeignCallers(Vec<String>),
    /// A library with `Call(*)` lives in a foreign compartment — any
    /// entry point may be invoked from outside: checks included.
    ArbitraryForeignCaller(String),
    /// Nothing calls this function at all (dead entry point or external
    /// API surface): checks elided, flagged for review.
    NoKnownCallers,
}

impl CheckReason {
    /// Whether this reason enables the checks.
    pub fn checks_enabled(&self) -> bool {
        matches!(
            self,
            CheckReason::ForeignCallers(_) | CheckReason::ArbitraryForeignCaller(_)
        )
    }
}

/// One generated wrapper descriptor.
#[derive(Debug, Clone)]
pub struct ApiWrapper {
    /// The library exposing the function.
    pub lib: String,
    /// The function name.
    pub func: String,
    /// The human-readable preconditions to check (from the `[API]`
    /// metadata; empty means the wrapper only validates the crossing).
    pub preconditions: Vec<String>,
    /// Why checks are on or off.
    pub reason: CheckReason,
}

impl ApiWrapper {
    /// Whether this wrapper executes its checks at runtime.
    pub fn checks_enabled(&self) -> bool {
        self.reason.checks_enabled()
    }

    /// Cycle cost of the wrapper per call: free when elided, otherwise
    /// one contract check per precondition plus argument validation.
    pub fn glue_cycles(&self, costs: &CostTable) -> u64 {
        if !self.checks_enabled() {
            return 0;
        }
        // Argument validation (bounds/ownership of marshalled args) +
        // one verified-style check per declared precondition.
        costs.ubsan_check * 2 + costs.verified_contract_check / 4 * self.preconditions.len() as u64
    }
}

/// The generated wrapper set for one image, indexed by `(lib, func)`.
#[derive(Debug, Clone, Default)]
pub struct WrapperTable {
    wrappers: BTreeMap<(String, String), ApiWrapper>,
}

impl WrapperTable {
    /// Looks up the wrapper for `lib::func`.
    pub fn get(&self, lib: &str, func: &str) -> Option<&ApiWrapper> {
        self.wrappers.get(&(lib.to_string(), func.to_string()))
    }

    /// Iterates over all wrappers.
    pub fn iter(&self) -> impl Iterator<Item = &ApiWrapper> {
        self.wrappers.values()
    }

    /// Number of wrappers with checks enabled.
    pub fn enabled_count(&self) -> usize {
        self.wrappers
            .values()
            .filter(|w| w.checks_enabled())
            .count()
    }

    /// Total wrappers generated.
    pub fn len(&self) -> usize {
        self.wrappers.len()
    }

    /// Whether no wrappers were generated.
    pub fn is_empty(&self) -> bool {
        self.wrappers.is_empty()
    }
}

/// Generates the wrapper table for a compartmentalization plan.
pub fn generate_wrappers(plan: &ImagePlan) -> WrapperTable {
    let libs = &plan.config.libraries;
    let mut table = WrapperTable::default();
    for (callee_idx, callee) in libs.iter().enumerate() {
        let callee_cpt = plan.compartment_of[callee_idx];
        for api in &callee.spec.api {
            let mut foreign: Vec<String> = Vec::new();
            let mut arbitrary_foreign: Option<String> = None;
            let mut any_caller = false;
            for (caller_idx, caller) in libs.iter().enumerate() {
                if caller_idx == callee_idx {
                    continue;
                }
                let caller_cpt = plan.compartment_of[caller_idx];
                match &caller.effective_spec().call {
                    CallBehavior::Star => {
                        any_caller = true;
                        if caller_cpt != callee_cpt && arbitrary_foreign.is_none() {
                            arbitrary_foreign = Some(caller.spec.name.clone());
                        }
                    }
                    CallBehavior::Funcs(funcs) => {
                        let calls_this = funcs
                            .iter()
                            .any(|f| f.lib == callee.spec.name && f.func == api.name);
                        if calls_this {
                            any_caller = true;
                            if caller_cpt != callee_cpt {
                                foreign.push(caller.spec.name.clone());
                            }
                        }
                    }
                }
            }
            let reason = if !foreign.is_empty() {
                CheckReason::ForeignCallers(foreign)
            } else if let Some(lib) = arbitrary_foreign {
                CheckReason::ArbitraryForeignCaller(lib)
            } else if any_caller {
                CheckReason::AllCallersTrusted
            } else {
                CheckReason::NoKnownCallers
            };
            table.wrappers.insert(
                (callee.spec.name.clone(), api.name.clone()),
                ApiWrapper {
                    lib: callee.spec.name.clone(),
                    func: api.name.clone(),
                    preconditions: api.preconditions.clone(),
                    reason,
                },
            );
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{plan, BackendChoice, ImageConfig, LibRole, LibraryConfig};
    use crate::spec::model::{CallBehavior, LibSpec, MemBehavior, Requires};
    use crate::spec::transform::Analysis;

    fn caller_of(name: &str, target_lib: &str, target_fn: &str) -> LibraryConfig {
        let spec = LibSpec {
            name: name.into(),
            mem: MemBehavior::well_behaved(),
            call: CallBehavior::funcs([(target_lib, target_fn)]),
            api: Vec::new(),
            requires: Requires::unconstrained(),
        };
        LibraryConfig::new(spec, LibRole::Other)
    }

    fn sched() -> LibraryConfig {
        LibraryConfig::new(LibSpec::verified_scheduler(), LibRole::Scheduler)
    }

    #[test]
    fn same_compartment_callers_elide_checks() {
        // Everything in one domain: no trust boundary, no checks.
        let cfg = ImageConfig::new("same", BackendChoice::None)
            .with_library(sched().in_compartment(0))
            .with_library(
                caller_of("netstack", "uksched_verified", "thread_add").in_compartment(0),
            );
        let p = plan(cfg).unwrap();
        let t = generate_wrappers(&p);
        let w = t.get("uksched_verified", "thread_add").unwrap();
        assert_eq!(w.reason, CheckReason::AllCallersTrusted);
        assert!(!w.checks_enabled());
        assert_eq!(w.glue_cycles(&CostTable::default()), 0);
    }

    #[test]
    fn cross_compartment_callers_enable_checks() {
        let cfg = ImageConfig::new("split", BackendChoice::MpkShared)
            .with_library(sched().in_compartment(0))
            .with_library(
                caller_of("netstack", "uksched_verified", "thread_add").in_compartment(1),
            );
        let p = plan(cfg).unwrap();
        let t = generate_wrappers(&p);
        let w = t.get("uksched_verified", "thread_add").unwrap();
        assert_eq!(
            w.reason,
            CheckReason::ForeignCallers(vec!["netstack".into()])
        );
        assert!(w.checks_enabled());
        // The paper example's precondition rides along.
        assert_eq!(w.preconditions, vec!["thread not already added"]);
        assert!(w.glue_cycles(&CostTable::default()) > 0);
    }

    #[test]
    fn uncalled_entry_points_are_flagged_not_checked() {
        let cfg = ImageConfig::new("dead", BackendChoice::MpkShared)
            .with_library(sched().in_compartment(0))
            .with_library(
                caller_of("netstack", "uksched_verified", "thread_add").in_compartment(1),
            );
        let p = plan(cfg).unwrap();
        let t = generate_wrappers(&p);
        // `thread_rm` is exposed but nobody calls it.
        let w = t.get("uksched_verified", "thread_rm").unwrap();
        assert_eq!(w.reason, CheckReason::NoKnownCallers);
        assert!(!w.checks_enabled());
    }

    #[test]
    fn star_callers_in_foreign_compartments_force_checks_everywhere() {
        let raw = LibraryConfig::new(LibSpec::unsafe_c("rawlib"), LibRole::Other);
        let cfg = ImageConfig::new("star", BackendChoice::MpkShared)
            .with_library(sched().in_compartment(0))
            .with_library(raw.in_compartment(1));
        let p = plan(cfg).unwrap();
        let t = generate_wrappers(&p);
        for func in ["thread_add", "thread_rm", "yield"] {
            let w = t.get("uksched_verified", func).unwrap();
            assert!(
                matches!(w.reason, CheckReason::ArbitraryForeignCaller(_)),
                "{func}: {:?}",
                w.reason
            );
        }
        assert_eq!(t.enabled_count(), 3);
    }

    #[test]
    fn hardening_the_star_caller_relaxes_the_wrappers() {
        // CFI bounds the caller's call graph; if the bounded graph never
        // reaches the scheduler, the wrappers relax (effective specs are
        // used, mirroring the compatibility analysis).
        let raw = LibSpec::unsafe_c("rawlib");
        let sh = crate::spec::transform::suggest_sh(&raw);
        let analysis = Analysis {
            call_targets: Some([crate::spec::model::FuncRef::new("alloc", "malloc")].into()),
            ..Analysis::well_behaved()
        };
        let cfg = ImageConfig::new("cfi", BackendChoice::MpkShared)
            .with_library(sched().in_compartment(0))
            .with_library(
                LibraryConfig::new(raw, LibRole::Other)
                    .with_sh(sh)
                    .with_analysis(analysis)
                    .in_compartment(1),
            );
        let p = plan(cfg).unwrap();
        let t = generate_wrappers(&p);
        let w = t.get("uksched_verified", "thread_add").unwrap();
        assert!(!w.checks_enabled(), "{:?}", w.reason);
    }

    #[test]
    fn the_verified_scheduler_image_generates_a_full_table() {
        let cfg = ImageConfig::new("full", BackendChoice::MpkShared)
            .with_library(sched())
            .with_library(LibraryConfig::new(
                LibSpec::unsafe_c("rawlib"),
                LibRole::Other,
            ));
        let p = plan(cfg).unwrap();
        let t = generate_wrappers(&p);
        assert_eq!(t.len(), 3); // the scheduler's three entry points
        assert!(!t.is_empty());
        assert!(t.iter().all(|w| w.lib == "uksched_verified"));
    }
}
