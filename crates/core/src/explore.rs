//! Design-space exploration: the paper's two §2 objectives.
//!
//! * **Objective A** — "Given a performance target and a set of predefined
//!   compartments, find the combination of isolation primitives that
//!   maximizes security within a certain performance budget."
//! * **Objective B** — "Given a set of safety requirements, find a
//!   compliant instantiation that yields the best performance."
//!
//! Exploration needs two models:
//!
//! * a **cost model** ([`estimate_request_cycles`]) that predicts the
//!   per-request cycle cost of a candidate image from a workload's
//!   [`CallProfile`] (how often each library calls each other library per
//!   request, and how much base work each library does) — crossings
//!   between co-located libraries cost a function call, crossings between
//!   compartments cost the backend's gate, and hardened compartments pay
//!   SH multipliers on their base work;
//! * a **security model** ([`security_score`]) that scores how many of
//!   the image's *threatened* library pairs are actually protected —
//!   either by a protection-domain boundary or by hardening that rewrites
//!   the offender's spec into compatibility.

use crate::build::{plan, BackendChoice, ImageConfig, ImagePlan};
use crate::compat::violations;
use crate::spec::model::LibSpec;
use crate::spec::transform::{suggest_sh, ShMechanism, ShSet};
use flexos_machine::CostTable;
use std::collections::BTreeMap;

/// Per-request workload profile over the image's libraries.
#[derive(Debug, Clone, Default)]
pub struct CallProfile {
    /// `(caller, callee, calls-per-request)` for cross-library calls.
    pub calls: Vec<(String, String, u64)>,
    /// Average marshalled bytes per cross-library call.
    pub arg_bytes: u64,
    /// Base per-request work per library, in cycles (uninstrumented).
    pub base_cycles: BTreeMap<String, u64>,
}

impl CallProfile {
    /// Adds a call edge.
    #[must_use]
    pub fn with_calls(mut self, from: &str, to: &str, per_request: u64) -> Self {
        self.calls.push((from.into(), to.into(), per_request));
        self
    }

    /// Sets a library's base work.
    #[must_use]
    pub fn with_work(mut self, lib: &str, cycles: u64) -> Self {
        self.base_cycles.insert(lib.into(), cycles);
        self
    }
}

/// Multiplier (in percent) that a hardening set applies to a library's
/// base work. Calibrated against the paper's Table 1 per-component
/// slowdowns (SH costs concentrate in allocation-heavy and
/// pointer-chasing code).
pub fn sh_overhead_percent(sh: &ShSet) -> u64 {
    let mut pct = 0u64;
    for m in &sh.0 {
        pct += match m {
            ShMechanism::Asan => 90,
            ShMechanism::Dfi => 60,
            ShMechanism::Cfi => 10,
            ShMechanism::StackProtector => 3,
            ShMechanism::SafeStack => 5,
            ShMechanism::Ubsan => 25,
        };
    }
    pct
}

/// One-way gate cost in cycles for a backend under `costs`.
pub fn gate_cost(backend: BackendChoice, costs: &CostTable, arg_bytes: u64) -> u64 {
    match backend {
        BackendChoice::None => costs.func_call,
        BackendChoice::MpkShared => costs.mpk_shared_gate(),
        BackendChoice::MpkSwitched => costs.mpk_switched_gate() + costs.copy_cost(arg_bytes),
        BackendChoice::VmRpc => costs.vm_rpc_gate() + costs.copy_cost(arg_bytes),
        BackendChoice::Cheri => costs.cheri_gate,
    }
}

/// Estimates the per-request cycle cost of `plan` under `profile`.
pub fn estimate_request_cycles(
    plan: &ImagePlan,
    profile: &CallProfile,
    costs: &CostTable,
) -> u64 {
    let index: BTreeMap<&str, usize> = plan
        .config
        .libraries
        .iter()
        .enumerate()
        .map(|(i, l)| (l.spec.name.as_str(), i))
        .collect();

    let mut total = 0u64;
    // Base work with SH multipliers (per compartment hardening).
    for (lib, &cycles) in &profile.base_cycles {
        let Some(&i) = index.get(lib.as_str()) else { continue };
        let c = plan.compartment_of[i];
        let pct = sh_overhead_percent(&plan.compartment_sh[c]);
        total += cycles + cycles * pct / 100;
    }
    // Crossings.
    for (from, to, count) in &profile.calls {
        let (Some(&fi), Some(&ti)) = (index.get(from.as_str()), index.get(to.as_str())) else {
            continue;
        };
        let per_call = if plan.compartment_of[fi] == plan.compartment_of[ti] {
            costs.func_call
        } else {
            // Round trip: enter + exit.
            2 * gate_cost(plan.config.backend, costs, profile.arg_bytes)
        };
        total += per_call * count;
    }
    total
}

/// Scores how well `plan` protects its libraries, in `[0, 1]`.
///
/// Every ordered pair `(victim, offender)` where the *plain* (pre-SH)
/// offender spec violates the victim's grants is a threat. A threat is
/// *mitigated* when the pair sits in different compartments of an
/// isolating backend, or when the offender's hardening rewrites its spec
/// into compatibility. The score is the mitigated fraction (1.0 when
/// there are no threats).
pub fn security_score(plan: &ImagePlan) -> f64 {
    let plain: Vec<LibSpec> = plan.config.libraries.iter().map(|l| l.spec.clone()).collect();
    let effective: Vec<LibSpec> =
        plan.config.libraries.iter().map(|l| l.effective_spec()).collect();
    let mut threats = 0u32;
    let mut mitigated = 0u32;
    for v in 0..plain.len() {
        for o in 0..plain.len() {
            if v == o {
                continue;
            }
            if violations(&plain[v], &plain[o]).is_empty() {
                continue;
            }
            threats += 1;
            let separated = plan.config.backend.isolates()
                && plan.compartment_of[v] != plan.compartment_of[o];
            let hardened_away = violations(&effective[v], &effective[o]).is_empty();
            if separated || hardened_away {
                mitigated += 1;
            }
        }
    }
    if threats == 0 {
        1.0
    } else {
        f64::from(mitigated) / f64::from(threats)
    }
}

/// One evaluated point in the design space.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The candidate's plan.
    pub plan: ImagePlan,
    /// Predicted per-request cycles.
    pub cycles: u64,
    /// Security score in `[0, 1]`.
    pub security: f64,
    /// Short description (backend + hardened libs).
    pub label: String,
}

/// Generates the candidate space for a base configuration: every backend
/// in `backends` × every subset of `{no SH, suggested SH}` per library
/// that has a suggestion (bounded like the paper's variant enumeration).
pub fn candidates(
    base: &ImageConfig,
    backends: &[BackendChoice],
    profile: &CallProfile,
    costs: &CostTable,
) -> Vec<Candidate> {
    // Which libraries have a meaningful SH suggestion?
    let suggestions: Vec<Option<ShSet>> = base
        .libraries
        .iter()
        .map(|l| {
            let s = suggest_sh(&l.spec);
            (!s.is_empty()).then_some(s)
        })
        .collect();
    let toggleable: Vec<usize> =
        (0..base.libraries.len()).filter(|&i| suggestions[i].is_some()).collect();
    assert!(toggleable.len() <= 12, "SH toggle space too large");

    let mut out = Vec::new();
    for &backend in backends {
        for mask in 0..(1u32 << toggleable.len()) {
            let mut cfg = base.clone();
            cfg.backend = backend;
            let mut hardened_names = Vec::new();
            for (bit, &i) in toggleable.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    cfg.libraries[i].sh = suggestions[i].clone().expect("toggleable");
                    hardened_names.push(cfg.libraries[i].spec.name.clone());
                }
            }
            let Ok(p) = plan(cfg) else { continue };
            let cycles = estimate_request_cycles(&p, profile, costs);
            let security = security_score(&p);
            let label = if hardened_names.is_empty() {
                format!("{backend}")
            } else {
                format!("{backend} + SH({})", hardened_names.join(","))
            };
            out.push(Candidate { plan: p, cycles, security, label });
        }
    }
    out
}

/// Objective A: the most secure candidate whose predicted cost fits in
/// `budget_cycles` (ties broken by speed). `None` if nothing fits.
pub fn max_security_within_budget(
    mut cands: Vec<Candidate>,
    budget_cycles: u64,
) -> Option<Candidate> {
    cands.retain(|c| c.cycles <= budget_cycles);
    cands.into_iter().max_by(|a, b| {
        // Higher security wins; on ties, fewer cycles wins (so `a` with
        // fewer cycles must compare greater).
        a.security
            .partial_cmp(&b.security)
            .expect("scores are finite")
            .then(b.cycles.cmp(&a.cycles))
    })
}

/// Objective B: the fastest candidate with `security >= floor`.
pub fn fastest_meeting_security(mut cands: Vec<Candidate>, floor: f64) -> Option<Candidate> {
    cands.retain(|c| c.security >= floor);
    cands.into_iter().min_by_key(|c| c.cycles)
}

/// The Pareto frontier over (cycles ↓, security ↑), sorted by cycles.
pub fn pareto_frontier(mut cands: Vec<Candidate>) -> Vec<Candidate> {
    cands.sort_by_key(|c| c.cycles);
    let mut out: Vec<Candidate> = Vec::new();
    let mut best_security = f64::NEG_INFINITY;
    for c in cands {
        if c.security > best_security {
            best_security = c.security;
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{LibRole, LibraryConfig};
    use crate::spec::transform::Analysis;

    fn base_config() -> ImageConfig {
        let sched = LibraryConfig::new(LibSpec::verified_scheduler(), LibRole::Scheduler);
        let net = LibraryConfig::new(LibSpec::unsafe_c("netstack"), LibRole::NetStack)
            .with_analysis(Analysis::well_behaved());
        ImageConfig::new("explore", BackendChoice::None).with_library(sched).with_library(net)
    }

    fn profile() -> CallProfile {
        CallProfile::default()
            .with_calls("netstack", "uksched_verified", 4)
            .with_work("netstack", 2000)
            .with_work("uksched_verified", 400)
    }

    #[test]
    fn isolation_costs_more_than_colocation() {
        let costs = CostTable::default();
        let mut none = base_config();
        none.backend = BackendChoice::None;
        let p_none = plan(none).unwrap();
        let mut mpk = base_config();
        mpk.backend = BackendChoice::MpkShared;
        let p_mpk = plan(mpk).unwrap();
        let c_none = estimate_request_cycles(&p_none, &profile(), &costs);
        let c_mpk = estimate_request_cycles(&p_mpk, &profile(), &costs);
        assert!(c_mpk > c_none);
    }

    #[test]
    fn vm_rpc_is_the_most_expensive_backend() {
        let costs = CostTable::default();
        let cycles: Vec<u64> = [BackendChoice::MpkShared, BackendChoice::MpkSwitched, BackendChoice::VmRpc]
            .iter()
            .map(|&b| {
                let mut cfg = base_config();
                cfg.backend = b;
                estimate_request_cycles(&plan(cfg).unwrap(), &profile(), &costs)
            })
            .collect();
        assert!(cycles[0] < cycles[1]);
        assert!(cycles[1] < cycles[2]);
    }

    #[test]
    fn sh_multiplies_base_work() {
        let costs = CostTable::default();
        let mut cfg = base_config();
        cfg.libraries[1].sh = suggest_sh(&cfg.libraries[1].spec);
        let hardened = estimate_request_cycles(&plan(cfg).unwrap(), &profile(), &costs);
        let plainc = estimate_request_cycles(&plan(base_config()).unwrap(), &profile(), &costs);
        assert!(hardened > plainc);
    }

    #[test]
    fn security_score_rises_with_isolation() {
        let p_none = plan(base_config()).unwrap();
        let mut mpk = base_config();
        mpk.backend = BackendChoice::MpkShared;
        let p_mpk = plan(mpk).unwrap();
        assert!(security_score(&p_none) < security_score(&p_mpk));
        assert!((security_score(&p_mpk) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hardening_mitigates_without_isolation() {
        let mut cfg = base_config();
        cfg.libraries[1].sh = suggest_sh(&cfg.libraries[1].spec);
        let p = plan(cfg).unwrap();
        // netstack hardened => its threats to the scheduler are mitigated.
        assert!(security_score(&p) > security_score(&plan(base_config()).unwrap()));
    }

    #[test]
    fn candidate_space_covers_backends_and_sh_toggles() {
        let costs = CostTable::default();
        let cands = candidates(
            &base_config(),
            &[BackendChoice::None, BackendChoice::MpkShared],
            &profile(),
            &costs,
        );
        // 2 backends × 2 SH-toggles (netstack only) = 4.
        assert_eq!(cands.len(), 4);
    }

    #[test]
    fn objective_a_maximizes_security_under_budget() {
        let costs = CostTable::default();
        let cands = candidates(
            &base_config(),
            &[BackendChoice::None, BackendChoice::MpkShared, BackendChoice::VmRpc],
            &profile(),
            &costs,
        );
        let generous = max_security_within_budget(cands.clone(), u64::MAX).unwrap();
        assert!((generous.security - 1.0).abs() < 1e-9);
        // A tiny budget admits only the cheapest (insecure) baseline.
        let cheapest = cands.iter().map(|c| c.cycles).min().unwrap();
        let tight = max_security_within_budget(cands.clone(), cheapest).unwrap();
        assert_eq!(tight.cycles, cheapest);
        assert!(max_security_within_budget(cands, 0).is_none());
    }

    #[test]
    fn objective_b_finds_fastest_compliant() {
        let costs = CostTable::default();
        let cands = candidates(
            &base_config(),
            &[BackendChoice::None, BackendChoice::MpkShared, BackendChoice::MpkSwitched],
            &profile(),
            &costs,
        );
        let best = fastest_meeting_security(cands.clone(), 1.0).unwrap();
        assert!((best.security - 1.0).abs() < 1e-9);
        // Every other fully secure candidate is at least as slow.
        for c in &cands {
            if (c.security - 1.0).abs() < 1e-9 {
                assert!(best.cycles <= c.cycles);
            }
        }
    }

    #[test]
    fn pareto_frontier_is_monotone() {
        let costs = CostTable::default();
        let cands = candidates(
            &base_config(),
            &[BackendChoice::None, BackendChoice::MpkShared, BackendChoice::VmRpc],
            &profile(),
            &costs,
        );
        let front = pareto_frontier(cands);
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[0].cycles <= w[1].cycles);
            assert!(w[0].security < w[1].security);
        }
    }
}
