//! Design-space exploration: the paper's two §2 objectives.
//!
//! * **Objective A** — "Given a performance target and a set of predefined
//!   compartments, find the combination of isolation primitives that
//!   maximizes security within a certain performance budget."
//! * **Objective B** — "Given a set of safety requirements, find a
//!   compliant instantiation that yields the best performance."
//!
//! Exploration needs two models:
//!
//! * a **cost model** ([`estimate_request_cycles`]) that predicts the
//!   per-request cycle cost of a candidate image from a workload's
//!   [`CallProfile`] (how often each library calls each other library per
//!   request, and how much base work each library does) — crossings
//!   between co-located libraries cost a function call, crossings between
//!   compartments cost the backend's gate, and hardened compartments pay
//!   SH multipliers on their base work;
//! * a **security model** ([`security_score`]) that scores how many of
//!   the image's *threatened* library pairs are actually protected —
//!   either by a protection-domain boundary or by hardening that rewrites
//!   the offender's spec into compatibility.

use crate::build::{plan_prepared, BackendChoice, ImageConfig, ImagePlan};
use crate::compat::{violations, CacheStats, CompatCache};
use crate::parallel::{effective_threads, par_map_indexed};
use crate::spec::model::LibSpec;
use crate::spec::transform::{suggest_sh, ShMechanism, ShSet};
use flexos_machine::CostTable;
use std::collections::BTreeMap;

/// Per-request workload profile over the image's libraries.
#[derive(Debug, Clone, Default)]
pub struct CallProfile {
    /// `(caller, callee, calls-per-request)` for cross-library calls.
    pub calls: Vec<(String, String, u64)>,
    /// Average marshalled bytes per cross-library call.
    pub arg_bytes: u64,
    /// Base per-request work per library, in cycles (uninstrumented).
    pub base_cycles: BTreeMap<String, u64>,
}

impl CallProfile {
    /// Adds a call edge.
    #[must_use]
    pub fn with_calls(mut self, from: &str, to: &str, per_request: u64) -> Self {
        self.calls.push((from.into(), to.into(), per_request));
        self
    }

    /// Sets a library's base work.
    #[must_use]
    pub fn with_work(mut self, lib: &str, cycles: u64) -> Self {
        self.base_cycles.insert(lib.into(), cycles);
        self
    }
}

/// Multiplier (in percent) that a hardening set applies to a library's
/// base work. Calibrated against the paper's Table 1 per-component
/// slowdowns (SH costs concentrate in allocation-heavy and
/// pointer-chasing code).
pub fn sh_overhead_percent(sh: &ShSet) -> u64 {
    let mut pct = 0u64;
    for m in &sh.0 {
        pct += match m {
            ShMechanism::Asan => 90,
            ShMechanism::Dfi => 60,
            ShMechanism::Cfi => 10,
            ShMechanism::StackProtector => 3,
            ShMechanism::SafeStack => 5,
            ShMechanism::Ubsan => 25,
        };
    }
    pct
}

/// One-way gate cost in cycles for a backend under `costs`.
pub fn gate_cost(backend: BackendChoice, costs: &CostTable, arg_bytes: u64) -> u64 {
    match backend {
        BackendChoice::None => costs.func_call,
        BackendChoice::MpkShared => costs.mpk_shared_gate(),
        BackendChoice::MpkSwitched => costs.mpk_switched_gate() + costs.copy_cost(arg_bytes),
        BackendChoice::VmRpc => costs.vm_rpc_gate() + costs.copy_cost(arg_bytes),
        BackendChoice::Cheri => costs.cheri_gate,
    }
}

/// Estimates the per-request cycle cost of `plan` under `profile`.
pub fn estimate_request_cycles(plan: &ImagePlan, profile: &CallProfile, costs: &CostTable) -> u64 {
    let index: BTreeMap<&str, usize> = plan
        .config
        .libraries
        .iter()
        .enumerate()
        .map(|(i, l)| (l.spec.name.as_str(), i))
        .collect();

    let mut total = 0u64;
    // Base work with SH multipliers (per compartment hardening).
    for (lib, &cycles) in &profile.base_cycles {
        let Some(&i) = index.get(lib.as_str()) else {
            continue;
        };
        let c = plan.compartment_of[i];
        let pct = sh_overhead_percent(&plan.compartment_sh[c]);
        total += cycles + cycles * pct / 100;
    }
    // Crossings.
    for (from, to, count) in &profile.calls {
        let (Some(&fi), Some(&ti)) = (index.get(from.as_str()), index.get(to.as_str())) else {
            continue;
        };
        let per_call = if plan.compartment_of[fi] == plan.compartment_of[ti] {
            costs.func_call
        } else {
            // Round trip: enter + exit.
            2 * gate_cost(plan.config.backend, costs, profile.arg_bytes)
        };
        total += per_call * count;
    }
    total
}

/// Scores how well `plan` protects its libraries, in `[0, 1]`.
///
/// Every ordered pair `(victim, offender)` where the *plain* (pre-SH)
/// offender spec violates the victim's grants is a threat. A threat is
/// *mitigated* when the pair sits in different compartments of an
/// isolating backend, or when the offender's hardening rewrites its spec
/// into compatibility. The score is the mitigated fraction (1.0 when
/// there are no threats).
pub fn security_score(plan: &ImagePlan) -> f64 {
    security_score_impl(plan, None)
}

/// [`security_score`] with pairwise checks answered from a shared
/// [`CompatCache`]. Scores are identical to the uncached function's.
pub fn security_score_cached(plan: &ImagePlan, cache: &CompatCache) -> f64 {
    security_score_impl(plan, Some(cache))
}

fn security_score_impl(plan: &ImagePlan, cache: Option<&CompatCache>) -> f64 {
    let plain: Vec<LibSpec> = plan
        .config
        .libraries
        .iter()
        .map(|l| l.spec.clone())
        .collect();
    let effective: Vec<LibSpec> = plan
        .config
        .libraries
        .iter()
        .map(|l| l.effective_spec())
        .collect();
    let clear = |victim: &LibSpec, offender: &LibSpec| match cache {
        Some(c) => c.violations(victim, offender).is_empty(),
        None => violations(victim, offender).is_empty(),
    };
    let mut threats = 0u32;
    let mut mitigated = 0u32;
    for v in 0..plain.len() {
        for o in 0..plain.len() {
            if v == o {
                continue;
            }
            if clear(&plain[v], &plain[o]) {
                continue;
            }
            threats += 1;
            let separated =
                plan.config.backend.isolates() && plan.compartment_of[v] != plan.compartment_of[o];
            let hardened_away = clear(&effective[v], &effective[o]);
            if separated || hardened_away {
                mitigated += 1;
            }
        }
    }
    if threats == 0 {
        1.0
    } else {
        f64::from(mitigated) / f64::from(threats)
    }
}

/// One evaluated point in the design space.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The candidate's plan.
    pub plan: ImagePlan,
    /// Predicted per-request cycles.
    pub cycles: u64,
    /// Security score in `[0, 1]`.
    pub security: f64,
    /// Short description (backend + hardened libs).
    pub label: String,
}

/// Options controlling how the design space is walked.
///
/// The only knob today is `threads`. Determinism is unconditional: for
/// any thread count the candidate list is byte-identical to the serial
/// one (work items are index-tagged and re-sorted into enumeration
/// order), so parallelism is purely a wall-clock optimization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreOptions {
    /// Worker threads for candidate evaluation. `1` (the default) runs
    /// serially on the calling thread; `0` means "auto" — use the
    /// machine's available parallelism. Counts above the number of work
    /// items are clamped.
    pub threads: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        Self { threads: 1 }
    }
}

impl ExploreOptions {
    /// Serial exploration (the default).
    pub fn serial() -> Self {
        Self::default()
    }

    /// Auto-sized parallel exploration.
    pub fn auto() -> Self {
        Self { threads: 0 }
    }

    /// Sets the worker thread count (`0` = auto).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// The outcome of [`explore`]: the evaluated candidates (in the
/// deterministic enumeration order) plus the compatibility cache's
/// counters for that run.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Every planable candidate, ordered by `(backend index, SH mask)`.
    pub candidates: Vec<Candidate>,
    /// Hit/miss/occupancy of the run's shared [`CompatCache`].
    pub cache_stats: CacheStats,
}

impl Exploration {
    /// Objective A over this exploration's candidates.
    pub fn max_security_within_budget(&self, budget_cycles: u64) -> Option<Candidate> {
        max_security_within_budget(self.candidates.clone(), budget_cycles)
    }

    /// Objective B over this exploration's candidates.
    pub fn fastest_meeting_security(&self, floor: f64) -> Option<Candidate> {
        fastest_meeting_security(self.candidates.clone(), floor)
    }

    /// The Pareto frontier over this exploration's candidates.
    pub fn pareto_frontier(&self) -> Vec<Candidate> {
        pareto_frontier(self.candidates.clone())
    }
}

/// Generates the candidate space for a base configuration: every backend
/// in `backends` × every subset of `{no SH, suggested SH}` per library
/// that has a suggestion (bounded like the paper's variant enumeration).
///
/// Serial convenience wrapper over [`explore`]; one fresh cache per call.
pub fn candidates(
    base: &ImageConfig,
    backends: &[BackendChoice],
    profile: &CallProfile,
    costs: &CostTable,
) -> Vec<Candidate> {
    explore(base, backends, profile, costs, &ExploreOptions::default()).candidates
}

/// The exploration engine behind [`candidates`]: walks the
/// backend × SH-mask space on `opts.threads` workers, evaluating every
/// combination against one shared [`CompatCache`].
///
/// The per-candidate work is hoisted aggressively, because the design
/// space is a product of a *small* set of ingredients:
///
/// * each library has exactly two possible effective specs (plain and
///   suggested-SH), computed and fingerprinted once up front, so a
///   candidate's spec set is assembled by table lookup;
/// * the *threat* pairs of the security model depend only on the plain
///   specs, so they are computed once for the whole exploration;
/// * graphs, colorings, and pairwise verdicts are memoized in the cache
///   across candidates (the same SH mask yields the same graph under
///   every backend).
///
/// Work item `idx = backend_index * 2^|toggleable| + mask` is evaluated
/// independently; results are collected, sorted by `idx`, and unplanable
/// combinations dropped — exactly what a serial nested loop over
/// `(backend, mask)` produces, so parallel and serial runs return
/// byte-identical candidate lists.
pub fn explore(
    base: &ImageConfig,
    backends: &[BackendChoice],
    profile: &CallProfile,
    costs: &CostTable,
    opts: &ExploreOptions,
) -> Exploration {
    // Which libraries have a meaningful SH suggestion?
    let suggestions: Vec<Option<ShSet>> = base
        .libraries
        .iter()
        .map(|l| {
            let s = suggest_sh(&l.spec);
            (!s.is_empty()).then_some(s)
        })
        .collect();
    let toggleable: Vec<usize> = (0..base.libraries.len())
        .filter(|&i| suggestions[i].is_some())
        .collect();
    assert!(toggleable.len() <= 12, "SH toggle space too large");

    let cache = CompatCache::new();

    // Per-library variant table: the effective spec (and fingerprint)
    // with and without the suggested hardening.
    struct LibVariants {
        plain: LibSpec,
        plain_fp: u64,
        hardened: Option<(LibSpec, u64)>,
    }
    let variants: Vec<LibVariants> = base
        .libraries
        .iter()
        .zip(&suggestions)
        .map(|(l, sugg)| {
            let plain = l.effective_spec();
            let plain_fp = CompatCache::fingerprint(&plain);
            let hardened = sugg.as_ref().map(|sh| {
                let mut cfg = l.clone();
                cfg.sh = sh.clone();
                let spec = cfg.effective_spec();
                let fp = CompatCache::fingerprint(&spec);
                (spec, fp)
            });
            LibVariants {
                plain,
                plain_fp,
                hardened,
            }
        })
        .collect();

    // Threats depend only on the declared (pre-SH) specs, so the pair
    // list is shared by every candidate.
    let declared: Vec<&LibSpec> = base.libraries.iter().map(|l| &l.spec).collect();
    let declared_fps: Vec<u64> = declared
        .iter()
        .map(|s| CompatCache::fingerprint(s))
        .collect();
    let mut threats: Vec<(usize, usize)> = Vec::new();
    for v in 0..declared.len() {
        for o in 0..declared.len() {
            if v != o
                && !cache
                    .violations_keyed(declared_fps[v], declared[v], declared_fps[o], declared[o])
                    .is_empty()
            {
                threats.push((v, o));
            }
        }
    }

    let n_masks = 1usize << toggleable.len();
    let work = backends.len() * n_masks;
    let threads = effective_threads(opts.threads, work);

    let evaluated = par_map_indexed(work, threads, |idx| {
        let backend = backends[idx / n_masks];
        let mask = (idx % n_masks) as u32;
        let mut cfg = base.clone();
        cfg.backend = backend;
        let mut hardened_names = Vec::new();
        for (bit, &i) in toggleable.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                cfg.libraries[i].sh = suggestions[i].clone().expect("toggleable");
                hardened_names.push(cfg.libraries[i].spec.name.clone());
            }
        }
        // Assemble the candidate's effective specs from the table.
        let on = |i: usize| {
            toggleable
                .iter()
                .position(|&t| t == i)
                .is_some_and(|bit| mask & (1 << bit) != 0)
        };
        let (effective, fps): (Vec<LibSpec>, Vec<u64>) = variants
            .iter()
            .enumerate()
            .map(|(i, v)| match (&v.hardened, on(i)) {
                (Some((spec, fp)), true) => (spec.clone(), *fp),
                _ => (v.plain.clone(), v.plain_fp),
            })
            .unzip();
        let p = plan_prepared(cfg, &effective, &fps, &cache).ok()?;
        let cycles = estimate_request_cycles(&p, profile, costs);
        let security = hoisted_security_score(&p, &threats, &effective, &fps, &cache);
        let label = if hardened_names.is_empty() {
            format!("{backend}")
        } else {
            format!("{backend} + SH({})", hardened_names.join(","))
        };
        Some(Candidate {
            plan: p,
            cycles,
            security,
            label,
        })
    });

    Exploration {
        candidates: evaluated.into_iter().flatten().collect(),
        cache_stats: cache.stats(),
    }
}

/// [`security_score`] specialized to the exploration hot loop: the
/// threat pairs are precomputed (they depend only on declared specs) and
/// the per-candidate effective specs arrive pre-fingerprinted. Produces
/// bit-identical scores to [`security_score`] on the same plan.
fn hoisted_security_score(
    plan: &ImagePlan,
    threats: &[(usize, usize)],
    effective: &[LibSpec],
    fps: &[u64],
    cache: &CompatCache,
) -> f64 {
    if threats.is_empty() {
        return 1.0;
    }
    let isolates = plan.config.backend.isolates();
    let mut mitigated = 0u32;
    for &(v, o) in threats {
        let separated = isolates && plan.compartment_of[v] != plan.compartment_of[o];
        if separated
            || cache
                .violations_keyed(fps[v], &effective[v], fps[o], &effective[o])
                .is_empty()
        {
            mitigated += 1;
        }
    }
    f64::from(mitigated) / f64::from(threats.len() as u32)
}

/// Objective A: the most secure candidate whose predicted cost fits in
/// `budget_cycles` (ties broken by speed). `None` if nothing fits.
pub fn max_security_within_budget(
    mut cands: Vec<Candidate>,
    budget_cycles: u64,
) -> Option<Candidate> {
    cands.retain(|c| c.cycles <= budget_cycles);
    cands.into_iter().max_by(|a, b| {
        // Higher security wins; on ties, fewer cycles wins (so `a` with
        // fewer cycles must compare greater).
        a.security
            .partial_cmp(&b.security)
            .expect("scores are finite")
            .then(b.cycles.cmp(&a.cycles))
    })
}

/// Objective B: the fastest candidate with `security >= floor`.
pub fn fastest_meeting_security(mut cands: Vec<Candidate>, floor: f64) -> Option<Candidate> {
    cands.retain(|c| c.security >= floor);
    cands.into_iter().min_by_key(|c| c.cycles)
}

/// The Pareto frontier over (cycles ↓, security ↑), sorted by cycles.
pub fn pareto_frontier(mut cands: Vec<Candidate>) -> Vec<Candidate> {
    cands.sort_by_key(|c| c.cycles);
    let mut out: Vec<Candidate> = Vec::new();
    let mut best_security = f64::NEG_INFINITY;
    for c in cands {
        if c.security > best_security {
            best_security = c.security;
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{plan, LibRole, LibraryConfig};
    use crate::spec::transform::Analysis;

    fn base_config() -> ImageConfig {
        let sched = LibraryConfig::new(LibSpec::verified_scheduler(), LibRole::Scheduler);
        let net = LibraryConfig::new(LibSpec::unsafe_c("netstack"), LibRole::NetStack)
            .with_analysis(Analysis::well_behaved());
        ImageConfig::new("explore", BackendChoice::None)
            .with_library(sched)
            .with_library(net)
    }

    fn profile() -> CallProfile {
        CallProfile::default()
            .with_calls("netstack", "uksched_verified", 4)
            .with_work("netstack", 2000)
            .with_work("uksched_verified", 400)
    }

    #[test]
    fn isolation_costs_more_than_colocation() {
        let costs = CostTable::default();
        let mut none = base_config();
        none.backend = BackendChoice::None;
        let p_none = plan(none).unwrap();
        let mut mpk = base_config();
        mpk.backend = BackendChoice::MpkShared;
        let p_mpk = plan(mpk).unwrap();
        let c_none = estimate_request_cycles(&p_none, &profile(), &costs);
        let c_mpk = estimate_request_cycles(&p_mpk, &profile(), &costs);
        assert!(c_mpk > c_none);
    }

    #[test]
    fn vm_rpc_is_the_most_expensive_backend() {
        let costs = CostTable::default();
        let cycles: Vec<u64> = [
            BackendChoice::MpkShared,
            BackendChoice::MpkSwitched,
            BackendChoice::VmRpc,
        ]
        .iter()
        .map(|&b| {
            let mut cfg = base_config();
            cfg.backend = b;
            estimate_request_cycles(&plan(cfg).unwrap(), &profile(), &costs)
        })
        .collect();
        assert!(cycles[0] < cycles[1]);
        assert!(cycles[1] < cycles[2]);
    }

    #[test]
    fn sh_multiplies_base_work() {
        let costs = CostTable::default();
        let mut cfg = base_config();
        cfg.libraries[1].sh = suggest_sh(&cfg.libraries[1].spec);
        let hardened = estimate_request_cycles(&plan(cfg).unwrap(), &profile(), &costs);
        let plainc = estimate_request_cycles(&plan(base_config()).unwrap(), &profile(), &costs);
        assert!(hardened > plainc);
    }

    #[test]
    fn security_score_rises_with_isolation() {
        let p_none = plan(base_config()).unwrap();
        let mut mpk = base_config();
        mpk.backend = BackendChoice::MpkShared;
        let p_mpk = plan(mpk).unwrap();
        assert!(security_score(&p_none) < security_score(&p_mpk));
        assert!((security_score(&p_mpk) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hardening_mitigates_without_isolation() {
        let mut cfg = base_config();
        cfg.libraries[1].sh = suggest_sh(&cfg.libraries[1].spec);
        let p = plan(cfg).unwrap();
        // netstack hardened => its threats to the scheduler are mitigated.
        assert!(security_score(&p) > security_score(&plan(base_config()).unwrap()));
    }

    #[test]
    fn candidate_space_covers_backends_and_sh_toggles() {
        let costs = CostTable::default();
        let cands = candidates(
            &base_config(),
            &[BackendChoice::None, BackendChoice::MpkShared],
            &profile(),
            &costs,
        );
        // 2 backends × 2 SH-toggles (netstack only) = 4.
        assert_eq!(cands.len(), 4);
    }

    #[test]
    fn objective_a_maximizes_security_under_budget() {
        let costs = CostTable::default();
        let cands = candidates(
            &base_config(),
            &[
                BackendChoice::None,
                BackendChoice::MpkShared,
                BackendChoice::VmRpc,
            ],
            &profile(),
            &costs,
        );
        let generous = max_security_within_budget(cands.clone(), u64::MAX).unwrap();
        assert!((generous.security - 1.0).abs() < 1e-9);
        // A tiny budget admits only the cheapest (insecure) baseline.
        let cheapest = cands.iter().map(|c| c.cycles).min().unwrap();
        let tight = max_security_within_budget(cands.clone(), cheapest).unwrap();
        assert_eq!(tight.cycles, cheapest);
        assert!(max_security_within_budget(cands, 0).is_none());
    }

    #[test]
    fn objective_b_finds_fastest_compliant() {
        let costs = CostTable::default();
        let cands = candidates(
            &base_config(),
            &[
                BackendChoice::None,
                BackendChoice::MpkShared,
                BackendChoice::MpkSwitched,
            ],
            &profile(),
            &costs,
        );
        let best = fastest_meeting_security(cands.clone(), 1.0).unwrap();
        assert!((best.security - 1.0).abs() < 1e-9);
        // Every other fully secure candidate is at least as slow.
        for c in &cands {
            if (c.security - 1.0).abs() < 1e-9 {
                assert!(best.cycles <= c.cycles);
            }
        }
    }

    #[test]
    fn pareto_frontier_is_monotone() {
        let costs = CostTable::default();
        let cands = candidates(
            &base_config(),
            &[
                BackendChoice::None,
                BackendChoice::MpkShared,
                BackendChoice::VmRpc,
            ],
            &profile(),
            &costs,
        );
        let front = pareto_frontier(cands);
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[0].cycles <= w[1].cycles);
            assert!(w[0].security < w[1].security);
        }
    }
}
