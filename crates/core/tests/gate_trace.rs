//! Gate-crossing telemetry: exact per-mechanism counts through
//! [`GateRuntime::cross`], and histogram-bucket properties.

use flexos::gate::{CompartmentCtx, CompartmentId, DirectGate, Gate, GateMechanism, GateRuntime};
use flexos::spec::transform::ShSet;
use flexos_machine::{Machine, PageFlags, Pkru, ProtKey, Result, VcpuId, VmId};
use flexos_trace::{CycleHist, HIST_BUCKETS};
use proptest::prelude::*;
use std::sync::Arc;

/// A minimal backend gate that only charges cycles — enough to exercise
/// the trace paths for every [`GateMechanism`] without pulling the real
/// backends (which live above this crate in the dependency graph).
#[derive(Debug)]
struct StubGate {
    mechanism: GateMechanism,
    enter_cost: u64,
    exit_cost: u64,
}

impl Gate for StubGate {
    fn mechanism(&self) -> GateMechanism {
        self.mechanism
    }

    fn enter(
        &self,
        m: &mut Machine,
        _from: &CompartmentCtx,
        _to: &CompartmentCtx,
        _arg_bytes: u64,
    ) -> Result<()> {
        m.charge(self.enter_cost);
        Ok(())
    }

    fn exit(
        &self,
        m: &mut Machine,
        _callee: &CompartmentCtx,
        _caller: &CompartmentCtx,
        _ret_bytes: u64,
    ) -> Result<()> {
        m.charge(self.exit_cost);
        Ok(())
    }
}

fn two_compartments(m: &mut Machine) -> Vec<CompartmentCtx> {
    let heap0 = m
        .alloc_region(VmId(0), 4096, ProtKey(1), PageFlags::RW)
        .unwrap();
    let heap1 = m
        .alloc_region(VmId(0), 4096, ProtKey(2), PageFlags::RW)
        .unwrap();
    let ctx = |id: u16, name: &str, key: u8, heap| CompartmentCtx {
        id: CompartmentId(id),
        name: name.into(),
        vm: VmId(0),
        vcpu: VcpuId(0),
        pkru: Pkru::ALLOW_ALL,
        keys: vec![ProtKey(key)],
        sh: ShSet::none(),
        heap_base: heap,
        heap_size: 4096,
    };
    vec![ctx(0, "rest", 1, heap0), ctx(1, "net", 2, heap1)]
}

#[test]
fn each_mechanism_records_exact_crossing_counts() {
    for (mechanism, crossings) in [
        (GateMechanism::DirectCall, 3u64),
        (GateMechanism::MpkSharedStack, 5),
        (GateMechanism::MpkSwitchedStack, 7),
        (GateMechanism::VmRpc, 2),
        (GateMechanism::Cheri, 4),
    ] {
        let mut m = Machine::with_defaults();
        let cpts = two_compartments(&mut m);
        let gate = Arc::new(StubGate {
            mechanism,
            enter_cost: 120,
            exit_cost: 80,
        });
        let mut rt = GateRuntime::new(cpts, gate, CompartmentId(0));
        for _ in 0..crossings {
            rt.cross(&mut m, CompartmentId(1), 16, 8, |_, _| Ok(()))
                .unwrap();
        }
        let label = mechanism.label();
        assert_eq!(
            rt.trace().crossings(label, 0, 1),
            crossings,
            "{label}: 0 -> 1 count"
        );
        assert_eq!(rt.trace().crossings(label, 1, 0), 0, "{label}: reverse");
        assert_eq!(rt.trace().total_crossings(), crossings, "{label}: total");
        // Every crossing cost exactly enter + exit cycles, so the
        // mechanism histogram saw `crossings` identical samples.
        let hist = rt.trace().mechanism_hist(label).expect("hist exists");
        assert_eq!(hist.count(), crossings);
        assert_eq!(hist.min(), 200);
        assert_eq!(hist.max(), 200);
    }
}

#[test]
fn same_compartment_calls_count_as_direct_not_crossings() {
    let mut m = Machine::with_defaults();
    let cpts = two_compartments(&mut m);
    let mut rt = GateRuntime::new(cpts, Arc::new(DirectGate), CompartmentId(0));
    for _ in 0..6 {
        rt.cross(&mut m, CompartmentId(0), 8, 8, |_, _| Ok(()))
            .unwrap();
    }
    assert_eq!(rt.trace().direct_calls(), 6);
    assert_eq!(rt.trace().total_crossings(), 0);
    assert_eq!(
        rt.trace()
            .crossings(GateMechanism::DirectCall.label(), 0, 0),
        0
    );
    assert!(rt
        .trace()
        .mechanism_hist(GateMechanism::DirectCall.label())
        .is_none());
}

#[test]
fn nested_crossings_attribute_both_directions() {
    let mut m = Machine::with_defaults();
    let cpts = two_compartments(&mut m);
    let gate = Arc::new(StubGate {
        mechanism: GateMechanism::MpkSwitchedStack,
        enter_cost: 10,
        exit_cost: 10,
    });
    let mut rt = GateRuntime::new(cpts, gate, CompartmentId(0));
    rt.cross(&mut m, CompartmentId(1), 0, 0, |m, rt| {
        rt.cross(m, CompartmentId(0), 0, 0, |_, _| Ok(()))
    })
    .unwrap();
    let label = GateMechanism::MpkSwitchedStack.label();
    assert_eq!(rt.trace().crossings(label, 0, 1), 1);
    assert_eq!(rt.trace().crossings(label, 1, 0), 1);
}

proptest! {
    /// Cumulative bucket counts never decrease and always sum to the
    /// total: percentile readout depends on this monotonicity.
    #[test]
    fn histogram_buckets_are_monotone(values in prop::collection::vec(any::<u64>(), 1..200)) {
        let mut h = CycleHist::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let mut cumulative = 0u64;
        let mut prev = 0u64;
        for (i, &c) in h.buckets().iter().enumerate() {
            cumulative += c;
            prop_assert!(cumulative >= prev, "cumulative count decreased at bucket {}", i);
            prev = cumulative;
        }
        prop_assert_eq!(cumulative, values.len() as u64);
    }

    /// Percentiles are ordered and bounded by the observed extremes.
    #[test]
    fn histogram_percentiles_are_ordered(values in prop::collection::vec(any::<u64>(), 1..200)) {
        let mut h = CycleHist::new();
        for &v in &values {
            h.record(v);
        }
        let (p50, p90, p99) = h.quantiles();
        prop_assert!(p50 <= p90 && p90 <= p99);
        prop_assert!(p99 <= h.max());
        prop_assert!(p50 >= CycleHist::bucket_upper_bound(CycleHist::bucket_index(h.min()).saturating_sub(1)));
    }

    /// Every representable value lands in a bucket whose bounds contain it.
    #[test]
    fn bucket_index_respects_bounds(v in any::<u64>()) {
        let i = CycleHist::bucket_index(v);
        prop_assert!(i < HIST_BUCKETS);
        prop_assert!(v <= CycleHist::bucket_upper_bound(i));
        if i > 0 {
            prop_assert!(v > CycleHist::bucket_upper_bound(i - 1));
        }
    }
}
