//! Property tests for the FlexOS framework: spec round-trips, coloring
//! correctness/optimality, and SH-transformation monotonicity.

use flexos::build::{plan, BackendChoice, ImageConfig, LibRole, LibraryConfig};
use flexos::compat::{color, dsatur, exact, is_valid, violations, Graph, IncompatGraph};
use flexos::explore::security_score;
use flexos::spec::{
    apply_sh, parse, print, Analysis, ApiFunc, CallBehavior, FuncRef, Grant, GrantKind,
    GrantSubject, LibSpec, MemBehavior, Region, RegionSet, Requires, ShMechanism, ShSet,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

// ---- strategies -------------------------------------------------------------

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,10}"
}

fn arb_region_set() -> impl Strategy<Value = RegionSet> {
    prop_oneof![
        Just(RegionSet::Star),
        prop::collection::btree_set(prop_oneof![Just(Region::Own), Just(Region::Shared)], 0..=2)
            .prop_map(RegionSet::Set),
    ]
}

fn arb_call() -> impl Strategy<Value = CallBehavior> {
    prop_oneof![
        Just(CallBehavior::Star),
        prop::collection::btree_set((arb_name(), arb_name()), 0..4).prop_map(|s| {
            CallBehavior::Funcs(s.into_iter().map(|(l, f)| FuncRef::new(l, f)).collect())
        }),
    ]
}

fn arb_grant() -> impl Strategy<Value = Grant> {
    let subject = prop_oneof![
        Just(GrantSubject::Any),
        arb_name().prop_map(GrantSubject::Lib)
    ];
    let kind = prop_oneof![
        Just(GrantKind::Read(Region::Own)),
        Just(GrantKind::Read(Region::Shared)),
        Just(GrantKind::Write(Region::Own)),
        Just(GrantKind::Write(Region::Shared)),
        Just(GrantKind::CallAny),
        arb_name().prop_map(GrantKind::Call),
    ];
    (subject, kind).prop_map(|(subject, kind)| Grant { subject, kind })
}

fn arb_spec() -> impl Strategy<Value = LibSpec> {
    (
        arb_name(),
        arb_region_set(),
        arb_region_set(),
        arb_call(),
        prop::collection::vec((arb_name(), prop::collection::vec(arb_name(), 0..3)), 0..3),
        prop::option::of(prop::collection::vec(arb_grant(), 0..5)),
    )
        .prop_map(|(name, read, write, call, api, grants)| LibSpec {
            name,
            mem: MemBehavior { read, write },
            call,
            api: api
                .into_iter()
                .map(|(name, params)| ApiFunc {
                    name,
                    params,
                    preconditions: Vec::new(),
                })
                .collect(),
            requires: Requires { grants },
        })
}

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(|n| {
        prop::collection::vec(any::<bool>(), n * (n - 1) / 2).prop_map(move |edges| {
            let mut g = Graph::new(n);
            let mut k = 0;
            for i in 0..n {
                for j in 0..i {
                    if edges[k] {
                        g.add_edge(i, j);
                    }
                    k += 1;
                }
            }
            g
        })
    })
}

/// Brute-force chromatic number for tiny graphs (test oracle).
fn brute_chromatic_clean(g: &Graph) -> usize {
    fn feasible(g: &Graph, k: usize, v: usize, colors: &mut Vec<usize>) -> bool {
        if v == g.len() {
            return true;
        }
        for c in 0..k {
            if (0..v).all(|u| !g.has_edge(u, v) || colors[u] != c) {
                colors[v] = c;
                if feasible(g, k, v + 1, colors) {
                    return true;
                }
            }
        }
        false
    }
    for k in 1..=g.len() {
        let mut colors = vec![0; g.len()];
        if feasible(g, k, 0, &mut colors) {
            return k;
        }
    }
    g.len()
}

proptest! {
    /// The canonical printer and the parser are inverse.
    #[test]
    fn print_parse_round_trip(spec in arb_spec()) {
        let text = print(&spec);
        let reparsed = parse(&text).expect("canonical text parses");
        prop_assert_eq!(reparsed, spec);
    }

    /// Exact coloring is proper and matches the brute-force chromatic
    /// number; DSATUR is proper and never beats it.
    #[test]
    fn coloring_is_correct_and_optimal(g in arb_graph(7)) {
        let chi = brute_chromatic_clean(&g);
        let e = exact(&g);
        prop_assert!(is_valid(&g, &e));
        prop_assert_eq!(e.num_colors, chi);
        let d = dsatur(&g);
        prop_assert!(is_valid(&g, &d));
        prop_assert!(d.num_colors >= chi);
        let c = color(&g);
        prop_assert!(is_valid(&g, &c));
        prop_assert_eq!(c.num_colors, chi); // small graphs use the exact path
    }

    /// Compatibility is symmetric, and a library is always compatible
    /// with itself modulo its own grants — more precisely, the check
    /// never panics and is order-independent.
    #[test]
    fn compatibility_is_symmetric(a in arb_spec(), b in arb_spec()) {
        let ab = violations(&a, &b).is_empty() && violations(&b, &a).is_empty();
        let ba = violations(&b, &a).is_empty() && violations(&a, &b).is_empty();
        prop_assert_eq!(ab, ba);
    }

    /// Hardening never *creates* violations: for any victim, the
    /// SH-transformed offender violates at most what the plain offender
    /// violated (the rewrite only tightens behaviour).
    #[test]
    fn sh_transform_is_monotone(victim in arb_spec(), offender in arb_spec(),
                                cfi in any::<bool>(), dfi in any::<bool>(), asan in any::<bool>()) {
        let mut mechs = BTreeSet::new();
        if cfi { mechs.insert(ShMechanism::Cfi); }
        if dfi { mechs.insert(ShMechanism::Dfi); }
        if asan { mechs.insert(ShMechanism::Asan); }
        let sh = ShSet(mechs);
        let analysis = Analysis::well_behaved();
        let hardened = apply_sh(&offender, &sh, &analysis);
        let before = violations(&victim, &offender).len();
        let after = violations(&victim, &hardened).len();
        prop_assert!(after <= before,
            "hardening increased violations: {before} -> {after}");
    }

    /// The incompatibility graph's edges are exactly the incompatible
    /// pairs (no spurious or missing edges).
    #[test]
    fn incompat_graph_matches_pairwise_checks(specs in prop::collection::vec(arb_spec(), 2..5)) {
        // Deduplicate names (the graph is name-keyed for diagnostics).
        let mut specs = specs;
        for (i, s) in specs.iter_mut().enumerate() {
            s.name = format!("lib{i}");
        }
        let g = IncompatGraph::build(&specs);
        for i in 0..specs.len() {
            for j in 0..i {
                let incompatible = !violations(&specs[i], &specs[j]).is_empty()
                    || !violations(&specs[j], &specs[i]).is_empty();
                prop_assert_eq!(g.graph.has_edge(i, j), incompatible);
            }
        }
    }
}

proptest! {
    /// The DSL parser never panics, whatever bytes it is fed.
    #[test]
    fn parser_never_panics(input in ".{0,400}") {
        let _ = parse(&input);
        let _ = flexos::spec::parse_with_name(&input, "fuzz");
    }

    /// Moving from no isolation to an isolating backend never lowers the
    /// security score (with automatic placement).
    #[test]
    fn isolation_never_lowers_security(specs in prop::collection::vec(arb_spec(), 2..4)) {
        let mut specs = specs;
        for (i, s) in specs.iter_mut().enumerate() {
            s.name = format!("lib{i}");
        }
        let mk = |backend| {
            let mut cfg = ImageConfig::new("prop", backend);
            for s in &specs {
                cfg = cfg.with_library(LibraryConfig::new(s.clone(), LibRole::Other));
            }
            plan(cfg)
        };
        let (Ok(none), Ok(mpk)) = (mk(BackendChoice::None), mk(BackendChoice::MpkShared)) else {
            return Ok(()); // key-budget rejections are fine
        };
        prop_assert!(security_score(&mpk) >= security_score(&none));
        // Auto-derived isolating plans fully mitigate every threat.
        prop_assert!((security_score(&mpk) - 1.0).abs() < 1e-9);
    }
}

#[test]
fn brute_force_helper_agrees_on_known_graphs() {
    // Sanity-check the test oracle itself.
    let mut c5 = Graph::new(5);
    for i in 0..5 {
        c5.add_edge(i, (i + 1) % 5);
    }
    assert_eq!(brute_chromatic_clean(&c5), 3);
    let mut k4 = Graph::new(4);
    for i in 0..4 {
        for j in 0..i {
            k4.add_edge(i, j);
        }
    }
    assert_eq!(brute_chromatic_clean(&k4), 4);
}
