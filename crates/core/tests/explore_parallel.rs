//! Integration tests for the parallel, memoized exploration engine:
//! parallel and serial runs must be byte-identical, the compatibility
//! cache must never change a verdict, and thread counts {1, 2, 8} must
//! all agree.

use flexos::build::BackendChoice;
use flexos::compat::{
    enumerate_deployments, enumerate_deployments_with, violations, CompatCache, IncompatGraph,
};
use flexos::explore::{explore, Candidate, ExploreOptions};
use flexos::spec::{Analysis, LibSpec};
use flexos::synth::synthetic_image;
use flexos_machine::CostTable;
use proptest::prelude::*;

const BACKENDS: &[BackendChoice] = &[
    BackendChoice::None,
    BackendChoice::MpkShared,
    BackendChoice::MpkSwitched,
    BackendChoice::VmRpc,
    BackendChoice::Cheri,
];

/// A canonical byte rendering of a candidate list, covering every field
/// that downstream consumers can observe. Two explorations are
/// considered identical exactly when these renderings are equal.
fn fingerprint(cands: &[Candidate]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for c in cands {
        let _ = writeln!(
            out,
            "{}|{}|{:016x}|{:?}|{}|{:?}|{:?}",
            c.label,
            c.cycles,
            c.security.to_bits(),
            c.plan.compartment_of,
            c.plan.num_compartments,
            c.plan.compartment_names,
            c.plan.report.warnings,
        );
    }
    out
}

#[test]
fn parallel_exploration_is_byte_identical_across_thread_counts() {
    let img = synthetic_image(16, 5, 42);
    let costs = CostTable::default();
    let serial = explore(
        &img.config,
        BACKENDS,
        &img.profile,
        &costs,
        &ExploreOptions::serial(),
    );
    // 5 backends x 2^5 masks, every combination plans.
    assert_eq!(serial.candidates.len(), 5 * 32);
    let want = fingerprint(&serial.candidates);
    for threads in [2, 8, 0] {
        let par = explore(
            &img.config,
            BACKENDS,
            &img.profile,
            &costs,
            &ExploreOptions::default().with_threads(threads),
        );
        assert_eq!(
            fingerprint(&par.candidates),
            want,
            "threads={threads} diverged"
        );
        // The shared cache absorbs almost all re-checks across the run.
        assert!(
            par.cache_stats.hit_rate() > 0.9,
            "threads={threads}: {:?}",
            par.cache_stats
        );
    }
}

#[test]
fn exploration_objectives_agree_across_thread_counts() {
    let img = synthetic_image(16, 4, 7);
    let costs = CostTable::default();
    let serial = explore(
        &img.config,
        BACKENDS,
        &img.profile,
        &costs,
        &ExploreOptions::serial(),
    );
    let par = explore(
        &img.config,
        BACKENDS,
        &img.profile,
        &costs,
        &ExploreOptions::auto(),
    );
    let budget =
        serial.candidates.iter().map(|c| c.cycles).sum::<u64>() / serial.candidates.len() as u64;
    for (a, b) in [
        (
            serial.max_security_within_budget(budget),
            par.max_security_within_budget(budget),
        ),
        (
            serial.fastest_meeting_security(0.9),
            par.fastest_meeting_security(0.9),
        ),
    ] {
        let (a, b) = (a.unwrap(), b.unwrap());
        assert_eq!(a.label, b.label);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.security.to_bits(), b.security.to_bits());
    }
    assert_eq!(
        fingerprint(&serial.pareto_frontier()),
        fingerprint(&par.pareto_frontier())
    );
}

#[test]
fn deployment_enumeration_matches_serial_for_all_thread_counts() {
    let libs: Vec<(LibSpec, Analysis)> = (0..6)
        .map(|i| {
            if i % 2 == 0 {
                (
                    LibSpec::unsafe_c(format!("raw{i}")),
                    Analysis::well_behaved(),
                )
            } else {
                let mut s = LibSpec::verified_scheduler();
                s.name = format!("safe{i}");
                (s, Analysis::default())
            }
        })
        .collect();
    let serial = enumerate_deployments(&libs);
    let render = |ds: &[flexos::compat::Deployment]| {
        ds.iter()
            .map(|d| {
                format!(
                    "{:?}|{}|{:?}",
                    d.variants
                        .iter()
                        .map(|v| (&v.spec.name, format!("{}", v.sh)))
                        .collect::<Vec<_>>(),
                    d.num_compartments(),
                    d.coloring.colors,
                )
            })
            .collect::<Vec<_>>()
    };
    for threads in [1, 2, 8] {
        let cache = CompatCache::new();
        let par = enumerate_deployments_with(
            &libs,
            &cache,
            &ExploreOptions::default().with_threads(threads),
        );
        assert_eq!(render(&par), render(&serial), "threads={threads}");
        assert!(cache.stats().entries > 0);
    }
}

// ---- cache correctness under proptest --------------------------------------

fn arb_spec() -> impl Strategy<Value = LibSpec> {
    // A compact spec space that still exercises every check dimension:
    // the paper's two archetypes plus renames, so pairs range from fully
    // compatible to mutually violating.
    prop_oneof![
        "[a-z]{1,6}".prop_map(LibSpec::unsafe_c),
        "[a-z]{1,6}".prop_map(|n| {
            let mut s = LibSpec::verified_scheduler();
            s.name = n;
            s
        }),
        Just(LibSpec::verified_scheduler()),
    ]
}

proptest! {
    /// For arbitrary spec pairs, the memoized verdicts — first and
    /// repeat lookups — equal a fresh uncached check.
    #[test]
    fn cache_never_changes_a_verdict(a in arb_spec(), b in arb_spec()) {
        let cache = CompatCache::new();
        for _ in 0..2 {
            prop_assert_eq!(&*cache.violations(&a, &b), &violations(&a, &b));
            prop_assert_eq!(&*cache.violations(&b, &a), &violations(&b, &a));
            prop_assert_eq!(
                cache.compatible(&a, &b),
                flexos::compat::compatible(&a, &b)
            );
        }
        let stats = cache.stats();
        prop_assert!(stats.hits >= stats.misses);
    }

    /// Cached graph construction equals uncached construction for
    /// arbitrary spec sets, warm or cold.
    #[test]
    fn cached_graph_equals_uncached(specs in prop::collection::vec(arb_spec(), 2..6)) {
        let mut specs = specs;
        for (i, s) in specs.iter_mut().enumerate() {
            s.name = format!("{}{i}", s.name);
        }
        let cache = CompatCache::new();
        let plain = IncompatGraph::build(&specs);
        for pass in 0..2 {
            let cached = IncompatGraph::build_cached(&specs, &cache);
            prop_assert_eq!(&cached.names, &plain.names, "pass {}", pass);
            prop_assert_eq!(&cached.graph, &plain.graph, "pass {}", pass);
            prop_assert_eq!(&cached.reasons, &plain.reasons, "pass {}", pass);
        }
    }
}
