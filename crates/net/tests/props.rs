//! Property tests for the network stack: TCP delivers exactly the sent
//! byte stream under arbitrary chunking, packet loss and reordering.

use flexos_machine::{Addr, Machine, PageFlags, ProtKey, VcpuId, VmId};
use flexos_net::nic::{Link, LinkFaults, Nic};
use flexos_net::stack::{NetError, NetStack};
use flexos_net::tcp::TcpConfig;
use flexos_net::wire::Mac;
use proptest::prelude::*;

const SERVER_IP: u32 = 0x0a00_0001;
const CLIENT_IP: u32 = 0x0a00_0002;

struct World {
    m: Machine,
    server: NetStack,
    client: NetStack,
    link: Link,
    buf: Addr,
}

fn world(faults: LinkFaults) -> World {
    let mut m = Machine::with_defaults();
    let pool_s = m
        .alloc_region(VmId(0), 1 << 20, ProtKey(0), PageFlags::RW)
        .unwrap();
    let pool_c = m
        .alloc_region(VmId(0), 1 << 20, ProtKey(0), PageFlags::RW)
        .unwrap();
    let buf = m
        .alloc_region(VmId(0), 1 << 20, ProtKey(0), PageFlags::RW)
        .unwrap();
    World {
        m,
        server: NetStack::new(SERVER_IP, Nic::new(Mac::of_nic(1)), pool_s, 1 << 20),
        client: NetStack::new(CLIENT_IP, Nic::new(Mac::of_nic(2)), pool_c, 1 << 20),
        link: Link::with_faults(faults),
        buf,
    }
}

impl World {
    fn step(&mut self) {
        self.client.poll(&mut self.m, VcpuId(0)).unwrap();
        self.server.poll(&mut self.m, VcpuId(0)).unwrap();
        self.link
            .transfer(&mut self.client.nic, &mut self.server.nic);
        self.link
            .transfer(&mut self.server.nic, &mut self.client.nic);
        self.client.poll(&mut self.m, VcpuId(0)).unwrap();
        self.server.poll(&mut self.m, VcpuId(0)).unwrap();
    }
}

/// Sends `payload` from client to server in `chunks`, through a faulty
/// link, and asserts the server receives exactly `payload`.
fn transfer_faithful(payload: Vec<u8>, chunk_sizes: Vec<usize>, faults: LinkFaults) {
    let mut w = world(faults);
    let l = w.server.tcp_listen(7).unwrap();
    let cs = w.client.tcp_connect(SERVER_IP, 7).unwrap();
    for _ in 0..6 {
        w.step();
    }
    let ss = w.server.tcp_accept(l).unwrap().expect("accepted");

    let dst = Addr(w.buf.0 + (1 << 19));
    let mut received: Vec<u8> = Vec::new();
    let mut sent = 0usize;
    let mut chunk_iter = chunk_sizes.iter().cycle();
    let mut idle = 0u32;
    while received.len() < payload.len() {
        if sent < payload.len() {
            let n = (*chunk_iter.next().unwrap()).clamp(1, payload.len() - sent);
            w.m.write(VcpuId(0), w.buf, &payload[sent..sent + n])
                .unwrap();
            match w.client.tcp_send(&mut w.m, VcpuId(0), cs, w.buf, n as u64) {
                Ok(k) => sent += k as usize,
                Err(NetError::WouldBlock) => {}
                Err(e) => panic!("send: {e}"),
            }
        }
        w.step();
        match w.server.tcp_recv(&mut w.m, VcpuId(0), ss, dst, 32 * 1024) {
            Ok(n) => {
                let mut got = vec![0u8; n as usize];
                w.m.read(VcpuId(0), dst, &mut got).unwrap();
                received.extend(got);
                idle = 0;
            }
            Err(NetError::WouldBlock) => {
                idle += 1;
                // Advance time so retransmission timers fire.
                w.m.charge(TcpConfig::default().rto_cycles / 2 + 1);
                assert!(
                    idle < 2_000,
                    "transfer stalled at {}/{}",
                    received.len(),
                    payload.len()
                );
            }
            Err(e) => panic!("recv: {e}"),
        }
    }
    assert_eq!(received, payload, "byte stream corrupted");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary payloads and chunkings arrive intact on a clean link.
    #[test]
    fn tcp_stream_is_faithful_clean(
        payload in prop::collection::vec(any::<u8>(), 1..20_000),
        chunks in prop::collection::vec(1usize..5000, 1..8),
    ) {
        transfer_faithful(payload, chunks, LinkFaults::default());
    }

    /// Arbitrary payloads survive deterministic loss and reordering.
    #[test]
    fn tcp_stream_is_faithful_under_faults(
        payload in prop::collection::vec(any::<u8>(), 1..12_000),
        chunks in prop::collection::vec(1usize..4000, 1..8),
        drop_every in 5u64..40,
        reorder_every in prop::option::of(3u64..20),
    ) {
        transfer_faithful(
            payload,
            chunks,
            LinkFaults { drop_every: Some(drop_every), reorder_every },
        );
    }

    /// Sequence-space comparisons are a strict total preorder around any
    /// pivot (antisymmetry within a window).
    #[test]
    fn seq_space_sanity(a in any::<u32>(), d in 1u32..i32::MAX as u32) {
        use flexos_net::tcp::{seq_le, seq_lt};
        let b = a.wrapping_add(d);
        prop_assert!(seq_lt(a, b));
        prop_assert!(!seq_lt(b, a));
        prop_assert!(seq_le(a, a));
    }
}
