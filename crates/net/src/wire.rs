//! Wire formats: Ethernet, IPv4, TCP, UDP headers and checksums.
//!
//! Real header layouts (RFC 791/793/768), parsed from and serialized to
//! byte frames, with the standard Internet checksum. The stack is small
//! (no IP options, no TCP options beyond what the fixed MSS implies) but
//! honest: corrupted headers and checksums are rejected, and every field
//! round-trips bit-exactly.

/// Ethernet MTU used by the simulated NICs.
pub const MTU: usize = 1500;

/// Ethernet header length.
pub const ETH_LEN: usize = 14;
/// IPv4 header length (no options).
pub const IPV4_LEN: usize = 20;
/// TCP header length (no options).
pub const TCP_LEN: usize = 20;
/// UDP header length.
pub const UDP_LEN: usize = 8;

/// TCP maximum segment size implied by the MTU.
pub const MSS: usize = MTU - IPV4_LEN - TCP_LEN; // 1460

/// Largest TCP payload whose IPv4 total length still fits in 16 bits.
pub const TCP_MAX_PAYLOAD: usize = u16::MAX as usize - IPV4_LEN - TCP_LEN; // 65495

/// Largest UDP payload whose IPv4 total length still fits in 16 bits.
pub const UDP_MAX_PAYLOAD: usize = u16::MAX as usize - IPV4_LEN - UDP_LEN; // 65507

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;

/// IP protocol numbers.
pub const PROTO_TCP: u8 = 6;
/// UDP protocol number.
pub const PROTO_UDP: u8 = 17;

/// Error raised when a frame cannot be serialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The payload is too large for a 16-bit length field: casting would
    /// silently truncate and emit a frame with a lying header.
    PayloadTooLarge {
        /// The offending payload length.
        len: usize,
        /// The largest payload this frame type can carry.
        max: usize,
    },
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::PayloadTooLarge { len, max } => {
                write!(f, "payload of {len} bytes exceeds wire maximum {max}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mac(pub [u8; 6]);

impl Mac {
    /// The broadcast address.
    pub const BROADCAST: Mac = Mac([0xff; 6]);

    /// A deterministic locally-administered MAC for simulated NIC `n`.
    pub fn of_nic(n: u8) -> Mac {
        Mac([0x02, 0x00, 0x00, 0xf1, 0xe0, n])
    }
}

/// Ethernet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthHeader {
    /// Destination MAC.
    pub dst: Mac,
    /// Source MAC.
    pub src: Mac,
    /// EtherType.
    pub ethertype: u16,
}

impl EthHeader {
    /// Serializes into the first [`ETH_LEN`] bytes of `out`.
    pub fn write(&self, out: &mut [u8]) {
        out[0..6].copy_from_slice(&self.dst.0);
        out[6..12].copy_from_slice(&self.src.0);
        out[12..14].copy_from_slice(&self.ethertype.to_be_bytes());
    }

    /// Parses from a frame; `None` if too short.
    pub fn parse(b: &[u8]) -> Option<EthHeader> {
        if b.len() < ETH_LEN {
            return None;
        }
        Some(EthHeader {
            dst: Mac(b[0..6].try_into().expect("6 bytes")),
            src: Mac(b[6..12].try_into().expect("6 bytes")),
            ethertype: u16::from_be_bytes([b[12], b[13]]),
        })
    }
}

/// The Internet checksum (RFC 1071) over `data`, with an initial sum for
/// pseudo-header folding.
pub fn checksum(data: &[u8], initial: u32) -> u16 {
    // One's-complement addition is associative, so words can be summed
    // in any grouping: take 16 bytes per outer step (wide enough for the
    // compiler to vectorize — this runs over every payload byte on both
    // the build and verify sides) and accumulate in u64, which cannot
    // overflow for any frame the stack can produce.
    let mut sum = u64::from(initial);
    let mut wide = data.chunks_exact(16);
    for c in &mut wide {
        let mut i = 0;
        while i < 16 {
            sum += u64::from(u16::from_be_bytes([c[i], c[i + 1]]));
            i += 2;
        }
    }
    let mut chunks = wide.remainder().chunks_exact(2);
    for c in &mut chunks {
        sum += u64::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u64::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// IPv4 header (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// Payload protocol ([`PROTO_TCP`] / [`PROTO_UDP`]).
    pub proto: u8,
    /// Total length (header + payload).
    pub total_len: u16,
    /// Time to live.
    pub ttl: u8,
    /// Identification (used by tests to tag packets).
    pub ident: u16,
}

impl Ipv4Header {
    /// Serializes (with checksum) into the first [`IPV4_LEN`] bytes.
    pub fn write(&self, out: &mut [u8]) {
        out[0] = 0x45; // version 4, IHL 5
        out[1] = 0; // DSCP/ECN
        out[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        out[4..6].copy_from_slice(&self.ident.to_be_bytes());
        out[6..8].copy_from_slice(&[0x40, 0]); // DF, no fragment offset
        out[8] = self.ttl;
        out[9] = self.proto;
        out[10..12].copy_from_slice(&[0, 0]);
        out[12..16].copy_from_slice(&self.src.to_be_bytes());
        out[16..20].copy_from_slice(&self.dst.to_be_bytes());
        let csum = checksum(&out[..IPV4_LEN], 0);
        out[10..12].copy_from_slice(&csum.to_be_bytes());
    }

    /// Parses and verifies the checksum; `None` on malformed input.
    pub fn parse(b: &[u8]) -> Option<Ipv4Header> {
        if b.len() < IPV4_LEN || b[0] != 0x45 {
            return None;
        }
        if checksum(&b[..IPV4_LEN], 0) != 0 {
            return None;
        }
        Some(Ipv4Header {
            total_len: u16::from_be_bytes([b[2], b[3]]),
            ident: u16::from_be_bytes([b[4], b[5]]),
            ttl: b[8],
            proto: b[9],
            src: u32::from_be_bytes([b[12], b[13], b[14], b[15]]),
            dst: u32::from_be_bytes([b[16], b[17], b[18], b[19]]),
        })
    }

    fn pseudo_sum(&self, l4_len: u16) -> u32 {
        let src = self.src.to_be_bytes();
        let dst = self.dst.to_be_bytes();
        u32::from(u16::from_be_bytes([src[0], src[1]]))
            + u32::from(u16::from_be_bytes([src[2], src[3]]))
            + u32::from(u16::from_be_bytes([dst[0], dst[1]]))
            + u32::from(u16::from_be_bytes([dst[2], dst[3]]))
            + u32::from(self.proto)
            + u32::from(l4_len)
    }
}

/// TCP flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// FIN: sender is done.
    pub fin: bool,
    /// SYN: synchronize sequence numbers.
    pub syn: bool,
    /// RST: reset the connection.
    pub rst: bool,
    /// ACK: the ack field is valid.
    pub ack: bool,
}

impl TcpFlags {
    /// SYN only.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        fin: false,
        rst: false,
        ack: false,
    };
    /// ACK only.
    pub const ACK: TcpFlags = TcpFlags {
        ack: true,
        fin: false,
        rst: false,
        syn: false,
    };
    /// SYN+ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
    };
    /// FIN+ACK.
    pub const FIN_ACK: TcpFlags = TcpFlags {
        fin: true,
        ack: true,
        syn: false,
        rst: false,
    };
    /// RST.
    pub const RST: TcpFlags = TcpFlags {
        rst: true,
        fin: false,
        syn: false,
        ack: false,
    };

    fn to_byte(self) -> u8 {
        u8::from(self.fin)
            | (u8::from(self.syn) << 1)
            | (u8::from(self.rst) << 2)
            | (u8::from(self.ack) << 4)
    }

    fn from_byte(b: u8) -> TcpFlags {
        TcpFlags {
            fin: b & 1 != 0,
            syn: b & 2 != 0,
            rst: b & 4 != 0,
            ack: b & 16 != 0,
        }
    }
}

/// TCP header (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Advertised receive window.
    pub window: u16,
}

impl TcpHeader {
    /// Serializes (with checksum over the pseudo-header and `payload`)
    /// into the first [`TCP_LEN`] bytes of `out`. Rejects payloads whose
    /// layer-4 length would not fit the 16-bit pseudo-header field —
    /// the cast used to truncate silently for payloads ≥ 64 KiB.
    pub fn write(&self, ip: &Ipv4Header, payload: &[u8], out: &mut [u8]) -> Result<(), WireError> {
        if payload.len() > TCP_MAX_PAYLOAD {
            return Err(WireError::PayloadTooLarge {
                len: payload.len(),
                max: TCP_MAX_PAYLOAD,
            });
        }
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..8].copy_from_slice(&self.seq.to_be_bytes());
        out[8..12].copy_from_slice(&self.ack.to_be_bytes());
        out[12] = 5 << 4; // data offset: 5 words
        out[13] = self.flags.to_byte();
        out[14..16].copy_from_slice(&self.window.to_be_bytes());
        out[16..18].copy_from_slice(&[0, 0]); // checksum placeholder
        out[18..20].copy_from_slice(&[0, 0]); // urgent pointer
        let l4_len = (TCP_LEN + payload.len()) as u16;
        let mut sum = ip.pseudo_sum(l4_len);
        // Fold the header (with zero checksum) then the payload.
        let mut chunks = out[..TCP_LEN].chunks_exact(2);
        for c in &mut chunks {
            sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
        }
        let csum = checksum(payload, sum);
        out[16..18].copy_from_slice(&csum.to_be_bytes());
        Ok(())
    }

    /// Parses and verifies the checksum against `ip` and `payload`.
    pub fn parse(ip: &Ipv4Header, b: &[u8]) -> Option<(TcpHeader, usize)> {
        if b.len() < TCP_LEN {
            return None;
        }
        let data_off = (b[12] >> 4) as usize * 4;
        if data_off < TCP_LEN || b.len() < data_off {
            return None;
        }
        let l4_len = b.len() as u16;
        let sum = ip.pseudo_sum(l4_len);
        if checksum(b, sum) != 0 {
            return None;
        }
        Some((
            TcpHeader {
                src_port: u16::from_be_bytes([b[0], b[1]]),
                dst_port: u16::from_be_bytes([b[2], b[3]]),
                seq: u32::from_be_bytes([b[4], b[5], b[6], b[7]]),
                ack: u32::from_be_bytes([b[8], b[9], b[10], b[11]]),
                flags: TcpFlags::from_byte(b[13]),
                window: u16::from_be_bytes([b[14], b[15]]),
            },
            data_off,
        ))
    }
}

/// UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length (header + payload).
    pub len: u16,
}

impl UdpHeader {
    /// Serializes into the first [`UDP_LEN`] bytes (checksum omitted,
    /// which is legal for IPv4 UDP).
    pub fn write(&self, out: &mut [u8]) {
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..6].copy_from_slice(&self.len.to_be_bytes());
        out[6..8].copy_from_slice(&[0, 0]);
    }

    /// Parses; `None` if too short or inconsistent.
    pub fn parse(b: &[u8]) -> Option<UdpHeader> {
        if b.len() < UDP_LEN {
            return None;
        }
        let h = UdpHeader {
            src_port: u16::from_be_bytes([b[0], b[1]]),
            dst_port: u16::from_be_bytes([b[2], b[3]]),
            len: u16::from_be_bytes([b[4], b[5]]),
        };
        (h.len as usize >= UDP_LEN && h.len as usize <= b.len()).then_some(h)
    }
}

/// Builds a full Ethernet+IPv4+TCP frame. Fails rather than emitting a
/// frame whose headers misdescribe an oversized payload.
pub fn build_tcp_frame(
    eth: &EthHeader,
    ip: &Ipv4Header,
    tcp: &TcpHeader,
    payload: &[u8],
) -> Result<Vec<u8>, WireError> {
    let mut out = vec![0u8; ETH_LEN + IPV4_LEN + TCP_LEN + payload.len()];
    eth.write(&mut out[..ETH_LEN]);
    ip.write(&mut out[ETH_LEN..ETH_LEN + IPV4_LEN]);
    tcp.write(
        ip,
        payload,
        &mut out[ETH_LEN + IPV4_LEN..ETH_LEN + IPV4_LEN + TCP_LEN],
    )?;
    out[ETH_LEN + IPV4_LEN + TCP_LEN..].copy_from_slice(payload);
    Ok(out)
}

/// Builds a full Ethernet+IPv4+UDP frame. Fails rather than emitting a
/// frame whose headers misdescribe an oversized payload.
pub fn build_udp_frame(
    eth: &EthHeader,
    ip: &Ipv4Header,
    udp: &UdpHeader,
    payload: &[u8],
) -> Result<Vec<u8>, WireError> {
    if payload.len() > UDP_MAX_PAYLOAD {
        return Err(WireError::PayloadTooLarge {
            len: payload.len(),
            max: UDP_MAX_PAYLOAD,
        });
    }
    let mut out = vec![0u8; ETH_LEN + IPV4_LEN + UDP_LEN + payload.len()];
    eth.write(&mut out[..ETH_LEN]);
    ip.write(&mut out[ETH_LEN..ETH_LEN + IPV4_LEN]);
    udp.write(&mut out[ETH_LEN + IPV4_LEN..ETH_LEN + IPV4_LEN + UDP_LEN]);
    out[ETH_LEN + IPV4_LEN + UDP_LEN..].copy_from_slice(payload);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip_hdr(payload: usize, proto: u8) -> Ipv4Header {
        Ipv4Header {
            src: 0x0a000001,
            dst: 0x0a000002,
            proto,
            total_len: (IPV4_LEN + payload) as u16,
            ttl: 64,
            ident: 7,
        }
    }

    #[test]
    fn eth_round_trip() {
        let h = EthHeader {
            dst: Mac::of_nic(2),
            src: Mac::of_nic(1),
            ethertype: ETHERTYPE_IPV4,
        };
        let mut buf = [0u8; ETH_LEN];
        h.write(&mut buf);
        assert_eq!(EthHeader::parse(&buf).unwrap(), h);
        assert!(EthHeader::parse(&buf[..10]).is_none());
    }

    #[test]
    fn ipv4_round_trip_and_checksum() {
        let h = ip_hdr(100, PROTO_TCP);
        let mut buf = [0u8; IPV4_LEN];
        h.write(&mut buf);
        assert_eq!(Ipv4Header::parse(&buf).unwrap(), h);
        // Corrupt a byte: checksum rejects.
        buf[15] ^= 1;
        assert!(Ipv4Header::parse(&buf).is_none());
    }

    #[test]
    fn tcp_round_trip_and_checksum_covers_payload() {
        let payload = b"FlexOS makes OS isolation flexible";
        let ip = ip_hdr(TCP_LEN + payload.len(), PROTO_TCP);
        let tcp = TcpHeader {
            src_port: 5201,
            dst_port: 40000,
            seq: 0xdeadbeef,
            ack: 0x01020304,
            flags: TcpFlags::ACK,
            window: 65535,
        };
        let mut seg = vec![0u8; TCP_LEN + payload.len()];
        tcp.write(&ip, payload, &mut seg[..TCP_LEN]).unwrap();
        seg[TCP_LEN..].copy_from_slice(payload);
        let (parsed, off) = TcpHeader::parse(&ip, &seg).unwrap();
        assert_eq!(parsed, tcp);
        assert_eq!(off, TCP_LEN);
        // Flip a payload bit: the TCP checksum rejects the segment.
        seg[TCP_LEN + 3] ^= 0x80;
        assert!(TcpHeader::parse(&ip, &seg).is_none());
    }

    #[test]
    fn tcp_flags_round_trip() {
        for flags in [
            TcpFlags::SYN,
            TcpFlags::ACK,
            TcpFlags::SYN_ACK,
            TcpFlags::FIN_ACK,
            TcpFlags::RST,
        ] {
            assert_eq!(TcpFlags::from_byte(flags.to_byte()), flags);
        }
    }

    #[test]
    fn udp_round_trip() {
        let h = UdpHeader {
            src_port: 53,
            dst_port: 9999,
            len: (UDP_LEN + 11) as u16,
        };
        let mut buf = [0u8; UDP_LEN + 11];
        h.write(&mut buf);
        assert_eq!(UdpHeader::parse(&buf).unwrap(), h);
        // Length exceeding the buffer is rejected.
        let bad = UdpHeader { len: 64, ..h };
        bad.write(&mut buf);
        assert!(UdpHeader::parse(&buf).is_none());
    }

    #[test]
    fn full_tcp_frame_parses_end_to_end() {
        let payload = vec![0x42u8; 333];
        let eth = EthHeader {
            dst: Mac::of_nic(1),
            src: Mac::of_nic(0),
            ethertype: ETHERTYPE_IPV4,
        };
        let ip = ip_hdr(TCP_LEN + payload.len(), PROTO_TCP);
        let tcp = TcpHeader {
            src_port: 1,
            dst_port: 2,
            seq: 9,
            ack: 10,
            flags: TcpFlags::ACK,
            window: 1024,
        };
        let frame = build_tcp_frame(&eth, &ip, &tcp, &payload).unwrap();
        assert_eq!(frame.len(), ETH_LEN + IPV4_LEN + TCP_LEN + 333);
        let eth2 = EthHeader::parse(&frame).unwrap();
        assert_eq!(eth2, eth);
        let ip2 = Ipv4Header::parse(&frame[ETH_LEN..]).unwrap();
        assert_eq!(ip2, ip);
        let (tcp2, off) = TcpHeader::parse(&ip2, &frame[ETH_LEN + IPV4_LEN..]).unwrap();
        assert_eq!(tcp2, tcp);
        assert_eq!(&frame[ETH_LEN + IPV4_LEN + off..], &payload[..]);
    }

    #[test]
    fn oversized_payloads_are_rejected_not_truncated() {
        // 64 KiB payload: `(TCP_LEN + len) as u16` used to wrap to 19 and
        // emit a frame whose pseudo-header length lied about the payload.
        let payload = vec![0u8; 65536];
        let eth = EthHeader {
            dst: Mac::of_nic(1),
            src: Mac::of_nic(0),
            ethertype: ETHERTYPE_IPV4,
        };
        let ip = ip_hdr(100, PROTO_TCP);
        let tcp = TcpHeader {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 1024,
        };
        let mut seg = [0u8; TCP_LEN];
        assert_eq!(
            tcp.write(&ip, &payload, &mut seg),
            Err(WireError::PayloadTooLarge {
                len: 65536,
                max: TCP_MAX_PAYLOAD
            })
        );
        assert!(build_tcp_frame(&eth, &ip, &tcp, &payload).is_err());
        let udp = UdpHeader {
            src_port: 1,
            dst_port: 2,
            len: 0,
        };
        assert_eq!(
            build_udp_frame(&eth, &ip_hdr(100, PROTO_UDP), &udp, &payload).unwrap_err(),
            WireError::PayloadTooLarge {
                len: 65536,
                max: UDP_MAX_PAYLOAD
            }
        );
        // The boundary itself is accepted.
        let ok = vec![0u8; TCP_MAX_PAYLOAD];
        assert!(tcp.write(&ip, &ok, &mut seg).is_ok());
    }

    #[test]
    fn checksum_of_rfc1071_example() {
        // RFC 1071 example bytes.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let sum = checksum(&data, 0);
        assert_eq!(sum, !0xddf2u16);
    }

    #[test]
    fn mss_fits_the_mtu() {
        assert_eq!(MSS, 1460);
        let l3_plus_l4 = IPV4_LEN + TCP_LEN + MSS;
        assert!(l3_plus_l4 <= MTU, "{l3_plus_l4} > {MTU}");
    }
}
