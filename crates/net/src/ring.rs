//! Byte ring buffers in simulated memory.
//!
//! Socket receive/transmit buffers live in the network stack's
//! compartment memory, so every payload byte that flows through a socket
//! is subject to the machine's protection checks and copy costs.

use flexos_machine::{Addr, Machine, Result, VcpuId};

/// A byte ring over `[base, base+cap)` in simulated memory. Indices are
/// kept host-side (they are the stack's private metadata); the payload is
/// simulated.
#[derive(Debug, Clone)]
pub struct SimRing {
    base: Addr,
    cap: u64,
    head: u64, // total bytes read
    tail: u64, // total bytes written
}

impl SimRing {
    /// Creates a ring over pre-allocated simulated memory.
    pub fn new(base: Addr, cap: u64) -> Self {
        assert!(cap > 0, "ring capacity must be positive");
        Self {
            base,
            cap,
            head: 0,
            tail: 0,
        }
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> u64 {
        self.tail - self.head
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Free space.
    pub fn free(&self) -> u64 {
        self.cap - self.len()
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.cap
    }

    /// The backing region `(base, cap)`.
    pub fn region(&self) -> (Addr, u64) {
        (self.base, self.cap)
    }

    /// Writes as much of `data` as fits; returns bytes written.
    pub fn push(&mut self, m: &mut Machine, vcpu: VcpuId, data: &[u8]) -> Result<u64> {
        let n = (data.len() as u64).min(self.free());
        let mut written = 0u64;
        while written < n {
            let off = (self.tail + written) % self.cap;
            let run = (n - written).min(self.cap - off);
            m.write(
                vcpu,
                Addr(self.base.0 + off),
                &data[written as usize..(written + run) as usize],
            )?;
            written += run;
        }
        self.tail += n;
        Ok(n)
    }

    /// Copies up to `max` buffered bytes into simulated memory at `dst`;
    /// returns bytes moved.
    pub fn pop_to(&mut self, m: &mut Machine, vcpu: VcpuId, dst: Addr, max: u64) -> Result<u64> {
        let n = max.min(self.len());
        let mut moved = 0u64;
        while moved < n {
            let off = (self.head + moved) % self.cap;
            let run = (n - moved).min(self.cap - off);
            m.copy(vcpu, Addr(dst.0 + moved), Addr(self.base.0 + off), run)?;
            moved += run;
        }
        self.head += n;
        Ok(n)
    }

    /// Copies up to `max` buffered bytes into a host buffer (used by the
    /// stack to segment outgoing data); returns bytes moved.
    pub fn pop_to_host(
        &mut self,
        m: &mut Machine,
        vcpu: VcpuId,
        out: &mut Vec<u8>,
        max: u64,
    ) -> Result<u64> {
        let n = max.min(self.len());
        let start = out.len();
        out.resize(start + n as usize, 0);
        let mut moved = 0u64;
        while moved < n {
            let off = (self.head + moved) % self.cap;
            let run = (n - moved).min(self.cap - off);
            m.read(
                vcpu,
                Addr(self.base.0 + off),
                &mut out[start + moved as usize..start + (moved + run) as usize],
            )?;
            moved += run;
        }
        self.head += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexos_machine::{PageFlags, ProtKey, VmId};

    fn ring(cap: u64) -> (Machine, SimRing) {
        let mut m = Machine::with_defaults();
        let base = m
            .alloc_region(VmId(0), cap.max(1), ProtKey(0), PageFlags::RW)
            .unwrap();
        (m, SimRing::new(base, cap))
    }

    #[test]
    fn push_pop_round_trip() {
        let (mut m, mut r) = ring(64);
        assert_eq!(r.push(&mut m, VcpuId(0), b"hello world").unwrap(), 11);
        assert_eq!(r.len(), 11);
        let dst = m
            .alloc_region(VmId(0), 64, ProtKey(0), PageFlags::RW)
            .unwrap();
        assert_eq!(r.pop_to(&mut m, VcpuId(0), dst, 64).unwrap(), 11);
        let mut buf = [0u8; 11];
        m.read(VcpuId(0), dst, &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
        assert!(r.is_empty());
    }

    #[test]
    fn wraparound_preserves_order() {
        let (mut m, mut r) = ring(8);
        let mut out = Vec::new();
        for chunk in [&b"abcde"[..], b"fgh", b"ijklm"] {
            // Fill and drain repeatedly so the indices wrap.
            assert_eq!(
                r.push(&mut m, VcpuId(0), chunk).unwrap(),
                chunk.len() as u64
            );
            r.pop_to_host(&mut m, VcpuId(0), &mut out, 16).unwrap();
        }
        assert_eq!(&out, b"abcdefghijklm");
    }

    #[test]
    fn push_is_bounded_by_free_space() {
        let (mut m, mut r) = ring(4);
        assert_eq!(r.push(&mut m, VcpuId(0), b"abcdef").unwrap(), 4);
        assert_eq!(r.free(), 0);
        assert_eq!(r.push(&mut m, VcpuId(0), b"x").unwrap(), 0);
    }

    #[test]
    fn pop_is_bounded_by_content() {
        let (mut m, mut r) = ring(16);
        r.push(&mut m, VcpuId(0), b"abc").unwrap();
        let mut out = Vec::new();
        assert_eq!(r.pop_to_host(&mut m, VcpuId(0), &mut out, 100).unwrap(), 3);
        assert_eq!(out, b"abc");
    }

    #[test]
    fn pop_max_limits_transfer() {
        let (mut m, mut r) = ring(16);
        r.push(&mut m, VcpuId(0), b"abcdef").unwrap();
        let mut out = Vec::new();
        r.pop_to_host(&mut m, VcpuId(0), &mut out, 2).unwrap();
        assert_eq!(out, b"ab");
        assert_eq!(r.len(), 4);
    }
}
