//! The readiness layer: an epoll-style event queue over socket ids.
//!
//! [`EventQueue`] is the piece that turns the stack from O(open) into
//! O(ready): the stack posts readiness *at the exact state transition*
//! (segment moved into a receive ring, backlog push, FIFO drained) and a
//! poll drains only the sockets that are actually ready. Nothing ever
//! walks the socket table.
//!
//! Semantics follow epoll:
//!
//! * **Interest** is a bitmask ([`Interest::ACCEPT`], [`Interest::READ`],
//!   [`Interest::WRITE`]); posts are masked by it, so readiness a
//!   registration doesn't care about is never queued.
//! * **Level** triggered entries re-arm themselves on delivery: they are
//!   reported on every poll until the readiness is [`EventQueue::clear`]ed
//!   (the stack clears READ when a receive ring drains, ACCEPT when a
//!   backlog empties).
//! * **Edge** triggered entries report each readiness transition once:
//!   delivery consumes the ready bits and the entry stays quiet until the
//!   next post.
//!
//! Slot reuse is generation-stamped: a queue entry enqueued for a socket
//! that has since been deregistered (and possibly re-registered as a new
//! connection in the same slot) is detected by its stale generation and
//! skipped, so the churn path needs no queue scrubbing.

use crate::stack::SocketId;
use flexos_trace::EventQueueTrace;
use std::collections::VecDeque;
use std::ops::{BitAnd, BitOr, BitOrAssign, Not};

/// A readiness-interest bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest(u8);

impl Interest {
    /// Nothing.
    pub const NONE: Interest = Interest(0);
    /// A listener has at least one connection in its accept backlog.
    pub const ACCEPT: Interest = Interest(1);
    /// A stream has bytes (or an EOF) to read.
    pub const READ: Interest = Interest(2);
    /// A stream is established with transmit-buffer room.
    pub const WRITE: Interest = Interest(4);

    /// Whether every bit of `other` is set in `self`.
    pub fn contains(self, other: Interest) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether no bits are set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

impl BitOrAssign for Interest {
    fn bitor_assign(&mut self, rhs: Interest) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for Interest {
    type Output = Interest;
    fn bitand(self, rhs: Interest) -> Interest {
        Interest(self.0 & rhs.0)
    }
}

impl Not for Interest {
    type Output = Interest;
    fn not(self) -> Interest {
        Interest(!self.0 & 0x7)
    }
}

/// Edge- vs level-triggered delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Report each readiness transition once.
    Edge,
    /// Report on every poll while the readiness holds.
    Level,
}

/// One delivered readiness event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadyEvent {
    /// The ready socket.
    pub sid: SocketId,
    /// Which of the registered interests fired.
    pub ready: Interest,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    interest: Interest,
    trigger: Trigger,
    ready: Interest,
    queued: bool,
    generation: u32,
}

/// The epoll analogue: registered interests plus a queue of ready
/// sockets. All operations are O(1); a poll is O(delivered).
#[derive(Debug, Default)]
pub struct EventQueue {
    entries: Vec<Option<Entry>>,
    queue: VecDeque<(usize, u32)>,
    /// Queued entries whose registration has since died (they would be
    /// skipped by the generation check on the next poll, but a server
    /// that never polls must not accumulate them — see `deregister`).
    stale: usize,
    trace: EventQueueTrace,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-registers) `sid` with `interest`. Re-registering
    /// bumps the slot generation, invalidating any queued stale event.
    pub fn register(&mut self, sid: SocketId, interest: Interest, trigger: Trigger) {
        if self.entries.len() <= sid.0 {
            self.entries.resize_with(sid.0 + 1, || None);
        }
        let generation = self.entries[sid.0]
            .map(|e| e.generation.wrapping_add(1))
            .unwrap_or(0);
        self.entries[sid.0] = Some(Entry {
            interest,
            trigger,
            ready: Interest::NONE,
            queued: false,
            generation,
        });
    }

    /// Changes the interest mask of a live registration, keeping any
    /// still-interesting readiness armed.
    pub fn set_interest(&mut self, sid: SocketId, interest: Interest) {
        if let Some(Some(e)) = self.entries.get_mut(sid.0) {
            e.interest = interest;
            e.ready = e.ready & interest;
        }
    }

    /// Drops a registration. Queued events for the slot die by
    /// generation mismatch; once dead entries dominate the queue they
    /// are compacted away (amortized O(1) per deregister), so churn
    /// without polling cannot grow the queue.
    pub fn deregister(&mut self, sid: SocketId) {
        let Some(Some(e)) = self.entries.get_mut(sid.0) else {
            return;
        };
        if e.queued {
            self.stale += 1;
        }
        // A deregistered slot must not let register() restart at gen 0
        // (a queued (idx, 0) event would then hit the new socket). Park
        // the old generation in a phantom entry with no interest: it
        // can never queue, and register() bumps past it.
        *e = Entry {
            interest: Interest::NONE,
            trigger: Trigger::Edge,
            ready: Interest::NONE,
            queued: false,
            generation: e.generation,
        };
        if self.stale * 2 > self.queue.len() {
            self.compact();
        }
    }

    /// Drops queue entries whose registration died (generation
    /// mismatch or interest gone).
    fn compact(&mut self) {
        let entries = &self.entries;
        self.queue.retain(|&(idx, generation)| {
            matches!(
                entries.get(idx),
                Some(Some(e)) if e.generation == generation && e.queued
            )
        });
        self.stale = 0;
    }

    /// Whether `sid` has a live (interested) registration.
    pub fn is_registered(&self, sid: SocketId) -> bool {
        matches!(self.entries.get(sid.0), Some(Some(e)) if !e.interest.is_empty())
    }

    /// Posts readiness `what` for `sid`. Masked by the registered
    /// interest; coalesces with an already-queued event. O(1).
    pub fn post(&mut self, sid: SocketId, what: Interest) {
        let Some(Some(e)) = self.entries.get_mut(sid.0) else {
            return;
        };
        let bits = what & e.interest;
        if bits.is_empty() {
            return;
        }
        e.ready |= bits;
        if e.queued {
            self.trace.on_coalesce();
        } else {
            e.queued = true;
            let key = (sid.0, e.generation);
            self.queue.push_back(key);
            self.trace.on_post();
        }
    }

    /// Revokes readiness `what` for `sid` (the level-triggered disarm:
    /// ring drained, backlog emptied). O(1).
    pub fn clear(&mut self, sid: SocketId, what: Interest) {
        if let Some(Some(e)) = self.entries.get_mut(sid.0) {
            e.ready = e.ready & !what;
        }
    }

    /// Drains ready sockets into `out` (cleared first; the caller owns
    /// the scratch so polling allocates nothing at steady state).
    ///
    /// Level-triggered entries whose readiness still holds are re-queued
    /// for the next poll; edge-triggered deliveries consume their bits.
    pub fn poll(&mut self, out: &mut Vec<ReadyEvent>) {
        out.clear();
        // Snapshot the length: level re-arms must not be re-delivered
        // within the same poll.
        let n = self.queue.len();
        for _ in 0..n {
            let Some((idx, generation)) = self.queue.pop_front() else {
                break;
            };
            let Some(Some(e)) = self.entries.get_mut(idx) else {
                continue;
            };
            if e.generation != generation {
                continue; // stale: slot was re-registered
            }
            e.queued = false;
            let fired = e.ready & e.interest;
            if fired.is_empty() {
                continue; // readiness was cleared while queued
            }
            out.push(ReadyEvent {
                sid: SocketId(idx),
                ready: fired,
            });
            match e.trigger {
                Trigger::Edge => e.ready = e.ready & !fired,
                Trigger::Level => {
                    e.queued = true;
                    self.queue.push_back((idx, generation));
                }
            }
        }
        self.trace.on_poll(out.len() as u64);
    }

    /// Currently-queued ready sockets (the O(ready) bound a poll pays).
    pub fn ready_count(&self) -> usize {
        self.queue.len()
    }

    /// The queue's probe counters.
    pub fn trace(&self) -> &EventQueueTrace {
        &self.trace
    }

    /// Mutable probe access (for shard aggregation).
    pub fn trace_mut(&mut self) -> &mut EventQueueTrace {
        &mut self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut EventQueue) -> Vec<ReadyEvent> {
        let mut out = Vec::new();
        q.poll(&mut out);
        out
    }

    #[test]
    fn level_redelivers_until_cleared() {
        let mut q = EventQueue::new();
        q.register(SocketId(3), Interest::READ, Trigger::Level);
        q.post(SocketId(3), Interest::READ);
        for _ in 0..3 {
            let ev = drain(&mut q);
            assert_eq!(ev.len(), 1);
            assert_eq!(ev[0].sid, SocketId(3));
            assert!(ev[0].ready.contains(Interest::READ));
        }
        q.clear(SocketId(3), Interest::READ);
        assert!(drain(&mut q).is_empty());
        // The entry naturally dequeued itself; a new post re-queues.
        q.post(SocketId(3), Interest::READ);
        assert_eq!(drain(&mut q).len(), 1);
    }

    #[test]
    fn edge_fires_once_per_transition() {
        let mut q = EventQueue::new();
        q.register(SocketId(0), Interest::READ | Interest::WRITE, Trigger::Edge);
        q.post(SocketId(0), Interest::READ);
        assert_eq!(drain(&mut q).len(), 1);
        assert!(drain(&mut q).is_empty(), "edge event re-delivered");
        q.post(SocketId(0), Interest::WRITE);
        let ev = drain(&mut q);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].ready, Interest::WRITE);
    }

    #[test]
    fn interest_masks_posts() {
        let mut q = EventQueue::new();
        q.register(SocketId(1), Interest::READ, Trigger::Level);
        q.post(SocketId(1), Interest::WRITE); // not interested
        assert!(drain(&mut q).is_empty());
        assert_eq!(q.trace().posted(), 0);
    }

    #[test]
    fn posts_coalesce_while_queued() {
        let mut q = EventQueue::new();
        q.register(
            SocketId(2),
            Interest::READ | Interest::WRITE,
            Trigger::Level,
        );
        q.post(SocketId(2), Interest::READ);
        q.post(SocketId(2), Interest::WRITE);
        q.post(SocketId(2), Interest::READ);
        let ev = drain(&mut q);
        assert_eq!(ev.len(), 1, "coalesced into one event");
        assert_eq!(ev[0].ready, Interest::READ | Interest::WRITE);
        assert_eq!(q.trace().posted(), 1);
        assert_eq!(q.trace().coalesced(), 2);
    }

    #[test]
    fn stale_generation_events_are_skipped() {
        let mut q = EventQueue::new();
        q.register(SocketId(5), Interest::READ, Trigger::Edge);
        q.post(SocketId(5), Interest::READ);
        q.deregister(SocketId(5));
        // Same slot, new connection.
        q.register(SocketId(5), Interest::READ, Trigger::Level);
        assert!(
            drain(&mut q).is_empty(),
            "stale queued event leaked onto the reused slot"
        );
        q.post(SocketId(5), Interest::READ);
        assert_eq!(drain(&mut q).len(), 1);
    }

    #[test]
    fn set_interest_disarms_dropped_bits() {
        let mut q = EventQueue::new();
        q.register(
            SocketId(0),
            Interest::READ | Interest::WRITE,
            Trigger::Level,
        );
        q.post(SocketId(0), Interest::WRITE);
        q.set_interest(SocketId(0), Interest::READ);
        assert!(drain(&mut q).is_empty());
    }

    #[test]
    fn poll_is_o_ready_not_o_registered() {
        let mut q = EventQueue::new();
        for i in 0..10_000 {
            q.register(SocketId(i), Interest::READ, Trigger::Level);
        }
        q.post(SocketId(17), Interest::READ);
        q.post(SocketId(4242), Interest::READ);
        assert_eq!(q.ready_count(), 2);
        let ev = drain(&mut q);
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].sid, SocketId(17));
        assert_eq!(ev[1].sid, SocketId(4242));
    }
}
